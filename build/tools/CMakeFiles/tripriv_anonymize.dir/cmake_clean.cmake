file(REMOVE_RECURSE
  "CMakeFiles/tripriv_anonymize.dir/tripriv_anonymize.cc.o"
  "CMakeFiles/tripriv_anonymize.dir/tripriv_anonymize.cc.o.d"
  "tripriv_anonymize"
  "tripriv_anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
