# Empty dependencies file for tripriv_anonymize.
# This may be replaced when dependencies are built.
