file(REMOVE_RECURSE
  "CMakeFiles/three_dimensions.dir/three_dimensions.cpp.o"
  "CMakeFiles/three_dimensions.dir/three_dimensions.cpp.o.d"
  "three_dimensions"
  "three_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
