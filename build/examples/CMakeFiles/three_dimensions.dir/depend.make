# Empty dependencies file for three_dimensions.
# This may be replaced when dependencies are built.
