file(REMOVE_RECURSE
  "CMakeFiles/healthcare_release.dir/healthcare_release.cpp.o"
  "CMakeFiles/healthcare_release.dir/healthcare_release.cpp.o.d"
  "healthcare_release"
  "healthcare_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
