# Empty compiler generated dependencies file for healthcare_release.
# This may be replaced when dependencies are built.
