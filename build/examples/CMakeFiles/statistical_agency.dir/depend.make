# Empty dependencies file for statistical_agency.
# This may be replaced when dependencies are built.
