file(REMOVE_RECURSE
  "CMakeFiles/statistical_agency.dir/statistical_agency.cpp.o"
  "CMakeFiles/statistical_agency.dir/statistical_agency.cpp.o.d"
  "statistical_agency"
  "statistical_agency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_agency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
