# Empty compiler generated dependencies file for collaborative_mining.
# This may be replaced when dependencies are built.
