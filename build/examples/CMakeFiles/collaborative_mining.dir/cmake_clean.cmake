file(REMOVE_RECURSE
  "CMakeFiles/collaborative_mining.dir/collaborative_mining.cpp.o"
  "CMakeFiles/collaborative_mining.dir/collaborative_mining.cpp.o.d"
  "collaborative_mining"
  "collaborative_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
