file(REMOVE_RECURSE
  "CMakeFiles/tripriv_sdc.dir/anonymity.cc.o"
  "CMakeFiles/tripriv_sdc.dir/anonymity.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/coding.cc.o"
  "CMakeFiles/tripriv_sdc.dir/coding.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/condensation.cc.o"
  "CMakeFiles/tripriv_sdc.dir/condensation.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/diversity.cc.o"
  "CMakeFiles/tripriv_sdc.dir/diversity.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/equivalence.cc.o"
  "CMakeFiles/tripriv_sdc.dir/equivalence.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/hierarchy.cc.o"
  "CMakeFiles/tripriv_sdc.dir/hierarchy.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/information_loss.cc.o"
  "CMakeFiles/tripriv_sdc.dir/information_loss.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/microaggregation.cc.o"
  "CMakeFiles/tripriv_sdc.dir/microaggregation.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/mondrian.cc.o"
  "CMakeFiles/tripriv_sdc.dir/mondrian.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/noise.cc.o"
  "CMakeFiles/tripriv_sdc.dir/noise.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/pram.cc.o"
  "CMakeFiles/tripriv_sdc.dir/pram.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/rank_swap.cc.o"
  "CMakeFiles/tripriv_sdc.dir/rank_swap.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/recoding.cc.o"
  "CMakeFiles/tripriv_sdc.dir/recoding.cc.o.d"
  "CMakeFiles/tripriv_sdc.dir/risk.cc.o"
  "CMakeFiles/tripriv_sdc.dir/risk.cc.o.d"
  "libtripriv_sdc.a"
  "libtripriv_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
