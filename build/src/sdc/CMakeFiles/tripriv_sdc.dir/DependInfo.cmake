
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdc/anonymity.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/anonymity.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/anonymity.cc.o.d"
  "/root/repo/src/sdc/coding.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/coding.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/coding.cc.o.d"
  "/root/repo/src/sdc/condensation.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/condensation.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/condensation.cc.o.d"
  "/root/repo/src/sdc/diversity.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/diversity.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/diversity.cc.o.d"
  "/root/repo/src/sdc/equivalence.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/equivalence.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/equivalence.cc.o.d"
  "/root/repo/src/sdc/hierarchy.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/hierarchy.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/hierarchy.cc.o.d"
  "/root/repo/src/sdc/information_loss.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/information_loss.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/information_loss.cc.o.d"
  "/root/repo/src/sdc/microaggregation.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/microaggregation.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/microaggregation.cc.o.d"
  "/root/repo/src/sdc/mondrian.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/mondrian.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/mondrian.cc.o.d"
  "/root/repo/src/sdc/noise.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/noise.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/noise.cc.o.d"
  "/root/repo/src/sdc/pram.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/pram.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/pram.cc.o.d"
  "/root/repo/src/sdc/rank_swap.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/rank_swap.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/rank_swap.cc.o.d"
  "/root/repo/src/sdc/recoding.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/recoding.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/recoding.cc.o.d"
  "/root/repo/src/sdc/risk.cc" "src/sdc/CMakeFiles/tripriv_sdc.dir/risk.cc.o" "gcc" "src/sdc/CMakeFiles/tripriv_sdc.dir/risk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/tripriv_table.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tripriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
