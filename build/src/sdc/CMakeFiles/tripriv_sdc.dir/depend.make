# Empty dependencies file for tripriv_sdc.
# This may be replaced when dependencies are built.
