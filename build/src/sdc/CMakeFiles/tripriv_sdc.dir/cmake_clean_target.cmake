file(REMOVE_RECURSE
  "libtripriv_sdc.a"
)
