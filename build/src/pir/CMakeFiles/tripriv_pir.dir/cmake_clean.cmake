file(REMOVE_RECURSE
  "CMakeFiles/tripriv_pir.dir/aggregate.cc.o"
  "CMakeFiles/tripriv_pir.dir/aggregate.cc.o.d"
  "CMakeFiles/tripriv_pir.dir/cpir.cc.o"
  "CMakeFiles/tripriv_pir.dir/cpir.cc.o.d"
  "CMakeFiles/tripriv_pir.dir/it_pir.cc.o"
  "CMakeFiles/tripriv_pir.dir/it_pir.cc.o.d"
  "CMakeFiles/tripriv_pir.dir/keyword_pir.cc.o"
  "CMakeFiles/tripriv_pir.dir/keyword_pir.cc.o.d"
  "libtripriv_pir.a"
  "libtripriv_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
