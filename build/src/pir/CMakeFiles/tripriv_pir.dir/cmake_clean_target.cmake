file(REMOVE_RECURSE
  "libtripriv_pir.a"
)
