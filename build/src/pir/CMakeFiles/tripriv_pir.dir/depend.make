# Empty dependencies file for tripriv_pir.
# This may be replaced when dependencies are built.
