
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pir/aggregate.cc" "src/pir/CMakeFiles/tripriv_pir.dir/aggregate.cc.o" "gcc" "src/pir/CMakeFiles/tripriv_pir.dir/aggregate.cc.o.d"
  "/root/repo/src/pir/cpir.cc" "src/pir/CMakeFiles/tripriv_pir.dir/cpir.cc.o" "gcc" "src/pir/CMakeFiles/tripriv_pir.dir/cpir.cc.o.d"
  "/root/repo/src/pir/it_pir.cc" "src/pir/CMakeFiles/tripriv_pir.dir/it_pir.cc.o" "gcc" "src/pir/CMakeFiles/tripriv_pir.dir/it_pir.cc.o.d"
  "/root/repo/src/pir/keyword_pir.cc" "src/pir/CMakeFiles/tripriv_pir.dir/keyword_pir.cc.o" "gcc" "src/pir/CMakeFiles/tripriv_pir.dir/keyword_pir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smc/CMakeFiles/tripriv_smc.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tripriv_table.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tripriv_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
