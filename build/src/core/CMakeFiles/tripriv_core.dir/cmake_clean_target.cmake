file(REMOVE_RECURSE
  "libtripriv_core.a"
)
