file(REMOVE_RECURSE
  "CMakeFiles/tripriv_core.dir/advisor.cc.o"
  "CMakeFiles/tripriv_core.dir/advisor.cc.o.d"
  "CMakeFiles/tripriv_core.dir/evaluator.cc.o"
  "CMakeFiles/tripriv_core.dir/evaluator.cc.o.d"
  "CMakeFiles/tripriv_core.dir/framework.cc.o"
  "CMakeFiles/tripriv_core.dir/framework.cc.o.d"
  "CMakeFiles/tripriv_core.dir/technology.cc.o"
  "CMakeFiles/tripriv_core.dir/technology.cc.o.d"
  "libtripriv_core.a"
  "libtripriv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
