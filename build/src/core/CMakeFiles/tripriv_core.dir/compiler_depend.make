# Empty compiler generated dependencies file for tripriv_core.
# This may be replaced when dependencies are built.
