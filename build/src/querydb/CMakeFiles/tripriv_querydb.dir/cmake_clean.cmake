file(REMOVE_RECURSE
  "CMakeFiles/tripriv_querydb.dir/engine.cc.o"
  "CMakeFiles/tripriv_querydb.dir/engine.cc.o.d"
  "CMakeFiles/tripriv_querydb.dir/profiling.cc.o"
  "CMakeFiles/tripriv_querydb.dir/profiling.cc.o.d"
  "CMakeFiles/tripriv_querydb.dir/protection.cc.o"
  "CMakeFiles/tripriv_querydb.dir/protection.cc.o.d"
  "CMakeFiles/tripriv_querydb.dir/query.cc.o"
  "CMakeFiles/tripriv_querydb.dir/query.cc.o.d"
  "CMakeFiles/tripriv_querydb.dir/tracker.cc.o"
  "CMakeFiles/tripriv_querydb.dir/tracker.cc.o.d"
  "libtripriv_querydb.a"
  "libtripriv_querydb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_querydb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
