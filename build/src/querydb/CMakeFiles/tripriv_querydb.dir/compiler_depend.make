# Empty compiler generated dependencies file for tripriv_querydb.
# This may be replaced when dependencies are built.
