file(REMOVE_RECURSE
  "libtripriv_querydb.a"
)
