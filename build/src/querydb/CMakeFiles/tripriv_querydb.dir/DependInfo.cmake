
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/querydb/engine.cc" "src/querydb/CMakeFiles/tripriv_querydb.dir/engine.cc.o" "gcc" "src/querydb/CMakeFiles/tripriv_querydb.dir/engine.cc.o.d"
  "/root/repo/src/querydb/profiling.cc" "src/querydb/CMakeFiles/tripriv_querydb.dir/profiling.cc.o" "gcc" "src/querydb/CMakeFiles/tripriv_querydb.dir/profiling.cc.o.d"
  "/root/repo/src/querydb/protection.cc" "src/querydb/CMakeFiles/tripriv_querydb.dir/protection.cc.o" "gcc" "src/querydb/CMakeFiles/tripriv_querydb.dir/protection.cc.o.d"
  "/root/repo/src/querydb/query.cc" "src/querydb/CMakeFiles/tripriv_querydb.dir/query.cc.o" "gcc" "src/querydb/CMakeFiles/tripriv_querydb.dir/query.cc.o.d"
  "/root/repo/src/querydb/tracker.cc" "src/querydb/CMakeFiles/tripriv_querydb.dir/tracker.cc.o" "gcc" "src/querydb/CMakeFiles/tripriv_querydb.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/tripriv_table.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tripriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
