file(REMOVE_RECURSE
  "CMakeFiles/tripriv_table.dir/data_table.cc.o"
  "CMakeFiles/tripriv_table.dir/data_table.cc.o.d"
  "CMakeFiles/tripriv_table.dir/datasets.cc.o"
  "CMakeFiles/tripriv_table.dir/datasets.cc.o.d"
  "CMakeFiles/tripriv_table.dir/io.cc.o"
  "CMakeFiles/tripriv_table.dir/io.cc.o.d"
  "CMakeFiles/tripriv_table.dir/predicate.cc.o"
  "CMakeFiles/tripriv_table.dir/predicate.cc.o.d"
  "CMakeFiles/tripriv_table.dir/schema.cc.o"
  "CMakeFiles/tripriv_table.dir/schema.cc.o.d"
  "CMakeFiles/tripriv_table.dir/value.cc.o"
  "CMakeFiles/tripriv_table.dir/value.cc.o.d"
  "libtripriv_table.a"
  "libtripriv_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
