
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/data_table.cc" "src/table/CMakeFiles/tripriv_table.dir/data_table.cc.o" "gcc" "src/table/CMakeFiles/tripriv_table.dir/data_table.cc.o.d"
  "/root/repo/src/table/datasets.cc" "src/table/CMakeFiles/tripriv_table.dir/datasets.cc.o" "gcc" "src/table/CMakeFiles/tripriv_table.dir/datasets.cc.o.d"
  "/root/repo/src/table/io.cc" "src/table/CMakeFiles/tripriv_table.dir/io.cc.o" "gcc" "src/table/CMakeFiles/tripriv_table.dir/io.cc.o.d"
  "/root/repo/src/table/predicate.cc" "src/table/CMakeFiles/tripriv_table.dir/predicate.cc.o" "gcc" "src/table/CMakeFiles/tripriv_table.dir/predicate.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/table/CMakeFiles/tripriv_table.dir/schema.cc.o" "gcc" "src/table/CMakeFiles/tripriv_table.dir/schema.cc.o.d"
  "/root/repo/src/table/value.cc" "src/table/CMakeFiles/tripriv_table.dir/value.cc.o" "gcc" "src/table/CMakeFiles/tripriv_table.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
