# Empty dependencies file for tripriv_table.
# This may be replaced when dependencies are built.
