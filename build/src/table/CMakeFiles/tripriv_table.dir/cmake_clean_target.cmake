file(REMOVE_RECURSE
  "libtripriv_table.a"
)
