file(REMOVE_RECURSE
  "libtripriv_util.a"
)
