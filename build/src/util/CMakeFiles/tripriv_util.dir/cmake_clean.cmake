file(REMOVE_RECURSE
  "CMakeFiles/tripriv_util.dir/bigint.cc.o"
  "CMakeFiles/tripriv_util.dir/bigint.cc.o.d"
  "CMakeFiles/tripriv_util.dir/csv.cc.o"
  "CMakeFiles/tripriv_util.dir/csv.cc.o.d"
  "CMakeFiles/tripriv_util.dir/random.cc.o"
  "CMakeFiles/tripriv_util.dir/random.cc.o.d"
  "CMakeFiles/tripriv_util.dir/status.cc.o"
  "CMakeFiles/tripriv_util.dir/status.cc.o.d"
  "CMakeFiles/tripriv_util.dir/string_util.cc.o"
  "CMakeFiles/tripriv_util.dir/string_util.cc.o.d"
  "libtripriv_util.a"
  "libtripriv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
