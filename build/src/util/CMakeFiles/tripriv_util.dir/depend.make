# Empty dependencies file for tripriv_util.
# This may be replaced when dependencies are built.
