# Empty compiler generated dependencies file for tripriv_smc.
# This may be replaced when dependencies are built.
