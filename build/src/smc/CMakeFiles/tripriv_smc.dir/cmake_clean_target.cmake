file(REMOVE_RECURSE
  "libtripriv_smc.a"
)
