file(REMOVE_RECURSE
  "CMakeFiles/tripriv_smc.dir/distributed_id3.cc.o"
  "CMakeFiles/tripriv_smc.dir/distributed_id3.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/paillier.cc.o"
  "CMakeFiles/tripriv_smc.dir/paillier.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/party.cc.o"
  "CMakeFiles/tripriv_smc.dir/party.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/psi.cc.o"
  "CMakeFiles/tripriv_smc.dir/psi.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/scalar_product.cc.o"
  "CMakeFiles/tripriv_smc.dir/scalar_product.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/secure_sum.cc.o"
  "CMakeFiles/tripriv_smc.dir/secure_sum.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/shamir.cc.o"
  "CMakeFiles/tripriv_smc.dir/shamir.cc.o.d"
  "CMakeFiles/tripriv_smc.dir/vertical.cc.o"
  "CMakeFiles/tripriv_smc.dir/vertical.cc.o.d"
  "libtripriv_smc.a"
  "libtripriv_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
