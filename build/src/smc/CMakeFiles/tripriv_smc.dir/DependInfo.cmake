
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smc/distributed_id3.cc" "src/smc/CMakeFiles/tripriv_smc.dir/distributed_id3.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/distributed_id3.cc.o.d"
  "/root/repo/src/smc/paillier.cc" "src/smc/CMakeFiles/tripriv_smc.dir/paillier.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/paillier.cc.o.d"
  "/root/repo/src/smc/party.cc" "src/smc/CMakeFiles/tripriv_smc.dir/party.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/party.cc.o.d"
  "/root/repo/src/smc/psi.cc" "src/smc/CMakeFiles/tripriv_smc.dir/psi.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/psi.cc.o.d"
  "/root/repo/src/smc/scalar_product.cc" "src/smc/CMakeFiles/tripriv_smc.dir/scalar_product.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/scalar_product.cc.o.d"
  "/root/repo/src/smc/secure_sum.cc" "src/smc/CMakeFiles/tripriv_smc.dir/secure_sum.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/secure_sum.cc.o.d"
  "/root/repo/src/smc/shamir.cc" "src/smc/CMakeFiles/tripriv_smc.dir/shamir.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/shamir.cc.o.d"
  "/root/repo/src/smc/vertical.cc" "src/smc/CMakeFiles/tripriv_smc.dir/vertical.cc.o" "gcc" "src/smc/CMakeFiles/tripriv_smc.dir/vertical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/tripriv_table.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tripriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
