file(REMOVE_RECURSE
  "libtripriv_ppdm.a"
)
