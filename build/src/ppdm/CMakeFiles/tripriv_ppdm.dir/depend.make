# Empty dependencies file for tripriv_ppdm.
# This may be replaced when dependencies are built.
