
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppdm/association_rules.cc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/association_rules.cc.o" "gcc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/association_rules.cc.o.d"
  "/root/repo/src/ppdm/decision_tree.cc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/decision_tree.cc.o" "gcc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/decision_tree.cc.o.d"
  "/root/repo/src/ppdm/randomized_response.cc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/randomized_response.cc.o" "gcc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/randomized_response.cc.o.d"
  "/root/repo/src/ppdm/reconstruction.cc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/reconstruction.cc.o" "gcc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/reconstruction.cc.o.d"
  "/root/repo/src/ppdm/rule_hiding.cc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/rule_hiding.cc.o" "gcc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/rule_hiding.cc.o.d"
  "/root/repo/src/ppdm/sparsity_attack.cc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/sparsity_attack.cc.o" "gcc" "src/ppdm/CMakeFiles/tripriv_ppdm.dir/sparsity_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/tripriv_table.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tripriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
