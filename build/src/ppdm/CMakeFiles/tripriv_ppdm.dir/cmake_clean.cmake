file(REMOVE_RECURSE
  "CMakeFiles/tripriv_ppdm.dir/association_rules.cc.o"
  "CMakeFiles/tripriv_ppdm.dir/association_rules.cc.o.d"
  "CMakeFiles/tripriv_ppdm.dir/decision_tree.cc.o"
  "CMakeFiles/tripriv_ppdm.dir/decision_tree.cc.o.d"
  "CMakeFiles/tripriv_ppdm.dir/randomized_response.cc.o"
  "CMakeFiles/tripriv_ppdm.dir/randomized_response.cc.o.d"
  "CMakeFiles/tripriv_ppdm.dir/reconstruction.cc.o"
  "CMakeFiles/tripriv_ppdm.dir/reconstruction.cc.o.d"
  "CMakeFiles/tripriv_ppdm.dir/rule_hiding.cc.o"
  "CMakeFiles/tripriv_ppdm.dir/rule_hiding.cc.o.d"
  "CMakeFiles/tripriv_ppdm.dir/sparsity_attack.cc.o"
  "CMakeFiles/tripriv_ppdm.dir/sparsity_attack.cc.o.d"
  "libtripriv_ppdm.a"
  "libtripriv_ppdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_ppdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
