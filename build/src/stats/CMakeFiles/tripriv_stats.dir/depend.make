# Empty dependencies file for tripriv_stats.
# This may be replaced when dependencies are built.
