file(REMOVE_RECURSE
  "CMakeFiles/tripriv_stats.dir/descriptive.cc.o"
  "CMakeFiles/tripriv_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/tripriv_stats.dir/histogram.cc.o"
  "CMakeFiles/tripriv_stats.dir/histogram.cc.o.d"
  "CMakeFiles/tripriv_stats.dir/linalg.cc.o"
  "CMakeFiles/tripriv_stats.dir/linalg.cc.o.d"
  "libtripriv_stats.a"
  "libtripriv_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tripriv_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
