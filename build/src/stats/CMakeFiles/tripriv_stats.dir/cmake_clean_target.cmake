file(REMOVE_RECURSE
  "libtripriv_stats.a"
)
