# Empty dependencies file for properties_crypto_properties_test.
# This may be replaced when dependencies are built.
