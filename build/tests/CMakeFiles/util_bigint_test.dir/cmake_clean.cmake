file(REMOVE_RECURSE
  "CMakeFiles/util_bigint_test.dir/util/bigint_test.cc.o"
  "CMakeFiles/util_bigint_test.dir/util/bigint_test.cc.o.d"
  "util_bigint_test"
  "util_bigint_test.pdb"
  "util_bigint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
