# Empty dependencies file for util_bigint_test.
# This may be replaced when dependencies are built.
