# Empty compiler generated dependencies file for sdc_microaggregation_test.
# This may be replaced when dependencies are built.
