file(REMOVE_RECURSE
  "CMakeFiles/sdc_microaggregation_test.dir/sdc/microaggregation_test.cc.o"
  "CMakeFiles/sdc_microaggregation_test.dir/sdc/microaggregation_test.cc.o.d"
  "sdc_microaggregation_test"
  "sdc_microaggregation_test.pdb"
  "sdc_microaggregation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_microaggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
