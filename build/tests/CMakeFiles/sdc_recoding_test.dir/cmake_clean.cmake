file(REMOVE_RECURSE
  "CMakeFiles/sdc_recoding_test.dir/sdc/recoding_test.cc.o"
  "CMakeFiles/sdc_recoding_test.dir/sdc/recoding_test.cc.o.d"
  "sdc_recoding_test"
  "sdc_recoding_test.pdb"
  "sdc_recoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_recoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
