# Empty compiler generated dependencies file for sdc_recoding_test.
# This may be replaced when dependencies are built.
