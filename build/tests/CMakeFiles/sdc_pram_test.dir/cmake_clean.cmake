file(REMOVE_RECURSE
  "CMakeFiles/sdc_pram_test.dir/sdc/pram_test.cc.o"
  "CMakeFiles/sdc_pram_test.dir/sdc/pram_test.cc.o.d"
  "sdc_pram_test"
  "sdc_pram_test.pdb"
  "sdc_pram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_pram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
