# Empty dependencies file for sdc_pram_test.
# This may be replaced when dependencies are built.
