file(REMOVE_RECURSE
  "CMakeFiles/smc_vertical_test.dir/smc/vertical_test.cc.o"
  "CMakeFiles/smc_vertical_test.dir/smc/vertical_test.cc.o.d"
  "smc_vertical_test"
  "smc_vertical_test.pdb"
  "smc_vertical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smc_vertical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
