# Empty dependencies file for smc_vertical_test.
# This may be replaced when dependencies are built.
