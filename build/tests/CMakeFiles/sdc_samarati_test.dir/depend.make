# Empty dependencies file for sdc_samarati_test.
# This may be replaced when dependencies are built.
