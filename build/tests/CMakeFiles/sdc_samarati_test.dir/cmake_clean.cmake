file(REMOVE_RECURSE
  "CMakeFiles/sdc_samarati_test.dir/sdc/samarati_test.cc.o"
  "CMakeFiles/sdc_samarati_test.dir/sdc/samarati_test.cc.o.d"
  "sdc_samarati_test"
  "sdc_samarati_test.pdb"
  "sdc_samarati_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_samarati_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
