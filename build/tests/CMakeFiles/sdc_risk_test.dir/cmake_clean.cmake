file(REMOVE_RECURSE
  "CMakeFiles/sdc_risk_test.dir/sdc/risk_test.cc.o"
  "CMakeFiles/sdc_risk_test.dir/sdc/risk_test.cc.o.d"
  "sdc_risk_test"
  "sdc_risk_test.pdb"
  "sdc_risk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_risk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
