# Empty dependencies file for sdc_risk_test.
# This may be replaced when dependencies are built.
