file(REMOVE_RECURSE
  "CMakeFiles/sdc_anonymity_test.dir/sdc/anonymity_test.cc.o"
  "CMakeFiles/sdc_anonymity_test.dir/sdc/anonymity_test.cc.o.d"
  "sdc_anonymity_test"
  "sdc_anonymity_test.pdb"
  "sdc_anonymity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_anonymity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
