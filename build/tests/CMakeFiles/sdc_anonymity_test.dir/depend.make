# Empty dependencies file for sdc_anonymity_test.
# This may be replaced when dependencies are built.
