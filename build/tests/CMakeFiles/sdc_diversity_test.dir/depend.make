# Empty dependencies file for sdc_diversity_test.
# This may be replaced when dependencies are built.
