file(REMOVE_RECURSE
  "CMakeFiles/sdc_diversity_test.dir/sdc/diversity_test.cc.o"
  "CMakeFiles/sdc_diversity_test.dir/sdc/diversity_test.cc.o.d"
  "sdc_diversity_test"
  "sdc_diversity_test.pdb"
  "sdc_diversity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
