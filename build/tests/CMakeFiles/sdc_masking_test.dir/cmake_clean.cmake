file(REMOVE_RECURSE
  "CMakeFiles/sdc_masking_test.dir/sdc/masking_test.cc.o"
  "CMakeFiles/sdc_masking_test.dir/sdc/masking_test.cc.o.d"
  "sdc_masking_test"
  "sdc_masking_test.pdb"
  "sdc_masking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
