# Empty compiler generated dependencies file for sdc_masking_test.
# This may be replaced when dependencies are built.
