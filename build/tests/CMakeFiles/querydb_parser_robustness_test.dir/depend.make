# Empty dependencies file for querydb_parser_robustness_test.
# This may be replaced when dependencies are built.
