
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/querydb/parser_robustness_test.cc" "tests/CMakeFiles/querydb_parser_robustness_test.dir/querydb/parser_robustness_test.cc.o" "gcc" "tests/CMakeFiles/querydb_parser_robustness_test.dir/querydb/parser_robustness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tripriv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/querydb/CMakeFiles/tripriv_querydb.dir/DependInfo.cmake"
  "/root/repo/build/src/pir/CMakeFiles/tripriv_pir.dir/DependInfo.cmake"
  "/root/repo/build/src/smc/CMakeFiles/tripriv_smc.dir/DependInfo.cmake"
  "/root/repo/build/src/ppdm/CMakeFiles/tripriv_ppdm.dir/DependInfo.cmake"
  "/root/repo/build/src/sdc/CMakeFiles/tripriv_sdc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tripriv_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tripriv_table.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tripriv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
