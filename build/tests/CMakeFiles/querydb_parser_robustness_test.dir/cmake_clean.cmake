file(REMOVE_RECURSE
  "CMakeFiles/querydb_parser_robustness_test.dir/querydb/parser_robustness_test.cc.o"
  "CMakeFiles/querydb_parser_robustness_test.dir/querydb/parser_robustness_test.cc.o.d"
  "querydb_parser_robustness_test"
  "querydb_parser_robustness_test.pdb"
  "querydb_parser_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querydb_parser_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
