# Empty compiler generated dependencies file for properties_masking_properties_test.
# This may be replaced when dependencies are built.
