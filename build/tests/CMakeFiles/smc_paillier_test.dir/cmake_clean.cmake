file(REMOVE_RECURSE
  "CMakeFiles/smc_paillier_test.dir/smc/paillier_test.cc.o"
  "CMakeFiles/smc_paillier_test.dir/smc/paillier_test.cc.o.d"
  "smc_paillier_test"
  "smc_paillier_test.pdb"
  "smc_paillier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smc_paillier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
