file(REMOVE_RECURSE
  "CMakeFiles/querydb_query_test.dir/querydb/query_test.cc.o"
  "CMakeFiles/querydb_query_test.dir/querydb/query_test.cc.o.d"
  "querydb_query_test"
  "querydb_query_test.pdb"
  "querydb_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querydb_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
