# Empty compiler generated dependencies file for querydb_query_test.
# This may be replaced when dependencies are built.
