file(REMOVE_RECURSE
  "CMakeFiles/properties_anonymizer_properties_test.dir/properties/anonymizer_properties_test.cc.o"
  "CMakeFiles/properties_anonymizer_properties_test.dir/properties/anonymizer_properties_test.cc.o.d"
  "properties_anonymizer_properties_test"
  "properties_anonymizer_properties_test.pdb"
  "properties_anonymizer_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/properties_anonymizer_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
