# Empty dependencies file for properties_anonymizer_properties_test.
# This may be replaced when dependencies are built.
