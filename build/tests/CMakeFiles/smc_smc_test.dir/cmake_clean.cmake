file(REMOVE_RECURSE
  "CMakeFiles/smc_smc_test.dir/smc/smc_test.cc.o"
  "CMakeFiles/smc_smc_test.dir/smc/smc_test.cc.o.d"
  "smc_smc_test"
  "smc_smc_test.pdb"
  "smc_smc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smc_smc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
