# Empty dependencies file for stats_stats_test.
# This may be replaced when dependencies are built.
