# Empty compiler generated dependencies file for querydb_dp_test.
# This may be replaced when dependencies are built.
