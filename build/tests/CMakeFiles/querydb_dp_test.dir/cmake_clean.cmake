file(REMOVE_RECURSE
  "CMakeFiles/querydb_dp_test.dir/querydb/dp_test.cc.o"
  "CMakeFiles/querydb_dp_test.dir/querydb/dp_test.cc.o.d"
  "querydb_dp_test"
  "querydb_dp_test.pdb"
  "querydb_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querydb_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
