file(REMOVE_RECURSE
  "CMakeFiles/core_scoreboard_test.dir/core/scoreboard_test.cc.o"
  "CMakeFiles/core_scoreboard_test.dir/core/scoreboard_test.cc.o.d"
  "core_scoreboard_test"
  "core_scoreboard_test.pdb"
  "core_scoreboard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scoreboard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
