# Empty compiler generated dependencies file for core_scoreboard_test.
# This may be replaced when dependencies are built.
