file(REMOVE_RECURSE
  "CMakeFiles/ppdm_decision_tree_test.dir/ppdm/decision_tree_test.cc.o"
  "CMakeFiles/ppdm_decision_tree_test.dir/ppdm/decision_tree_test.cc.o.d"
  "ppdm_decision_tree_test"
  "ppdm_decision_tree_test.pdb"
  "ppdm_decision_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdm_decision_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
