# Empty dependencies file for ppdm_decision_tree_test.
# This may be replaced when dependencies are built.
