# Empty dependencies file for querydb_protection_test.
# This may be replaced when dependencies are built.
