file(REMOVE_RECURSE
  "CMakeFiles/querydb_protection_test.dir/querydb/protection_test.cc.o"
  "CMakeFiles/querydb_protection_test.dir/querydb/protection_test.cc.o.d"
  "querydb_protection_test"
  "querydb_protection_test.pdb"
  "querydb_protection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querydb_protection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
