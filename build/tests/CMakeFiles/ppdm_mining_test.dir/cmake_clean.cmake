file(REMOVE_RECURSE
  "CMakeFiles/ppdm_mining_test.dir/ppdm/mining_test.cc.o"
  "CMakeFiles/ppdm_mining_test.dir/ppdm/mining_test.cc.o.d"
  "ppdm_mining_test"
  "ppdm_mining_test.pdb"
  "ppdm_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdm_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
