# Empty compiler generated dependencies file for ppdm_mining_test.
# This may be replaced when dependencies are built.
