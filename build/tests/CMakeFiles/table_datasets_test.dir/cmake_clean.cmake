file(REMOVE_RECURSE
  "CMakeFiles/table_datasets_test.dir/table/datasets_test.cc.o"
  "CMakeFiles/table_datasets_test.dir/table/datasets_test.cc.o.d"
  "table_datasets_test"
  "table_datasets_test.pdb"
  "table_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
