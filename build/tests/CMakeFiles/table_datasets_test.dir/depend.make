# Empty dependencies file for table_datasets_test.
# This may be replaced when dependencies are built.
