file(REMOVE_RECURSE
  "CMakeFiles/table_predicate_test.dir/table/predicate_test.cc.o"
  "CMakeFiles/table_predicate_test.dir/table/predicate_test.cc.o.d"
  "table_predicate_test"
  "table_predicate_test.pdb"
  "table_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
