file(REMOVE_RECURSE
  "CMakeFiles/table_data_table_test.dir/table/data_table_test.cc.o"
  "CMakeFiles/table_data_table_test.dir/table/data_table_test.cc.o.d"
  "table_data_table_test"
  "table_data_table_test.pdb"
  "table_data_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_data_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
