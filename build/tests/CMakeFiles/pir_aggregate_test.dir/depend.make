# Empty dependencies file for pir_aggregate_test.
# This may be replaced when dependencies are built.
