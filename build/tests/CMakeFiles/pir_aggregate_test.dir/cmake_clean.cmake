file(REMOVE_RECURSE
  "CMakeFiles/pir_aggregate_test.dir/pir/aggregate_test.cc.o"
  "CMakeFiles/pir_aggregate_test.dir/pir/aggregate_test.cc.o.d"
  "pir_aggregate_test"
  "pir_aggregate_test.pdb"
  "pir_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pir_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
