# Empty compiler generated dependencies file for querydb_profiling_test.
# This may be replaced when dependencies are built.
