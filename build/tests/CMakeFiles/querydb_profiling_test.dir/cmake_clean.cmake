file(REMOVE_RECURSE
  "CMakeFiles/querydb_profiling_test.dir/querydb/profiling_test.cc.o"
  "CMakeFiles/querydb_profiling_test.dir/querydb/profiling_test.cc.o.d"
  "querydb_profiling_test"
  "querydb_profiling_test.pdb"
  "querydb_profiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querydb_profiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
