file(REMOVE_RECURSE
  "CMakeFiles/ppdm_reconstruction_test.dir/ppdm/reconstruction_test.cc.o"
  "CMakeFiles/ppdm_reconstruction_test.dir/ppdm/reconstruction_test.cc.o.d"
  "ppdm_reconstruction_test"
  "ppdm_reconstruction_test.pdb"
  "ppdm_reconstruction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdm_reconstruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
