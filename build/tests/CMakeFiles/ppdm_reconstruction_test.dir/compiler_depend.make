# Empty compiler generated dependencies file for ppdm_reconstruction_test.
# This may be replaced when dependencies are built.
