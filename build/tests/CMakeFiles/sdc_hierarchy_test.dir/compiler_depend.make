# Empty compiler generated dependencies file for sdc_hierarchy_test.
# This may be replaced when dependencies are built.
