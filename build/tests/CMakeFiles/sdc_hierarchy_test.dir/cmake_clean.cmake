file(REMOVE_RECURSE
  "CMakeFiles/sdc_hierarchy_test.dir/sdc/hierarchy_test.cc.o"
  "CMakeFiles/sdc_hierarchy_test.dir/sdc/hierarchy_test.cc.o.d"
  "sdc_hierarchy_test"
  "sdc_hierarchy_test.pdb"
  "sdc_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
