file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scoring.dir/bench_table2_scoring.cc.o"
  "CMakeFiles/bench_table2_scoring.dir/bench_table2_scoring.cc.o.d"
  "bench_table2_scoring"
  "bench_table2_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
