file(REMOVE_RECURSE
  "CMakeFiles/bench_anonymity_models.dir/bench_anonymity_models.cc.o"
  "CMakeFiles/bench_anonymity_models.dir/bench_anonymity_models.cc.o.d"
  "bench_anonymity_models"
  "bench_anonymity_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anonymity_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
