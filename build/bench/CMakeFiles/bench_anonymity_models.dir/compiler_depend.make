# Empty compiler generated dependencies file for bench_anonymity_models.
# This may be replaced when dependencies are built.
