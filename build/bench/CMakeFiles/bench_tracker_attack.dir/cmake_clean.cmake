file(REMOVE_RECURSE
  "CMakeFiles/bench_tracker_attack.dir/bench_tracker_attack.cc.o"
  "CMakeFiles/bench_tracker_attack.dir/bench_tracker_attack.cc.o.d"
  "bench_tracker_attack"
  "bench_tracker_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tracker_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
