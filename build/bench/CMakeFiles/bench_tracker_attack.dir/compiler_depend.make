# Empty compiler generated dependencies file for bench_tracker_attack.
# This may be replaced when dependencies are built.
