# Empty dependencies file for bench_three_dimensions.
# This may be replaced when dependencies are built.
