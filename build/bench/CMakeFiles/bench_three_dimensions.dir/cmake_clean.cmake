file(REMOVE_RECURSE
  "CMakeFiles/bench_three_dimensions.dir/bench_three_dimensions.cc.o"
  "CMakeFiles/bench_three_dimensions.dir/bench_three_dimensions.cc.o.d"
  "bench_three_dimensions"
  "bench_three_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_three_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
