file(REMOVE_RECURSE
  "CMakeFiles/bench_sparsity_attack.dir/bench_sparsity_attack.cc.o"
  "CMakeFiles/bench_sparsity_attack.dir/bench_sparsity_attack.cc.o.d"
  "bench_sparsity_attack"
  "bench_sparsity_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsity_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
