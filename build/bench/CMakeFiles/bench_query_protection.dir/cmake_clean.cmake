file(REMOVE_RECURSE
  "CMakeFiles/bench_query_protection.dir/bench_query_protection.cc.o"
  "CMakeFiles/bench_query_protection.dir/bench_query_protection.cc.o.d"
  "bench_query_protection"
  "bench_query_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
