# Empty dependencies file for bench_microaggregation.
# This may be replaced when dependencies are built.
