file(REMOVE_RECURSE
  "CMakeFiles/bench_microaggregation.dir/bench_microaggregation.cc.o"
  "CMakeFiles/bench_microaggregation.dir/bench_microaggregation.cc.o.d"
  "bench_microaggregation"
  "bench_microaggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
