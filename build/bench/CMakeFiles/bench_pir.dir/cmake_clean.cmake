file(REMOVE_RECURSE
  "CMakeFiles/bench_pir.dir/bench_pir.cc.o"
  "CMakeFiles/bench_pir.dir/bench_pir.cc.o.d"
  "bench_pir"
  "bench_pir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
