# Empty compiler generated dependencies file for bench_smc.
# This may be replaced when dependencies are built.
