file(REMOVE_RECURSE
  "CMakeFiles/bench_smc.dir/bench_smc.cc.o"
  "CMakeFiles/bench_smc.dir/bench_smc.cc.o.d"
  "bench_smc"
  "bench_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
