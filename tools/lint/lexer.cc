#include "lint/lexer.h"

#include <cctype>

namespace tripriv {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Merges a NOLINT marker found in comment text into `file`'s suppressions.
/// `comment` is the comment body, `line` the line the marker sits on.
void HarvestNolint(const std::string& comment, int line, LexedFile* file) {
  size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + 6;  // strlen("NOLINT")
    NolintMarker marker;
    marker.line = line;
    marker.target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      marker.target = line + 1;
      marker.nextline = true;
    }
    Suppression& sup = file->suppressions[marker.target];
    if (after < comment.size() && comment[after] == '(') {
      // NOLINT(rule-a, rule-b): suppress only the named rules.
      size_t close = comment.find(')', after);
      if (close == std::string::npos) close = comment.size();
      std::string name;
      for (size_t i = after + 1; i <= close; ++i) {
        char c = i < close ? comment[i] : ',';
        if (c == ',' || c == ')') {
          if (!name.empty()) marker.rules.insert(name);
          name.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          name.push_back(c);
        }
      }
      sup.rules.insert(marker.rules.begin(), marker.rules.end());
      pos = close;
    } else {
      // Bare form: only a comment that ends with the marker (optionally
      // followed by a `:`-separated explanation or the block-comment close)
      // counts. A prose mention of NOLINT in a doc comment is neither a
      // suppression nor a nolint-requires-rule finding.
      const size_t rest = comment.find_first_not_of(" \t", after);
      const bool ends_comment =
          rest == std::string::npos || comment[rest] == ':' ||
          comment.compare(rest, 2, "*/") == 0;
      pos = after;
      if (!ends_comment) continue;
      marker.bare = true;
      sup.all = true;
    }
    file->markers.push_back(std::move(marker));
  }
}

}  // namespace

LexedFile Lex(const std::string& source) {
  LexedFile out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = source[i];
    // Line comment: strip to end of line, harvesting NOLINT markers.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      HarvestNolint(source.substr(i, end - i), line, &out);
      advance(end - i);
      continue;
    }
    // Block comment. A NOLINT marker suppresses on the line it appears on.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t end = source.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      // Harvest per comment line so multi-line NOLINTs land correctly.
      int comment_line = line;
      size_t line_start = i;
      for (size_t k = i; k <= end; ++k) {
        if (k == end || source[k] == '\n') {
          HarvestNolint(source.substr(line_start, k - line_start),
                        comment_line, &out);
          ++comment_line;
          line_start = k + 1;
        }
      }
      advance(end - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
        (out.tokens.empty() || out.tokens.back().text != "#")) {
      size_t paren = source.find('(', i + 2);
      if (paren != std::string::npos && paren - i - 2 <= 16) {
        std::string delim = source.substr(i + 2, paren - i - 2);
        std::string closer = ")" + delim + "\"";
        size_t end = source.find(closer, paren + 1);
        if (end == std::string::npos) end = n; else end += closer.size();
        advance(end - i);
        continue;
      }
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      size_t k = i + 1;
      while (k < n && source[k] != c) {
        if (source[k] == '\\' && k + 1 < n) ++k;
        if (source[k] == '\n') break;  // unterminated: stop at end of line
        ++k;
      }
      advance(k < n ? k - i + 1 : n - i);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t k = i;
      while (k < n && IsIdentChar(source[k])) ++k;
      out.tokens.push_back(
          {TokenKind::kIdentifier, source.substr(i, k - i), line});
      advance(k - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // pp-number: digits, idents, dots, exponent signs.
      size_t k = i;
      while (k < n) {
        char d = source[k];
        if (IsIdentChar(d) || d == '.') {
          ++k;
        } else if ((d == '+' || d == '-') && k > i &&
                   (source[k - 1] == 'e' || source[k - 1] == 'E' ||
                    source[k - 1] == 'p' || source[k - 1] == 'P')) {
          ++k;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokenKind::kNumber, source.substr(i, k - i), line});
      advance(k - i);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Punctuation; fuse the two digraphs rule patterns care about.
    if (c == '-' && i + 1 < n && source[i + 1] == '>') {
      out.tokens.push_back({TokenKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      out.tokens.push_back({TokenKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  out.num_lines = line;
  return out;
}

bool IsSuppressed(const LexedFile& file, int line, const std::string& rule) {
  auto it = file.suppressions.find(line);
  if (it == file.suppressions.end()) return false;
  return it->second.all || it->second.rules.count(rule) > 0;
}

}  // namespace lint
}  // namespace tripriv
