// Minimal C++ lexer for tripriv_lint.
//
// The linter does not need a parser: every project invariant it enforces is
// visible at the token level (a banned identifier, a member-call shape, a
// missing preprocessor directive). The lexer therefore produces a flat token
// stream with comments and literals stripped — a banned name inside a string
// or comment is never a finding — while harvesting `NOLINT` markers from the
// comments it discards so rules can honor suppressions.
//
// Handled: line/block comments, string and character literals (with escape
// sequences), raw string literals (R"delim(...)delim"), identifiers,
// pp-numbers, and punctuation. `->` and `::` are fused into single tokens
// because rule patterns match on them; all other punctuation is emitted one
// character at a time.

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tripriv {
namespace lint {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< pp-number (digits, dots, exponent signs)
  kPunct,       ///< single punctuation char, or the fused "->" / "::"
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  ///< 1-based source line
};

/// Suppression state harvested from one line's comments.
struct Suppression {
  bool all = false;             ///< a bare marker silenced every rule
  std::set<std::string> rules;  ///< NOLINT(rule-a, rule-b)
};

/// One NOLINT / NOLINTNEXTLINE occurrence, kept verbatim so rules and the
/// `--list-suppressions` report can audit the markers themselves (a bare
/// marker is a finding; `suppressions` only records the merged effect).
struct NolintMarker {
  int line = 0;                 ///< line the comment sits on
  int target = 0;               ///< line the marker silences
  bool bare = false;            ///< no rule list: every rule silenced
  bool nextline = false;        ///< NOLINTNEXTLINE form
  std::set<std::string> rules;  ///< named rules (empty when bare)
};

/// One lexed translation unit.
struct LexedFile {
  std::vector<Token> tokens;
  /// Line -> suppression. NOLINT applies to its own line, NOLINTNEXTLINE to
  /// the following line; both forms merge if they land on the same line.
  std::map<int, Suppression> suppressions;
  /// Every marker in source order, one entry per NOLINT occurrence.
  std::vector<NolintMarker> markers;
  /// Number of lines in the source (for diagnostics on empty files).
  int num_lines = 0;
};

/// Lexes `source`. Never fails: unrecognized bytes are skipped, unterminated
/// literals consume to end of input.
LexedFile Lex(const std::string& source);

/// True when `rule` is suppressed on `line` of `file`.
bool IsSuppressed(const LexedFile& file, int line, const std::string& rule);

}  // namespace lint
}  // namespace tripriv
