// tripriv_lint CLI.
//
// Usage:
//   tripriv_lint --root DIR            lint DIR/{src,tools,bench,tests}
//   tripriv_lint --root DIR FILE...    lint specific files; each FILE's rule
//                                      scope is its path relative to DIR
//   tripriv_lint --root DIR --list-suppressions
//                                      print every NOLINT marker in the tree
//   tripriv_lint --list-rules          print the rule names and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Diagnostics are
// one per line on stdout: "file:line: [rule] message"; suppressions are
// "file:line: NOLINT(rule-a, rule-b)".

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Run(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  bool list_suppressions = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tripriv_lint: missing value after --root\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : tripriv::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: tripriv_lint --root DIR [FILE...] "
          "[--list-suppressions] | --list-rules\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty()) {
    std::fprintf(stderr,
                 "usage: tripriv_lint --root DIR [FILE...] "
                 "[--list-suppressions] | --list-rules\n");
    return 2;
  }
  if (list_suppressions) {
    std::vector<tripriv::lint::SuppressionEntry> entries;
    std::string error;
    if (!tripriv::lint::ListSuppressions(root, &entries, &error)) {
      std::fprintf(stderr, "tripriv_lint: %s\n", error.c_str());
      return 2;
    }
    for (const auto& entry : entries) {
      std::printf("%s\n", tripriv::lint::FormatSuppression(entry).c_str());
    }
    std::fprintf(stderr, "tripriv_lint: %zu suppression(s)\n", entries.size());
    return 0;
  }

  std::vector<tripriv::lint::Diagnostic> findings;
  std::string error;
  bool ok = true;
  if (files.empty()) {
    ok = tripriv::lint::LintTree(root, &findings, &error);
  } else {
    for (const std::string& file : files) {
      std::error_code ec;
      std::string rel =
          std::filesystem::relative(file, root, ec).generic_string();
      if (ec || rel.empty() || rel.rfind("..", 0) == 0) rel = file;
      if (!tripriv::lint::LintFile(file, rel, &findings, &error)) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    std::fprintf(stderr, "tripriv_lint: %s\n", error.c_str());
    return 2;
  }
  for (const auto& diag : findings) {
    std::printf("%s\n", tripriv::lint::FormatDiagnostic(diag).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "tripriv_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
