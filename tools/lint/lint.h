// tripriv_lint: machine-checked project invariants.
//
// The three privacy dimensions only compose safely if the implementation
// never breaks determinism, leaks record-level values, or silently bypasses
// the reliability layer. Those invariants are enforced here as token-level
// rules over the whole tree (src/, tools/, bench/, tests/):
//
//   no-raw-rng            <random>/<cstdlib> generators outside
//                         src/util/random.* — all randomness must flow
//                         through the seeded, portable Rng so FaultPlan runs
//                         and experiments replay bit-identically.
//   no-wall-clock         system_clock / time() / <ctime> outside bench/ —
//                         protocol time is PartyNetwork's simulated tick
//                         clock, never wall time.
//   no-sensitive-logging  stream/printf emission (and <iostream>/<cstdio>/
//                         <fstream> includes) inside the privacy-library
//                         directories src/sdc, src/smc, src/pir,
//                         src/querydb, src/service — library code returns
//                         data via Status/Result; only callers may print.
//                         src/service handles live query audit trails, so
//                         an ad-hoc print there is a privacy incident, not
//                         a style nit.
//   header-hygiene        every header must open with `#pragma once`
//                         (standalone compilability is enforced separately
//                         by the generated header-check build target).
//   no-channel-bypass     protocol code under src/smc/ must move messages
//                         through MakeChannel()/Channel, never raw
//                         PartyNetwork Send/Receive (only party.* and
//                         reliable_channel.* implement the fabric itself).
//   no-unguarded-shared-mutation
//                         in the parallel-execution scope (src/service and
//                         src/util/thread_pool.*), a blanket `[&]` lambda
//                         that writes a trailing-underscore member without a
//                         visible lock/atomic — work fanned across the
//                         ThreadPool must only write state it owns, or the
//                         determinism contract (thread count changes nothing
//                         but wall-clock) breaks.
//   nolint-requires-rule  a bare `// NOLINT` (no rule list) silences every
//                         rule on its line — including rules added after the
//                         marker was written. Suppressions must name what
//                         they suppress. This rule is not itself
//                         suppressible: a bare NOLINT cannot excuse the rule
//                         that bans bare NOLINTs.
//
// Any finding is suppressible in place with `// NOLINT(rule-name)` or
// `// NOLINTNEXTLINE(rule-name)`, so escapes are explicit, reviewable, and
// greppable — `tripriv_lint --list-suppressions` prints the full inventory.

#pragma once

#include <string>
#include <vector>

#include "lint/lexer.h"

namespace tripriv {
namespace lint {

/// One finding. Formats as "file:line: [rule] message".
struct Diagnostic {
  std::string file;  ///< path as given to the linter (root-relative in walks)
  int line = 0;
  std::string rule;
  std::string message;
};

std::string FormatDiagnostic(const Diagnostic& diag);

/// Names of every rule, in reporting order.
std::vector<std::string> RuleNames();

/// Lints one translation unit. `rel_path` must be '/'-separated and relative
/// to the tree root — rule applicability (e.g. bench/ exemptions) is decided
/// from it. Findings are ordered by line.
std::vector<Diagnostic> LintSource(const std::string& rel_path,
                                   const std::string& contents);

/// Walks `root`/{src,tools,bench,tests} (every *.h and *.cc file, sorted)
/// and lints each file. `error` receives a message and the walk returns
/// false only when `root` is unusable; findings are not errors.
bool LintTree(const std::string& root, std::vector<Diagnostic>* findings,
              std::string* error);

/// Lints one on-disk file. `path` is opened as given; `rel_path` decides
/// rule applicability. Returns false (with `error` set) if unreadable.
bool LintFile(const std::string& path, const std::string& rel_path,
              std::vector<Diagnostic>* findings, std::string* error);

/// One NOLINT marker in the tree, for the `--list-suppressions` inventory.
struct SuppressionEntry {
  std::string file;             ///< root-relative path
  int line = 0;                 ///< line the marker's comment sits on
  int target = 0;               ///< line the marker silences
  bool nextline = false;        ///< NOLINTNEXTLINE form
  std::set<std::string> rules;  ///< named rules (empty for a bare marker)
};

/// Formats as "file:line: NOLINT(rule-a, rule-b)" (or NOLINTNEXTLINE).
std::string FormatSuppression(const SuppressionEntry& entry);

/// Walks the tree like LintTree but collects every NOLINT marker instead of
/// findings, in (file, line) order. Same failure contract as LintTree.
bool ListSuppressions(const std::string& root,
                      std::vector<SuppressionEntry>* entries,
                      std::string* error);

}  // namespace lint
}  // namespace tripriv
