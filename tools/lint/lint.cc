#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace tripriv {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Appends a finding unless a NOLINT marker on that line silences the rule.
void Report(const LexedFile& lexed, const std::string& rel_path, int line,
            const std::string& rule, std::string message,
            std::vector<Diagnostic>* out) {
  if (IsSuppressed(lexed, line, rule)) return;
  out->push_back({rel_path, line, rule, std::move(message)});
}

/// True when token `i` is the header name of an `#include <...>` directive,
/// i.e. preceded by `#` `include` `<`.
bool IsIncludedHeader(const std::vector<Token>& toks, size_t i) {
  return i >= 3 && toks[i - 1].text == "<" && toks[i - 2].text == "include" &&
         toks[i - 3].text == "#";
}

// ---------------------------------------------------------------------------
// no-raw-rng

const std::set<std::string>& RawRngIdentifiers() {
  static const std::set<std::string> kBanned = {
      // <cstdlib> / POSIX
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srand48",
      "random_shuffle",
      // <random> engines and seeding
      "random_device", "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine", "knuth_b", "ranlux24", "ranlux24_base",
      "ranlux48", "ranlux48_base", "seed_seq", "mersenne_twister_engine",
      "linear_congruential_engine", "subtract_with_carry_engine",
      "discard_block_engine", "independent_bits_engine", "shuffle_order_engine",
      // <random> distributions (output is implementation-defined)
      "uniform_int_distribution", "uniform_real_distribution",
      "normal_distribution", "bernoulli_distribution", "poisson_distribution",
      "exponential_distribution", "geometric_distribution",
      "binomial_distribution", "discrete_distribution",
      "cauchy_distribution", "gamma_distribution", "lognormal_distribution",
  };
  return kBanned;
}

void CheckRawRng(const LexedFile& lexed, const std::string& rel_path,
                 std::vector<Diagnostic>* out) {
  if (rel_path == "src/util/random.h" || rel_path == "src/util/random.cc") {
    return;
  }
  const auto& banned = RawRngIdentifiers();
  for (const Token& tok : lexed.tokens) {
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (banned.count(tok.text) == 0) continue;
    Report(lexed, rel_path, tok.line, "no-raw-rng",
           "raw RNG '" + tok.text +
               "' is non-portable or non-deterministic; draw from the seeded "
               "Rng in util/random.h so runs replay bit-identically",
           out);
  }
}

// ---------------------------------------------------------------------------
// no-wall-clock

void CheckWallClock(const LexedFile& lexed, const std::string& rel_path,
                    std::vector<Diagnostic>* out) {
  if (StartsWith(rel_path, "bench/")) return;
  static const std::set<std::string> kBannedIdents = {
      "system_clock",  "steady_clock", "high_resolution_clock", "utc_clock",
      "tai_clock",     "gps_clock",    "file_clock",            "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",             "gmtime",
      "mktime",        "strftime",     "asctime",               "ctime",
      "difftime",      "ftime",
  };
  static const std::set<std::string> kBannedHeaders = {"ctime", "time.h"};
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    const bool banned_header =
        kBannedHeaders.count(tok.text) > 0 && IsIncludedHeader(toks, i);
    // `time(...)` / `clock(...)` as free-function calls (member calls like
    // net.time() are someone else's simulated clock and are fine).
    const bool bare_call =
        (tok.text == "time" || tok.text == "clock") && i + 1 < toks.size() &&
        toks[i + 1].text == "(" &&
        (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"));
    const bool banned_ident =
        kBannedIdents.count(tok.text) > 0 && !IsIncludedHeader(toks, i);
    if (!banned_header && !bare_call && !banned_ident) continue;
    Report(lexed, rel_path, tok.line, "no-wall-clock",
           "wall-clock access '" + tok.text +
               "' outside bench/; protocol and library time must come from "
               "the simulated tick clock (PartyNetwork::now) so runs are "
               "reproducible",
           out);
  }
}

// ---------------------------------------------------------------------------
// no-sensitive-logging

void CheckSensitiveLogging(const LexedFile& lexed, const std::string& rel_path,
                           std::vector<Diagnostic>* out) {
  const bool library_code =
      StartsWith(rel_path, "src/sdc/") || StartsWith(rel_path, "src/smc/") ||
      StartsWith(rel_path, "src/pir/") || StartsWith(rel_path, "src/querydb/") ||
      StartsWith(rel_path, "src/service/") || StartsWith(rel_path, "src/obs/");
  if (!library_code) return;
  static const std::set<std::string> kBannedIdents = {
      "cout", "cerr", "clog", "wcout", "wcerr",  "printf", "fprintf",
      "puts", "fputs", "putchar", "fputc", "vprintf", "vfprintf", "perror",
      "syslog",
  };
  static const std::set<std::string> kBannedHeaders = {
      "iostream", "cstdio", "ostream", "fstream", "print", "syslog.h",
  };
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    const bool banned_header =
        kBannedHeaders.count(tok.text) > 0 && IsIncludedHeader(toks, i);
    const bool banned_ident =
        kBannedIdents.count(tok.text) > 0 && !IsIncludedHeader(toks, i);
    if (!banned_header && !banned_ident) continue;
    Report(lexed, rel_path, tok.line, "no-sensitive-logging",
           "'" + tok.text +
               "' in privacy-library code can emit record-level values; "
               "return data via Status/Result and let the caller decide what "
               "to print",
           out);
  }
}

// ---------------------------------------------------------------------------
// no-sensitive-labels

/// Metric labels, span names, and budget principals are export channels:
/// anything passed to these obs APIs ends up in a Prometheus/JSON dump. The
/// runtime allowlist fails closed on data-shaped strings, but a rendered
/// value that happens to look like an identifier would sail through it —
/// so the lint bans the rendering itself: no ToString/Format-style call may
/// appear inside the argument list of a label-carrying obs API. Labels must
/// be pre-registered constants, never values rendered from live data.
void CheckSensitiveLabels(const LexedFile& lexed, const std::string& rel_path,
                          std::vector<Diagnostic>* out) {
  if (!StartsWith(rel_path, "src/") && !StartsWith(rel_path, "tools/") &&
      !StartsWith(rel_path, "bench/")) {
    return;
  }
  // APIs whose string arguments reach an export channel.
  static const std::set<std::string> kLabelApis = {
      "RegisterCounter",   "RegisterGauge", "RegisterHistogram",
      "AllowLabelValue",   "AllowValue",    "AllowKey",
      "AllowSpanName",     "StartSpan",     "RegisterPrincipal",
      "RecordSpend",
  };
  // Calls that render live data (table values, predicates, query text) into
  // strings — exactly what must never become a label.
  static const std::set<std::string> kRenderers = {
      "to_string", "ToString", "ToDebugString", "Render",
      "Format",    "ToSql",    "ToCsv",         "Fingerprint",
  };
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        kLabelApis.count(toks[i].text) == 0 || toks[i + 1].text != "(") {
      continue;
    }
    size_t depth = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      if (toks[j].kind == TokenKind::kIdentifier &&
          kRenderers.count(toks[j].text) > 0) {
        Report(lexed, rel_path, toks[j].line, "no-sensitive-labels",
               "'" + toks[j].text + "' inside a " + toks[i].text +
                   "(...) call renders live data into a metric label or span "
                   "name; labels must be pre-registered constants, never "
                   "rendered values",
               out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// header-hygiene

void CheckHeaderHygiene(const LexedFile& lexed, const std::string& rel_path,
                        std::vector<Diagnostic>* out) {
  if (!EndsWith(rel_path, ".h")) return;
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "#" && toks[i + 1].text == "pragma" &&
        toks[i + 2].text == "once") {
      return;
    }
  }
  Report(lexed, rel_path, 1, "header-hygiene",
         "header is missing '#pragma once'", out);
}

// ---------------------------------------------------------------------------
// no-channel-bypass

void CheckChannelBypass(const LexedFile& lexed, const std::string& rel_path,
                        std::vector<Diagnostic>* out) {
  if (!StartsWith(rel_path, "src/smc/")) return;
  // The fabric and the reliability layer are the two sanctioned users of the
  // raw network; everything else must go through MakeChannel().
  static const std::set<std::string> kFabricFiles = {
      "src/smc/party.h", "src/smc/party.cc", "src/smc/reliable_channel.h",
      "src/smc/reliable_channel.cc",
  };
  if (kFabricFiles.count(rel_path) > 0) return;
  static const std::set<std::string> kNetNames = {"net", "net_", "network",
                                                  "network_"};
  const auto& toks = lexed.tokens;
  for (size_t i = 2; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokenKind::kIdentifier ||
        (tok.text != "Send" && tok.text != "Receive")) {
      continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Qualified call: PartyNetwork::Send(...).
    if (toks[i - 1].text == "::" && toks[i - 2].text == "PartyNetwork") {
      Report(lexed, rel_path, tok.line, "no-channel-bypass",
             "qualified PartyNetwork::" + tok.text +
                 " bypasses the reliability layer; go through MakeChannel()",
             out);
      continue;
    }
    // Member call on a network-shaped receiver: net->Send, net_.Send, or the
    // accessor form ch->net()->Send.
    if (toks[i - 1].text != "->" && toks[i - 1].text != ".") continue;
    size_t recv = i - 2;  // token before the member-access operator
    if (toks[recv].text == ")" && recv >= 2 && toks[recv - 1].text == "(") {
      recv -= 2;  // receiver is a nullary call: net()
    }
    if (toks[recv].kind == TokenKind::kIdentifier &&
        kNetNames.count(toks[recv].text) > 0) {
      Report(lexed, rel_path, tok.line, "no-channel-bypass",
             "raw PartyNetwork " + tok.text +
                 " on '" + toks[recv].text +
                 "' bypasses the reliability layer; protocol traffic must go "
                 "through MakeChannel()/Channel",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// nolint-requires-rule

/// Bare markers deliberately bypass Report(): a suppression that silences
/// "every rule" must not be able to silence the rule that forbids it, so
/// this check never consults IsSuppressed.
void CheckBareNolint(const LexedFile& lexed, const std::string& rel_path,
                     std::vector<Diagnostic>* out) {
  for (const NolintMarker& marker : lexed.markers) {
    if (!marker.bare && !marker.rules.empty()) continue;
    const char* form = marker.nextline ? "NOLINTNEXTLINE" : "NOLINT";
    out->push_back(
        {rel_path, marker.line, "nolint-requires-rule",
         std::string("bare ") + form +
             " silences every rule, including ones added later; name what "
             "is being suppressed, e.g. " + form + "(rule-name)"});
  }
}

// ---------------------------------------------------------------------------
// no-unguarded-shared-mutation

/// True when the body tokens [begin, end) contain an identifier suggesting
/// the mutation is synchronized (a lock guard, an atomic, or call_once).
bool BodyLooksGuarded(const std::vector<Token>& toks, size_t begin,
                      size_t end) {
  static const std::set<std::string> kGuards = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "atomic",     "atomic_ref",  "call_once",   "mutex",
  };
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind == TokenKind::kIdentifier && kGuards.count(toks[i].text)) {
      return true;
    }
  }
  return false;
}

/// Heuristic race detector for the parallel-execution scope (src/service
/// including the traffic simulator, the epoch-versioned table layer in
/// src/table, the thread pool itself, and the serial-by-design traffic
/// scheduling primitives drr_queue/workload): a blanket by-ref lambda
/// (`[&]` / `[&, ...]`)
/// whose body writes a trailing-underscore member without any visible
/// synchronization is exactly the shape of bug the determinism contract
/// forbids — work handed to ThreadPool::ParallelFor must only write state it
/// owns. Explicit captures are deliberate and stay unflagged; genuine
/// exceptions carry a NOLINT(no-unguarded-shared-mutation).
void CheckUnguardedSharedMutation(const LexedFile& lexed,
                                  const std::string& rel_path,
                                  std::vector<Diagnostic>* out) {
  const bool in_scope = StartsWith(rel_path, "src/service/") ||
                        StartsWith(rel_path, "src/table/") ||
                        StartsWith(rel_path, "src/util/thread_pool.") ||
                        StartsWith(rel_path, "src/util/drr_queue.") ||
                        StartsWith(rel_path, "src/util/workload.");
  if (!in_scope) return;
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    // Blanket by-ref capture: `[` `&` followed by `]` or `,`. (A subscript
    // `a[&x]` has an identifier after the `&` and never matches.)
    if (toks[i].text != "[" || toks[i + 1].text != "&" ||
        (toks[i + 2].text != "]" && toks[i + 2].text != ",")) {
      continue;
    }
    // Find the body: first `{` after the capture list, then its match.
    size_t body_begin = i + 3;
    while (body_begin < toks.size() && toks[body_begin].text != "{") {
      ++body_begin;
    }
    if (body_begin == toks.size()) continue;
    size_t depth = 0;
    size_t body_end = body_begin;
    for (; body_end < toks.size(); ++body_end) {
      if (toks[body_end].text == "{") ++depth;
      if (toks[body_end].text == "}" && --depth == 0) break;
    }
    if (BodyLooksGuarded(toks, body_begin, body_end)) continue;
    for (size_t j = body_begin + 1; j < body_end; ++j) {
      const Token& tok = toks[j];
      if (tok.kind != TokenKind::kIdentifier || tok.text.size() < 2 ||
          tok.text.back() != '_') {
        continue;
      }
      // Plain assignment `x_ =` (not `==`, `<=`, `>=`, `!=`).
      const bool assigned =
          j + 1 < body_end && toks[j + 1].text == "=" &&
          (j + 2 >= toks.size() || toks[j + 2].text != "=") &&
          (j == 0 || (toks[j - 1].text != "=" && toks[j - 1].text != "<" &&
                      toks[j - 1].text != ">" && toks[j - 1].text != "!"));
      // Compound assignment `x_ +=` etc. (operator chars lex one at a time).
      static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                      "%", "&", "|", "^"};
      const bool compound =
          j + 2 < body_end && kCompound.count(toks[j + 1].text) > 0 &&
          toks[j + 2].text == "=" &&
          (j + 3 >= toks.size() || toks[j + 3].text != "=");
      // Increment/decrement on either side: `++x_` / `x_--`.
      auto twin = [&](size_t a, size_t b, const std::string& op) {
        return toks[a].text == op && toks[b].text == op;
      };
      const bool bumped =
          (j + 2 < body_end &&
           (twin(j + 1, j + 2, "+") || twin(j + 1, j + 2, "-"))) ||
          (j >= 2 && j - 1 > body_begin &&
           (twin(j - 2, j - 1, "+") || twin(j - 2, j - 1, "-")));
      if (!assigned && !compound && !bumped) continue;
      Report(lexed, rel_path, tok.line, "no-unguarded-shared-mutation",
             "'" + tok.text +
                 "' is mutated inside a blanket by-ref lambda with no visible "
                 "lock or atomic; parallel work must only write state it owns "
                 "(per-shard or per-index slots) or take a guard",
             out);
    }
  }
}

}  // namespace

std::string FormatDiagnostic(const Diagnostic& diag) {
  std::ostringstream os;
  os << diag.file << ":" << diag.line << ": [" << diag.rule << "] "
     << diag.message;
  return os.str();
}

std::vector<std::string> RuleNames() {
  return {"no-raw-rng",     "no-wall-clock",
          "no-sensitive-logging", "no-sensitive-labels",
          "header-hygiene",       "no-channel-bypass",
          "no-unguarded-shared-mutation", "nolint-requires-rule"};
}

std::vector<Diagnostic> LintSource(const std::string& rel_path,
                                   const std::string& contents) {
  const LexedFile lexed = Lex(contents);
  std::vector<Diagnostic> out;
  CheckRawRng(lexed, rel_path, &out);
  CheckWallClock(lexed, rel_path, &out);
  CheckSensitiveLogging(lexed, rel_path, &out);
  CheckSensitiveLabels(lexed, rel_path, &out);
  CheckHeaderHygiene(lexed, rel_path, &out);
  CheckChannelBypass(lexed, rel_path, &out);
  CheckUnguardedSharedMutation(lexed, rel_path, &out);
  CheckBareNolint(lexed, rel_path, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

bool LintFile(const std::string& path, const std::string& rel_path,
              std::vector<Diagnostic>* findings, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<Diagnostic> found = LintSource(rel_path, buf.str());
  findings->insert(findings->end(), found.begin(), found.end());
  return true;
}

namespace {

/// Collects every *.h / *.cc under `root`/{src,tools,bench,tests}, sorted.
/// Returns false (with `error` set) when nothing lintable is found.
bool CollectTreeFiles(const std::string& root, std::vector<fs::path>* files,
                      std::string* error) {
  static const char* kTopDirs[] = {"src", "tools", "bench", "tests"};
  for (const char* top : kTopDirs) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files->push_back(it->path());
    }
  }
  if (files->empty()) {
    if (error != nullptr) {
      *error = "no .h/.cc files under " + root +
               "/{src,tools,bench,tests} - wrong --root?";
    }
    return false;
  }
  std::sort(files->begin(), files->end());
  return true;
}

}  // namespace

bool LintTree(const std::string& root, std::vector<Diagnostic>* findings,
              std::string* error) {
  std::vector<fs::path> files;
  if (!CollectTreeFiles(root, &files, error)) return false;
  for (const fs::path& path : files) {
    const std::string rel =
        fs::relative(path, root).generic_string();
    if (!LintFile(path.string(), rel, findings, error)) return false;
  }
  return true;
}

std::string FormatSuppression(const SuppressionEntry& entry) {
  std::ostringstream os;
  os << entry.file << ":" << entry.line << ": "
     << (entry.nextline ? "NOLINTNEXTLINE" : "NOLINT") << "(";
  bool first = true;
  for (const std::string& rule : entry.rules) {
    if (!first) os << ", ";
    os << rule;
    first = false;
  }
  os << ")";
  return os.str();
}

bool ListSuppressions(const std::string& root,
                      std::vector<SuppressionEntry>* entries,
                      std::string* error) {
  std::vector<fs::path> files;
  if (!CollectTreeFiles(root, &files, error)) return false;
  for (const fs::path& path : files) {
    const std::string rel = fs::relative(path, root).generic_string();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + path.string();
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const LexedFile lexed = Lex(buf.str());
    for (const NolintMarker& marker : lexed.markers) {
      entries->push_back(
          {rel, marker.line, marker.target, marker.nextline, marker.rules});
    }
  }
  return true;
}

}  // namespace lint
}  // namespace tripriv
