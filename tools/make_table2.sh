#!/usr/bin/env bash
# Renders the empirical Table 2 (the measured scoreboard of
# src/attack/scoreboard.h) and proves its thread-invariance contract:
#
#   1. Determinism cross-check — runs tripriv_table2 at 0, 1, 2, and 8
#      worker threads on the same config and diffs the text AND JSON
#      renders byte-for-byte. Any drift is a violation of the
#      serial-draw -> parallel-pure -> serial-merge discipline and fails
#      the script.
#   2. Flagship run — one census-scale run (10^6 rows by default) whose
#      JSON is the CI artifact tracking measured grades across PRs.
#
# The cross-check uses a smaller row count than the flagship run so the
# four-way sweep stays CI-cheap; the determinism suite under ctest -L
# attack covers the same contract at unit scale, and the flagship config
# differs from the cross-check only in `rows`.
#
# Usage: tools/make_table2.sh [build-dir] [out.json] [rows] [det-rows]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-table2.json}"
ROWS="${3:-1000000}"
DET_ROWS="${4:-100000}"

BIN="${BUILD_DIR}/tools/tripriv_table2"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

echo "== determinism cross-check @ ${DET_ROWS} rows (threads 0/1/2/8) =="
for t in 0 1 2 8; do
  "${BIN}" --rows "${DET_ROWS}" --threads "${t}" \
    --json "${TMP}/t${t}.json" > "${TMP}/t${t}.txt"
done
for t in 1 2 8; do
  diff -q "${TMP}/t0.txt" "${TMP}/t${t}.txt" > /dev/null || {
    echo "FAIL: text render differs between 0 and ${t} threads" >&2
    diff "${TMP}/t0.txt" "${TMP}/t${t}.txt" >&2 || true
    exit 1
  }
  diff -q "${TMP}/t0.json" "${TMP}/t${t}.json" > /dev/null || {
    echo "FAIL: JSON render differs between 0 and ${t} threads" >&2
    exit 1
  }
done
echo "byte-identical at 0/1/2/8 threads"

echo
echo "== empirical Table 2 @ ${ROWS} rows =="
"${BIN}" --rows "${ROWS}" --threads 8 --json "${OUT}"
echo "wrote ${OUT}"
