// tripriv_table2: renders the empirical Table 2 scoreboard.
//
// Usage:
//   tripriv_table2 [--rows N] [--seed S] [--threads T] [--json OUT.json]
//
// Deploys every technology class of src/attack/scoreboard.h on a synthetic
// census table, runs the full attack battery, and prints the measured
// scoreboard (grades, protection scores, paper agreement) to stdout. With
// --json the deterministic JSON document is also written to OUT.json — the
// CI artifact. --threads 0 runs serially; any thread count produces
// byte-identical output (tools/make_table2.sh asserts this).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "attack/scoreboard.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

int Main(int argc, char** argv) {
  attack::EmpiricalTable2Config config;
  size_t threads = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rows") {
      config.rows = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: tripriv_table2 [--rows N] [--seed S] "
                   "[--threads T] [--json OUT.json]\n");
      return 2;
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  attack::AttackContext ctx;
  ctx.pool = pool.get();

  auto board = attack::RunEmpiricalTable2(config, ctx);
  if (!board.ok()) {
    std::fprintf(stderr, "scoreboard failed: %s\n",
                 board.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", board->RenderText().c_str());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    const std::string json = board->RenderJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace tripriv

int main(int argc, char** argv) { return tripriv::Main(argc, argv); }
