#!/usr/bin/env bash
# Builds one perf-trajectory snapshot (BENCH_prN.json) out of the
# serving-path benches: google-benchmark JSON from bench_parallel_throughput
# and bench_epoch_flip, merged with the parsed bench_obs_overhead report,
# the per-mix verdicts of the bench_traffic_slo gate, the upload / compute
# rows of the bench_recursive_pir gate, and the collusion / k-anonymity
# verdicts of the bench_attack_suite gate.
#
# Usage: tools/make_bench_trajectory.sh [build-dir] [out.json] [min-time]
#
# The snapshot is the CI artifact that tracks the write path (epoch flips,
# incremental vs full recluster), the read path (batch PIR at several
# thread counts), and the observability tax across PRs. Context noise that
# changes per run (dates, load averages) is stripped so diffs between
# trajectory files show perf movement, not wall-clock trivia.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_pr10.json}"
MIN_TIME="${3:-0.05}"

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

"${BUILD_DIR}/bench/bench_parallel_throughput" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/parallel.json"
"${BUILD_DIR}/bench/bench_epoch_flip" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/epoch.json"
# The obs bench exits nonzero above its 5% budget; the trajectory records
# the number either way (CI gates on the bench's own exit code separately).
"${BUILD_DIR}/bench/bench_obs_overhead" > "${TMP}/obs.txt" || true
# Same contract for the traffic SLO gate: record per-mix quantiles and
# verdicts regardless of the exit code CI gates on.
"${BUILD_DIR}/bench/bench_traffic_slo" > "${TMP}/traffic.txt" || true
# And for the recursive-PIR gate: upload ratios are deterministic; the
# compute ratio is min-of-trials timing, recorded for cross-PR comparison.
"${BUILD_DIR}/bench/bench_recursive_pir" > "${TMP}/recursive_pir.txt" || true
# The adversary-harness gate runs at 10^5 rows here (the trajectory tracks
# the deterministic verdicts and margins; the dedicated CI step runs the
# full 10^6-row gate and fails the leg on its own exit code).
"${BUILD_DIR}/bench/bench_attack_suite" 100000 > "${TMP}/attack.txt" || true

python3 - "${TMP}" "${OUT}" <<'PY'
import json
import re
import sys

tmp, out = sys.argv[1], sys.argv[2]

def load_suite(path):
    with open(path) as f:
        doc = json.load(f)
    ctx = doc.get("context", {})
    rows = []
    for b in doc.get("benchmarks", []):
        row = {
            "name": b["name"],
            "real_time": round(b["real_time"], 4),
            "cpu_time": round(b["cpu_time"], 4),
            "time_unit": b["time_unit"],
        }
        if "items_per_second" in b:
            row["items_per_second"] = round(b["items_per_second"], 2)
        for key in ("threads", "batch", "rows", "dirty", "reclustered"):
            if key in b:
                row[key] = b[key]
        rows.append(row)
    return {
        "context": {
            "num_cpus": ctx.get("num_cpus"),
            "library_build_type": ctx.get("library_build_type"),
        },
        "benchmarks": rows,
    }

def parse_obs(path):
    with open(path) as f:
        text = f.read()
    def grab(pattern):
        m = re.search(pattern, text)
        return float(m.group(1)) if m else None
    return {
        "baseline_ms": grab(r"baseline\s+\(no instruments\):\s+([0-9.]+) ms"),
        "instrumented_ms": grab(
            r"instrumented\s+\(bundle attached\):\s+([0-9.]+) ms"),
        "overhead_percent": grab(r"overhead:\s+([+-][0-9.]+) %"),
        "budget_percent": 5.0,
    }

def parse_traffic(path):
    # The simulator is deterministic, so everything here (arrival counts,
    # digests, quantiles, verdicts) is a stable fingerprint, not a timing.
    with open(path) as f:
        text = f.read()
    mixes = {}
    current = None
    for line in text.splitlines():
        m = re.match(r"\[(\w+)\] .*?([0-9]+) arrivals, digest ([0-9a-f]+)", line)
        if m:
            current = {
                "arrivals": int(m.group(2)),
                "digest": m.group(3),
                "classes": {},
            }
            mixes[m.group(1)] = current
            continue
        if current is None:
            continue
        m = re.match(r"\s*bounded harm: (\w+)", line)
        if m:
            current["bounded_harm"] = m.group(1) == "PASS"
            continue
        m = re.match(r"\s*slo gate: (\w+)", line)
        if m:
            current["slo_pass"] = m.group(1) == "PASS"
            continue
        m = re.match(r"(\w+)\s+([0-9]+)\s+([0-9]+)\s+([0-9]+)\s+(ok|VIOLATED)",
                     line)
        if m:
            current["classes"][m.group(1)] = {
                "count": int(m.group(2)),
                "p50_ticks": int(m.group(3)),
                "p99_ticks": int(m.group(4)),
                "pass": m.group(5) == "ok",
            }
    overall = re.search(r"overall: (\w+)", text)
    return {
        "overall_pass": bool(overall) and overall.group(1) == "PASS",
        "mixes": mixes,
    }

def parse_recursive_pir(path):
    # Upload bits and ratios are exact (geometry arithmetic); server_ms and
    # compute_vs_flat are min-of-trials timings that move with hardware.
    with open(path) as f:
        text = f.read()
    tables = {}
    current = None
    for line in text.splitlines():
        m = re.match(r"\[n=([0-9]+)\]", line)
        if m:
            current = {"schemes": []}
            tables[m.group(1)] = current
            continue
        if current is None:
            continue
        m = re.match(
            r"\s*(flat|recursive) d=([0-9]+) side=([0-9]+) servers=([0-9]+) "
            r"upload_bits=([0-9]+)(?: upload_vs_flat=([0-9.]+)%)? "
            r"server_ms=([0-9.]+)(?: compute_vs_flat=([0-9.]+)x)?",
            line)
        if m:
            row = {
                "scheme": m.group(1),
                "d": int(m.group(2)),
                "side": int(m.group(3)),
                "servers": int(m.group(4)),
                "upload_bits": int(m.group(5)),
                "server_ms": float(m.group(7)),
            }
            if m.group(6) is not None:
                row["upload_vs_flat_percent"] = float(m.group(6))
            if m.group(8) is not None:
                row["compute_vs_flat"] = float(m.group(8))
            current["schemes"].append(row)
    gates = {}
    for m in re.finditer(
            r"gate: (upload|compute)\s+d=([0-9]+) @ n=([0-9]+): "
            r"([0-9.]+)[%x].*?: (\w+)", text):
        gates[f"{m.group(1)}_d{m.group(2)}"] = {
            "n": int(m.group(3)),
            "value": float(m.group(4)),
            "pass": m.group(5) == "PASS",
        }
    overall = re.search(r"overall: (\w+)", text)
    return {
        "overall_pass": bool(overall) and overall.group(1) == "PASS",
        "tables": tables,
        "gates": gates,
    }

def parse_attack(path):
    # Every attack is deterministic in (config, seed), so the success rates
    # and margins here are exact fingerprints of decoder and anonymizer
    # behavior, not statistics.
    with open(path) as f:
        text = f.read()
    rows = re.search(r"attack suite gate @ ([0-9]+) census rows", text)
    fingerprint = {}
    for m in re.finditer(
            r"gate: fingerprint flip=([0-9.]+) attacker_success=([0-9.]+) "
            r"\(([0-9]+) trials, must be 0\): (\w+)", text):
        fingerprint[f"flip_{m.group(1)}"] = {
            "attacker_success": float(m.group(2)),
            "trials": int(m.group(3)),
            "pass": m.group(4) == "PASS",
        }
    linkage = None
    m = re.search(
        r"gate: linkage success=([0-9.]+) \(bound 1/k = ([0-9.]+)\): (\w+)",
        text)
    if m:
        linkage = {
            "success": float(m.group(1)),
            "bound": float(m.group(2)),
            "pass": m.group(3) == "PASS",
        }
    overall = re.search(r"overall: (\w+)", text)
    return {
        "overall_pass": bool(overall) and overall.group(1) == "PASS",
        "rows": int(rows.group(1)) if rows else None,
        "fingerprint": fingerprint,
        "linkage": linkage,
    }

trajectory = {
    "schema": "tripriv-bench-trajectory/1",
    "suites": {
        "bench_parallel_throughput": load_suite(f"{tmp}/parallel.json"),
        "bench_epoch_flip": load_suite(f"{tmp}/epoch.json"),
        "bench_obs_overhead": parse_obs(f"{tmp}/obs.txt"),
        "bench_traffic_slo": parse_traffic(f"{tmp}/traffic.txt"),
        "bench_recursive_pir": parse_recursive_pir(f"{tmp}/recursive_pir.txt"),
        "bench_attack_suite": parse_attack(f"{tmp}/attack.txt"),
    },
}
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out}")
PY
