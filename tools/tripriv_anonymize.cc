// tripriv_anonymize: command-line anonymization of CSV microdata.
//
// Usage:
//   tripriv_anonymize --input data.csv --output masked.csv
//       --qi age,zip --confidential diagnosis
//       --method mdav --k 5 [--seed 7] [--quiet]
//
// Methods: mdav (microaggregation), mondrian, condense (synthetic groups),
// noise (correlated, alpha = 0.5), rankswap (window 5%), datafly and
// samarati (suppression-hierarchy recoding).
//
// Prints a risk/utility report (k-anonymity level, record-linkage risk,
// homogeneity attack rate, information loss) unless --quiet. With
// --metrics, also dumps a privacy-safe observability snapshot (metrics
// registry JSON + trace JSON) to stdout — labels carry only the method
// name, never column names or record values.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdc/anonymity.h"
#include "sdc/condensation.h"
#include "sdc/diversity.h"
#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "sdc/mondrian.h"
#include "sdc/noise.h"
#include "sdc/rank_swap.h"
#include "sdc/recoding.h"
#include "sdc/risk.h"
#include "table/io.h"
#include "util/string_util.h"

namespace tripriv {
namespace {

struct CliOptions {
  std::string input;
  std::string output;
  std::vector<std::string> qi;
  std::vector<std::string> confidential;
  std::string method = "mdav";
  size_t k = 5;
  uint64_t seed = 1;
  bool quiet = false;
  bool metrics = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: tripriv_anonymize --input IN.csv --output OUT.csv\n"
               "         --qi col1,col2[,...] [--confidential colA[,...]]\n"
               "         [--method mdav|mondrian|condense|noise|rankswap|"
               "datafly|samarati]\n"
               "         [--k K] [--seed N] [--quiet] [--metrics]\n");
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value after " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--input") {
      TRIPRIV_ASSIGN_OR_RETURN(options.input, next());
    } else if (arg == "--output") {
      TRIPRIV_ASSIGN_OR_RETURN(options.output, next());
    } else if (arg == "--qi") {
      TRIPRIV_ASSIGN_OR_RETURN(auto v, next());
      options.qi = Split(v, ',');
    } else if (arg == "--confidential") {
      TRIPRIV_ASSIGN_OR_RETURN(auto v, next());
      options.confidential = Split(v, ',');
    } else if (arg == "--method") {
      TRIPRIV_ASSIGN_OR_RETURN(options.method, next());
    } else if (arg == "--k") {
      TRIPRIV_ASSIGN_OR_RETURN(auto v, next());
      int64_t k = 0;
      if (!ParseInt64(v, &k) || k < 1) {
        return Status::InvalidArgument("--k needs a positive integer");
      }
      options.k = static_cast<size_t>(k);
    } else if (arg == "--seed") {
      TRIPRIV_ASSIGN_OR_RETURN(auto v, next());
      int64_t s = 0;
      if (!ParseInt64(v, &s)) {
        return Status::InvalidArgument("--seed needs an integer");
      }
      options.seed = static_cast<uint64_t>(s);
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else {
      return Status::InvalidArgument("unknown flag " + arg);
    }
  }
  if (options.input.empty() || options.output.empty() || options.qi.empty()) {
    return Status::InvalidArgument("--input, --output and --qi are required");
  }
  return options;
}

/// Re-types the inferred schema with the requested privacy roles.
Result<DataTable> AssignRoles(const DataTable& table, const CliOptions& opts) {
  std::vector<Attribute> attrs = table.schema().attributes();
  auto find = [&](const std::string& name) -> Result<size_t> {
    for (size_t c = 0; c < attrs.size(); ++c) {
      if (attrs[c].name == name) return c;
    }
    return Status::NotFound("no column named '" + name + "' in the input");
  };
  for (const auto& name : opts.qi) {
    TRIPRIV_ASSIGN_OR_RETURN(size_t c, find(name));
    attrs[c].role = AttributeRole::kQuasiIdentifier;
  }
  for (const auto& name : opts.confidential) {
    TRIPRIV_ASSIGN_OR_RETURN(size_t c, find(name));
    attrs[c].role = AttributeRole::kConfidential;
  }
  DataTable out{Schema(attrs)};
  for (size_t r = 0; r < table.num_rows(); ++r) {
    TRIPRIV_RETURN_IF_ERROR(out.AppendRow(table.row(r)));
  }
  return out;
}

Result<DataTable> RunMethod(const DataTable& data, const CliOptions& opts) {
  const auto qi = data.schema().QuasiIdentifierIndices();
  if (opts.method == "mdav") {
    TRIPRIV_ASSIGN_OR_RETURN(auto r, MdavMicroaggregate(data, opts.k));
    return r.table;
  }
  if (opts.method == "mondrian") {
    TRIPRIV_ASSIGN_OR_RETURN(auto r, MondrianAnonymize(data, opts.k));
    return r.table;
  }
  if (opts.method == "condense") {
    TRIPRIV_ASSIGN_OR_RETURN(auto r, Condense(data, opts.k, opts.seed));
    return r.table;
  }
  if (opts.method == "noise") {
    return AddCorrelatedNoise(data, 0.5, qi, opts.seed);
  }
  if (opts.method == "rankswap") {
    return RankSwap(data, 5.0, qi, opts.seed);
  }
  if (opts.method == "datafly" || opts.method == "samarati") {
    RecodingConfig config;
    config.k = opts.k;
    config.max_suppression_fraction = 0.05;
    // Numeric QIs get interval hierarchies sized from their range.
    for (size_t c : qi) {
      const Attribute& attr = data.schema().attribute(c);
      if (attr.type == AttributeType::kCategorical) continue;
      auto col = data.NumericColumn(c);
      if (!col.ok() || col->empty()) continue;
      double lo = (*col)[0];
      double hi = lo;
      for (double v : *col) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      const double width = std::max(1.0, (hi - lo) / 16.0);
      config.hierarchies[attr.name] =
          std::make_shared<NumericIntervalHierarchy>(lo, width, 2, 4);
    }
    if (opts.method == "datafly") {
      TRIPRIV_ASSIGN_OR_RETURN(auto r, DataflyAnonymize(data, config));
      return r.table;
    }
    TRIPRIV_ASSIGN_OR_RETURN(auto r, SamaratiAnonymize(data, config));
    return r.table;
  }
  return Status::InvalidArgument("unknown method '" + opts.method + "'");
}

void PrintReport(const DataTable& original, const DataTable& masked) {
  std::printf("rows: %zu -> %zu\n", original.num_rows(), masked.num_rows());
  std::printf("k-anonymity level: %zu -> %zu\n", AnonymityLevel(original),
              AnonymityLevel(masked));
  if (original.num_rows() == masked.num_rows()) {
    if (auto linkage = DistanceLinkageAttack(original, masked); linkage.ok()) {
      std::printf("record-linkage risk: %.1f%%\n",
                  100.0 * linkage->correct_fraction);
    }
    if (auto loss = MeasureInformationLoss(original, masked); loss.ok()) {
      std::printf("information loss: IL1s=%.3f, corr dev=%.3f\n", loss->il1s,
                  loss->corr_deviation);
    }
  }
  const auto qi = masked.schema().QuasiIdentifierIndices();
  for (size_t conf : masked.schema().ConfidentialIndices()) {
    std::printf("homogeneity attack on '%s': %.1f%% of records exposed\n",
                masked.schema().attribute(conf).name.c_str(),
                100.0 * HomogeneityAttackRate(masked, qi, conf));
  }
}

/// Instruments one anonymization run and dumps the registry + trace JSON to
/// stdout. Every label is a method name from the built-in allowlist; row
/// counts and k-levels travel as numeric values — nothing data-shaped can
/// reach the dump, and an unknown method name would fail registration
/// closed rather than export.
void DumpMetrics(const CliOptions& opts, const DataTable& original,
                 const DataTable& masked) {
  obs::MetricsRegistry registry;
  const obs::LabelSet by_method = {{"method", opts.method}};
  auto runs = registry.RegisterCounter("tripriv_anonymize_runs_total",
                                       "Anonymization runs", by_method);
  auto rows_in = registry.RegisterCounter("tripriv_anonymize_rows_in_total",
                                          "Input rows", by_method);
  auto rows_out = registry.RegisterCounter("tripriv_anonymize_rows_out_total",
                                           "Output rows", by_method);
  auto k_target = registry.RegisterGauge("tripriv_anonymize_k_target",
                                         "Requested k", by_method);
  auto k_in = registry.RegisterGauge("tripriv_anonymize_k_level_in",
                                     "k-anonymity level of the input");
  auto k_out = registry.RegisterGauge("tripriv_anonymize_k_level_out",
                                      "k-anonymity level of the output");
  if (!runs.ok() || !rows_in.ok() || !rows_out.ok() || !k_target.ok() ||
      !k_in.ok() || !k_out.ok()) {
    std::fprintf(stderr, "warning: --metrics registration failed closed: %s\n",
                 runs.ok() ? "label rejected" : runs.status().message().c_str());
    return;
  }
  (*runs)->Increment();
  (*rows_in)->Add(original.num_rows());
  (*rows_out)->Add(masked.num_rows());
  (*k_target)->Set(static_cast<double>(opts.k));
  (*k_in)->Set(static_cast<double>(AnonymityLevel(original)));
  (*k_out)->Set(static_cast<double>(AnonymityLevel(masked)));

  // One span per run, on a deterministic tick model (1 tick per input row):
  // the trace shows work shape, never wall time, so dumps are replayable.
  SimClock clock;
  obs::TraceRecorder trace(&clock);
  const uint64_t span = trace.StartSpan("anonymize");
  clock.Advance(original.num_rows());
  trace.EndSpan(span);

  std::printf("%s\n", obs::ToJson(registry.Snapshot()).c_str());
  std::printf("%s\n", obs::TraceToJson(trace).c_str());
}

int Main(int argc, char** argv) {
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "error: %s\n", options.status().message().c_str());
    PrintUsage();
    return 2;
  }
  auto csv = ReadFile(options->input);
  if (!csv.ok()) {
    std::fprintf(stderr, "error: %s\n", csv.status().ToString().c_str());
    return 1;
  }
  auto inferred = TableFromCsvInferred(*csv);
  if (!inferred.ok()) {
    std::fprintf(stderr, "error: %s\n", inferred.status().ToString().c_str());
    return 1;
  }
  auto data = AssignRoles(*inferred, *options);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto masked = RunMethod(*data, *options);
  if (!masked.ok()) {
    std::fprintf(stderr, "error: %s\n", masked.status().ToString().c_str());
    return 1;
  }
  if (auto st = WriteFile(options->output, TableToCsv(*masked)); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!options->quiet) {
    std::printf("method: %s (k=%zu)\n", options->method.c_str(), options->k);
    PrintReport(*data, *masked);
    std::printf("wrote %s\n", options->output.c_str());
  }
  if (options->metrics) DumpMetrics(*options, *data, *masked);
  return 0;
}

}  // namespace
}  // namespace tripriv

int main(int argc, char** argv) { return tripriv::Main(argc, argv); }
