// tripriv_taint CLI.
//
// Usage:
//   tripriv_taint --root DIR            analyze DIR/src (or DIR itself when
//                                       it has no src/ — fixture corpora)
//   tripriv_taint --root DIR FILE...    analyze specific files as one program
//   tripriv_taint --json                emit the JSON report on stdout
//   tripriv_taint --sarif PATH          also write a SARIF 2.1.0 log to PATH
//   tripriv_taint --stats               print symbol-table/fixpoint stats
//   tripriv_taint --list-rules          print the rule names and exit
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Default output is
// one diagnostic per line on stdout: "file:line: [rule] message".

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "taint/analyzer.h"
#include "taint/output.h"

namespace {

int Run(int argc, char** argv) {
  std::string root;
  std::string sarif_path;
  bool json = false;
  bool stats = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tripriv_taint: missing value after --root\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tripriv_taint: missing value after --sarif\n");
        return 2;
      }
      sarif_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--list-rules") {
      for (const std::string& rule : tripriv::taint::TaintRuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: tripriv_taint --root DIR [FILE...] [--json] [--sarif PATH] "
          "[--stats] | --list-rules\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty()) {
    std::fprintf(stderr,
                 "usage: tripriv_taint --root DIR [FILE...] [--json] "
                 "[--sarif PATH] [--stats] | --list-rules\n");
    return 2;
  }

  tripriv::taint::AnalysisResult result;
  std::string error;
  const bool ok =
      files.empty()
          ? tripriv::taint::AnalyzeTree(root, &result, &error)
          : tripriv::taint::AnalyzePaths(root, files, &result, &error);
  if (!ok) {
    std::fprintf(stderr, "tripriv_taint: %s\n", error.c_str());
    return 2;
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "tripriv_taint: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << tripriv::taint::ToSarif(result) << "\n";
  }

  if (json) {
    std::printf("%s\n", tripriv::taint::ToJson(result).c_str());
  } else {
    for (const auto& diag : result.diagnostics) {
      std::printf("%s\n", tripriv::lint::FormatDiagnostic(diag).c_str());
    }
  }
  if (stats) {
    std::fprintf(stderr,
                 "tripriv_taint: %zu files, %zu functions, %zu sources, "
                 "%zu sanitizers, %zu sinks (+%zu derived), "
                 "fixpoint in %zu iteration(s)\n",
                 result.stats.files, result.stats.functions,
                 result.stats.sources, result.stats.sanitizers,
                 result.stats.sinks, result.stats.derived_sinks,
                 result.stats.iterations);
  }
  if (!result.diagnostics.empty()) {
    std::fprintf(stderr, "tripriv_taint: %zu finding(s)\n",
                 result.diagnostics.size());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
