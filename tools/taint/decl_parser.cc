#include "taint/decl_parser.h"

#include <cstddef>

namespace tripriv {
namespace taint {
namespace {

using lint::Token;
using lint::TokenKind;

/// Keywords that look like `name(...)` but are never function declarations.
const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kSet = {
      "if",      "for",     "while",        "switch",      "return",
      "sizeof",  "alignof", "alignas",      "decltype",    "noexcept",
      "catch",   "throw",   "new",          "delete",      "static_assert",
      "defined", "assert",  "co_return",    "co_await",    "requires",
  };
  return kSet;
}

/// Type-ish tokens that must not be mistaken for a parameter name when the
/// parameter is unnamed in a declaration.
const std::set<std::string>& TypeishTokens() {
  static const std::set<std::string> kSet = {
      "int",    "char",   "bool",     "double",   "float",   "long",
      "short",  "signed", "unsigned", "void",     "auto",    "const",
      "size_t", "int8_t", "int16_t",  "int32_t",  "int64_t", "uint8_t",
      "uint16_t", "uint32_t", "uint64_t", "string", "vector", "T",
  };
  return kSet;
}

/// A token that, immediately before an identifier, marks the identifier as
/// part of an expression rather than a declaration.
const std::set<std::string>& ExprContextTokens() {
  static const std::set<std::string> kSet = {
      "=", "(", ",", "+", "-", "/", "%", "!", "?", "|", "^", ".", "->",
  };
  return kSet;
}

Sensitivity LevelFromName(const std::string& name) {
  if (name == "record") return Sensitivity::kRecord;
  if (name == "aggregate") return Sensitivity::kAggregate;
  return Sensitivity::kClean;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kOther };
  Kind kind = Kind::kOther;
  std::string name;
};

class Parser {
 public:
  Parser(const std::string& rel_path, const std::string& contents) {
    out_.path = rel_path;
    out_.lexed = lint::Lex(contents);
  }

  ParsedFile Run() {
    const auto& toks = out_.lexed.tokens;
    const size_t n = toks.size();
    size_t i = 0;
    size_t stmt_start = 0;
    while (i < n) {
      const Token& tok = toks[i];
      if (tok.text == "#") {
        i = SkipDirective(i);
        stmt_start = i;
        continue;
      }
      if (tok.kind == TokenKind::kIdentifier) {
        if (IsAnnotationMacro(tok.text) && i + 1 < n &&
            toks[i + 1].text == "(") {
          i = ParseAnnotation(i);
          stmt_start = i;
          continue;
        }
        if (tok.text == "namespace") {
          i = ParseNamespace(i);
          stmt_start = i;
          continue;
        }
        if ((tok.text == "class" || tok.text == "struct") &&
            (i == 0 || toks[i - 1].text != "enum")) {
          i = ParseClassHead(i);
          stmt_start = i;
          continue;
        }
        if (tok.text == "enum") {
          i = SkipEnum(i);
          stmt_start = i;
          continue;
        }
        if (tok.text == "using" || tok.text == "typedef" ||
            tok.text == "friend") {
          i = SkipToSemicolon(i);
          stmt_start = i;
          continue;
        }
        if (tok.text == "template") {
          i = SkipTemplateHead(i);
          continue;  // the declaration itself follows
        }
        if (tok.text == "operator") {
          i = ParseOperator(i);
          stmt_start = i;
          continue;
        }
        if (DeclScope() && i + 1 < n && toks[i + 1].text == "(" &&
            CallKeywords().count(tok.text) == 0 &&
            (i == 0 || ExprContextTokens().count(toks[i - 1].text) == 0)) {
          size_t next = ParseFunction(i);
          if (next != i) {
            i = next;
            stmt_start = i;
            continue;
          }
        }
      }
      if (tok.text == "{") {
        scopes_.push_back({Scope::Kind::kOther, ""});
        ++i;
        stmt_start = i;
        continue;
      }
      if (tok.text == "}") {
        if (!scopes_.empty()) scopes_.pop_back();
        ++i;
        stmt_start = i;
        continue;
      }
      if (tok.text == ";") {
        HandleStatement(stmt_start, i);
        ++i;
        stmt_start = i;
        continue;
      }
      ++i;
    }
    return std::move(out_);
  }

 private:
  const std::vector<Token>& Toks() const { return out_.lexed.tokens; }

  static bool IsAnnotationMacro(const std::string& s) {
    return s == "TRIPRIV_SENSITIVE" || s == "TRIPRIV_SANITIZES" ||
           s == "TRIPRIV_SINK";
  }

  /// True when declarations may appear in the current scope.
  bool DeclScope() const {
    return scopes_.empty() || scopes_.back().kind != Scope::Kind::kOther;
  }

  bool InClass() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::Kind::kClass;
  }

  std::string CurrentClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
    }
    return "";
  }

  /// Skips a preprocessor directive starting at the `#` token, honoring
  /// backslash line continuations (so function-like macro definitions never
  /// reach the declaration matcher).
  size_t SkipDirective(size_t i) {
    const auto& toks = Toks();
    int line = toks[i].line;
    size_t j = i;
    while (j < toks.size()) {
      if (toks[j].line > line) {
        // Continued only if the previous line ended with a backslash.
        if (j > 0 && toks[j - 1].text == "\\") {
          line = toks[j].line;
        } else {
          break;
        }
      }
      ++j;
    }
    return j;
  }

  /// Returns the index just past the `)` matching the `(` at `open`.
  size_t MatchParen(size_t open) const {
    const auto& toks = Toks();
    size_t depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) return j + 1;
    }
    return toks.size();
  }

  /// Returns the index just past the `}` matching the `{` at `open`.
  size_t MatchBrace(size_t open) const {
    const auto& toks = Toks();
    size_t depth = 0;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) return j + 1;
    }
    return toks.size();
  }

  /// Parses `TRIPRIV_X(arg, ...)` into pending_, returning the index past
  /// the closing paren.
  size_t ParseAnnotation(size_t i) {
    const auto& toks = Toks();
    const std::string& macro = toks[i].text;
    size_t close = MatchParen(i + 1);
    std::vector<std::string> args;
    for (size_t j = i + 2; j + 1 < close; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier) args.push_back(toks[j].text);
    }
    Annotation ann;
    if (macro == "TRIPRIV_SENSITIVE") {
      ann.kind = Annotation::Kind::kSensitive;
      ann.level = args.empty() ? Sensitivity::kRecord : LevelFromName(args[0]);
    } else if (macro == "TRIPRIV_SANITIZES") {
      ann.kind = Annotation::Kind::kSanitizes;
      ann.level =
          args.empty() ? Sensitivity::kAggregate : LevelFromName(args[0]);
      for (size_t k = 1; k < args.size(); ++k) {
        if (args[k] == "digest") ann.digest = true;
      }
    } else {
      ann.kind = Annotation::Kind::kSink;
      ann.channel = args.empty() ? "unknown" : args[0];
    }
    pending_ = ann;
    return close;
  }

  size_t ParseNamespace(size_t i) {
    const auto& toks = Toks();
    size_t j = i + 1;
    std::string name;
    while (j < toks.size() && (toks[j].kind == TokenKind::kIdentifier ||
                               toks[j].text == "::")) {
      name += toks[j].text;
      ++j;
    }
    if (j < toks.size() && toks[j].text == "{") {
      scopes_.push_back({Scope::Kind::kNamespace, name});
      return j + 1;
    }
    return j;  // namespace alias or malformed; let the main loop continue
  }

  /// Parses `class/struct [attrs] Name [: bases] {` or a forward
  /// declaration, pushing a class scope when a body opens.
  size_t ParseClassHead(size_t i) {
    const auto& toks = Toks();
    std::string name;
    size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "{" || t == ";") break;
      // A single ':' (the lexer fuses '::') starts the base clause.
      if (t == ":") {
        while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
          ++j;
        }
        break;
      }
      if (toks[j].kind == TokenKind::kIdentifier) name = t;
    }
    if (j < toks.size() && toks[j].text == "{") {
      scopes_.push_back({Scope::Kind::kClass, name});
      return j + 1;
    }
    return j < toks.size() ? j + 1 : j;
  }

  size_t SkipEnum(size_t i) {
    const auto& toks = Toks();
    size_t j = i;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j < toks.size() && toks[j].text == "{") j = MatchBrace(j);
    // Trailing `;` is consumed by the main loop.
    return j;
  }

  size_t SkipToSemicolon(size_t i) {
    const auto& toks = Toks();
    size_t j = i;
    while (j < toks.size() && toks[j].text != ";") {
      if (toks[j].text == "{") {
        j = MatchBrace(j);
        continue;
      }
      ++j;
    }
    return j < toks.size() ? j + 1 : j;
  }

  /// Skips `template < ... >`, tolerating nested angle brackets.
  size_t SkipTemplateHead(size_t i) {
    const auto& toks = Toks();
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") return j;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">" && --depth == 0) return j + 1;
    }
    return j;
  }

  /// Parses an operator overload far enough to skip its body; the entity is
  /// recorded under the name "operator" so calls never resolve to it.
  size_t ParseOperator(size_t i) {
    const auto& toks = Toks();
    size_t j = i + 1;
    while (j < toks.size() && toks[j].text != "(") {
      if (toks[j].text == ";" || toks[j].text == "{") return j;
      ++j;
    }
    if (j >= toks.size()) return j;
    // operator()(...) declares with two parens back to back.
    size_t after = MatchParen(j);
    if (after < toks.size() && toks[after].text == "(") after = MatchParen(after);
    return FinishFunction(i, "operator", "", {}, after);
  }

  /// Attempts to parse a function declaration/definition whose name token is
  /// at `i` (with `(` at i+1). Returns `i` unchanged on failure.
  size_t ParseFunction(size_t i) {
    const auto& toks = Toks();
    std::string name = toks[i].text;
    std::string class_name = CurrentClass();
    if (i >= 2 && toks[i - 1].text == "::" &&
        toks[i - 2].kind == TokenKind::kIdentifier) {
      class_name = toks[i - 2].text;  // out-of-line definition
    }
    if (i >= 1 && toks[i - 1].text == "~") name = "~" + name;
    size_t after_params = MatchParen(i + 1);
    std::vector<std::string> params = ParseParams(i + 2, after_params - 1);
    return FinishFunction(i, name, class_name, params, after_params);
  }

  /// Splits the parameter list [begin, end) on top-level commas and takes
  /// the last identifier of each chunk (cut at its default value) as the
  /// parameter name.
  std::vector<std::string> ParseParams(size_t begin, size_t end) {
    const auto& toks = Toks();
    std::vector<std::string> params;
    if (begin >= end) return params;
    int paren = 0, angle = 0, brace = 0;
    size_t chunk_start = begin;
    auto flush = [&](size_t chunk_end) {
      std::string name;
      bool saw_default = false;
      for (size_t j = chunk_start; j < chunk_end && !saw_default; ++j) {
        if (toks[j].text == "=") {
          saw_default = true;
        } else if (toks[j].kind == TokenKind::kIdentifier &&
                   TypeishTokens().count(toks[j].text) == 0) {
          name = toks[j].text;
        }
      }
      if (chunk_end > chunk_start) params.push_back(name);
    };
    for (size_t j = begin; j < end; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "{") ++brace;
      if (t == "}") --brace;
      if (t == "," && paren == 0 && angle == 0 && brace == 0) {
        flush(j);
        chunk_start = j + 1;
      }
    }
    flush(end);
    return params;
  }

  /// From just past the parameter list, consumes trailers (const, noexcept,
  /// trailing return, ctor-initializers) and records the function. Returns
  /// the index past the declaration/definition, or the name index on
  /// failure (e.g. this was a variable initialized with parens).
  size_t FinishFunction(size_t name_idx, const std::string& name,
                        const std::string& class_name,
                        const std::vector<std::string>& params, size_t j) {
    const auto& toks = Toks();
    const size_t n = toks.size();
    bool in_init_list = false;
    while (j < n) {
      const std::string& t = toks[j].text;
      if (t == "{") {
        if (in_init_list) {
          // A `{` directly after an identifier or `>` is a member
          // brace-initializer; anything else opens the body.
          const std::string& prev = toks[j - 1].text;
          if (toks[j - 1].kind == TokenKind::kIdentifier || prev == ">") {
            j = MatchBrace(j);
            continue;
          }
        }
        size_t body_end = MatchBrace(j);
        Record(name_idx, name, class_name, params, j, body_end);
        return body_end;
      }
      if (t == ";") {
        Record(name_idx, name, class_name, params, j, j);
        return j + 1;
      }
      if (t == ":") {
        in_init_list = true;
        ++j;
        continue;
      }
      if (t == "," && in_init_list) {
        ++j;  // between member initializers
        continue;
      }
      if (t == "(") {
        j = MatchParen(j);
        continue;
      }
      if (t == "=") {
        // = default / = delete / = 0 (pure virtual), then `;`.
        ++j;
        continue;
      }
      if (toks[j].kind == TokenKind::kIdentifier || t == "::" || t == "->" ||
          t == "<" || t == ">" || t == "*" || t == "&" || t == "[" ||
          t == "]" || toks[j].kind == TokenKind::kNumber) {
        ++j;
        continue;
      }
      return name_idx;  // unexpected token: not a function declaration
    }
    return name_idx;
  }

  void Record(size_t name_idx, const std::string& name,
              const std::string& class_name,
              const std::vector<std::string>& params, size_t body_begin,
              size_t body_end) {
    FunctionDecl fn;
    fn.name = name;
    fn.class_name = class_name;
    fn.line = Toks()[name_idx].line;
    fn.params = params;
    fn.body_begin = body_begin;
    fn.body_end = body_end;
    if (pending_.kind != Annotation::Kind::kNone) {
      fn.ann = pending_;
      pending_ = Annotation();
    }
    out_.functions.push_back(std::move(fn));
  }

  /// Non-function statement ending at `semi`: attaches a pending annotation
  /// to the declared member and records unordered-container members.
  void HandleStatement(size_t stmt_start, size_t semi) {
    const auto& toks = Toks();
    if (semi <= stmt_start) {
      pending_ = Annotation();
      return;
    }
    // The declared name: last identifier before the initializer (`=` or a
    // brace-init) or the semicolon.
    std::string declared;
    bool unordered = false;
    for (size_t j = stmt_start; j < semi; ++j) {
      const std::string& t = toks[j].text;
      if (t == "=" || t == "{") break;
      if (toks[j].kind == TokenKind::kIdentifier) {
        if (t.rfind("unordered_", 0) == 0) {
          unordered = true;
        } else {
          declared = t;
        }
      }
    }
    if (declared.empty()) {
      pending_ = Annotation();
      return;
    }
    if (pending_.kind != Annotation::Kind::kNone) {
      out_.members.push_back({CurrentClass(), declared, pending_});
      pending_ = Annotation();
    }
    if (unordered && DeclScope()) out_.unordered_members.insert(declared);
  }

  ParsedFile out_;
  std::vector<Scope> scopes_;
  Annotation pending_;
};

}  // namespace

const char* SensitivityName(Sensitivity s) {
  switch (s) {
    case Sensitivity::kClean: return "clean";
    case Sensitivity::kAggregate: return "aggregate";
    case Sensitivity::kRecord: return "record";
  }
  return "clean";
}

ParsedFile ParseFile(const std::string& rel_path, const std::string& contents) {
  return Parser(rel_path, contents).Run();
}

}  // namespace taint
}  // namespace tripriv
