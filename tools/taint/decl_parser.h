// Lightweight C++ declaration parser for tripriv_taint.
//
// Layered on the tripriv_lint lexer (comments and literals already
// stripped, NOLINT markers harvested), this pass recovers just enough
// structure for interprocedural dataflow: namespaces, classes, function
// declarations/definitions with parameter names and body token ranges, the
// TRIPRIV_SENSITIVE / TRIPRIV_SANITIZES / TRIPRIV_SINK annotations attached
// to them (see src/core/annotations.h), annotated data members, and members
// declared with unordered container types (needed by the
// taint-unordered-digest determinism rule).
//
// It is deliberately not a real parser: resolution is name-based, templates
// and overloads collapse into one symbol, and preprocessor conditionals are
// parsed in both branches. That is the right trade for a lint-grade
// analyzer — conservative merging plus NOLINT escapes beats a fragile
// full-fidelity frontend.

#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace tripriv {
namespace taint {

/// The three-point sensitivity lattice: clean < aggregate < record.
enum class Sensitivity { kClean = 0, kAggregate = 1, kRecord = 2 };

const char* SensitivityName(Sensitivity s);

/// One parsed TRIPRIV_* annotation.
struct Annotation {
  enum class Kind { kNone, kSensitive, kSanitizes, kSink };
  Kind kind = Kind::kNone;
  Sensitivity level = Sensitivity::kClean;  ///< kSensitive floor / kSanitizes cap
  bool digest = false;    ///< TRIPRIV_SANITIZES(level, digest): order-sensitive
  std::string channel;    ///< TRIPRIV_SINK channel name
};

/// One function declaration or definition.
struct FunctionDecl {
  std::string name;        ///< simple name (constructors use the class name)
  std::string class_name;  ///< enclosing class, or "" for free functions
  int line = 0;            ///< 1-based line of the declaring identifier
  std::vector<std::string> params;  ///< parameter names ("" when unnamed)
  /// Token range of the body including the braces, or begin == end for a
  /// body-less declaration.
  size_t body_begin = 0;
  size_t body_end = 0;
  Annotation ann;
};

/// A TRIPRIV_* annotation attached to a data member.
struct MemberAnnotation {
  std::string class_name;
  std::string member;
  Annotation ann;
};

/// One parsed translation unit.
struct ParsedFile {
  std::string path;  ///< '/'-separated path relative to the tree root
  lint::LexedFile lexed;
  std::vector<FunctionDecl> functions;
  std::vector<MemberAnnotation> members;
  /// Data members declared with std::unordered_* types, by simple name.
  std::set<std::string> unordered_members;
};

/// Parses one file. Never fails: unparseable constructs are skipped.
ParsedFile ParseFile(const std::string& rel_path, const std::string& contents);

}  // namespace taint
}  // namespace tripriv
