#include "taint/output.h"

#include <sstream>

namespace tripriv {
namespace taint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* RuleDescription(const std::string& rule) {
  if (rule == "taint-flow-to-sink") {
    return "A record-level sensitive value reaches an emission channel "
           "without passing a sanitizer.";
  }
  if (rule == "taint-unordered-digest") {
    return "Iteration over an unordered container feeds an order-sensitive "
           "digest, fingerprint, or export.";
  }
  if (rule == "taint-rng-in-parallel") {
    return "An Rng draw is reachable inside a ParallelFor shard, breaking "
           "deterministic replay.";
  }
  return "tripriv_taint finding.";
}

}  // namespace

std::string ToJson(const AnalysisResult& result) {
  std::ostringstream os;
  os << "{\"tool\":\"tripriv_taint\",\"stats\":{"
     << "\"files\":" << result.stats.files
     << ",\"functions\":" << result.stats.functions
     << ",\"sources\":" << result.stats.sources
     << ",\"sanitizers\":" << result.stats.sanitizers
     << ",\"sinks\":" << result.stats.sinks
     << ",\"derived_sinks\":" << result.stats.derived_sinks
     << ",\"iterations\":" << result.stats.iterations
     << "},\"findings\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const lint::Diagnostic& d = result.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"file\":\"" << JsonEscape(d.file) << "\",\"line\":" << d.line
       << ",\"rule\":\"" << JsonEscape(d.rule) << "\",\"message\":\""
       << JsonEscape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string ToSarif(const AnalysisResult& result) {
  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
     << "\"name\":\"tripriv_taint\",\"informationUri\":"
     << "\"https://example.invalid/tripriv\",\"rules\":[";
  const std::vector<std::string> rules = TaintRuleNames();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"id\":\"" << JsonEscape(rules[i])
       << "\",\"shortDescription\":{\"text\":\""
       << JsonEscape(RuleDescription(rules[i])) << "\"}}";
  }
  os << "]}},\"results\":[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const lint::Diagnostic& d = result.diagnostics[i];
    if (i > 0) os << ",";
    os << "{\"ruleId\":\"" << JsonEscape(d.rule)
       << "\",\"level\":\"error\",\"message\":{\"text\":\""
       << JsonEscape(d.message)
       << "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
       << "{\"uri\":\"" << JsonEscape(d.file)
       << "\"},\"region\":{\"startLine\":" << d.line << "}}}]}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace taint
}  // namespace tripriv
