// Machine-readable output for tripriv_taint: a compact JSON report and a
// minimal SARIF 2.1.0 document (the format CI code-scanning UIs ingest).

#pragma once

#include <string>

#include "taint/analyzer.h"

namespace tripriv {
namespace taint {

/// Renders the result as a JSON object:
/// {"tool":"tripriv_taint","stats":{...},"findings":[{file,line,rule,message}]}
std::string ToJson(const AnalysisResult& result);

/// Renders the result as a SARIF 2.1.0 log with one run and one rule entry
/// per taint rule.
std::string ToSarif(const AnalysisResult& result);

}  // namespace taint
}  // namespace tripriv
