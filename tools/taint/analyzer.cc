#include "taint/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace tripriv {
namespace taint {
namespace {

namespace fs = std::filesystem;
using lint::Token;
using lint::TokenKind;

constexpr const char* kRuleSink = "taint-flow-to-sink";
constexpr const char* kRuleUnordered = "taint-unordered-digest";
constexpr const char* kRuleRngParallel = "taint-rng-in-parallel";
constexpr int kMaxFixpointIters = 24;

Sensitivity Join(Sensitivity a, Sensitivity b) { return a > b ? a : b; }
Sensitivity Meet(Sensitivity a, Sensitivity b) { return a < b ? a : b; }

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",     "while",   "switch",        "return",
      "sizeof", "alignof", "alignas", "decltype",      "noexcept",
      "catch",  "throw",   "new",     "static_assert", "defined",
      "assert",
  };
  return kSet;
}

/// Accessors whose result is structural metadata, not record content:
/// `rows.size()` or `status.message()` never carries what `rows` carries
/// (Status messages are themselves policed by taint-flow-to-sink at every
/// construction site, so reading one back is safe). A tainted receiver is
/// laundered through these — both for value propagation and for
/// derived-sink marking.
const std::set<std::string>& CleanAccessors() {
  static const std::set<std::string> kSet = {
      "size",       "empty",       "length",      "capacity",
      "num_rows",   "num_columns", "num_records", "record_size",
      "ok",         "code",        "transient",   "message",
      "status",     "has_value",   "is_null",     "is_int",
      "is_double",  "is_string",   "is_numeric",
  };
  return kSet;
}

const std::set<std::string>& StreamTypes() {
  static const std::set<std::string> kSet = {
      "ostringstream", "stringstream", "ofstream", "ostream",
  };
  return kSet;
}

/// One merged symbol: all declarations and definitions sharing a
/// (class, name) key, plus every same-named symbol's conservative join at
/// call-resolution time.
struct Entity {
  std::string name;
  std::string class_name;
  Annotation ann;
  // Computed summaries (all monotone under the fixpoint).
  Sensitivity ret = Sensitivity::kClean;
  bool draws_rng = false;
  bool iterates_unordered = false;
  bool explicit_sink = false;
  std::set<size_t> sink_params;  ///< derived: params that reach a sink
  std::vector<std::pair<size_t, size_t>> bodies;  ///< (file idx, fn idx)
};

/// Conservative view of a call target: the join over every entity the
/// simple name (optionally class-qualified) resolves to.
struct Callee {
  bool known = false;
  bool sink = false;
  std::string channel;
  bool sanitizer = false;
  Sensitivity cap = Sensitivity::kRecord;
  bool digest = false;
  Sensitivity floor = Sensitivity::kClean;
  Sensitivity ret = Sensitivity::kClean;
  bool draws_rng = false;
  bool iterates_unordered = false;
  std::set<size_t> sink_params;
};

class Analyzer {
 public:
  explicit Analyzer(const std::vector<ParsedFile>& files) : files_(files) {}

  AnalysisResult Run() {
    BuildSymbolTable();
    size_t iter = 0;
    for (; iter < kMaxFixpointIters; ++iter) {
      changed_ = false;
      for (size_t e = 0; e < entities_.size(); ++e) AnalyzeEntity(e, false);
      if (!changed_) break;
    }
    for (size_t e = 0; e < entities_.size(); ++e) AnalyzeEntity(e, true);
    AnalysisResult out;
    out.diagnostics.assign(diags_.begin(), diags_.end());
    std::sort(out.diagnostics.begin(), out.diagnostics.end(),
              [](const lint::Diagnostic& a, const lint::Diagnostic& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    out.stats = stats_;
    out.stats.files = files_.size();
    out.stats.functions = entities_.size();
    out.stats.iterations = iter + 1;
    for (const Entity& e : entities_) {
      if (!e.explicit_sink && !e.sink_params.empty()) ++out.stats.derived_sinks;
    }
    return out;
  }

 private:
  // -------------------------------------------------------------------
  // Symbol table

  static std::string Key(const std::string& cls, const std::string& name) {
    return cls + "::" + name;
  }

  void BuildSymbolTable() {
    for (size_t f = 0; f < files_.size(); ++f) {
      const ParsedFile& file = files_[f];
      for (size_t i = 0; i < file.functions.size(); ++i) {
        const FunctionDecl& fn = file.functions[i];
        if (fn.name == "operator") continue;
        const std::string key = Key(fn.class_name, fn.name);
        auto it = by_key_.find(key);
        size_t idx;
        if (it == by_key_.end()) {
          idx = entities_.size();
          by_key_[key] = idx;
          Entity e;
          e.name = fn.name;
          e.class_name = fn.class_name;
          entities_.push_back(std::move(e));
          by_name_[fn.name].push_back(idx);
        } else {
          idx = it->second;
        }
        Entity& e = entities_[idx];
        if (fn.ann.kind != Annotation::Kind::kNone) {
          e.ann = fn.ann;
          switch (fn.ann.kind) {
            case Annotation::Kind::kSensitive: ++stats_.sources; break;
            case Annotation::Kind::kSanitizes: ++stats_.sanitizers; break;
            case Annotation::Kind::kSink:
              ++stats_.sinks;
              e.explicit_sink = true;
              break;
            default: break;
          }
        }
        if (fn.body_end > fn.body_begin) e.bodies.push_back({f, i});
      }
      for (const MemberAnnotation& m : file.members) {
        if (m.ann.kind == Annotation::Kind::kSensitive) {
          ++stats_.sources;
          member_taint_[m.member] =
              Join(member_taint_[m.member], m.ann.level);
        }
      }
      for (const std::string& m : file.unordered_members) {
        unordered_members_.insert(m);
      }
    }
    // Seed annotation-driven summaries.
    for (Entity& e : entities_) {
      if (e.ann.kind == Annotation::Kind::kSensitive) e.ret = e.ann.level;
      // Rng draw methods are the base of draws_rng reachability.
      if (e.class_name == "Rng" &&
          e.ann.kind == Annotation::Kind::kSensitive) {
        e.draws_rng = true;
      }
    }
  }

  Callee Resolve(const std::string& name, const std::string& class_hint) {
    Callee out;
    auto it = by_name_.find(name);
    if (it == by_name_.end()) return out;
    std::vector<size_t> matches = it->second;
    if (!class_hint.empty()) {
      std::vector<size_t> scoped;
      for (size_t idx : matches) {
        if (entities_[idx].class_name == class_hint) scoped.push_back(idx);
      }
      if (!scoped.empty()) matches = std::move(scoped);
    }
    for (size_t idx : matches) {
      const Entity& e = entities_[idx];
      out.known = true;
      if (e.explicit_sink) {
        out.sink = true;
        if (out.channel.empty()) out.channel = e.ann.channel;
      }
      if (e.ann.kind == Annotation::Kind::kSanitizes) {
        out.sanitizer = true;
        out.cap = Meet(out.cap, e.ann.level);
        out.digest = out.digest || e.ann.digest;
      }
      if (e.ann.kind == Annotation::Kind::kSensitive) {
        out.floor = Join(out.floor, e.ann.level);
      }
      out.ret = Join(out.ret, e.ret);
      out.draws_rng = out.draws_rng || e.draws_rng;
      out.iterates_unordered = out.iterates_unordered || e.iterates_unordered;
      out.sink_params.insert(e.sink_params.begin(), e.sink_params.end());
    }
    return out;
  }

  // -------------------------------------------------------------------
  // Per-function analysis

  void AnalyzeEntity(size_t eidx, bool emit) {
    Entity& ent = entities_[eidx];
    for (const auto& [f, i] : ent.bodies) {
      AnalyzeBody(files_[f], files_[f].functions[i], eidx, emit);
    }
  }

  struct BodyCtx {
    const ParsedFile* file = nullptr;
    const FunctionDecl* fn = nullptr;
    size_t entity = 0;
    bool emit = false;
    std::map<std::string, Sensitivity> locals;
    std::set<std::string> unordered_locals;
    std::set<std::string> stream_locals;
    bool saw_local_unordered_iter = false;
    std::string local_iter_var;
  };

  void AnalyzeBody(const ParsedFile& file, const FunctionDecl& fn,
                   size_t eidx, bool emit) {
    BodyCtx ctx;
    ctx.file = &file;
    ctx.fn = &fn;
    ctx.entity = eidx;
    ctx.emit = emit;
    // Two statement passes so taint assigned late in a loop body reaches
    // uses earlier in it on the second pass.
    for (int pass = 0; pass < 2; ++pass) {
      ctx.emit = emit && pass == 1;
      WalkStatements(&ctx);
    }
  }

  void WalkStatements(BodyCtx* ctx) {
    const auto& toks = ctx->file->lexed.tokens;
    const size_t begin = ctx->fn->body_begin + 1;
    const size_t end = ctx->fn->body_end > 0 ? ctx->fn->body_end - 1 : begin;
    int depth = 0;
    size_t stmt_start = begin;
    for (size_t j = begin; j < end; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      if (t == ")" && depth > 0) --depth;
      if (depth == 0 && (t == ";" || t == "{" || t == "}")) {
        if (j > stmt_start) ProcessStatement(ctx, stmt_start, j);
        stmt_start = j + 1;
      }
    }
    if (end > stmt_start) ProcessStatement(ctx, stmt_start, end);
  }

  void ProcessStatement(BodyCtx* ctx, size_t s, size_t e) {
    const auto& toks = ctx->file->lexed.tokens;
    TrackLocalDecls(ctx, s, e);
    CheckRangeFor(ctx, s, e);
    CheckStreamEmission(ctx, s, e);
    // TRIPRIV_ASSIGN_OR_RETURN(lhs, rexpr) assigns rexpr's taint to lhs.
    for (size_t j = s; j + 1 < e; ++j) {
      if (toks[j].text == "TRIPRIV_ASSIGN_OR_RETURN" &&
          toks[j + 1].text == "(") {
        size_t close = MatchParen(toks, j + 1, e);
        std::vector<std::pair<size_t, size_t>> args =
            SplitArgs(toks, j + 2, close > 0 ? close - 1 : e);
        if (args.size() >= 2) {
          std::string target;
          for (size_t k = args[0].first; k < args[0].second; ++k) {
            if (toks[k].kind == TokenKind::kIdentifier) target = toks[k].text;
          }
          Sensitivity rhs =
              EvalRange(ctx, args[1].first, args[1].second);
          if (!target.empty()) AssignLocal(ctx, target, rhs);
        }
        break;
      }
    }
    // Assignment: taint the (receiver-chased) target with the RHS join.
    size_t rhs_start = 0;
    std::string target = FindAssignment(toks, s, e, &rhs_start);
    // Evaluate the whole statement once: this performs every sink check and
    // ParallelFor scan. Assignment/return taint reuses sub-evaluations
    // (diagnostics are deduplicated, so overlap is harmless).
    IgnoreTaint(EvalRange(ctx, s, e));
    if (!target.empty()) {
      AssignLocal(ctx, target, EvalRange(ctx, rhs_start, e));
    }
    for (size_t j = s; j < e; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier && toks[j].text == "return") {
        Sensitivity r = EvalRange(ctx, j + 1, e);
        Entity& ent = entities_[ctx->entity];
        Sensitivity next = ent.ret;
        if (ent.ann.kind == Annotation::Kind::kSanitizes) {
          next = Join(next, Meet(r, ent.ann.level));
        } else {
          next = Join(next, r);
        }
        if (ent.ann.kind == Annotation::Kind::kSensitive) {
          next = Join(next, ent.ann.level);
        }
        if (next != ent.ret) {
          ent.ret = next;
          changed_ = true;
        }
        break;
      }
    }
  }

  static void IgnoreTaint(Sensitivity) {}

  /// Registers locals declared with unordered-container or stream types.
  void TrackLocalDecls(BodyCtx* ctx, size_t s, size_t e) {
    const auto& toks = ctx->file->lexed.tokens;
    bool unordered = false, stream = false;
    std::string declared;
    for (size_t j = s; j < e; ++j) {
      const std::string& t = toks[j].text;
      if (t == "=") break;
      if (toks[j].kind != TokenKind::kIdentifier) continue;
      if (t.rfind("unordered_", 0) == 0) {
        unordered = true;
      } else if (StreamTypes().count(t) > 0) {
        stream = true;
      } else {
        declared = t;
      }
      // A call or member access means this is an expression statement, not
      // a declaration — unless it is the declared type's template argument.
      if (j + 1 < e && toks[j + 1].text == "(" && !unordered && !stream) {
        return;
      }
    }
    if (declared.empty()) return;
    if (unordered) ctx->unordered_locals.insert(declared);
    if (stream) ctx->stream_locals.insert(declared);
  }

  /// Detects range-for (and .begin() for-loops) over unordered containers.
  void CheckRangeFor(BodyCtx* ctx, size_t s, size_t e) {
    const auto& toks = ctx->file->lexed.tokens;
    for (size_t j = s; j + 1 < e; ++j) {
      if (toks[j].text != "for" || toks[j + 1].text != "(") continue;
      size_t close = MatchParen(toks, j + 1, e);
      if (close == 0) close = e;
      // Range-for: a single ':' at paren depth 1.
      size_t colon = 0;
      int depth = 0;
      for (size_t k = j + 1; k < close; ++k) {
        if (toks[k].text == "(") ++depth;
        if (toks[k].text == ")") --depth;
        if (toks[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      size_t range_begin = colon != 0 ? colon + 1 : j + 2;
      for (size_t k = range_begin; k < close; ++k) {
        if (toks[k].kind != TokenKind::kIdentifier) continue;
        const std::string& v = toks[k].text;
        const bool is_unordered = ctx->unordered_locals.count(v) > 0 ||
                                  unordered_members_.count(v) > 0;
        if (!is_unordered) continue;
        // In a classic for-header only `.begin()` (iteration) counts;
        // lookups like find() keep their order-independence.
        if (colon == 0) {
          const bool begins = k + 3 < close &&
                              (toks[k + 1].text == "." ||
                               toks[k + 1].text == "->") &&
                              (toks[k + 2].text == "begin" ||
                               toks[k + 2].text == "cbegin");
          if (!begins) continue;
        }
        if (!ctx->saw_local_unordered_iter) {
          ctx->saw_local_unordered_iter = true;
          ctx->local_iter_var = v;
        }
        MarkIterates(ctx);
      }
    }
  }

  void MarkIterates(BodyCtx* ctx) {
    Entity& ent = entities_[ctx->entity];
    if (!ent.iterates_unordered) {
      ent.iterates_unordered = true;
      changed_ = true;
    }
  }

  /// `os << expr` where `os` is a local stream: report record-level taint.
  void CheckStreamEmission(BodyCtx* ctx, size_t s, size_t e) {
    const auto& toks = ctx->file->lexed.tokens;
    if (s + 2 >= e) return;
    if (toks[s].kind != TokenKind::kIdentifier ||
        ctx->stream_locals.count(toks[s].text) == 0) {
      return;
    }
    if (toks[s + 1].text != "<" || toks[s + 2].text != "<") return;
    Sensitivity taint = EvalRange(ctx, s + 3, e);
    if (taint == Sensitivity::kRecord) {
      Report(ctx, toks[s].line, kRuleSink,
             "record-level value is emitted into stream '" + toks[s].text +
                 "'; sanitize (digest, aggregate, DP) before emission");
    }
  }

  /// Finds the first top-level assignment and returns the base identifier
  /// of its target (chasing `recv.member =` back to `recv`), with
  /// `*rhs_start` set past the `=`.
  std::string FindAssignment(const std::vector<Token>& toks, size_t s,
                             size_t e, size_t* rhs_start) {
    int paren = 0, bracket = 0;
    for (size_t j = s; j + 1 < e; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "[") ++bracket;
      if (t == "]") --bracket;
      if (paren != 0 || bracket != 0) continue;
      if (t != "=") continue;
      if (j + 1 < e && toks[j + 1].text == "=") return "";  // ==
      if (j == s) return "";
      std::string prev = toks[j - 1].text;
      if (prev == "<" || prev == ">" || prev == "!" || prev == "=") return "";
      size_t m = j - 1;
      // Compound assignment: x_ += ... (operator chars lex one at a time).
      static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                      "%", "&", "|", "^"};
      if (kCompound.count(toks[m].text) > 0 && m > s) --m;
      // Subscript target: arr[i] = ... chases back to arr.
      if (toks[m].text == "]") {
        int bd = 0;
        while (m > s) {
          if (toks[m].text == "]") ++bd;
          if (toks[m].text == "[" && --bd == 0) break;
          --m;
        }
        if (m == s || toks[m].text != "[") return "";
        --m;
      }
      if (toks[m].kind != TokenKind::kIdentifier) return "";
      // Receiver chase: rec.member = / rec->member = taints rec.
      while (m >= s + 2 &&
             (toks[m - 1].text == "." || toks[m - 1].text == "->") &&
             toks[m - 2].kind == TokenKind::kIdentifier) {
        m -= 2;
      }
      *rhs_start = j + 1;
      return toks[m].text;
    }
    return "";
  }

  void AssignLocal(BodyCtx* ctx, const std::string& name, Sensitivity s) {
    Sensitivity& slot = ctx->locals[name];
    slot = Join(slot, s);
  }

  // -------------------------------------------------------------------
  // Expression evaluation

  static size_t MatchParen(const std::vector<Token>& toks, size_t open,
                           size_t limit) {
    int depth = 0;
    for (size_t j = open; j < limit; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) return j + 1;
    }
    return 0;
  }

  /// Splits [begin, end) on top-level commas into argument token ranges.
  static std::vector<std::pair<size_t, size_t>> SplitArgs(
      const std::vector<Token>& toks, size_t begin, size_t end) {
    std::vector<std::pair<size_t, size_t>> args;
    if (begin >= end) return args;
    int paren = 0, bracket = 0, brace = 0, angle = 0;
    size_t start = begin;
    for (size_t j = begin; j < end; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++paren;
      if (t == ")") --paren;
      if (t == "[") ++bracket;
      if (t == "]") --bracket;
      if (t == "{") ++brace;
      if (t == "}") --brace;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "," && paren == 0 && bracket == 0 && brace == 0 &&
          angle == 0) {
        args.push_back({start, j});
        start = j + 1;
      }
    }
    args.push_back({start, end});
    return args;
  }

  /// Joins the sensitivity of every identifier use and call result in
  /// [b, e), performing sink checks and ParallelFor scans along the way.
  Sensitivity EvalRange(BodyCtx* ctx, size_t b, size_t e) {
    const auto& toks = ctx->file->lexed.tokens;
    Sensitivity res = Sensitivity::kClean;
    size_t j = b;
    while (j < e) {
      const Token& tok = toks[j];
      if (tok.kind != TokenKind::kIdentifier) {
        ++j;
        continue;
      }
      const bool is_call = j + 1 < e && toks[j + 1].text == "(" &&
                           CallKeywords().count(tok.text) == 0;
      if (!is_call) {
        if (!LaunderedUse(toks, j, e)) {
          res = Join(res, IdentTaint(ctx, tok.text));
        }
        ++j;
        continue;
      }
      size_t close = MatchParen(toks, j + 1, e);
      if (close == 0) {  // unbalanced within range; treat as plain ident
        res = Join(res, IdentTaint(ctx, tok.text));
        ++j;
        continue;
      }
      res = Join(res, EvalCall(ctx, j, close));
      j = close;
    }
    return res;
  }

  Sensitivity IdentTaint(BodyCtx* ctx, const std::string& name) {
    auto it = ctx->locals.find(name);
    Sensitivity s = it != ctx->locals.end() ? it->second : Sensitivity::kClean;
    auto mt = member_taint_.find(name);
    if (mt != member_taint_.end()) s = Join(s, mt->second);
    return s;
  }

  /// Evaluates the call whose name token is at `j` and whose `)` is just
  /// before `close`. Performs sink checks, derived-sink marking, out-param
  /// propagation, ParallelFor scanning, and digest-feed detection.
  Sensitivity EvalCall(BodyCtx* ctx, size_t j, size_t close) {
    const auto& toks = ctx->file->lexed.tokens;
    const std::string& name = toks[j].text;
    std::string hint;
    if (j >= 2 && toks[j - 1].text == "::" &&
        toks[j - 2].kind == TokenKind::kIdentifier) {
      hint = toks[j - 2].text;
    }
    Callee callee = Resolve(name, hint);
    std::vector<std::pair<size_t, size_t>> args =
        SplitArgs(toks, j + 2, close - 1);
    std::vector<Sensitivity> arg_taint(args.size(), Sensitivity::kClean);
    Sensitivity amax = Sensitivity::kClean;
    for (size_t k = 0; k < args.size(); ++k) {
      arg_taint[k] = EvalRange(ctx, args[k].first, args[k].second);
      amax = Join(amax, arg_taint[k]);
    }
    // Result sensitivity.
    Sensitivity result;
    if (callee.sanitizer) {
      result = Meet(Join(amax, Join(callee.ret, callee.floor)), callee.cap);
    } else if (callee.known) {
      result = Join(amax, Join(callee.ret, callee.floor));
    } else {
      result = amax;  // unknown helpers pass taint through
    }
    // Receiver mutation: recv.push_back(x) / recv.insert(..., x, ...) may
    // store its arguments into the receiver object. Restricted to unknown
    // callees (std:: container mutators and the like) — calls into parsed
    // code are modeled by their summaries, and tainting every receiver of
    // a const accessor like table.at() would swamp the analysis.
    if (!callee.known && j >= 2 &&
        (toks[j - 1].text == "." || toks[j - 1].text == "->") &&
        toks[j - 2].kind == TokenKind::kIdentifier &&
        result != Sensitivity::kClean) {
      AssignLocal(ctx, toks[j - 2].text, result);
    }
    // Out-param propagation: F(&x) taints x with the call result.
    for (const auto& [ab, ae] : args) {
      if (ae - ab >= 2 && toks[ab].text == "&" &&
          toks[ab + 1].kind == TokenKind::kIdentifier &&
          result != Sensitivity::kClean) {
        AssignLocal(ctx, toks[ab + 1].text, result);
      }
    }
    // Sink checks + derived-sink marking (a suppressed line stops both).
    const bool line_suppressed =
        lint::IsSuppressed(ctx->file->lexed, tok_line(toks, j), kRuleSink);
    if ((callee.sink || !callee.sink_params.empty()) && !line_suppressed) {
      for (size_t k = 0; k < args.size(); ++k) {
        const bool checked =
            callee.sink || callee.sink_params.count(k) > 0;
        if (!checked) continue;
        if (arg_taint[k] == Sensitivity::kRecord && ctx->emit) {
          Report(ctx, tok_line(toks, j), kRuleSink,
                 "record-level value reaches sink '" + name + "'" +
                     (callee.channel.empty()
                          ? std::string()
                          : " (channel " + callee.channel + ")") +
                     " via argument " + std::to_string(k + 1) +
                     "; sanitize (digest, aggregate, DP noise) before "
                     "emission, or suppress with NOLINT(taint-flow-to-sink) "
                     "if this channel is a sanctioned carrier");
        }
        // If a parameter of the enclosing function flows into this sink
        // argument, the enclosing function is itself a sink for it.
        MarkDerivedSink(ctx, args[k].first, args[k].second);
      }
    }
    // Determinism rule 2: Rng draws inside a ParallelFor shard.
    if (name == "ParallelFor") ScanParallelFor(ctx, j + 2, close - 1);
    // Determinism rule 1: unordered iteration feeding a digest/export.
    if (callee.digest ||
        (callee.sink && callee.channel == "export")) {
      CheckDigestFeed(ctx, j, args);
    }
    return result;
  }

  static int tok_line(const std::vector<Token>& toks, size_t j) {
    return toks[j].line;
  }

  /// True when the identifier at `j` is only used through a clean accessor
  /// (`x.size()`, `st->message()`): its taint does not flow here.
  static bool LaunderedUse(const std::vector<Token>& toks, size_t j,
                           size_t e) {
    return j + 3 < e &&
           (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
           CleanAccessors().count(toks[j + 2].text) > 0 &&
           toks[j + 3].text == "(";
  }

  void MarkDerivedSink(BodyCtx* ctx, size_t ab, size_t ae) {
    const auto& toks = ctx->file->lexed.tokens;
    const auto& params = ctx->fn->params;
    for (size_t k = ab; k < ae; ++k) {
      if (toks[k].kind != TokenKind::kIdentifier) continue;
      if (LaunderedUse(toks, k, ae)) continue;
      for (size_t p = 0; p < params.size(); ++p) {
        if (params[p].empty() || params[p] != toks[k].text) continue;
        Entity& ent = entities_[ctx->entity];
        if (ent.sink_params.insert(p).second) changed_ = true;
      }
    }
  }

  /// Reports Rng draws (direct or via any transitively-drawing callee)
  /// inside a ParallelFor argument list (the shard lambda).
  void ScanParallelFor(BodyCtx* ctx, size_t b, size_t e) {
    if (!ctx->emit) return;
    const auto& toks = ctx->file->lexed.tokens;
    for (size_t j = b; j + 1 < e; ++j) {
      if (toks[j].kind != TokenKind::kIdentifier ||
          toks[j + 1].text != "(" || CallKeywords().count(toks[j].text) > 0) {
        continue;
      }
      std::string hint;
      if (j >= 2 && toks[j - 1].text == "::" &&
          toks[j - 2].kind == TokenKind::kIdentifier) {
        hint = toks[j - 2].text;
      }
      Callee callee = Resolve(toks[j].text, hint);
      if (!callee.draws_rng) continue;
      Report(ctx, toks[j].line, kRuleRngParallel,
             "Rng draw '" + toks[j].text +
                 "' is reachable inside a ParallelFor shard; the execution "
                 "model requires serial-draw -> parallel-pure -> "
                 "serial-merge (draw before the parallel section, pass "
                 "results in)");
    }
  }

  /// The digest call at token `j`: fires when fed by unordered iteration,
  /// either an iteration in this very body or an argument whose value is
  /// produced by a transitively-iterating callee.
  void CheckDigestFeed(BodyCtx* ctx, size_t j,
                       const std::vector<std::pair<size_t, size_t>>& args) {
    if (!ctx->emit) return;
    const auto& toks = ctx->file->lexed.tokens;
    const std::string& name = toks[j].text;
    if (ctx->saw_local_unordered_iter) {
      Report(ctx, toks[j].line, kRuleUnordered,
             "order-sensitive digest/export '" + name +
                 "' is computed in a function that iterates unordered "
                 "container '" + ctx->local_iter_var +
                 "'; iterate a sorted view so the result is byte-identical "
                 "across platforms and hash seeds");
      return;
    }
    for (const auto& [ab, ae] : args) {
      for (size_t k = ab; k + 1 < ae; ++k) {
        if (toks[k].kind != TokenKind::kIdentifier ||
            toks[k + 1].text != "(") {
          continue;
        }
        Callee inner = Resolve(toks[k].text, "");
        if (inner.iterates_unordered) {
          Report(ctx, toks[k].line, kRuleUnordered,
                 "order-sensitive digest/export '" + name +
                     "' is fed by '" + toks[k].text +
                     "', which iterates an unordered container; sort "
                     "before digesting so the result is deterministic");
        }
      }
    }
  }

  void Report(BodyCtx* ctx, int line, const std::string& rule,
              std::string message) {
    if (!ctx->emit) return;
    if (lint::IsSuppressed(ctx->file->lexed, line, rule)) return;
    diags_.insert({ctx->file->path, line, rule, std::move(message)});
  }

  struct DiagLess {
    bool operator()(const lint::Diagnostic& a,
                    const lint::Diagnostic& b) const {
      return std::tie(a.file, a.line, a.rule, a.message) <
             std::tie(b.file, b.line, b.rule, b.message);
    }
  };

  const std::vector<ParsedFile>& files_;
  std::vector<Entity> entities_;
  std::map<std::string, size_t> by_key_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::map<std::string, Sensitivity> member_taint_;
  std::set<std::string> unordered_members_;
  std::set<lint::Diagnostic, DiagLess> diags_;
  AnalysisStats stats_;
  bool changed_ = false;
};

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

std::vector<std::string> TaintRuleNames() {
  return {kRuleSink, kRuleUnordered, kRuleRngParallel};
}

AnalysisResult Analyze(const std::vector<ParsedFile>& files) {
  return Analyzer(files).Run();
}

bool AnalyzeTree(const std::string& root, AnalysisResult* result,
                 std::string* error) {
  fs::path scan = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(scan, ec)) scan = fs::path(root);
  std::vector<fs::path> paths;
  for (fs::recursive_directory_iterator it(scan, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") paths.push_back(it->path());
  }
  if (paths.empty()) {
    if (error != nullptr) {
      *error = "no .h/.cc files under " + scan.string() + " - wrong --root?";
    }
    return false;
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ParsedFile> files;
  for (const fs::path& p : paths) {
    std::string contents;
    if (!ReadFile(p.string(), &contents, error)) return false;
    files.push_back(
        ParseFile(fs::relative(p, root).generic_string(), contents));
  }
  *result = Analyze(files);
  return true;
}

bool AnalyzePaths(const std::string& root,
                  const std::vector<std::string>& paths,
                  AnalysisResult* result, std::string* error) {
  std::vector<ParsedFile> files;
  for (const std::string& p : paths) {
    std::string contents;
    if (!ReadFile(p, &contents, error)) return false;
    std::error_code ec;
    std::string rel = fs::relative(p, root, ec).generic_string();
    if (ec || rel.empty() || rel.rfind("..", 0) == 0) rel = p;
    files.push_back(ParseFile(rel, contents));
  }
  *result = Analyze(files);
  return true;
}

}  // namespace taint
}  // namespace tripriv
