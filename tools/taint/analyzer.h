// tripriv_taint: interprocedural sensitive-dataflow analysis.
//
// Where tripriv_lint's rules are purely lexical (a banned identifier is a
// finding wherever it appears), this pass understands flows: a table cell
// read in one function, rendered by a second, and logged by a third is a
// leak even though no single line looks wrong. The engine builds a
// cross-translation-unit symbol table and call graph over the parsed files,
// then propagates the three-point sensitivity lattice
// (clean < aggregate < record) to a fixpoint:
//
//   * A function's return sensitivity is the join of its return
//     expressions' sensitivities, floored by TRIPRIV_SENSITIVE and capped
//     by TRIPRIV_SANITIZES annotations (src/core/annotations.h).
//   * Locals pick up sensitivity from assignments; `&out` arguments pick up
//     the callee's result sensitivity (out-param propagation).
//   * A call to an un-annotated, unknown function conservatively passes its
//     arguments' join through (std::to_string launders nothing).
//   * A function that forwards one of its parameters into a sink becomes a
//     derived sink for that parameter, so wrappers around emission APIs are
//     themselves emission APIs, to any call depth.
//
// Three rules report over the result:
//
//   taint-flow-to-sink        a record-level value reaches a TRIPRIV_SINK
//                             argument (or a stream/printf emission).
//   taint-unordered-digest    iteration over an unordered container feeds
//                             an order-sensitive digest/fingerprint/export
//                             (TRIPRIV_SANITIZES(..., digest) or
//                             TRIPRIV_SINK(export)) — byte-identical
//                             determinism would depend on hash order.
//   taint-rng-in-parallel     an Rng draw is reachable inside a
//                             ThreadPool::ParallelFor shard, violating the
//                             serial-draw -> parallel-pure -> serial-merge
//                             discipline.
//
// Findings are suppressible with `// NOLINT(rule-name)` on the reported
// line; a suppressed sink call also stops derived-sink propagation through
// that edge (the escape hatch for sanctioned carriers like the audit WAL's
// epsilon ledger).

#pragma once

#include <string>
#include <vector>

#include "lint/lint.h"
#include "taint/decl_parser.h"

namespace tripriv {
namespace taint {

struct AnalysisStats {
  size_t files = 0;
  size_t functions = 0;    ///< distinct (class, name) entities
  size_t sources = 0;      ///< TRIPRIV_SENSITIVE annotations seen
  size_t sanitizers = 0;   ///< TRIPRIV_SANITIZES annotations seen
  size_t sinks = 0;        ///< TRIPRIV_SINK annotations seen
  size_t derived_sinks = 0;///< functions that forward a parameter to a sink
  size_t iterations = 0;   ///< fixpoint rounds until convergence
};

struct AnalysisResult {
  std::vector<lint::Diagnostic> diagnostics;  ///< sorted by file, then line
  AnalysisStats stats;
};

/// Names of the taint rules, in reporting order.
std::vector<std::string> TaintRuleNames();

/// Analyzes a set of parsed files as one program.
AnalysisResult Analyze(const std::vector<ParsedFile>& files);

/// Parses and analyzes `root`/src (or `root` itself when it has no src/
/// subdirectory — fixture corpora are their own trees). Returns false with
/// `error` set only when no sources are found.
bool AnalyzeTree(const std::string& root, AnalysisResult* result,
                 std::string* error);

/// Parses and analyzes the given files (paths opened as given, rule scope
/// from the path relative to `root`).
bool AnalyzePaths(const std::string& root,
                  const std::vector<std::string>& paths,
                  AnalysisResult* result, std::string* error);

}  // namespace taint
}  // namespace tripriv
