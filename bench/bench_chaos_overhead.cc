// Reliability tax: what the ARQ layer costs when nothing goes wrong.
//
// The fault-tolerant channel prepends a [session, seq, checksum] header to
// every message and acknowledges every delivery, so even a perfectly
// reliable run pays a fixed per-message overhead. These benchmarks measure
// that tax — wall time, bytes, and message count of secure sum and Shamir
// reconstruction over the raw fabric vs the reliable channel at fault rate
// zero — plus the retransmission-driven growth at a 20% drop rate, the
// worst case the chaos suite guarantees.

#include <benchmark/benchmark.h>

#include <vector>

#include "smc/party.h"
#include "smc/reliable_channel.h"
#include "smc/secure_sum.h"
#include "smc/shamir.h"
#include "util/bigint.h"

namespace tripriv {
namespace {

std::vector<BigInt> MakeInputs(size_t parties) {
  std::vector<BigInt> inputs;
  for (size_t p = 0; p < parties; ++p) {
    inputs.push_back(BigInt(static_cast<int64_t>(1000 * p + 17)));
  }
  return inputs;
}

void ReportFabric(benchmark::State& state, const PartyNetwork& net) {
  state.counters["bytes/round"] = static_cast<double>(net.bytes_transferred());
  state.counters["msgs/round"] = static_cast<double>(net.messages_sent());
}

void BM_SecureSumRawFabric(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  const auto inputs = MakeInputs(parties);
  const BigInt modulus = BigInt(1) << 64;
  for (auto _ : state) {
    PartyNetwork net(parties, 3);
    auto sum = SecureSum(&net, inputs, modulus);
    benchmark::DoNotOptimize(sum);
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SecureSumRawFabric)->Arg(2)->Arg(4)->Arg(8);

void BM_SecureSumReliableNoFaults(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  const auto inputs = MakeInputs(parties);
  const BigInt modulus = BigInt(1) << 64;
  for (auto _ : state) {
    PartyNetwork net(parties, 3);
    net.InjectFaults(FaultPlan{});  // ARQ engaged, zero injected faults
    auto sum = SecureSum(&net, inputs, modulus);
    benchmark::DoNotOptimize(sum);
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SecureSumReliableNoFaults)->Arg(2)->Arg(4)->Arg(8);

void BM_SecureSumReliableDrop20(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  const auto inputs = MakeInputs(parties);
  const BigInt modulus = BigInt(1) << 64;
  FaultPlan plan;
  plan.drop_rate = 0.2;
  for (auto _ : state) {
    PartyNetwork net(parties, 3);
    net.InjectFaults(plan);
    auto sum = SecureSum(&net, inputs, modulus);
    benchmark::DoNotOptimize(sum);
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SecureSumReliableDrop20)->Arg(2)->Arg(4)->Arg(8);

void BM_ShamirReconstructRawFabric(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t t = n / 2 + 1;
  const BigInt prime = BigInt::FromString("2305843009213693951").value();
  Rng rng(3);
  auto shares = ShamirShareSecret(BigInt(123456789), n, t, prime, &rng);
  for (auto _ : state) {
    PartyNetwork net(n, 4);
    auto secret = ShamirReconstructOverNetwork(&net, *shares, t, prime);
    benchmark::DoNotOptimize(secret);
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ShamirReconstructRawFabric)->Arg(5)->Arg(9);

void BM_ShamirReconstructReliableNoFaults(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t t = n / 2 + 1;
  const BigInt prime = BigInt::FromString("2305843009213693951").value();
  Rng rng(3);
  auto shares = ShamirShareSecret(BigInt(123456789), n, t, prime, &rng);
  for (auto _ : state) {
    PartyNetwork net(n, 4);
    net.InjectFaults(FaultPlan{});
    auto secret = ShamirReconstructOverNetwork(&net, *shares, t, prime);
    benchmark::DoNotOptimize(secret);
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ShamirReconstructReliableNoFaults)->Arg(5)->Arg(9);

// Per-message channel overhead in isolation: one point-to-point message,
// raw fabric vs ARQ (header + ack), fault rate zero.
void BM_PointToPointRaw(benchmark::State& state) {
  const std::vector<BigInt> payload{BigInt(424242)};
  for (auto _ : state) {
    PartyNetwork net(2, 1);
    benchmark::DoNotOptimize(net.Send(0, 1, "p", payload));
    benchmark::DoNotOptimize(net.Receive(1));
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PointToPointRaw);

void BM_PointToPointReliable(benchmark::State& state) {
  const std::vector<BigInt> payload{BigInt(424242)};
  for (auto _ : state) {
    PartyNetwork net(2, 1);
    net.InjectFaults(FaultPlan{});
    ReliableChannel ch(&net, net.retry_policy());
    benchmark::DoNotOptimize(ch.Send(0, 1, "p", payload));
    benchmark::DoNotOptimize(ch.Receive(1));
    state.PauseTiming();
    ReportFabric(state, net);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_PointToPointReliable);

}  // namespace
}  // namespace tripriv

BENCHMARK_MAIN();
