// Ablation A: the SDC trade-off behind Table 2's SDC row.
//
// Sweep the microaggregation group size k and measure disclosure risk
// (record linkage, expected re-identification) against information loss
// (IL1s, variance deviation) — the risk/utility frontier that justifies
// grading SDC respondent privacy "medium-high" at moderate utility cost.
// Also compares MDAV against optimal univariate microaggregation and
// Mondrian recoding at equal k.

#include <cstdio>

#include "sdc/anonymity.h"
#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "sdc/mondrian.h"
#include "sdc/risk.h"
#include "table/datasets.h"

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv ablation A: microaggregation k sweep ===\n");
  const DataTable data = MakeExtendedTrial(600, 17);
  std::printf("data: synthetic trial, n=600, 4 numeric quasi-identifiers\n\n");
  std::printf("%4s  %8s  %12s  %12s  %8s  %10s\n", "k", "k-anon",
              "linkage rate", "reid rate", "IL1s", "var dev");
  for (size_t k : {2u, 3u, 5u, 8u, 12u, 20u, 35u, 50u}) {
    auto masked = MdavMicroaggregate(data, k);
    if (!masked.ok()) return 1;
    auto linkage = DistanceLinkageAttack(data, masked->table);
    auto loss = MeasureInformationLoss(data, masked->table);
    if (!linkage.ok() || !loss.ok()) return 1;
    std::printf("%4zu  %8zu  %11.1f%%  %11.1f%%  %8.3f  %10.3f\n", k,
                AnonymityLevel(masked->table),
                100.0 * linkage->correct_fraction,
                100.0 * ExpectedReidentificationRate(masked->table),
                loss->il1s, loss->var_deviation);
  }

  std::printf("\n--- method comparison at k = 5 ---\n");
  std::printf("%-22s  %8s  %12s  %8s\n", "method", "k-anon", "linkage rate",
              "IL1s");
  {
    auto mdav = MdavMicroaggregate(data, 5);
    auto mondrian = MondrianAnonymize(data, 5);
    auto univariate = OptimalUnivariateMicroaggregate(data, 5, 1);
    if (!mdav.ok() || !mondrian.ok() || !univariate.ok()) return 1;
    struct Row {
      const char* name;
      const DataTable* table;
    } rows[] = {
        {"MDAV (multivariate)", &mdav->table},
        {"Mondrian", &mondrian->table},
        {"optimal univariate*", &univariate->table},
    };
    for (const auto& row : rows) {
      auto linkage = DistanceLinkageAttack(data, *row.table);
      auto loss = MeasureInformationLoss(data, *row.table);
      if (!linkage.ok() || !loss.ok()) return 1;
      std::printf("%-22s  %8zu  %11.1f%%  %8.3f\n", row.name,
                  AnonymityLevel(*row.table),
                  100.0 * linkage->correct_fraction, loss->il1s);
    }
    std::printf("* optimal univariate masks only the height attribute, so "
                "it does not yield\n  multivariate k-anonymity on its own "
                "(k-anon column reflects that).\n");
  }
  std::printf("\npaper's shape: risk falls ~1/k while information loss grows "
              "smoothly — the\nSDC dial between respondent privacy and "
              "utility (Sections 2, 6).\n");
  return 0;
}
