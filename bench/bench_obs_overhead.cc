// Observability tax: what always-on instruments cost the serving ladder.
//
// The obs subsystem promises to be cheap enough to leave attached: every
// push is a preallocated-slot increment and every span is a ring-buffer
// write, with no allocation, locking, or clock charge on the hot path. This
// bench measures that promise — the same fault-injected statistical batch
// served (a) with no instruments attached and (b) with a full bundle
// (registry + trace + budget accountant) attached and published — and
// prints the relative overhead. The acceptance bar is < 5%.
//
// The third arm is the compiled-out reference: rebuild with
// -DTRIPRIV_OBS=OFF (TRIPRIV_OBS_DISABLED) and rerun this bench; the
// "instrumented" arm then runs the same attach calls against empty inline
// bodies, so (instrumented ON) vs (instrumented OFF) isolates the true
// instruction cost. The dump at the end is the CI artifact: the metrics and
// trace JSON of one instrumented run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/budget.h"
#include "obs/export.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "querydb/query.h"
#include "service/batch_executor.h"
#include "service/query_service.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

constexpr int kRounds = 4;
constexpr int kTrials = 5;
constexpr int kQueriesPerRound = 120;

StatQuery Parse(const std::string& sql) {
  auto query = ParseQuery(sql);
  TRIPRIV_CHECK(query.ok()) << sql;
  return std::move(query).value();
}

/// 120 distinct queries cycling aggregates, columns, and thresholds.
/// Distinct predicates keep the audit ladder doing real query-set work
/// instead of short-circuiting repeats into cheap refusals.
std::vector<StatQuery> WorkloadBatch() {
  static const char* const kAggs[] = {"SUM(blood_pressure)", "COUNT(*)",
                                      "AVG(weight)", "SUM(weight)"};
  static const char* const kCols[] = {"height", "weight", "blood_pressure"};
  std::vector<StatQuery> batch;
  batch.reserve(kQueriesPerRound);
  for (int i = 0; i < kQueriesPerRound; ++i) {
    const std::string sql = std::string("SELECT ") + kAggs[i % 4] +
                            " FROM t WHERE " + kCols[i % 3] +
                            (i % 2 != 0 ? " < " : " >= ") +
                            std::to_string(60 + (i * 7) % 120);
    batch.push_back(Parse(sql));
  }
  return batch;
}

QueryServiceConfig BenchConfig() {
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 2;
  config.faults.backend_fault_rate = 0.3;
  return config;
}

/// One timed trial: kRounds fresh services each serving the full batch.
/// `bundle` != null attaches the instruments and publishes once per round.
double TrialSeconds(const std::vector<StatQuery>& batch, const DataTable& data,
                    obs::ServiceMetrics* bundle) {
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    MemWalIo wal;
    auto service = QueryService::Create(data, BenchConfig(), &wal);
    TRIPRIV_CHECK(service.ok());
    if (bundle != nullptr) service->AttachInstruments(bundle);
    BatchExecutor executor(&*service, nullptr);
    auto answers = executor.ExecuteQueryBatch(batch);
    TRIPRIV_CHECK(answers.size() == batch.size());
    if (bundle != nullptr) service->PublishMetrics();
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace
}  // namespace tripriv

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv bench: observability overhead ===\n");
#ifdef TRIPRIV_OBS_DISABLED
  std::printf("build: TRIPRIV_OBS=OFF (instruments compiled out; this run "
              "is the reference arm)\n");
#else
  std::printf("build: TRIPRIV_OBS=ON (instruments compiled in)\n");
#endif
  // A serving-sized table: per-query cost must reflect a real scan, not the
  // paper's 11-row illustration, or fixed per-span nanoseconds dominate.
  const DataTable data = MakeClinicalTrial(2000, 7);
  const std::vector<StatQuery> batch = WorkloadBatch();

  // The instrumented arm reuses one bundle across rounds (the production
  // shape: one registry for the process lifetime). SimClock placement
  // mirrors the service's: spans only need a monotone tick source here.
  SimClock clock;
  obs::MetricsRegistry registry;
  obs::TraceRecorder trace(&clock, 512);
  obs::PrivacyBudgetAccountant accountant(&registry);
  auto bundle = obs::ServiceMetrics::Create(&registry, &trace, &accountant, {});
  TRIPRIV_CHECK(bundle.ok());

  // Interleave the arms and keep each arm's best trial: min-of-N is robust
  // against one-off scheduler noise in a shared CI box.
  double baseline = 1e100;
  double instrumented = 1e100;
  TrialSeconds(batch, data, nullptr);  // warm-up, untimed
  for (int trial = 0; trial < kTrials; ++trial) {
    baseline = std::min(baseline, TrialSeconds(batch, data, nullptr));
    instrumented = std::min(instrumented, TrialSeconds(batch, data, &*bundle));
  }
  const double overhead = 100.0 * (instrumented - baseline) / baseline;
  std::printf("workload: %d rounds x %zu queries, audit policy, fault rate "
              "0.3\n\n", kRounds, batch.size());
  std::printf("baseline      (no instruments):   %8.3f ms\n",
              1e3 * baseline);
  std::printf("instrumented  (bundle attached):  %8.3f ms\n",
              1e3 * instrumented);
  std::printf("overhead:                         %+8.2f %%  (budget: < 5%%)\n",
              overhead);

  // CI artifact: the instrumented run's exports, proving the dump contains
  // only allowlisted labels and numeric payloads.
  std::printf("\n--- metrics snapshot (JSON) ---\n%s\n",
              obs::ToJson(registry.Snapshot()).c_str());
  std::printf("--- trace (JSON) ---\n%s\n", obs::TraceToJson(trace).c_str());
  return overhead < 5.0 ? 0 : 1;
}
