// Ablation B: the Agrawal-Srikant reconstruction behind the use-specific
// non-crypto PPDM row of Table 2.
//
// Sweep the noise level sigma (as a fraction of the perturbed attribute's
// range) and report, per Agrawal-Srikant:
//   * distribution-reconstruction fidelity (total variation between the
//     reconstructed histogram and the original one);
//   * decision-tree accuracy trained on (a) original, (b) perturbed,
//     (c) by-class reconstructed data — evaluated on clean test data.
// The paper's shape: accuracy(reconstructed) tracks accuracy(original) far
// better than accuracy(perturbed), which is what makes noise masking a
// usable owner-privacy technology.

#include <cstdio>

#include "ppdm/decision_tree.h"
#include "sdc/noise.h"
#include "stats/histogram.h"
#include "table/datasets.h"

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv ablation B: noise vs reconstruction "
              "(Agrawal-Srikant [5]) ===\n");
  const DataTable train = MakeClassification(4000, 2, 21);
  const DataTable test = MakeClassification(1000, 2, 22);
  const size_t age_col = 0;
  const double age_range = 60.0;  // ages span 20-80

  auto clean_tree = DecisionTree::Train(train, "group");
  if (!clean_tree.ok()) return 1;
  const double clean_acc = *clean_tree->Accuracy(test);
  std::printf("baseline decision-tree accuracy on original data: %.1f%%\n\n",
              100.0 * clean_acc);

  std::printf("%10s  %10s  %12s  %12s  %12s\n", "sigma/range", "recon TV",
              "acc original", "acc perturbed", "acc reconstr.");
  for (double frac : {0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0}) {
    const double sigma = frac * age_range;
    auto perturbed = AddFixedNoise(train, sigma, age_col, 23);
    if (!perturbed.ok()) return 1;

    // Distribution fidelity on the perturbed attribute.
    auto orig_col = train.NumericColumn(age_col).value();
    auto pert_col = perturbed->NumericColumn(age_col).value();
    auto dist = ReconstructDistribution(pert_col, sigma);
    if (!dist.ok()) return 1;
    Histogram orig_hist =
        Histogram::FromValues(orig_col, dist->lo, dist->hi,
                              dist->probabilities.size());
    const double tv =
        TotalVariation(orig_hist.Probabilities(), dist->probabilities);

    auto noisy_tree = DecisionTree::Train(*perturbed, "group");
    auto reco_table =
        ReconstructTableByClass(*perturbed, {age_col}, sigma, "group");
    if (!noisy_tree.ok() || !reco_table.ok()) return 1;
    auto reco_tree = DecisionTree::Train(*reco_table, "group");
    if (!reco_tree.ok()) return 1;

    std::printf("%9.0f%%  %10.3f  %11.1f%%  %12.1f%%  %12.1f%%\n",
                100.0 * frac, tv, 100.0 * clean_acc,
                100.0 * *noisy_tree->Accuracy(test),
                100.0 * *reco_tree->Accuracy(test));
  }
  std::printf("\npaper's shape ([5] Figs. 5-7): reconstructed-data accuracy "
              "stays near the original\nwell past sigma = 25%% of range, "
              "while raw perturbed training degrades.\n");
  return 0;
}
