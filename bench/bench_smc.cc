// Ablation E: the cost of crypto PPDM's "high" owner privacy.
//
// google-benchmark microbenchmarks of the secure-multiparty substrate:
//   * secure sum vs number of parties and vector width (with communication
//     counters);
//   * secure scalar product (Paillier) vs vector length;
//   * Shamir share/reconstruct;
//   * distributed ID3 training vs centralized training on the union —
//     the overhead Table 2's crypto-PPDM row buys its owner privacy with.

#include <benchmark/benchmark.h>

#include "ppdm/decision_tree.h"
#include "smc/distributed_id3.h"
#include "smc/scalar_product.h"
#include "smc/secure_sum.h"
#include "smc/shamir.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

void BM_SecureSum(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  const size_t width = static_cast<size_t>(state.range(1));
  std::vector<std::vector<uint64_t>> counts(parties,
                                            std::vector<uint64_t>(width, 7));
  size_t bytes = 0;
  for (auto _ : state) {
    PartyNetwork net(parties, 3);
    auto sums = SecureSumCounts(&net, counts);
    benchmark::DoNotOptimize(sums);
    bytes = net.bytes_transferred();
  }
  state.counters["bytes/round"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SecureSum)
    ->Args({2, 16})
    ->Args({4, 16})
    ->Args({8, 16})
    ->Args({4, 1})
    ->Args({4, 256});

void BM_PlaintextSum(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  const size_t width = 16;
  std::vector<std::vector<uint64_t>> counts(parties,
                                            std::vector<uint64_t>(width, 7));
  for (auto _ : state) {
    std::vector<uint64_t> sums(width, 0);
    for (const auto& vec : counts) {
      for (size_t j = 0; j < width; ++j) sums[j] += vec[j];
    }
    benchmark::DoNotOptimize(sums);
  }
}
BENCHMARK(BM_PlaintextSum)->Arg(2)->Arg(4)->Arg(8);

void BM_SecureScalarProduct(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  std::vector<BigInt> a;
  std::vector<BigInt> b;
  for (size_t i = 0; i < dim; ++i) {
    a.push_back(BigInt(static_cast<int64_t>(i % 5)));
    b.push_back(BigInt(static_cast<int64_t>(i % 3)));
  }
  for (auto _ : state) {
    PartyNetwork net(2, 7);
    auto dot = SecureScalarProduct(&net, a, b, 256);
    benchmark::DoNotOptimize(dot);
  }
}
BENCHMARK(BM_SecureScalarProduct)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_ShamirShareReconstruct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t t = n / 2 + 1;
  const BigInt prime = BigInt::FromString("2305843009213693951").value();
  Rng rng(9);
  for (auto _ : state) {
    auto shares = ShamirShareSecret(BigInt(123456789), n, t, prime, &rng);
    auto secret = ShamirReconstruct(*shares, prime);
    benchmark::DoNotOptimize(secret);
  }
}
BENCHMARK(BM_ShamirShareReconstruct)->Arg(4)->Arg(8)->Arg(16);

void BM_DistributedId3(benchmark::State& state) {
  const size_t parties = static_cast<size_t>(state.range(0));
  DataTable train = MakeClassification(600, 3, 11);
  std::vector<DataTable> partitions;
  for (size_t p = 0; p < parties; ++p) {
    std::vector<size_t> rows;
    for (size_t r = p; r < train.num_rows(); r += parties) rows.push_back(r);
    partitions.push_back(train.SelectRows(rows));
  }
  DistributedId3Config config;
  config.max_depth = 4;
  size_t bytes = 0;
  double accuracy = 0.0;
  for (auto _ : state) {
    PartyNetwork net(parties, 13);
    auto tree = DistributedId3Tree::Train(partitions, "group", config, &net);
    benchmark::DoNotOptimize(tree);
    bytes = net.bytes_transferred();
    if (tree.ok()) accuracy = tree->Accuracy(train).value();
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["train_acc_pct"] = 100.0 * accuracy;
}
BENCHMARK(BM_DistributedId3)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CentralizedTreeBaseline(benchmark::State& state) {
  DataTable train = MakeClassification(600, 3, 11);
  DecisionTreeConfig config;
  config.max_depth = 4;
  double accuracy = 0.0;
  for (auto _ : state) {
    auto tree = DecisionTree::Train(train, "group", config);
    benchmark::DoNotOptimize(tree);
    if (tree.ok()) accuracy = tree->Accuracy(train).value();
  }
  state.counters["train_acc_pct"] = 100.0 * accuracy;
}
BENCHMARK(BM_CentralizedTreeBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tripriv

BENCHMARK_MAIN();
