// Recursive-PIR transport gate: upload must collapse, compute must not.
//
// The flat 2-server scheme ships 2n selection bits per read — 2 Mbit at
// 2^20 records, the "impractical communication cost" the paper grades PIR
// down for. The recursive d-dimensional scheme (pir/recursive_pir.h) ships
// one 64-bit seed plus (2^d - 1) explicit axis bitmaps, O(d * n^(1/d)).
// This bench measures both halves of that trade at 2^16 / 2^18 / 2^20
// records of 64 bytes and enforces the acceptance bar with its exit code:
//
//   * upload gate: at 2^20 records the recursive upload per read (d = 2
//     and d = 3) must be < 5% of the flat path's 2n bits;
//   * compute gate: at 2^20 records the d = 2 server compute per read
//     (seed/bitmap expansion + the preprocessed XOR sweep, summed over all
//     2^d replicas) must be within 1.2x of the flat kernel's two sweeps.
//     d = 3 is reported alongside: its per-replica selections are sparser,
//     so the skip-8 fast path matters more and the ratio is informative,
//     not gated.
//
// Server compute is timed in isolation: queries are built untimed (client
// work), then the answer calls — Answer for the flat pair,
// AnswerHypercubeQuery per replica for the recursive fleet — are timed
// min-of-trials, robust against one-off scheduler noise in a shared CI
// box. One preprocessed server stands in for all replicas of a scheme
// (replicas are byte-identical; answers depend only on the queries), so
// the bench holds one database copy per scheme, not 2^d.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "pir/it_pir.h"
#include "pir/recursive_pir.h"

namespace tripriv {
namespace {

constexpr size_t kRecordSize = 64;
constexpr size_t kReadsPerTrial = 8;
constexpr int kTrials = 5;
constexpr double kUploadBudgetPercent = 5.0;
constexpr double kComputeBudgetRatio = 1.2;

std::vector<std::vector<uint8_t>> MakeRecords(size_t n) {
  std::vector<std::vector<uint8_t>> records(n,
                                            std::vector<uint8_t>(kRecordSize));
  Rng rng(23);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

/// Read targets spread across the table (deterministic, distinct strides).
std::vector<size_t> ReadIndices(size_t n) {
  std::vector<size_t> indices;
  indices.reserve(kReadsPerTrial);
  for (size_t i = 0; i < kReadsPerTrial; ++i) {
    indices.push_back((i * (n / kReadsPerTrial)) + i * 37 % (n / 2));
  }
  for (auto& idx : indices) idx %= n;
  return indices;
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SchemeResult {
  size_t upload_bits_per_read = 0;
  double server_ms_per_read = 0.0;
};

/// Flat 2-server baseline: queries pre-drawn, the timed region is the two
/// n-bit XOR sweeps per read against the preprocessed layout.
SchemeResult RunFlat(const std::vector<std::vector<uint8_t>>& records) {
  const size_t n = records.size();
  auto server = XorPirServer::Create(records);
  TRIPRIV_CHECK(server.ok());
  server->Preprocess();

  Rng rng(41);
  const auto indices = ReadIndices(n);
  std::vector<std::vector<uint8_t>> queries_a, queries_b;
  for (size_t idx : indices) {
    queries_a.push_back(RandomSelectionBits(n, &rng));
    queries_b.push_back(queries_a.back());
    FlipSelectionBit(&queries_b.back(), idx);
  }

  double best_ms = 1e100;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < indices.size(); ++i) {
      auto a = server->Answer(queries_a[i]);
      auto b = server->Answer(queries_b[i]);
      TRIPRIV_CHECK(a.ok() && b.ok());
    }
    best_ms = std::min(best_ms, MsSince(start));
  }
  return {2 * n, best_ms / static_cast<double>(kReadsPerTrial)};
}

/// Recursive scheme at dimension `d`: queries pre-built, the timed region
/// is AnswerHypercubeQuery over all 2^d replicas per read (expansion + the
/// preprocessed sweep — the full server-side cost of the compressed query).
SchemeResult RunRecursive(const std::vector<std::vector<uint8_t>>& records,
                          size_t d, HypercubeGeometry* geometry_out) {
  const size_t n = records.size();
  auto g = HypercubeGeometry::Balanced(n, d);
  TRIPRIV_CHECK(g.ok());
  *geometry_out = *g;
  auto server = XorPirServer::Create(records);
  TRIPRIV_CHECK(server.ok());
  server->Preprocess();

  Rng rng(43);
  const auto indices = ReadIndices(n);
  std::vector<std::vector<HypercubeQuery>> queries;
  size_t upload_bits = 0;
  for (size_t idx : indices) {
    auto q = BuildHypercubeQueries(*g, idx, &rng);
    TRIPRIV_CHECK(q.ok());
    for (const auto& query : *q) upload_bits += query.upload_bits(*g);
    queries.push_back(*std::move(q));
  }

  PirSessionRegistry sessions;
  auto* session = sessions.Establish(/*tenant_class=*/0, *g, /*epoch=*/0);
  double best_ms = 1e100;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto start = std::chrono::steady_clock::now();
    for (const auto& read : queries) {
      for (const auto& query : read) {
        auto answer = AnswerHypercubeQuery(&*server, query, *g,
                                           /*pool=*/nullptr, session);
        TRIPRIV_CHECK(answer.ok());
      }
    }
    best_ms = std::min(best_ms, MsSince(start));
  }
  return {upload_bits / kReadsPerTrial,
          best_ms / static_cast<double>(kReadsPerTrial)};
}

}  // namespace
}  // namespace tripriv

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv bench: recursive d-dimensional PIR ===\n");
  std::printf("records: %zu bytes each; %zu reads/trial, %d trials "
              "(min kept); servers preprocessed\n\n",
              kRecordSize, kReadsPerTrial, kTrials);

  const size_t kSizes[] = {size_t{1} << 16, size_t{1} << 18, size_t{1} << 20};
  const size_t kGateN = size_t{1} << 20;
  bool all_pass = true;
  double gate_upload_d2 = 0, gate_upload_d3 = 0, gate_compute_d2 = 0;

  for (size_t n : kSizes) {
    const auto records = MakeRecords(n);
    const auto flat = RunFlat(records);
    std::printf("[n=%zu]\n", n);
    std::printf("  flat d=1 side=%zu servers=2 upload_bits=%zu "
                "server_ms=%.3f\n",
                n, flat.upload_bits_per_read, flat.server_ms_per_read);
    for (size_t d : {size_t{2}, size_t{3}}) {
      HypercubeGeometry g;
      const auto rec = RunRecursive(records, d, &g);
      const double upload_pct = 100.0 *
                                static_cast<double>(rec.upload_bits_per_read) /
                                static_cast<double>(flat.upload_bits_per_read);
      const double compute_ratio =
          rec.server_ms_per_read / flat.server_ms_per_read;
      std::printf("  recursive d=%zu side=%zu servers=%zu upload_bits=%zu "
                  "upload_vs_flat=%.3f%% server_ms=%.3f "
                  "compute_vs_flat=%.3fx\n",
                  d, g.side, g.num_servers(), rec.upload_bits_per_read,
                  upload_pct, rec.server_ms_per_read, compute_ratio);
      if (n == kGateN && d == 2) {
        gate_upload_d2 = upload_pct;
        gate_compute_d2 = compute_ratio;
      }
      if (n == kGateN && d == 3) gate_upload_d3 = upload_pct;
    }
    std::printf("\n");
  }

  const bool upload_d2_ok = gate_upload_d2 < kUploadBudgetPercent;
  const bool upload_d3_ok = gate_upload_d3 < kUploadBudgetPercent;
  const bool compute_d2_ok = gate_compute_d2 <= kComputeBudgetRatio;
  all_pass = upload_d2_ok && upload_d3_ok && compute_d2_ok;
  std::printf("gate: upload  d=2 @ n=%zu: %.3f%% of flat (budget < %.0f%%): "
              "%s\n",
              kGateN, gate_upload_d2, kUploadBudgetPercent,
              upload_d2_ok ? "PASS" : "FAIL");
  std::printf("gate: upload  d=3 @ n=%zu: %.3f%% of flat (budget < %.0f%%): "
              "%s\n",
              kGateN, gate_upload_d3, kUploadBudgetPercent,
              upload_d3_ok ? "PASS" : "FAIL");
  std::printf("gate: compute d=2 @ n=%zu: %.3fx flat (budget <= %.1fx): %s\n",
              kGateN, gate_compute_d2, kComputeBudgetRatio,
              compute_d2_ok ? "PASS" : "FAIL");
  std::printf("overall: %s\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
