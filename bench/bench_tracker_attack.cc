// Ablation C: the tracker attack (Section 3's "difficult since the 1980s").
//
// Sweep the query-set-size threshold t and the protection mode, and report
// whether the Schloerer tracker still extracts an isolated respondent's
// confidential value. Expected shape: pure size restriction never stops the
// tracker (only inflates its query count); auditing refuses the padded
// pair; output noise answers but distorts the inference.

#include <cmath>
#include <cstdio>

#include "querydb/tracker.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

/// Builds a trial database with one planted extreme respondent that every
/// tracker run targets.
DataTable TargetedTrial(size_t n, uint64_t seed) {
  DataTable data = MakeClinicalTrial(n, seed);
  // Plant the paper's short-and-heavy respondent with blood pressure 146.
  auto st = data.AppendRow({Value(160), Value(110), Value(146), Value("N")});
  TRIPRIV_CHECK(st.ok());
  return data;
}

}  // namespace
}  // namespace tripriv

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv ablation C: tracker attack vs protection modes "
              "===\n");
  const size_t n = 150;
  const Predicate target = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  std::printf("database: synthetic trial, n=%zu+1, target = the unique "
              "(height<165, weight>105) respondent, true value 146\n\n",
              n);

  std::printf("--- query-set-size restriction, threshold sweep ---\n");
  std::printf("%4s  %12s  %10s  %14s  %12s\n", "t", "direct query",
              "tracker?", "inferred value", "queries used");
  for (size_t t : {2u, 3u, 5u, 8u, 12u, 20u}) {
    ProtectionConfig config;
    config.mode = ProtectionMode::kQuerySetSize;
    config.min_query_set_size = t;
    StatDatabase db(TargetedTrial(n, 31), config);
    StatQuery direct;
    direct.fn = AggregateFn::kCount;
    direct.where = target;
    auto refused = db.Query(direct);
    const char* direct_state =
        refused.ok() && refused->refused ? "refused" : "answered";
    auto tracker = FindTracker(&db, "height", 140, 205, 24);
    if (!tracker.has_value()) {
      std::printf("%4zu  %12s  %10s\n", t, direct_state, "none found");
      continue;
    }
    auto attack = TrackerAttack(&db, target, "blood_pressure", *tracker);
    if (!attack.ok()) return 1;
    if (attack->succeeded) {
      std::printf("%4zu  %12s  %10s  %14.1f  %12zu\n", t, direct_state,
                  "found", attack->inferred_sum, attack->queries_used);
    } else {
      std::printf("%4zu  %12s  %10s  %14s  %12zu\n", t, direct_state, "found",
                  "blocked", attack->queries_used);
    }
  }

  std::printf("\n--- protection-mode comparison at t = 5 ---\n");
  std::printf("%-16s  %10s  %16s  %18s\n", "mode", "attack?",
              "inferred value", "error vs truth");
  for (ProtectionMode mode :
       {ProtectionMode::kNone, ProtectionMode::kQuerySetSize,
        ProtectionMode::kAudit, ProtectionMode::kOutputNoise}) {
    ProtectionConfig config;
    config.mode = mode;
    config.min_query_set_size = 5;
    config.noise_fraction = 0.25;
    config.seed = 33;
    StatDatabase db(TargetedTrial(n, 31), config);
    auto tracker = FindTracker(&db, "height", 140, 205, 24);
    if (!tracker.has_value()) {
      std::printf("%-16s  %10s\n", ProtectionModeToString(mode),
                  "no tracker");
      continue;
    }
    auto attack = TrackerAttack(&db, target, "blood_pressure", *tracker);
    if (!attack.ok()) return 1;
    if (attack->succeeded) {
      std::printf("%-16s  %10s  %16.1f  %18.1f\n",
                  ProtectionModeToString(mode), "succeeds",
                  attack->inferred_sum,
                  std::fabs(attack->inferred_sum - 146.0));
    } else {
      std::printf("%-16s  %10s  (%s)\n", ProtectionModeToString(mode),
                  "blocked", attack->failure_reason.c_str());
    }
  }
  std::printf("\npaper's shape: size restriction alone is defeated exactly "
              "(error 0); auditing\nrefuses the padded pair; noise leaves "
              "the answer blurred — respondent privacy in\ninteractive "
              "databases needs more than query-set-size control "
              "(Section 3, [22]).\n");
  return 0;
}
