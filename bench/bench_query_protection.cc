// Ablation H: the utility price of each interactive-protection mode.
//
// Section 3 lists three strategies for protecting interactive statistical
// databases — restriction, perturbation, intervals. This ablation runs a
// fixed workload of legitimate analyst queries against each mode and
// reports refusal rate and answer error, alongside the respondent
// protection each mode bought against the tracker (bench_tracker_attack
// measures the attack side in depth).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "querydb/protection.h"
#include "querydb/tracker.h"
#include "table/datasets.h"

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv ablation H: protection modes vs analyst utility "
              "===\n");
  const DataTable census = MakeCensus(2000, 7);
  // A legitimate analyst workload: population-level statistics.
  std::vector<std::string> workload;
  for (int age = 20; age <= 80; age += 10) {
    workload.push_back("SELECT COUNT(*) FROM c WHERE age >= " +
                       std::to_string(age));
    workload.push_back("SELECT AVG(income) FROM c WHERE age >= " +
                       std::to_string(age) + " AND age < " +
                       std::to_string(age + 10));
  }
  // Ground truth from an unprotected engine.
  ProtectionConfig exact_config;
  exact_config.mode = ProtectionMode::kNone;
  StatDatabase exact(census, exact_config);

  std::printf("workload: %zu aggregate queries over the census extract\n\n",
              workload.size());
  std::printf("%-16s  %10s  %12s  %14s\n", "mode", "refused", "mean |err|",
              "tracker risk");
  for (ProtectionMode mode :
       {ProtectionMode::kNone, ProtectionMode::kQuerySetSize,
        ProtectionMode::kAudit, ProtectionMode::kOutputNoise,
        ProtectionMode::kCamouflage, ProtectionMode::kDifferentialPrivacy}) {
    ProtectionConfig config;
    config.mode = mode;
    config.min_query_set_size = 5;
    config.noise_fraction = 0.1;
    config.camouflage_fraction = 0.05;
    config.epsilon = 1.0;
    config.seed = 13;
    StatDatabase db(census, config);
    size_t refused = 0;
    double err = 0.0;
    size_t answered = 0;
    for (const auto& sql : workload) {
      auto truth = exact.Query(sql);
      auto masked = db.Query(sql);
      if (!truth.ok() || !masked.ok()) continue;
      if (masked->refused) {
        ++refused;
        continue;
      }
      const double got = masked->interval_lo != masked->interval_hi
                             ? 0.5 * (masked->interval_lo + masked->interval_hi)
                             : masked->value;
      if (std::fabs(truth->value) > 1e-9) {
        err += std::fabs(got - truth->value) / std::fabs(truth->value);
        ++answered;
      }
    }
    // Tracker risk: does the attack extract the target group's true total?
    ProtectionConfig attack_config = config;
    StatDatabase attack_db(census, attack_config);
    const Predicate target = Predicate::And(
        Predicate::Compare("age", CompareOp::kEq, Value(43)),
        Predicate::Compare("education", CompareOp::kEq, Value(16)));
    const char* risk = "n/a";
    if (auto tracker = FindTracker(&attack_db, "age", 18, 90, 24)) {
      auto attack = TrackerAttack(&attack_db, target, "income", *tracker);
      if (attack.ok() && !attack->succeeded) {
        risk = "blocked";
      } else if (attack.ok()) {
        // Compare the inference against ground truth: exact recovery means
        // the protection bought nothing against the tracker.
        StatQuery truth_query;
        truth_query.fn = AggregateFn::kSum;
        truth_query.attribute = "income";
        truth_query.where = target;
        auto truth = exact.Query(truth_query);
        if (truth.ok()) {
          const double rel =
              std::fabs(attack->inferred_sum - truth->value) /
              std::max(1.0, std::fabs(truth->value));
          risk = rel < 1e-9 ? "EXPOSED" : "blurred";
        }
      }
    }
    std::printf("%-16s  %9.1f%%  %11.2f%%  %14s\n",
                ProtectionModeToString(mode),
                100.0 * static_cast<double>(refused) / workload.size(),
                answered > 0 ? 100.0 * err / static_cast<double>(answered) : 0.0,
                risk);
  }
  std::printf("\npaper's shape (Section 3): every protection mode trades "
              "analyst utility (refusals\nor error) for respondent "
              "protection, and none of them gives the USER any privacy —\n"
              "the query log sees everything either way.\n");
  return 0;
}
