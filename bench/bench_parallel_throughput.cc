// Parallel batched execution throughput: what the thread pool buys.
//
// The acceptance bar for the execution subsystem is a >= 2x speedup on 4
// threads for a 10k-record two-server PIR batch read versus the serial
// path, with bit-identical answers (the determinism suite asserts the
// equality; this file measures the speed). Also covered: the sharded
// single-answer kernel, MDAV distance scans, and the service batch path.
//
// All benchmarks use wall-clock time (UseRealTime): the work happens on
// pool workers, so the default main-thread CPU accounting would report
// only the barrier wait. Hitting the 2x bar requires >= 4 physical cores;
// on a single-core host the threaded rows sit at ~1x serial, which is the
// correct reading (the pool adds handoff cost but never changes results).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "pir/it_pir.h"
#include "sdc/microaggregation.h"
#include "service/batch_executor.h"
#include "service/pir_failover.h"
#include "service/query_service.h"
#include "table/datasets.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

constexpr size_t kPirRecords = 10000;
constexpr size_t kPirRecordSize = 64;
constexpr size_t kBatchSize = 64;

std::vector<std::vector<uint8_t>> MakeRecords(size_t n, size_t size) {
  std::vector<std::vector<uint8_t>> records(n, std::vector<uint8_t>(size));
  Rng rng(5);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

std::vector<size_t> MakeIndices(size_t count, size_t n) {
  std::vector<size_t> indices(count);
  Rng rng(6);
  for (auto& i : indices) i = static_cast<size_t>(rng.UniformU64(n));
  return indices;
}

/// The headline number: a 10k-record, 64-batch two-server PIR read at
/// thread counts {0 (serial), 1, 2, 4, 8}. Throughput in reads/s; the 4-
/// thread row must be >= 2x the 0-thread row.
void BM_TwoServerPirBatchRead(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto records = MakeRecords(kPirRecords, kPirRecordSize);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  const auto indices = MakeIndices(kBatchSize, kPirRecords);
  ThreadPool pool(threads);
  Rng rng(9);
  for (auto _ : state) {
    auto answers = TwoServerPirBatchRead(&*a, &*b, indices, &rng, &pool);
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSize));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_TwoServerPirBatchRead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// One large sharded answer (the per-query kernel on a big database).
void BM_ShardedAnswerKernel(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto records = MakeRecords(65536, 64);
  auto server = XorPirServer::Create(records);
  Rng rng(11);
  const auto selection = RandomSelectionBits(records.size(), &rng);
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto answer = server->ComputeAnswer(selection, &pool);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ShardedAnswerKernel)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Failover-client batch reads through the service executor.
void BM_ServicePirBatch(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto records = MakeRecords(4096, kPirRecordSize);
  SimClock clock;
  auto pir = FailoverPirClient::Build(records, 2, RetryPolicy{}, &clock, 17);
  MemWalIo wal;
  auto service = QueryService::Create(PaperDataset2(), QueryServiceConfig{},
                                      &wal);
  service->AttachPirBackend(&*pir);
  ThreadPool pool(threads);
  BatchExecutor executor(&*service, &pool);
  const auto indices = MakeIndices(kBatchSize, records.size());
  for (auto _ : state) {
    auto results = executor.ExecutePirBatch(indices, Deadline());
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchSize));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ServicePirBatch)
    ->Arg(0)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// MDAV with sharded distance scans on a table past the parallel threshold.
void BM_MdavParallel(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  DataTable data = MakeClinicalTrial(8000, 7);
  const auto cols = data.schema().QuasiIdentifierIndices();
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto result = MdavMicroaggregate(data, 25, cols, &pool);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_MdavParallel)
    ->Arg(0)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tripriv

BENCHMARK_MAIN();
