// Ablation G: footnote 3 quantified — k-anonymity vs the stronger models.
//
// The paper warns (footnote 3) that k-anonymity does not guarantee
// respondent privacy when classes share confidential values, and points to
// p-sensitive k-anonymity; the later literature added l-diversity and
// t-closeness. This bench k-anonymizes a census extract with MDAV for a
// sweep of k and measures, per release:
//   * identity disclosure (expected re-identification rate — what
//     k-anonymity bounds),
//   * attribute disclosure (homogeneity attack rate — what it does NOT),
//   * the p-sensitivity / entropy-l-diversity / t-closeness levels a data
//     protection officer would have to check before signing off.

#include <cstdio>

#include "sdc/anonymity.h"
#include "sdc/diversity.h"
#include "sdc/microaggregation.h"
#include "sdc/risk.h"
#include "table/datasets.h"

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv ablation G: anonymity models beyond k "
              "(footnote 3) ===\n");
  // Census extract: age/education numeric QIs; diagnosis is the
  // confidential attribute under attack.
  const DataTable census = MakeCensus(1200, 83);
  const std::vector<size_t> qi = {0, 3};  // age, education (numeric QIs)
  const size_t diagnosis = 5;
  std::printf("data: census extract, n=%zu, QIs = {age, education}, "
              "confidential = diagnosis\n\n",
              census.num_rows());

  std::printf("%4s  %10s  %12s  %12s  %8s  %10s  %9s\n", "k", "identity",
              "homogeneity", "p-sensitive", "entropy", "recursive",
              "t-close");
  std::printf("%4s  %10s  %12s  %12s  %8s  %10s  %9s\n", "", "disclosure",
              "attack", "level p", "l-div", "(3,2)?", "max EMD");
  for (size_t k : {2u, 3u, 5u, 10u, 20u, 40u}) {
    auto masked = MdavMicroaggregate(census, k, qi);
    if (!masked.ok()) return 1;
    const DataTable& release = masked->table;
    const double identity = ExpectedReidentificationRate(release, qi);
    const double homogeneity = HomogeneityAttackRate(release, qi, diagnosis);
    const size_t p = SensitivityLevel(release, qi, diagnosis);
    const double entropy = EntropyLDiversity(release, qi, diagnosis);
    auto recursive = IsRecursiveCLDiverse(release, qi, diagnosis, 3.0, 2);
    auto tclose = TClosenessMaxDistance(release, qi, diagnosis);
    if (!recursive.ok() || !tclose.ok()) return 1;
    std::printf("%4zu  %9.1f%%  %11.1f%%  %12zu  %8.2f  %10s  %9.3f\n", k,
                100.0 * identity, 100.0 * homogeneity, p, entropy,
                *recursive ? "yes" : "no", *tclose);
  }
  std::printf("\npaper's shape (footnote 3): identity disclosure falls as "
              "1/k, but small k leaves\nhomogeneous classes whose diagnosis "
              "leaks (homogeneity attack > 0, p = 1) — only\nlarger classes "
              "buy attribute-disclosure protection, and t-closeness keeps\n"
              "tightening after l-diversity saturates.\n");
  return 0;
}
