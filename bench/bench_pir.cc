// Ablation D: PIR cost — what user privacy charges per query.
//
// google-benchmark microbenchmarks of the user-privacy substrate:
//   * 2-server XOR PIR and 4-server cube PIR vs database size (the cube
//     scheme trades servers for O(sqrt n) upload);
//   * single-server computational PIR (Paillier) vs database size;
//   * the plaintext baseline (no user privacy);
//   * private aggregate COUNT (the Section 3 query) vs grid size.
// Communication per query is reported as a counter next to the time.

#include <benchmark/benchmark.h>

#include "pir/aggregate.h"
#include "pir/cpir.h"
#include "pir/it_pir.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

std::vector<std::vector<uint8_t>> MakeRecords(size_t n, size_t size) {
  std::vector<std::vector<uint8_t>> records(n, std::vector<uint8_t>(size));
  Rng rng(5);
  for (auto& r : records) {
    for (auto& b : r) b = static_cast<uint8_t>(rng.NextU64());
  }
  return records;
}

void BM_PlaintextRead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto records = MakeRecords(n, 64);
  auto server = XorPirServer::Create(records);
  Rng rng(7);
  for (auto _ : state) {
    const size_t idx = static_cast<size_t>(rng.UniformU64(n));
    benchmark::DoNotOptimize(server->record(idx));
  }
  state.counters["upload_bits"] = 0;
}
BENCHMARK(BM_PlaintextRead)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_TwoServerPir(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto records = MakeRecords(n, 64);
  auto a = XorPirServer::Create(records);
  auto b = XorPirServer::Create(records);
  Rng rng(9);
  PirStats stats;
  for (auto _ : state) {
    const size_t idx = static_cast<size_t>(rng.UniformU64(n));
    stats.Reset();  // PirStats accumulates; keep the counter per-query
    auto got = TwoServerPirRead(&*a, &*b, idx, &rng, &stats);
    benchmark::DoNotOptimize(got);
  }
  state.counters["upload_bits"] = static_cast<double>(stats.upload_bits);
}
BENCHMARK(BM_TwoServerPir)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FourServerCubePir(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto records = MakeRecords(n, 64);
  std::vector<XorPirServer> servers;
  for (int i = 0; i < 4; ++i) servers.push_back(*XorPirServer::Create(records));
  std::array<XorPirServer*, 4> ptrs{&servers[0], &servers[1], &servers[2],
                                    &servers[3]};
  Rng rng(11);
  PirStats stats;
  for (auto _ : state) {
    const size_t idx = static_cast<size_t>(rng.UniformU64(n));
    stats.Reset();  // PirStats accumulates; keep the counter per-query
    auto got = FourServerCubePirRead(ptrs, idx, &rng, &stats);
    benchmark::DoNotOptimize(got);
  }
  state.counters["upload_bits"] = static_cast<double>(stats.upload_bits);
}
BENCHMARK(BM_FourServerCubePir)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_ComputationalPir(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> db(n);
  Rng rng(13);
  for (auto& v : db) v = rng.NextU64() >> 32;
  auto server = CpirServer::Create(db);
  auto client = CpirClient::Create(256, 15);
  for (auto _ : state) {
    const size_t idx = static_cast<size_t>(rng.UniformU64(n));
    auto got = client->Read(&*server, idx);
    benchmark::DoNotOptimize(got);
  }
  state.counters["upload_ctexts"] =
      static_cast<double>(client->last_upload_ciphertexts());
}
BENCHMARK(BM_ComputationalPir)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_PrivateAggregateCount(benchmark::State& state) {
  const int64_t step = state.range(0);
  DataTable data = MakeClinicalTrial(200, 17);
  std::vector<GridAxis> grid{{"height", 140, 205, step},
                             {"weight", 40, 160, step}};
  auto server = PrivateAggregateServer::Build(data, grid);
  auto client = PrivateAggregateClient::Create(256, 19);
  Predicate pred = Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
  for (auto _ : state) {
    auto count = client->Count(*server, pred);
    benchmark::DoNotOptimize(count);
  }
  state.counters["grid_cells"] = static_cast<double>(server->num_cells());
}
BENCHMARK(BM_PrivateAggregateCount)->Arg(13)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tripriv

BENCHMARK_MAIN();
