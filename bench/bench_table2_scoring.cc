// Experiment: Table 2 — the technology scoreboard.
//
// The paper scores 8 technology classes x 3 privacy dimensions
// qualitatively. This harness *measures* each cell with the attack suites
// of core/evaluator.h on a 400-record synthetic drug trial (4 numeric
// quasi-identifiers) and prints measured vs claimed grades plus the
// agreement summary EXPERIMENTS.md records.

#include <cstdio>

#include "core/evaluator.h"
#include "table/datasets.h"

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv experiment: Table 2 (empirical technology "
              "scoring) ===\n");
  std::printf("scenario: synthetic hypertension trial, n=400, QIs = {age, "
              "height, weight, cholesterol}\n");
  std::printf("attacks: record linkage (respondent), cell recovery within "
              "2%% of range (owner),\n"
              "         query-target guessing from the server view (user)\n\n");

  PrivacyEvaluator::Options options;
  options.seed = 7;
  PrivacyEvaluator evaluator(MakeExtendedTrial(400, 7), options);
  auto evals = evaluator.EvaluateAll();
  if (!evals.ok()) {
    std::printf("evaluation failed: %s\n", evals.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", PrivacyEvaluator::FormatScoreboard(*evals, true).c_str());

  std::printf("raw protection scores in [0, 1]:\n");
  std::printf("%-36s  %10s  %10s  %10s\n", "technology", "respondent", "owner",
              "user");
  for (const auto& eval : *evals) {
    std::printf("%-36s  %10.3f  %10.3f  %10.3f\n",
                TechnologyClassToString(eval.technology),
                eval.scores.respondent, eval.scores.owner, eval.scores.user);
  }

  size_t agreeing_cells = 0;
  size_t total_cells = 0;
  for (const auto& eval : *evals) {
    for (Dimension d : kAllDimensions) {
      ++total_cells;
      if (GradesAgree(eval.ClaimedGrade(d), eval.MeasuredGrade(d))) {
        ++agreeing_cells;
      }
    }
  }
  std::printf("\nagreement with the paper's Table 2 (within one grade band): "
              "%zu / %zu cells\n",
              agreeing_cells, total_cells);
  return agreeing_cells == total_cells ? 0 : 1;
}
