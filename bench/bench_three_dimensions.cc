// Ablation F: the utility cost of stacking privacy dimensions —
// the paper's closing research question ("the impact on data utility of
// offering the three dimensions of privacy ... should be investigated").
//
// Four deployments of the same 500-record trial dataset:
//   0 dims: publish original, serve plaintext queries
//   1 dim (respondent): k-anonymize (Section 6 recipe, microaggregation)
//   2 dims (respondent+owner): k-anonymize all attributes (generic PPDM)
//   3 dims (respondent+owner+user): 2-dim release + PIR for queries
// For each: the three empirical privacy scores, information loss, query
// answer error on a fixed statistical workload, and query latency class.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/advisor.h"
#include "core/evaluator.h"
#include "pir/aggregate.h"
#include "querydb/engine.h"
#include "sdc/information_loss.h"
#include "sdc/microaggregation.h"
#include "sdc/risk.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

/// Average relative error of a fixed aggregate workload evaluated on
/// `release` versus the original.
double WorkloadError(const DataTable& original, const DataTable& release) {
  const std::vector<std::string> workload = {
      "SELECT AVG(blood_pressure) FROM t WHERE age >= 60",
      "SELECT COUNT(*) FROM t WHERE weight > 90",
      "SELECT AVG(cholesterol) FROM t WHERE height < 170",
      "SELECT SUM(blood_pressure) FROM t WHERE age < 40",
  };
  double err = 0.0;
  size_t counted = 0;
  for (const auto& sql : workload) {
    auto query = ParseQuery(sql);
    if (!query.ok()) continue;
    auto truth = ExecuteQuery(original, *query);
    auto masked = ExecuteQuery(release, *query);
    if (!truth.ok() || !masked.ok() || truth->value == 0.0) continue;
    err += std::fabs(masked->value - truth->value) / std::fabs(truth->value);
    ++counted;
  }
  return counted > 0 ? err / static_cast<double>(counted) : 0.0;
}

}  // namespace
}  // namespace tripriv

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv ablation F: utility cost of 0/1/2/3 privacy "
              "dimensions (Section 6) ===\n");
  const DataTable data = MakeExtendedTrial(500, 29);
  const size_t k = 5;

  // Deployment releases.
  const DataTable original = data;
  auto resp_only = ApplySection6Recipe(data, k);  // QIs microaggregated
  if (!resp_only.ok()) return 1;
  // respondent + owner: also mask the confidential numeric attribute.
  std::vector<size_t> all_numeric;
  for (size_t c = 0; c < data.num_columns(); ++c) {
    if (data.schema().attribute(c).type != AttributeType::kCategorical) {
      all_numeric.push_back(c);
    }
  }
  auto resp_owner = MdavMicroaggregate(data, k, all_numeric);
  if (!resp_owner.ok()) return 1;

  struct Deployment {
    const char* name;
    const DataTable* release;
    bool pir;
  } deployments[] = {
      {"0 dims: original + plaintext queries", &original, false},
      {"1 dim : k-anon QIs (Section 6 recipe)", &resp_only->release, false},
      {"2 dims: k-anon all numeric attributes", &resp_owner->table, false},
      {"3 dims: 2-dim release + PIR queries", &resp_owner->table, true},
  };

  std::printf("\n%-40s  %6s  %6s  %6s  %8s  %10s  %12s\n", "deployment",
              "resp", "owner", "user", "IL1s", "query err", "query cost");
  for (const auto& dep : deployments) {
    // Empirical scores via the same attack primitives the Table 2
    // evaluator uses.
    auto linkage = DistanceLinkageAttack(data, *dep.release);
    if (!linkage.ok()) return 1;
    double owner_recovered = 0.0;
    {
      size_t recovered = 0;
      size_t total = 0;
      for (size_t c = 0; c < data.num_columns(); ++c) {
        if (data.schema().attribute(c).type == AttributeType::kCategorical) {
          for (size_t r = 0; r < data.num_rows(); ++r) {
            ++total;
            if (data.at(r, c) == dep.release->at(r, c)) ++recovered;
          }
        } else {
          auto rate = IntervalDisclosureRate(data, *dep.release, c, 2.0);
          if (!rate.ok()) return 1;
          recovered += static_cast<size_t>(*rate * data.num_rows());
          total += data.num_rows();
        }
      }
      owner_recovered = static_cast<double>(recovered) / total;
    }
    const double resp_score = 1.0 - linkage->correct_fraction;
    const double owner_score = 1.0 - owner_recovered;
    const double user_score = dep.pir ? 1.0 : 0.0;  // PIR hides predicates

    auto loss = MeasureInformationLoss(data, *dep.release, all_numeric);
    if (!loss.ok()) return 1;
    const double query_err = WorkloadError(data, *dep.release);

    // Query cost class: time one COUNT through the deployment's channel.
    double millis = 0.0;
    {
      const auto start = std::chrono::steady_clock::now();
      if (dep.pir) {
        std::vector<GridAxis> grid{{"age", 25, 85, 2},
                                   {"height", 140, 205, 2}};
        auto server = PrivateAggregateServer::Build(*dep.release, grid);
        auto client = PrivateAggregateClient::Create(256, 37);
        if (server.ok() && client.ok()) {
          auto count = client->Count(
              *server, Predicate::Compare("age", CompareOp::kGe, Value(61)));
          if (!count.ok()) return 1;
        }
      } else {
        auto query = ParseQuery("SELECT COUNT(*) FROM t WHERE age >= 61");
        if (query.ok()) {
          auto answer = ExecuteQuery(*dep.release, *query);
          if (!answer.ok()) return 1;
        }
      }
      millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    }
    std::printf("%-40s  %6.2f  %6.2f  %6.2f  %8.3f  %9.1f%%  %9.1f ms\n",
                dep.name, resp_score, owner_score, user_score, loss->il1s,
                100.0 * query_err, millis);
  }
  std::printf("\npaper's shape: each added dimension costs utility (IL1s, "
              "workload error) and/or\nlatency, but the Section 6 recipe "
              "keeps aggregate answers usable while covering\nall three "
              "dimensions — 'privacy for everyone' at a bounded penalty.\n");
  return 0;
}
