// Epoch flip costs: what a live mutable protected database pays per write.
//
// Three questions, one file. (1) Flip throughput by mutation batch size —
// the WAL + copy-on-write + incremental-MDAV + gate pipeline, end to end.
// (2) What incremental maintenance buys over a full recluster: the same
// maintenance call at dirty-set sizes from one row to the whole table
// (the last row IS the full-recluster baseline). (3) The read side under
// versioning: pinned two-server PIR batch reads through the epoch cache at
// several thread counts.
//
// Flips draw no randomness and the WAL device is in-memory, so the numbers
// isolate the protection pipeline itself, not disk or entropy.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pir/epoch_pir.h"
#include "sdc/incremental_mdav.h"
#include "service/epoch_service.h"
#include "table/datasets.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

constexpr size_t kRows = 2000;

EpochConfig BenchConfig() {
  EpochConfig config;
  config.k = 25;
  config.qi_cols = {0, 1};
  config.max_pending_mutations = 4096;
  return config;
}

/// End-to-end flip throughput by mutation batch size: every iteration
/// journals, rebuilds, re-clusters the dirty groups, re-verifies the
/// privacy gate, syncs the image, and publishes.
void BM_EpochFlip(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  MemWalIo wal;
  EpochStore store;
  auto db = EpochedDatabase::Create(MakeClinicalTrial(kRows, 3), BenchConfig(),
                                    &wal, &store);
  TRIPRIV_CHECK(db.ok()) << db.status().ToString();
  uint64_t next = 0;
  for (auto _ : state) {
    for (size_t m = 0; m < batch; ++m) {
      const uint64_t uid = next++ % kRows;
      TRIPRIV_CHECK(
          db->SubmitMutation(
                RowMutation::Update(uid, {160 + static_cast<int>(uid % 30),
                                          60 + static_cast<int>(uid % 40),
                                          140, "N"}))
              .ok());
    }
    auto flipped = db->Flip();
    TRIPRIV_CHECK(flipped.ok()) << flipped.status().ToString();
    benchmark::DoNotOptimize(flipped);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.counters["rows"] = static_cast<double>(kRows);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_EpochFlip)->Arg(1)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

/// The incremental-maintenance ablation: identical table, identical
/// previous grouping, dirty sets from a single row up to every row. The
/// full-table row is exactly what a non-incremental flip would pay.
void BM_IncrementalMdavMaintenance(benchmark::State& state) {
  const size_t dirty = static_cast<size_t>(state.range(0));
  const DataTable base = MakeClinicalTrial(4000, 7);
  const std::vector<size_t> cols = {0, 1};
  std::vector<uint64_t> uids(base.num_rows());
  for (size_t i = 0; i < uids.size(); ++i) uids[i] = i;

  // One bootstrap pass builds the previous epoch's grouping.
  auto bootstrap = IncrementalMdav(base, uids, cols, 25, {}, {});
  TRIPRIV_CHECK(bootstrap.ok());
  std::unordered_map<uint64_t, size_t> prev;
  for (size_t r = 0; r < uids.size(); ++r) {
    prev[uids[r]] = bootstrap->group_of_row[r];
  }
  std::vector<uint64_t> dirty_uids(dirty);
  for (size_t i = 0; i < dirty; ++i) dirty_uids[i] = i;

  size_t reclustered = 0;
  for (auto _ : state) {
    auto result = IncrementalMdav(base, uids, cols, 25, prev, dirty_uids);
    TRIPRIV_CHECK(result.ok());
    reclustered = result->rows_reclustered;
    benchmark::DoNotOptimize(result);
  }
  state.counters["dirty"] = static_cast<double>(dirty);
  state.counters["reclustered"] = static_cast<double>(reclustered);
}
BENCHMARK(BM_IncrementalMdavMaintenance)
    ->Arg(1)
    ->Arg(64)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

/// Pinned PIR batch reads through the epoch replica cache — the steady-
/// state read path a reader pays while writers build the next version.
void BM_PinnedEpochBatchRead(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  MemWalIo wal;
  EpochStore store;
  auto db = EpochedDatabase::Create(MakeClinicalTrial(kRows, 5), BenchConfig(),
                                    &wal, &store);
  TRIPRIV_CHECK(db.ok()) << db.status().ToString();
  EpochPirReader reader(db->manager());
  ThreadPool pool(threads);
  Rng rng(13);
  std::vector<size_t> indices(64);
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<size_t>(rng.UniformU64(kRows));
  }
  for (auto _ : state) {
    auto answers = reader.ReadBatch(indices, &rng, &pool);
    TRIPRIV_CHECK(answers.ok());
    benchmark::DoNotOptimize(answers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(indices.size()));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_PinnedEpochBatchRead)
    ->Arg(0)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tripriv

BENCHMARK_MAIN();
