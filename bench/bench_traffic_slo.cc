// SLO gate over the million-principal traffic mixes.
//
// Runs every named TrafficProfile mix — steady, diurnal, bursty, 100x
// flood, slow loris, and everything-at-once — through the full simulator
// (generator -> fair scheduler -> BatchExecutor -> QueryService), reads the
// per-class latency histograms back through obs::SloGate, and verdicts each
// mix against declared p50/p99 targets. Two properties gate the exit code:
//
//   1. SLO: every class inside its latency targets, in every mix. The
//      adversarial mixes are the point — the flood and loris tenants sit in
//      the "abusive" class with a loose budget, while interactive/batch/
//      analytics must hold the same tight targets they meet when unloaded.
//   2. Bounded harm: no overload, queue-full, or deadline shed ever lands
//      on a well-behaved class; abusers absorb their own overflow as typed
//      refusals.
//
// A nonzero exit is a regression signal CI treats like a failing test. The
// simulator is deterministic, so a verdict flip is a real behavior change,
// never run-to-run noise. With -DTRIPRIV_OBS=OFF the histograms are
// compiled out; the bounded-harm arm still gates, the SLO arm reports
// SKIPPED.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "service/traffic/simulator.h"
#include "service/traffic/traffic_profile.h"

namespace tripriv {
namespace {

using traffic::RunTrafficSimulation;
using traffic::SimulationReport;
using traffic::SimulatorConfig;
using traffic::TrafficProfile;

struct Mix {
  const char* name;
  TrafficProfile profile;
};

#ifndef TRIPRIV_OBS_DISABLED
// Latency targets in sim ticks. Well-behaved classes hold the same bar in
// every mix, flood included; the abusive class only promises "eventually".
std::vector<obs::SloTarget> Targets() {
  return {
      {"interactive", /*p50=*/64, /*p99=*/256},
      {"batch", /*p50=*/128, /*p99=*/512},
      {"analytics", /*p50=*/256, /*p99=*/1024},
      {"abusive", /*p50=*/65536, /*p99=*/65536},
      {"unattributed", /*p50=*/1, /*p99=*/1},  // no traffic: vacuous
  };
}
#endif

SimulatorConfig MixConfig(const TrafficProfile& profile) {
  SimulatorConfig config;
  config.profile = profile;
  // Overload-prone tuning (same as the fairness suite): the abusive queue
  // is deep enough that a flood must cross the global watermark, proving
  // the overload shed path picks its victims by fair share.
  config.scheduler.high_watermark = 128;
  config.scheduler.by_class[obs::kClassAbusive].queue_capacity = 512;
  config.num_windows = 48;
  config.drain_windows = 8;
  config.table_rows = 128;
  return config;
}

bool BoundedHarmHolds(const SimulationReport& report) {
  const uint8_t kWellBehaved[] = {obs::kClassInteractive, obs::kClassBatch,
                                  obs::kClassAnalytics};
  for (uint8_t cls : kWellBehaved) {
    const traffic::ClassTotals& totals = report.by_class[cls];
    if (totals.shed_overload != 0 || totals.shed_queue_full != 0 ||
        totals.shed_deadline != 0) {
      return false;
    }
  }
  return true;
}

void PrintTotals(const SimulationReport& report) {
  std::printf("  %-13s %9s %8s %11s %9s %9s\n", "class", "arrivals", "served",
              "queue_full", "overload", "deadline");
  for (uint8_t cls = 0; cls < obs::kNumTenantClasses; ++cls) {
    const traffic::ClassTotals& t = report.by_class[cls];
    if (t.arrivals == 0) continue;
    std::printf("  %-13s %9llu %8llu %11llu %9llu %9llu\n",
                obs::TenantClassLabel(cls),
                static_cast<unsigned long long>(t.arrivals),
                static_cast<unsigned long long>(t.served),
                static_cast<unsigned long long>(t.shed_queue_full),
                static_cast<unsigned long long>(t.shed_overload),
                static_cast<unsigned long long>(t.shed_deadline));
  }
}

}  // namespace
}  // namespace tripriv

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv bench: traffic SLO gate ===\n");
#ifdef TRIPRIV_OBS_DISABLED
  std::printf("build: TRIPRIV_OBS=OFF (latency histograms compiled out; "
              "SLO arm SKIPPED, bounded-harm arm still gates)\n");
#else
  std::printf("build: TRIPRIV_OBS=ON\n");
#endif

  const Mix mixes[] = {
      {"steady", TrafficProfile::Steady(1)},
      {"diurnal", TrafficProfile::Diurnal(1)},
      {"bursty", TrafficProfile::Bursty(1)},
      {"flood_100x", TrafficProfile::Flood(1)},
      {"slow_loris", TrafficProfile::SlowLoris(1)},
      {"mixed", TrafficProfile::Mixed(1)},
  };

  bool all_ok = true;
  for (const Mix& mix : mixes) {
    obs::MetricsRegistry registry;
    auto report = RunTrafficSimulation(MixConfig(mix.profile), /*pool=*/nullptr,
                                       &registry);
    if (!report.ok()) {
      std::printf("\n[%s] simulation failed: %s\n", mix.name,
                  report.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    std::printf("\n[%s] %llu principals, %llu arrivals, digest %016llx\n",
                mix.name,
                static_cast<unsigned long long>(mix.profile.num_principals),
                static_cast<unsigned long long>(report->total_arrivals()),
                static_cast<unsigned long long>(report->scheduler_digest));
    PrintTotals(*report);

    const bool harm_ok = BoundedHarmHolds(*report);
    std::printf("  bounded harm: %s\n", harm_ok ? "PASS" : "VIOLATED");
    all_ok = all_ok && harm_ok;

#ifndef TRIPRIV_OBS_DISABLED
    auto slo = obs::SloGate().Evaluate(registry.Snapshot(), Targets());
    if (!slo.ok()) {
      std::printf("  slo gate error: %s\n", slo.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    std::printf("%s", obs::RenderSloReport(*slo).c_str());
    all_ok = all_ok && slo->ok;
#endif
  }

  std::printf("\noverall: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
