// Experiment: Section 2, "owner privacy without respondent privacy" —
// the [11] sparsity attack.
//
// Sweep the number of binary attributes d at a fixed noise level and
// measure how many respondents with unique attribute combinations are
// re-disclosed by snapping the noise-masked data back to the nearest
// binary vector. The paper's claim: for higher-dimensional data the
// release still protects the owner's *distribution* masking, yet rare
// combinations — hence respondents — leak.

#include <cstdio>

#include "ppdm/sparsity_attack.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

/// Noise-masks every QI column of a binary table (real-typed copy so the
/// noise survives).
DataTable MaskBinary(const DataTable& original, double sigma, uint64_t seed) {
  std::vector<Attribute> attrs = original.schema().attributes();
  const auto qi = original.schema().QuasiIdentifierIndices();
  for (size_t c : qi) attrs[c].type = AttributeType::kReal;
  DataTable masked{Schema(attrs)};
  Rng rng(seed);
  for (size_t r = 0; r < original.num_rows(); ++r) {
    std::vector<Value> row = original.row(r);
    for (size_t c : qi) {
      row[c] = Value(original.at(r, c).ToDouble() + rng.Normal(0.0, sigma));
    }
    auto st = masked.AppendRow(std::move(row));
    TRIPRIV_CHECK(st.ok());
  }
  return masked;
}

}  // namespace
}  // namespace tripriv

int main() {
  using namespace tripriv;
  std::printf("=== TriPriv experiment: the [11] sparsity attack (Section 2) "
              "===\n");
  std::printf("n = 500 records, Gaussian noise sigma = 0.3 on every binary "
              "attribute\n\n");
  std::printf("%4s  %14s  %12s  %15s  %15s\n", "d", "unique combos",
              "disclosed", "disclosure rate", "recovery rate");
  for (size_t d : {2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    DataTable original = MakeHighDimBinary(500, d, 11);
    DataTable masked = MaskBinary(original, 0.3, 13 + d);
    auto result = SparsityAttack(original, masked);
    if (!result.ok()) {
      std::printf("attack failed at d=%zu: %s\n", d,
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("%4zu  %14zu  %12zu  %14.1f%%  %14.1f%%\n", d,
                result->unique_originals, result->disclosed,
                100.0 * result->disclosure_rate,
                100.0 * result->overall_recovery_rate);
  }
  std::printf("\npaper's shape: disclosure (= respondent-privacy failures) "
              "grows with d while the per-cell\nmasking (owner privacy) is "
              "unchanged — owner privacy without respondent privacy.\n");
  return 0;
}
