// Experiment: Table 1 + Sections 2-3 scenarios.
//
// Regenerates, from the implemented system, every claim the paper makes
// about the two patient datasets:
//   1. Dataset 1 is spontaneously 3-anonymous on (height, weight) and even
//      2-sensitive; Dataset 2 is not 2-anonymous (Section 2).
//   2. Releasing Dataset 1 satisfies respondent privacy but not owner
//      privacy; Dataset 2 violates respondent privacy record by record.
//   3. The Section 3 attack: private aggregate queries (PIR) over Dataset 2
//      isolate one respondent (COUNT = 1) and leak their blood pressure
//      (AVG = 146) without the server seeing the predicate.
//   4. The Section 3/6 remedy: after 3-anonymization the same attack
//      cannot isolate anyone.

#include <cstdio>

#include "pir/aggregate.h"
#include "sdc/anonymity.h"
#include "sdc/microaggregation.h"
#include "sdc/risk.h"
#include "table/datasets.h"

namespace tripriv {
namespace {

Predicate Section3Predicate() {
  return Predicate::And(
      Predicate::Compare("height", CompareOp::kLt, Value(165)),
      Predicate::Compare("weight", CompareOp::kGt, Value(105)));
}

std::vector<GridAxis> PatientGrid() {
  return {{"height", 140, 205, 1}, {"weight", 40, 160, 1}};
}

void Scenario1AnonymityLevels() {
  std::printf("--- Scenario 1: spontaneous k-anonymity (Table 1, Section 2)\n");
  const DataTable d1 = PaperDataset1();
  const DataTable d2 = PaperDataset2();
  std::printf("Dataset 1: k-anonymity level = %zu (paper: 3-anonymous)\n",
              AnonymityLevel(d1));
  std::printf("Dataset 1: p-sensitive 3-anonymity with p=2: %s (paper: yes, "
              "footnote 3)\n",
              IsPSensitiveKAnonymous(d1, 3, 2) ? "yes" : "no");
  std::printf("Dataset 2: k-anonymity level = %zu (paper: not 3-anonymous)\n",
              AnonymityLevel(d2));
  const auto qi = d2.schema().QuasiIdentifierIndices();
  std::printf("Dataset 2: unique key combinations = %.0f%% of records\n",
              100.0 * UniquenessFraction(d2, qi));
}

void Scenario2RespondentVsOwner() {
  std::printf("\n--- Scenario 2: respondent vs owner privacy (Section 2)\n");
  const DataTable d1 = PaperDataset1();
  const DataTable d2 = PaperDataset2();
  // Respondent risk of publishing each dataset as-is.
  std::printf("Publishing Dataset 1: expected re-identification rate %.2f "
              "(3-anonymous: at most 1/3)\n",
              ExpectedReidentificationRate(d1));
  std::printf("Publishing Dataset 2: expected re-identification rate %.2f "
              "(all keys unique)\n",
              ExpectedReidentificationRate(d2));
  // Owner privacy: publishing reveals the entire dataset either way.
  auto self_recovery = [](const DataTable& t) {
    auto r = IntervalDisclosureRate(t, t, 2, 0.5);
    return r.ok() ? *r : 0.0;
  };
  std::printf("Either release hands 100%% of cells to competitors "
              "(verbatim cell recovery: %.0f%%) -> owner privacy violated "
              "even when respondents are safe.\n",
              100.0 * self_recovery(d1));
}

void Scenario3PirAttack() {
  std::printf("\n--- Scenario 3: user privacy without respondent privacy "
              "(Section 3 attack)\n");
  auto server = PrivateAggregateServer::Build(PaperDataset2(), PatientGrid());
  if (!server.ok()) {
    std::printf("server build failed: %s\n", server.status().ToString().c_str());
    return;
  }
  auto client = PrivateAggregateClient::Create(256, 2024);
  if (!client.ok()) {
    std::printf("client failed: %s\n", client.status().ToString().c_str());
    return;
  }
  const Predicate pred = Section3Predicate();
  auto count = client->Count(*server, pred);
  auto avg = client->Average(*server, "blood_pressure", pred);
  std::printf("user query 1 (PIR): SELECT COUNT(*) WHERE height < 165 AND "
              "weight > 105\n");
  std::printf("  -> %llu (paper: 1; a single respondent is isolated)\n",
              static_cast<unsigned long long>(count.ok() ? *count : 0));
  std::printf("user query 2 (PIR): SELECT AVG(blood_pressure) WHERE ...\n");
  if (avg.ok()) {
    std::printf("  -> %.0f mmHg (paper: 146; the respondent's exact blood "
                "pressure leaks)\n",
                *avg);
  }
  std::printf("server view during the attack: %zu aggregate queries, "
              "ciphertexts only (user privacy intact)\n",
              server->queries_served());
}

void Scenario4Remedy() {
  std::printf("\n--- Scenario 4: the Section 3/6 remedy — k-anonymize, then "
              "serve PIR\n");
  auto masked = MdavMicroaggregate(PaperDataset2(), 3);
  if (!masked.ok()) return;
  std::printf("Dataset 2 after 3-microaggregation: k-anonymity level = %zu\n",
              AnonymityLevel(masked->table));
  auto server = PrivateAggregateServer::Build(masked->table, PatientGrid());
  auto client = PrivateAggregateClient::Create(256, 2025);
  if (!server.ok() || !client.ok()) return;
  auto count = client->Count(*server, Section3Predicate());
  if (count.ok()) {
    std::printf("the same isolating query now matches %llu record(s) "
                "(0 or >= 3: nobody can be singled out)\n",
                static_cast<unsigned long long>(*count));
  }
}

}  // namespace
}  // namespace tripriv

int main() {
  std::printf("=== TriPriv experiment: Table 1 / Sections 2-3 scenarios ===\n");
  tripriv::Scenario1AnonymityLevels();
  tripriv::Scenario2RespondentVsOwner();
  tripriv::Scenario3PirAttack();
  tripriv::Scenario4Remedy();
  return 0;
}
