// Fail-closed acceptance gate over the adversary harness (PR 10, S6).
//
// Two promises the attack subsystem makes at census scale, checked on the
// same 10^6-row synthetic census the empirical Table 2 runs on:
//
//   1. Fingerprint robustness: Boneh-Shaw detection must survive the Ji et
//      al. robustness suite — a 5-party majority coalition followed by LSB
//      flips up to 10% — accusing a real colluder in EVERY trial. The
//      attacker's success rate (no accusation, or an innocent accused)
//      must be exactly 0. The margin is analytic (expected per-mark score
//      0.375 * (1 - 2f) against a 4-sigma threshold), so a single failed
//      trial is a decoder regression, not noise.
//   2. Linkage bound: partitioned MDAV at k = 5 must hold the k-anonymity
//      promise against the blocked record-linkage attack — expected
//      re-identification below 1/k. The attack credits 1/|ties| per
//      record, exactly like sdc/risk.h, so the bound is the paper's
//      re-identification semantics, not a best-match heuristic.
//
// Every attack is deterministic in (config, seed) and thread-invariant, so
// a verdict flip is a real behavior change, never run-to-run noise. A
// nonzero exit is a regression signal CI treats like a failing test.
//
// Usage: bench_attack_suite [rows]   (default 1000000)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "attack/attack.h"
#include "attack/fingerprint.h"
#include "attack/linkage.h"
#include "sdc/partitioned_mdav.h"
#include "table/datasets.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

using attack::AttackContext;
using attack::AttackOutcome;
using attack::CollusionAttackConfig;
using attack::CollusionStrategy;
using attack::LinkageConfig;

constexpr uint64_t kSeed = 7;
constexpr size_t kMdavK = 5;
constexpr size_t kColluders = 5;
constexpr double kFlipFractions[] = {0.0, 0.05, 0.10};

bool FingerprintGate(const DataTable& base, const AttackContext& ctx) {
  std::printf("[fingerprint] majority-of-%zu collusion, %u recipients, "
              "%d marks\n",
              kColluders, 20u, 4096);
  bool ok = true;
  for (double flip : kFlipFractions) {
    CollusionAttackConfig config;
    config.codec.marks = 4096;
    config.codec.num_recipients = 20;
    config.colluders = kColluders;
    config.strategy = CollusionStrategy::kMajority;
    config.flip_fraction = flip;
    config.trials = 6;
    auto outcome = RunCollusionAttack(base, config, ctx);
    if (!outcome.ok()) {
      std::printf("  flip=%.2f: attack failed to run: %s\n", flip,
                  outcome.status().ToString().c_str());
      ok = false;
      continue;
    }
    const bool pass = outcome->success_rate() == 0.0;
    std::printf(
        "  gate: fingerprint flip=%.2f attacker_success=%.4f "
        "(%llu trials, must be 0): %s\n",
        flip, outcome->success_rate(),
        static_cast<unsigned long long>(outcome->trials),
        pass ? "PASS" : "FAIL");
    ok = ok && pass;
  }
  return ok;
}

bool LinkageGate(const DataTable& original, const AttackContext& ctx) {
  std::vector<size_t> qis;
  for (size_t c : original.schema().QuasiIdentifierIndices()) {
    if (original.schema().attribute(c).type != AttributeType::kCategorical) {
      qis.push_back(c);
    }
  }
  auto masked = PartitionedMdav(original, kMdavK, qis, ctx.pool);
  if (!masked.ok()) {
    std::printf("[linkage] MDAV failed: %s\n",
                masked.status().ToString().c_str());
    return false;
  }
  LinkageConfig config;
  config.qi_cols = qis;
  config.block_bins = 24;
  auto outcome =
      RunRecordLinkageAttack(original, masked->table, config, ctx);
  if (!outcome.ok()) {
    std::printf("[linkage] attack failed to run: %s\n",
                outcome.status().ToString().c_str());
    return false;
  }
  const double bound = 1.0 / static_cast<double>(kMdavK);
  const bool pass = outcome->success_rate() < bound;
  std::printf(
      "[linkage] MDAV k=%zu over %llu rows\n"
      "  gate: linkage success=%.4f (bound 1/k = %.4f): %s\n",
      kMdavK, static_cast<unsigned long long>(original.num_rows()),
      outcome->success_rate(), bound, pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace
}  // namespace tripriv

int main(int argc, char** argv) {
  size_t rows = 1000000;
  if (argc > 1) {
    rows = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
    if (rows == 0) {
      std::fprintf(stderr, "usage: %s [rows]\n", argv[0]);
      return 2;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  tripriv::ThreadPool pool(hw > 1 ? hw : 2);
  tripriv::attack::AttackContext ctx;
  ctx.seed = tripriv::kSeed;
  ctx.pool = &pool;

  std::printf("attack suite gate @ %zu census rows (seed %llu)\n", rows,
              static_cast<unsigned long long>(tripriv::kSeed));
  const tripriv::DataTable census = tripriv::MakeCensusScale(rows, 13);

  bool all_ok = true;
  all_ok = tripriv::FingerprintGate(census, ctx) && all_ok;
  all_ok = tripriv::LinkageGate(census, ctx) && all_ok;

  std::printf("\noverall: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
