// Serving tax and graceful degradation of the fault-tolerant query service.
//
// Two questions, one per benchmark family:
//   * overhead — what the serving ladder (policy + WAL ack-after-commit +
//     admission + breaker) costs over a bare StatDatabase when nothing
//     fails;
//   * degradation — how availability decays as the primary backend's fault
//     rate rises: the protected share should fall, the epsilon-DP share
//     should rise to absorb it, and whatever remains must be typed
//     refusals. The service never buys availability with protection — the
//     chaos suite asserts it, this bench quantifies it.

#include <benchmark/benchmark.h>

#include <vector>

#include "service/query_service.h"
#include "table/datasets.h"
#include "util/random.h"

namespace tripriv {
namespace {

constexpr size_t kRows = 256;
constexpr size_t kQueries = 64;

// Same shape as the chaos suite's workload: COUNT/SUM threshold queries,
// deterministic in the seed.
std::vector<StatQuery> MakeWorkload(uint64_t seed) {
  Rng rng(seed);
  const struct {
    const char* attr;
    int64_t lo;
    int64_t hi;
  } dims[] = {{"height", 150, 195},
              {"weight", 45, 115},
              {"blood_pressure", 135, 185}};
  std::vector<StatQuery> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    StatQuery query;
    query.table = "trial";
    if (rng.Bernoulli(0.5)) {
      query.fn = AggregateFn::kSum;
      query.attribute = "blood_pressure";
    }
    const auto& dim = dims[rng.UniformU64(3)];
    const int64_t threshold =
        dim.lo + static_cast<int64_t>(
                     rng.UniformU64(static_cast<uint64_t>(dim.hi - dim.lo)));
    query.where = Predicate::Compare(
        dim.attr, rng.Bernoulli(0.5) ? CompareOp::kLt : CompareOp::kGe,
        Value(threshold));
    queries.push_back(std::move(query));
  }
  return queries;
}

QueryServiceConfig ServiceConfig(double backend_fault_rate) {
  QueryServiceConfig config;
  config.protection.mode = ProtectionMode::kAudit;
  config.protection.min_query_set_size = 5;
  config.epsilon_budget = 64.0;
  config.admission.capacity = 1024;
  config.admission.service_ticks = 1;
  config.faults.backend_fault_rate = backend_fault_rate;
  return config;
}

void BM_RawStatDatabase(benchmark::State& state) {
  const DataTable table = MakeClinicalTrial(kRows, 7);
  const auto workload = MakeWorkload(31);
  ProtectionConfig config;
  config.mode = ProtectionMode::kAudit;
  config.min_query_set_size = 5;
  for (auto _ : state) {
    StatDatabase db(table, config);
    for (const auto& query : workload) {
      auto answer = db.Query(query);
      benchmark::DoNotOptimize(answer);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kQueries));
}
BENCHMARK(BM_RawStatDatabase);

void BM_QueryServiceHealthy(benchmark::State& state) {
  const DataTable table = MakeClinicalTrial(kRows, 7);
  const auto workload = MakeWorkload(31);
  ServiceStats last;
  for (auto _ : state) {
    MemWalIo io;
    auto service = QueryService::Create(table, ServiceConfig(0.0), &io);
    for (const auto& query : workload) {
      auto outcome = service->Submit(query);
      benchmark::DoNotOptimize(outcome);
    }
    last = service->stats();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kQueries));
  state.counters["protected"] = static_cast<double>(last.protected_answers);
  state.counters["refused"] = static_cast<double>(last.refusals);
}
BENCHMARK(BM_QueryServiceHealthy);

// Arg = primary-backend fault rate in percent.
void BM_QueryServiceDegradation(benchmark::State& state) {
  const double fault_rate = static_cast<double>(state.range(0)) / 100.0;
  const DataTable table = MakeClinicalTrial(kRows, 7);
  const auto workload = MakeWorkload(31);
  ServiceStats last;
  double epsilon_spent = 0.0;
  for (auto _ : state) {
    MemWalIo io;
    auto service = QueryService::Create(table, ServiceConfig(fault_rate), &io);
    for (const auto& query : workload) {
      auto outcome = service->Submit(query);
      benchmark::DoNotOptimize(outcome);
    }
    last = service->stats();
    epsilon_spent = service->epsilon_spent();
  }
  const double n = static_cast<double>(last.received);
  state.counters["protected%"] =
      100.0 * static_cast<double>(last.protected_answers) / n;
  state.counters["dp%"] = 100.0 * static_cast<double>(last.dp_answers) / n;
  state.counters["refused%"] =
      100.0 * static_cast<double>(last.refusals) / n;
  state.counters["epsilon"] = epsilon_spent;
}
BENCHMARK(BM_QueryServiceDegradation)
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Arg(100);

}  // namespace
}  // namespace tripriv

BENCHMARK_MAIN();
