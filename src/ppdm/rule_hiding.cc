#include "ppdm/rule_hiding.h"

#include <algorithm>

namespace tripriv {
namespace {

bool ContainsAll(const Transaction& txn, const std::vector<int>& items) {
  size_t i = 0;
  for (int item : items) {
    while (i < txn.size() && txn[i] < item) ++i;
    if (i == txn.size() || txn[i] != item) return false;
    ++i;
  }
  return true;
}

std::vector<int> Union(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// True if `rule` appears in the mining output of `db` at the thresholds.
Result<bool> IsMinable(const TransactionDb& db, const AssociationRule& rule,
                       size_t min_support, double min_confidence) {
  const auto both = Union(rule.antecedent, rule.consequent);
  const size_t sup_xy = SupportCount(db, both);
  if (sup_xy < min_support) return false;
  const size_t sup_x = SupportCount(db, rule.antecedent);
  if (sup_x == 0) return false;
  const double conf =
      static_cast<double>(sup_xy) / static_cast<double>(sup_x);
  return conf >= min_confidence;
}

}  // namespace

Result<RuleHidingResult> HideAssociationRules(
    const TransactionDb& db, const std::vector<AssociationRule>& sensitive,
    size_t min_support, double min_confidence) {
  if (sensitive.empty()) {
    return Status::InvalidArgument("no sensitive rules given");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto before,
                           MineAssociationRules(db, min_support, min_confidence));

  RuleHidingResult result;
  result.sanitized = db;
  for (const auto& rule : sensitive) {
    TRIPRIV_ASSIGN_OR_RETURN(
        bool minable,
        IsMinable(result.sanitized, rule, min_support, min_confidence));
    if (!minable) {
      return Status::NotFound("rule " + rule.ToString() +
                              " is not minable at the given thresholds");
    }
    // Remove consequent items from transactions that fully support the
    // rule, one at a time, until the rule drops out. Removing from full
    // supporters lowers sup(X u Y) while leaving sup(X) unchanged, so the
    // confidence strictly decreases.
    const auto both = Union(rule.antecedent, rule.consequent);
    for (size_t t = 0;
         t < result.sanitized.size() && minable; ++t) {
      Transaction& txn = result.sanitized[t];
      if (!ContainsAll(txn, both)) continue;
      Transaction cleaned;
      cleaned.reserve(txn.size());
      for (int item : txn) {
        if (!std::binary_search(rule.consequent.begin(), rule.consequent.end(),
                                item)) {
          cleaned.push_back(item);
        }
      }
      txn = std::move(cleaned);
      ++result.modified_transactions;
      TRIPRIV_ASSIGN_OR_RETURN(
          minable,
          IsMinable(result.sanitized, rule, min_support, min_confidence));
    }
    if (minable) {
      return Status::Internal("failed to hide rule " + rule.ToString());
    }
  }

  // Side-effect accounting.
  TRIPRIV_ASSIGN_OR_RETURN(
      auto after,
      MineAssociationRules(result.sanitized, min_support, min_confidence));
  auto is_sensitive = [&](const AssociationRule& r) {
    for (const auto& s : sensitive) {
      if (r.SameAs(s)) return true;
    }
    return false;
  };
  for (const auto& rule : before) {
    if (is_sensitive(rule)) continue;
    bool still = false;
    for (const auto& r : after) {
      if (r.SameAs(rule)) {
        still = true;
        break;
      }
    }
    if (!still) result.lost_rules.push_back(rule);
  }
  for (const auto& rule : after) {
    bool existed = false;
    for (const auto& r : before) {
      if (r.SameAs(rule)) {
        existed = true;
        break;
      }
    }
    if (!existed) result.ghost_rules.push_back(rule);
  }
  return result;
}

}  // namespace tripriv
