#include "ppdm/association_rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace tripriv {
namespace {

bool Contains(const Transaction& txn, const std::vector<int>& itemset) {
  // Both sorted: subset test by merge walk.
  size_t i = 0;
  for (int item : itemset) {
    while (i < txn.size() && txn[i] < item) ++i;
    if (i == txn.size() || txn[i] != item) return false;
    ++i;
  }
  return true;
}

}  // namespace

std::string AssociationRule::ToString() const {
  auto render = [](const std::vector<int>& items) {
    std::vector<std::string> parts;
    parts.reserve(items.size());
    for (int it : items) parts.push_back(std::to_string(it));
    return "{" + Join(parts, ",") + "}";
  };
  return render(antecedent) + " => " + render(consequent) + " (sup=" +
         std::to_string(support) + ", conf=" + FormatDouble(confidence, 4) + ")";
}

size_t SupportCount(const TransactionDb& db, const std::vector<int>& itemset) {
  size_t count = 0;
  for (const auto& txn : db) {
    if (Contains(txn, itemset)) ++count;
  }
  return count;
}

Result<std::vector<FrequentItemset>> AprioriFrequentItemsets(
    const TransactionDb& db, size_t min_support) {
  if (min_support < 1) return Status::InvalidArgument("min_support must be >= 1");
  std::vector<FrequentItemset> result;

  // L1: frequent single items.
  std::map<int, size_t> item_counts;
  for (const auto& txn : db) {
    for (int item : txn) item_counts[item]++;
  }
  std::vector<std::vector<int>> current;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_support) {
      result.push_back({{item}, count});
      current.push_back({item});
    }
  }

  // Lk from Lk-1: join candidates sharing the first k-2 items, prune by the
  // Apriori property, count, filter.
  while (!current.empty()) {
    std::set<std::vector<int>> prev_set(current.begin(), current.end());
    std::vector<std::vector<int>> next;
    for (size_t a = 0; a < current.size(); ++a) {
      for (size_t b = a + 1; b < current.size(); ++b) {
        const auto& x = current[a];
        const auto& y = current[b];
        if (!std::equal(x.begin(), x.end() - 1, y.begin())) continue;
        std::vector<int> candidate = x;
        candidate.push_back(std::max(x.back(), y.back()));
        if (x.back() > y.back()) {
          candidate[candidate.size() - 2] = y.back();
        }
        // Apriori prune: every (k-1)-subset must be frequent.
        bool prunable = false;
        for (size_t skip = 0; skip + 2 < candidate.size() && !prunable; ++skip) {
          std::vector<int> subset;
          for (size_t i = 0; i < candidate.size(); ++i) {
            if (i != skip) subset.push_back(candidate[i]);
          }
          if (!prev_set.contains(subset)) prunable = true;
        }
        if (prunable) continue;
        const size_t support = SupportCount(db, candidate);
        if (support >= min_support) {
          next.push_back(candidate);
          result.push_back({candidate, support});
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
  }
  return result;
}

Result<std::vector<AssociationRule>> MineAssociationRules(
    const TransactionDb& db, size_t min_support, double min_confidence) {
  if (min_confidence < 0.0 || min_confidence > 1.0) {
    return Status::InvalidArgument("min_confidence must be in [0, 1]");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto frequent,
                           AprioriFrequentItemsets(db, min_support));
  std::map<std::vector<int>, size_t> support_of;
  for (const auto& fi : frequent) support_of[fi.items] = fi.support;

  std::vector<AssociationRule> rules;
  for (const auto& fi : frequent) {
    if (fi.items.size() < 2) continue;
    // Single-item consequents.
    for (size_t skip = 0; skip < fi.items.size(); ++skip) {
      AssociationRule rule;
      for (size_t i = 0; i < fi.items.size(); ++i) {
        if (i == skip) {
          rule.consequent.push_back(fi.items[i]);
        } else {
          rule.antecedent.push_back(fi.items[i]);
        }
      }
      const auto it = support_of.find(rule.antecedent);
      TRIPRIV_CHECK(it != support_of.end());  // Apriori closure
      rule.support = fi.support;
      rule.confidence =
          static_cast<double>(fi.support) / static_cast<double>(it->second);
      if (rule.confidence >= min_confidence) rules.push_back(std::move(rule));
    }
  }
  return rules;
}

TransactionDb MakeTransactions(size_t n_transactions, int n_items,
                               size_t n_patterns, uint64_t seed) {
  TRIPRIV_CHECK_GE(n_items, 4);
  Rng rng(seed);
  // Plant patterns of size 2-4.
  std::vector<std::vector<int>> patterns;
  for (size_t p = 0; p < n_patterns; ++p) {
    const size_t size = 2 + rng.UniformU64(3);
    std::set<int> items;
    while (items.size() < size) {
      items.insert(static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n_items))));
    }
    patterns.emplace_back(items.begin(), items.end());
  }
  TransactionDb db;
  db.reserve(n_transactions);
  for (size_t t = 0; t < n_transactions; ++t) {
    std::set<int> txn;
    // Each pattern appears in ~40% of transactions.
    for (const auto& pattern : patterns) {
      if (rng.Bernoulli(0.4)) txn.insert(pattern.begin(), pattern.end());
    }
    // Background noise items.
    const size_t extra = 1 + rng.UniformU64(4);
    for (size_t e = 0; e < extra; ++e) {
      txn.insert(static_cast<int>(rng.UniformU64(static_cast<uint64_t>(n_items))));
    }
    db.emplace_back(txn.begin(), txn.end());
  }
  return db;
}

}  // namespace tripriv
