// Randomized response (Warner 1965; Du & Zhan [13]).
//
// The paper's footnote 1 discusses [13]: randomized response is marketed as
// respondent privacy, but in practice the *data owner* applies the
// randomizing device, making it an owner-privacy masking. Each categorical
// value is kept with probability p and otherwise replaced by a uniform
// random category; the true category distribution remains estimable without
// bias.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Masks categorical column `col`: each value is kept with probability p,
/// otherwise replaced by a category drawn uniformly from the column's
/// domain (which may re-draw the original value). Requires p in [0, 1] and
/// a non-empty categorical column.
Result<DataTable> RandomizedResponseMask(const DataTable& table, size_t col,
                                         double p, uint64_t seed);

/// Unbiased estimate of the true category distribution from a masked
/// column. With c categories and retention probability p, the observed
/// frequency obeys lambda = (p + (1-p)/c) pi + (1-p)/c (1 - pi), inverted
/// per category. Estimates are clamped to [0, 1] and renormalized.
/// `domain` fixes the category order of the output.
Result<std::map<std::string, double>> EstimateTrueDistribution(
    const DataTable& masked, size_t col, double p,
    const std::vector<std::string>& domain);

/// Convenience: observed relative frequencies of a categorical column.
Result<std::map<std::string, double>> ObservedDistribution(
    const DataTable& table, size_t col);

}  // namespace tripriv

