// Apriori frequent-itemset mining and association-rule generation.
//
// The analysis workload of the rule-hiding PPDM methods ([25]): market
// basket transactions, frequent itemsets above a support threshold, and
// rules X => Y above a confidence threshold.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tripriv {

/// A transaction is a sorted, duplicate-free list of item ids.
using Transaction = std::vector<int>;
using TransactionDb = std::vector<Transaction>;

/// An itemset with its absolute support count.
struct FrequentItemset {
  std::vector<int> items;  // sorted
  size_t support = 0;
};

/// An association rule X => Y with its quality measures.
struct AssociationRule {
  std::vector<int> antecedent;  // X, sorted
  std::vector<int> consequent;  // Y, sorted
  size_t support = 0;           // |X u Y| occurrences
  double confidence = 0.0;      // support(X u Y) / support(X)

  std::string ToString() const;
  bool SameAs(const AssociationRule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }
};

/// Absolute support count of `itemset` (sorted) in `db`.
size_t SupportCount(const TransactionDb& db, const std::vector<int>& itemset);

/// Apriori: all itemsets with support >= min_support (absolute count).
/// Requires min_support >= 1.
Result<std::vector<FrequentItemset>> AprioriFrequentItemsets(
    const TransactionDb& db, size_t min_support);

/// All rules X => Y derivable from the frequent itemsets with confidence
/// >= min_confidence (Y restricted to single items, the classic setting of
/// rule-hiding papers).
Result<std::vector<AssociationRule>> MineAssociationRules(
    const TransactionDb& db, size_t min_support, double min_confidence);

/// Synthetic transaction generator with planted patterns: `n_patterns`
/// random pattern itemsets of size 2-4 are embedded into transactions with
/// high probability, over a catalogue of `n_items` items. Deterministic in
/// `seed`.
TransactionDb MakeTransactions(size_t n_transactions, int n_items,
                               size_t n_patterns, uint64_t seed);

}  // namespace tripriv

