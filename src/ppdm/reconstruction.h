// Agrawal-Srikant distribution reconstruction from noise-perturbed values.
//
// The owner-privacy masking of [5]: each respondent value x_i is released
// as w_i = x_i + e_i with e_i ~ N(0, sigma^2). The miner never sees x, yet
// can recover the *distribution* of x by Bayesian iterative refinement
// (equivalent to EM over a binned density):
//
//   f^{t+1}(j) ∝ (1/n) Σ_i  f^t(j) φ_σ(w_i - c_j) / Σ_k f^t(k) φ_σ(w_i - c_k)
//
// where c_j are bin centers. This file implements the estimator plus the
// rank-matching "reconstructed dataset" used to train classifiers on
// perturbed data (the ByClass variant of [5]).

#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "util/status.h"

namespace tripriv {

/// Parameters of the reconstruction EM.
struct ReconstructionConfig {
  size_t bins = 50;
  size_t max_iterations = 200;
  /// Stop when the total-variation change between successive estimates
  /// drops below this threshold.
  double convergence_tv = 1e-4;
};

/// Result: a binned estimate of the original density.
struct ReconstructedDistribution {
  double lo = 0.0;
  double hi = 0.0;
  /// Probability mass per bin (sums to 1).
  std::vector<double> probabilities;
  size_t iterations = 0;

  double BinCenter(size_t j) const;
  double BinWidth() const;
  /// Mean of the reconstructed distribution.
  double MeanEstimate() const;
  /// Draws the q-quantile (q in [0,1]) of the binned distribution.
  double Quantile(double q) const;
};

/// Reconstructs the original distribution of the values underlying
/// `perturbed` given the noise sigma. The support [lo, hi] defaults to the
/// observed range widened by 3 sigma. Requires sigma > 0 and a non-empty
/// sample.
Result<ReconstructedDistribution> ReconstructDistribution(
    const std::vector<double>& perturbed, double sigma,
    const ReconstructionConfig& config = {});

/// Rank-matching reconstruction of individual values: sorts the perturbed
/// values and maps rank r to the (r + 0.5)/n quantile of the reconstructed
/// distribution. The output vector is aligned with the input (value i is
/// the reconstructed stand-in for perturbed[i]). This is the step that
/// turns a reconstructed *distribution* back into training *data* — and,
/// per [11], the step that can violate respondent privacy when the fit is
/// too good.
Result<std::vector<double>> ReconstructValues(
    const std::vector<double>& perturbed, double sigma,
    const ReconstructionConfig& config = {});

}  // namespace tripriv

