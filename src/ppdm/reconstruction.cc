#include "ppdm/reconstruction.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "stats/descriptive.h"

namespace tripriv {

double ReconstructedDistribution::BinWidth() const {
  return (hi - lo) / static_cast<double>(probabilities.size());
}

double ReconstructedDistribution::BinCenter(size_t j) const {
  TRIPRIV_CHECK_LT(j, probabilities.size());
  return lo + (static_cast<double>(j) + 0.5) * BinWidth();
}

double ReconstructedDistribution::MeanEstimate() const {
  double m = 0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    m += probabilities[j] * BinCenter(j);
  }
  return m;
}

double ReconstructedDistribution::Quantile(double q) const {
  TRIPRIV_CHECK(q >= 0.0 && q <= 1.0);
  double acc = 0.0;
  for (size_t j = 0; j < probabilities.size(); ++j) {
    const double next = acc + probabilities[j];
    if (q <= next || j + 1 == probabilities.size()) {
      // Linear interpolation inside the bin.
      const double frac =
          probabilities[j] > 0.0 ? (q - acc) / probabilities[j] : 0.5;
      return lo + (static_cast<double>(j) + std::clamp(frac, 0.0, 1.0)) *
                      BinWidth();
    }
    acc = next;
  }
  return hi;
}

Result<ReconstructedDistribution> ReconstructDistribution(
    const std::vector<double>& perturbed, double sigma,
    const ReconstructionConfig& config) {
  if (perturbed.empty()) return Status::InvalidArgument("empty sample");
  if (sigma <= 0.0) return Status::InvalidArgument("sigma must be > 0");
  if (config.bins < 2) return Status::InvalidArgument("need >= 2 bins");

  ReconstructedDistribution dist;
  dist.lo = Min(perturbed) - 3.0 * sigma;
  dist.hi = Max(perturbed) + 3.0 * sigma;
  if (dist.hi <= dist.lo) dist.hi = dist.lo + 1.0;
  const size_t bins = config.bins;
  dist.probabilities.assign(bins, 1.0 / static_cast<double>(bins));

  // Precompute the Gaussian kernel phi_sigma(w_i - c_j).
  const size_t n = perturbed.size();
  const double inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
  const double norm = 1.0 / (sigma * std::sqrt(2.0 * std::numbers::pi));
  std::vector<std::vector<double>> kernel(n, std::vector<double>(bins));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < bins; ++j) {
      const double d = perturbed[i] - dist.BinCenter(j);
      kernel[i][j] = norm * std::exp(-d * d * inv_two_sigma_sq);
    }
  }

  std::vector<double> next(bins);
  for (size_t it = 0; it < config.max_iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      double denom = 0.0;
      for (size_t j = 0; j < bins; ++j) {
        denom += dist.probabilities[j] * kernel[i][j];
      }
      if (denom <= 0.0) continue;
      for (size_t j = 0; j < bins; ++j) {
        next[j] += dist.probabilities[j] * kernel[i][j] / denom;
      }
    }
    double total = std::accumulate(next.begin(), next.end(), 0.0);
    if (total <= 0.0) break;
    for (double& v : next) v /= total;
    const double tv = TotalVariation(dist.probabilities, next);
    dist.probabilities = next;
    dist.iterations = it + 1;
    if (tv < config.convergence_tv) break;
  }
  return dist;
}

Result<std::vector<double>> ReconstructValues(
    const std::vector<double>& perturbed, double sigma,
    const ReconstructionConfig& config) {
  TRIPRIV_ASSIGN_OR_RETURN(auto dist,
                           ReconstructDistribution(perturbed, sigma, config));
  const size_t n = perturbed.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return perturbed[a] < perturbed[b];
  });
  std::vector<double> out(n);
  for (size_t rank = 0; rank < n; ++rank) {
    const double q = (static_cast<double>(rank) + 0.5) / static_cast<double>(n);
    out[order[rank]] = dist.Quantile(q);
  }
  return out;
}

}  // namespace tripriv
