// Association-rule hiding (Verykios et al. [25]).
//
// Use-specific non-crypto PPDM: the owner wants to release a transaction
// database while making designated sensitive rules unminable. The sanitizer
// lowers a rule's confidence below the mining threshold by removing the
// consequent item from selected transactions that fully support the rule,
// and reports the collateral damage (legitimate rules lost, spurious rules
// created).

#pragma once

#include "ppdm/association_rules.h"

namespace tripriv {

/// Result of sanitizing a database against one or more sensitive rules.
struct RuleHidingResult {
  TransactionDb sanitized;
  /// Transactions modified by the sanitizer.
  size_t modified_transactions = 0;
  /// Rules minable before but not after (excluding the hidden ones).
  std::vector<AssociationRule> lost_rules;
  /// Rules minable after but not before ("ghost" rules).
  std::vector<AssociationRule> ghost_rules;
};

/// Hides each rule in `sensitive` from `db` so that, when mined with the
/// given thresholds, the rule no longer appears (confidence driven below
/// min_confidence, or support below min_support if necessary). Fails when a
/// rule is not minable in the first place (NotFound) — hiding it would be a
/// no-op the caller probably did not intend.
Result<RuleHidingResult> HideAssociationRules(
    const TransactionDb& db, const std::vector<AssociationRule>& sensitive,
    size_t min_support, double min_confidence);

}  // namespace tripriv

