// The high-dimensional sparsity attack of [11] (Domingo-Ferrer, Sebé &
// Castellà): owner privacy without respondent privacy.
//
// Section 2 of the paper: when noise-added data are released and the
// original distribution is reconstructible (the very property that makes
// [5] useful), high-dimensional datasets become dangerous — most attribute
// combinations are rare, and a reconstruction that fits the
// multidimensional histogram well re-discloses those rare combinations.
//
// Operationalization on binary microdata: the attacker snaps each
// noise-masked record back to the nearest binary vector (the mode of the
// per-record posterior). A respondent is *disclosed* when (a) their
// original QI combination was unique in the dataset and (b) the attacker's
// reconstruction recovers that combination exactly and uniquely. The
// disclosure count grows with dimensionality even at a fixed noise level —
// the paper's "non-trivial case of owner privacy without respondent
// privacy".

#pragma once

#include "table/data_table.h"

namespace tripriv {

/// Outcome of the sparsity attack.
struct SparsityAttackResult {
  /// Records whose original QI combination is unique (the vulnerable set).
  size_t unique_originals = 0;
  /// Vulnerable records exactly and uniquely recovered by the attacker.
  size_t disclosed = 0;
  /// disclosed / max(1, unique_originals).
  double disclosure_rate = 0.0;
  /// Fraction of all records whose full QI combination was recovered.
  double overall_recovery_rate = 0.0;
};

/// Runs the attack. `original` and `masked` must be row-aligned; the QI
/// columns of the schema must be binary integers (0/1) in `original`;
/// `masked` holds their noise-added versions.
Result<SparsityAttackResult> SparsityAttack(const DataTable& original,
                                            const DataTable& masked);

}  // namespace tripriv

