#include "ppdm/randomized_response.h"

#include <algorithm>
#include <set>

#include "util/random.h"

namespace tripriv {

Result<DataTable> RandomizedResponseMask(const DataTable& table, size_t col,
                                         double p, uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("retention probability must be in [0, 1]");
  }
  if (col >= table.num_columns() ||
      table.schema().attribute(col).type != AttributeType::kCategorical) {
    return Status::InvalidArgument("randomized response needs a categorical column");
  }
  // Domain = observed categories.
  std::set<std::string> domain_set;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.at(r, col);
    if (v.is_string()) domain_set.insert(v.AsString());
  }
  if (domain_set.empty()) {
    return Status::InvalidArgument("column has no categorical values");
  }
  std::vector<std::string> domain(domain_set.begin(), domain_set.end());

  Rng rng(seed);
  DataTable out = table;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.at(r, col);
    if (!v.is_string()) continue;
    if (rng.Bernoulli(p)) continue;  // keep
    const std::string& replacement = domain[rng.UniformU64(domain.size())];
    TRIPRIV_RETURN_IF_ERROR(out.Set(r, col, Value(replacement)));
  }
  return out;
}

Result<std::map<std::string, double>> ObservedDistribution(
    const DataTable& table, size_t col) {
  if (table.num_rows() == 0) return Status::InvalidArgument("empty table");
  std::map<std::string, double> out;
  size_t n = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.at(r, col);
    if (!v.is_string()) continue;
    out[v.AsString()] += 1.0;
    ++n;
  }
  if (n == 0) return Status::InvalidArgument("column has no categorical values");
  for (auto& [k, v] : out) v /= static_cast<double>(n);
  return out;
}

Result<std::map<std::string, double>> EstimateTrueDistribution(
    const DataTable& masked, size_t col, double p,
    const std::vector<std::string>& domain) {
  if (domain.empty()) return Status::InvalidArgument("empty domain");
  const double c = static_cast<double>(domain.size());
  // lambda_k = pi_k * p + (1-p)/c  (replacement is uniform over the domain,
  // independent of the original value), so pi_k = (lambda_k - (1-p)/c) / p.
  if (p <= 0.0) {
    return Status::InvalidArgument(
        "retention probability 0 carries no information");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto observed, ObservedDistribution(masked, col));
  std::map<std::string, double> estimate;
  double total = 0.0;
  for (const auto& category : domain) {
    const double lambda =
        observed.contains(category) ? observed.at(category) : 0.0;
    double pi = (lambda - (1.0 - p) / c) / p;
    pi = std::clamp(pi, 0.0, 1.0);
    estimate[category] = pi;
    total += pi;
  }
  if (total > 0.0) {
    for (auto& [k, v] : estimate) v /= total;
  }
  return estimate;
}

}  // namespace tripriv
