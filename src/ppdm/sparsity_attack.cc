#include "ppdm/sparsity_attack.h"

#include <cmath>
#include <map>

namespace tripriv {

Result<SparsityAttackResult> SparsityAttack(const DataTable& original,
                                            const DataTable& masked) {
  if (original.num_rows() != masked.num_rows()) {
    return Status::InvalidArgument("tables must be row-aligned");
  }
  const auto qi = original.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::FailedPrecondition("schema declares no quasi-identifiers");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto orig, original.NumericMatrix(qi));
  TRIPRIV_ASSIGN_OR_RETURN(auto mask, masked.NumericMatrix(qi));

  const size_t n = original.num_rows();
  // Validate binary originals and snap the masked records.
  std::vector<std::vector<int>> orig_bits(n);
  std::vector<std::vector<int>> guess_bits(n);
  for (size_t r = 0; r < n; ++r) {
    orig_bits[r].resize(qi.size());
    guess_bits[r].resize(qi.size());
    for (size_t j = 0; j < qi.size(); ++j) {
      if (orig[r][j] != 0.0 && orig[r][j] != 1.0) {
        return Status::InvalidArgument(
            "sparsity attack requires binary quasi-identifiers");
      }
      orig_bits[r][j] = static_cast<int>(orig[r][j]);
      guess_bits[r][j] = mask[r][j] >= 0.5 ? 1 : 0;
    }
  }

  // Multiplicity of each original combination and of each guessed one.
  std::map<std::vector<int>, size_t> orig_count;
  std::map<std::vector<int>, size_t> guess_count;
  for (size_t r = 0; r < n; ++r) {
    orig_count[orig_bits[r]]++;
    guess_count[guess_bits[r]]++;
  }

  SparsityAttackResult result;
  size_t recovered = 0;
  for (size_t r = 0; r < n; ++r) {
    const bool unique_orig = orig_count[orig_bits[r]] == 1;
    const bool exact = orig_bits[r] == guess_bits[r];
    if (exact) ++recovered;
    if (unique_orig) {
      ++result.unique_originals;
      // Disclosure: the rare combination is recovered exactly and remains
      // unique in the attacker's reconstruction, so it singles out the
      // respondent.
      if (exact && guess_count[guess_bits[r]] == 1) ++result.disclosed;
    }
  }
  result.disclosure_rate =
      result.unique_originals == 0
          ? 0.0
          : static_cast<double>(result.disclosed) /
                static_cast<double>(result.unique_originals);
  result.overall_recovery_rate =
      n == 0 ? 0.0 : static_cast<double>(recovered) / static_cast<double>(n);
  return result;
}

}  // namespace tripriv
