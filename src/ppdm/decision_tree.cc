#include "ppdm/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace tripriv {
namespace {

double Entropy(const std::map<std::string, size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

std::map<std::string, size_t> LabelCounts(const DataTable& data,
                                          size_t label_col,
                                          const std::vector<size_t>& rows) {
  std::map<std::string, size_t> counts;
  for (size_t r : rows) counts[data.at(r, label_col).AsString()]++;
  return counts;
}

std::string MajorityLabel(const std::map<std::string, size_t>& counts) {
  std::string best;
  size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

Result<DecisionTree> DecisionTree::Train(const DataTable& data,
                                         std::string_view label_attr,
                                         const DecisionTreeConfig& config) {
  TRIPRIV_ASSIGN_OR_RETURN(size_t label_col, data.schema().IndexOf(label_attr));
  if (data.schema().attribute(label_col).type != AttributeType::kCategorical) {
    return Status::InvalidArgument("label attribute must be categorical");
  }
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot train on an empty table");
  }
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if (!data.at(r, label_col).is_string()) {
      return Status::InvalidArgument("null label at row " + std::to_string(r));
    }
  }
  DecisionTree tree;
  tree.label_attr_ = std::string(label_attr);
  std::vector<size_t> rows(data.num_rows());
  for (size_t r = 0; r < rows.size(); ++r) rows[r] = r;
  tree.root_ = tree.BuildNode(data, label_col, rows, config, 0);
  return tree;
}

size_t DecisionTree::BuildNode(const DataTable& data, size_t label_col,
                               const std::vector<size_t>& rows,
                               const DecisionTreeConfig& config, size_t depth) {
  depth_ = std::max(depth_, depth);
  const auto counts = LabelCounts(data, label_col, rows);
  const double node_entropy = Entropy(counts, rows.size());

  auto make_leaf = [&]() {
    Node leaf;
    leaf.is_leaf = true;
    leaf.label = MajorityLabel(counts);
    nodes_.push_back(std::move(leaf));
    return nodes_.size() - 1;
  };

  if (depth >= config.max_depth || rows.size() < 2 * config.min_leaf ||
      node_entropy <= 0.0) {
    return make_leaf();
  }

  // Search all predictor attributes for the best binary split.
  double best_gain = config.min_gain;
  Node best;
  std::vector<size_t> best_left;
  std::vector<size_t> best_right;

  for (size_t c = 0; c < data.num_columns(); ++c) {
    if (c == label_col) continue;
    const Attribute& attr = data.schema().attribute(c);
    if (attr.type == AttributeType::kCategorical) {
      std::set<std::string> values;
      for (size_t r : rows) {
        if (data.at(r, c).is_string()) values.insert(data.at(r, c).AsString());
      }
      size_t considered = 0;
      for (const auto& v : values) {
        if (++considered > config.max_thresholds) break;
        std::vector<size_t> left;
        std::vector<size_t> right;
        for (size_t r : rows) {
          const Value& cell = data.at(r, c);
          (cell.is_string() && cell.AsString() == v ? left : right).push_back(r);
        }
        if (left.size() < config.min_leaf || right.size() < config.min_leaf) {
          continue;
        }
        const double gain =
            node_entropy -
            (static_cast<double>(left.size()) * Entropy(LabelCounts(data, label_col, left), left.size()) +
             static_cast<double>(right.size()) * Entropy(LabelCounts(data, label_col, right), right.size())) /
                static_cast<double>(rows.size());
        if (gain > best_gain) {
          best_gain = gain;
          best.is_leaf = false;
          best.attr = attr.name;
          best.numeric_split = false;
          best.category = Value(v);
          best_left = std::move(left);
          best_right = std::move(right);
        }
      }
    } else {
      // Numeric attribute: quantile-spaced candidate thresholds.
      std::vector<double> values;
      values.reserve(rows.size());
      for (size_t r : rows) {
        if (data.at(r, c).is_numeric()) values.push_back(data.at(r, c).ToDouble());
      }
      if (values.size() < 2 * config.min_leaf) continue;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      if (values.size() < 2) continue;
      const size_t candidates =
          std::min(config.max_thresholds, values.size() - 1);
      for (size_t t = 1; t <= candidates; ++t) {
        const size_t idx = t * (values.size() - 1) / (candidates + 1) + 1;
        const double threshold = 0.5 * (values[idx - 1] + values[idx]);
        std::vector<size_t> left;
        std::vector<size_t> right;
        for (size_t r : rows) {
          const Value& cell = data.at(r, c);
          const bool go_left = cell.is_numeric() && cell.ToDouble() < threshold;
          (go_left ? left : right).push_back(r);
        }
        if (left.size() < config.min_leaf || right.size() < config.min_leaf) {
          continue;
        }
        const double gain =
            node_entropy -
            (static_cast<double>(left.size()) * Entropy(LabelCounts(data, label_col, left), left.size()) +
             static_cast<double>(right.size()) * Entropy(LabelCounts(data, label_col, right), right.size())) /
                static_cast<double>(rows.size());
        if (gain > best_gain) {
          best_gain = gain;
          best.is_leaf = false;
          best.attr = data.schema().attribute(c).name;
          best.numeric_split = true;
          best.threshold = threshold;
          best_left = std::move(left);
          best_right = std::move(right);
        }
      }
    }
  }

  if (best.is_leaf) return make_leaf();
  const size_t left_child =
      BuildNode(data, label_col, best_left, config, depth + 1);
  const size_t right_child =
      BuildNode(data, label_col, best_right, config, depth + 1);
  best.left = left_child;
  best.right = right_child;
  nodes_.push_back(std::move(best));
  return nodes_.size() - 1;
}

Result<size_t> DecisionTree::Descend(const DataTable& table, size_t row) const {
  size_t node = root_;
  while (!nodes_[node].is_leaf) {
    const Node& n = nodes_[node];
    TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(n.attr));
    const Value& cell = table.at(row, col);
    bool go_left;
    if (n.numeric_split) {
      go_left = cell.is_numeric() && cell.ToDouble() < n.threshold;
    } else {
      go_left = cell == n.category;
    }
    node = go_left ? n.left : n.right;
  }
  return node;
}

Result<std::string> DecisionTree::Predict(const DataTable& table,
                                          size_t row) const {
  TRIPRIV_ASSIGN_OR_RETURN(size_t node, Descend(table, row));
  return nodes_[node].label;
}

Result<double> DecisionTree::Accuracy(const DataTable& data) const {
  TRIPRIV_ASSIGN_OR_RETURN(size_t label_col,
                           data.schema().IndexOf(label_attr_));
  if (data.num_rows() == 0) return Status::InvalidArgument("empty table");
  size_t correct = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    TRIPRIV_ASSIGN_OR_RETURN(std::string pred, Predict(data, r));
    if (data.at(r, label_col).is_string() &&
        data.at(r, label_col).AsString() == pred) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

void DecisionTree::Render(size_t node, int indent, std::string* out) const {
  const Node& n = nodes_[node];
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (n.is_leaf) {
    *out += "-> " + n.label + "\n";
    return;
  }
  if (n.numeric_split) {
    *out += n.attr + " < " + std::to_string(n.threshold) + "?\n";
  } else {
    *out += n.attr + " == " + n.category.ToDisplayString() + "?\n";
  }
  Render(n.left, indent + 1, out);
  Render(n.right, indent + 1, out);
}

std::string DecisionTree::ToString() const {
  std::string out;
  if (!nodes_.empty()) Render(root_, 0, &out);
  return out;
}

Result<DataTable> ReconstructTableByClass(
    const DataTable& perturbed, const std::vector<size_t>& perturbed_cols,
    double sigma, std::string_view label_attr,
    const ReconstructionConfig& config) {
  TRIPRIV_ASSIGN_OR_RETURN(size_t label_col,
                           perturbed.schema().IndexOf(label_attr));
  // Partition rows by class label.
  std::map<std::string, std::vector<size_t>> rows_by_class;
  for (size_t r = 0; r < perturbed.num_rows(); ++r) {
    const Value& v = perturbed.at(r, label_col);
    if (!v.is_string()) {
      return Status::InvalidArgument("null label at row " + std::to_string(r));
    }
    rows_by_class[v.AsString()].push_back(r);
  }
  DataTable out = perturbed;
  for (size_t c : perturbed_cols) {
    TRIPRIV_ASSIGN_OR_RETURN(auto column, perturbed.NumericColumn(c));
    std::vector<double> reconstructed = column;
    for (const auto& [label, rows] : rows_by_class) {
      std::vector<double> sub;
      sub.reserve(rows.size());
      for (size_t r : rows) sub.push_back(column[r]);
      TRIPRIV_ASSIGN_OR_RETURN(auto fixed, ReconstructValues(sub, sigma, config));
      for (size_t i = 0; i < rows.size(); ++i) reconstructed[rows[i]] = fixed[i];
    }
    TRIPRIV_RETURN_IF_ERROR(out.SetNumericColumn(c, reconstructed));
  }
  return out;
}

}  // namespace tripriv
