// Decision-tree classification, including training over perturbed data.
//
// The analysis workload of [5]: decision-tree classifiers whose accuracy is
// the utility yardstick for noise-based PPDM. A standard entropy/information
// gain tree (numeric threshold splits, categorical equality splits), plus
// the ByClass pipeline of [5]: perturb -> reconstruct each attribute's
// distribution per class -> rank-match values -> train on the reconstructed
// table.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ppdm/reconstruction.h"
#include "table/data_table.h"

namespace tripriv {

/// Training hyper-parameters.
struct DecisionTreeConfig {
  size_t max_depth = 12;
  size_t min_leaf = 4;
  /// Splits with information gain below this are rejected (node -> leaf).
  double min_gain = 1e-6;
  /// Cap on candidate thresholds per numeric attribute (quantile-spaced).
  size_t max_thresholds = 32;
};

/// Entropy-based binary decision tree over a DataTable.
///
/// Attributes are referenced by name, so a tree trained on one table can
/// classify any table with compatibly-named columns (e.g. train on a
/// reconstructed release, test on the original).
class DecisionTree {
 public:
  /// Trains on `data` with categorical label column `label_attr`. All other
  /// columns are used as predictors. Requires >= 1 row.
  static Result<DecisionTree> Train(const DataTable& data,
                                    std::string_view label_attr,
                                    const DecisionTreeConfig& config = {});

  /// Predicted label for row `row` of `table`.
  Result<std::string> Predict(const DataTable& table, size_t row) const;

  /// Fraction of rows of `data` whose label the tree predicts correctly.
  Result<double> Accuracy(const DataTable& data) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t depth() const { return depth_; }
  const std::string& label_attribute() const { return label_attr_; }

  /// Indented textual rendering of the tree.
  std::string ToString() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::string label;        // leaf payload
    std::string attr;         // split attribute (internal nodes)
    bool numeric_split = true;
    double threshold = 0.0;   // numeric: go left when value < threshold
    Value category;           // categorical: go left when value == category
    size_t left = 0;
    size_t right = 0;
  };

  size_t BuildNode(const DataTable& data, size_t label_col,
                   const std::vector<size_t>& rows,
                   const DecisionTreeConfig& config, size_t depth);
  Result<size_t> Descend(const DataTable& table, size_t row) const;
  void Render(size_t node, int indent, std::string* out) const;

  std::vector<Node> nodes_;
  size_t root_ = 0;
  size_t depth_ = 0;
  std::string label_attr_;
};

/// The ByClass reconstruction step of [5]: for every column in
/// `perturbed_cols` and every label class, reconstructs the original value
/// distribution from the perturbed values (noise sigma `sigma`) and
/// replaces them by rank-matched reconstructed values. Returns the
/// reconstructed training table.
Result<DataTable> ReconstructTableByClass(
    const DataTable& perturbed, const std::vector<size_t>& perturbed_cols,
    double sigma, std::string_view label_attr,
    const ReconstructionConfig& config = {});

}  // namespace tripriv

