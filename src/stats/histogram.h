// Histograms and distribution-distance measures.
//
// The Agrawal-Srikant reconstruction (ppdm) represents distributions as
// equal-width histograms; the disclosure experiments compare original and
// reconstructed distributions with total-variation / KS / chi-square
// distances.

#pragma once

#include <vector>

#include "util/status.h"

namespace tripriv {

/// Equal-width histogram over [lo, hi) with a fixed bin count.
class Histogram {
 public:
  /// Creates an empty histogram. Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, size_t bins);

  /// Builds a histogram of `values` (values outside [lo, hi) are clamped
  /// into the boundary bins).
  static Histogram FromValues(const std::vector<double>& values, double lo,
                              double hi, size_t bins);

  /// Adds one observation (clamped into range).
  void Add(double value);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }
  /// Raw count of bin `i`.
  double count(size_t i) const {
    TRIPRIV_CHECK_LT(i, counts_.size());
    return counts_[i];
  }
  double total() const { return total_; }

  /// Bin index a value falls into (after clamping).
  size_t BinIndex(double value) const;
  /// Center of bin `i`.
  double BinCenter(size_t i) const;

  /// Normalized bin masses (sum 1); all-zero histogram yields uniform.
  std::vector<double> Probabilities() const;

  /// Mean of the binned distribution (bin centers weighted by mass).
  double ApproxMean() const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Total variation distance between two probability vectors of equal size:
/// (1/2) sum |p_i - q_i|, in [0, 1].
double TotalVariation(const std::vector<double>& p, const std::vector<double>& q);

/// Two-sample Kolmogorov-Smirnov statistic (sup distance between empirical
/// CDFs). Requires non-empty samples.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Pearson chi-square statistic of observed counts against expected counts
/// (bins with expected <= 0 are skipped).
double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected);

/// Hellinger distance between two probability vectors, in [0, 1].
double HellingerDistance(const std::vector<double>& p,
                         const std::vector<double>& q);

}  // namespace tripriv

