// Minimal dense linear algebra: Cholesky factorization and multivariate
// normal sampling, used by correlated-noise masking and condensation.

#pragma once

#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tripriv {

/// Lower-triangular Cholesky factor L of a symmetric positive-semidefinite
/// matrix (A = L L^T). A diagonal `jitter` is added (and escalated up to
/// 1e6x) when A is only semidefinite; fails if the matrix is indefinite
/// beyond that.
Result<std::vector<std::vector<double>>> CholeskyDecompose(
    std::vector<std::vector<double>> a, double jitter = 1e-10);

/// Draws one sample from N(mean, L L^T) given the Cholesky factor L.
std::vector<double> MultivariateNormalSample(
    const std::vector<double>& mean,
    const std::vector<std::vector<double>>& chol, Rng* rng);

/// Matrix-vector product.
std::vector<double> MatVec(const std::vector<std::vector<double>>& m,
                           const std::vector<double>& v);

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting. Fails on non-square input or a (numerically) singular matrix.
Result<std::vector<double>> SolveLinearSystem(std::vector<std::vector<double>> a,
                                              std::vector<double> b);

/// Frobenius norm.
double FrobeniusNorm(const std::vector<std::vector<double>>& m);

}  // namespace tripriv

