// Descriptive statistics over numeric vectors and matrices.
//
// These are the primitives behind utility / information-loss measurement
// (how much a masking method distorts means, variances, and the covariance
// structure — the property condensation [1] explicitly preserves) and the
// statistical query engine.

#pragma once

#include <vector>

#include "util/status.h"

namespace tripriv {

/// Arithmetic mean. Requires non-empty input.
double Mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
double SampleVariance(const std::vector<double>& v);

/// Population variance (n denominator). Requires non-empty input.
double PopulationVariance(const std::vector<double>& v);

/// Square root of the unbiased sample variance.
double SampleStddev(const std::vector<double>& v);

/// Unbiased sample covariance of two equally-sized vectors (size >= 2).
double SampleCovariance(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Pearson correlation coefficient; 0 when either vector is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
double Quantile(std::vector<double> v, double q);

/// Median (0.5 quantile).
double Median(std::vector<double> v);

double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Column means of a row-major matrix. Requires a non-empty rectangular
/// matrix.
std::vector<double> ColumnMeans(const std::vector<std::vector<double>>& m);

/// Unbiased sample covariance matrix of a row-major matrix (rows are
/// observations). Requires >= 2 rows.
std::vector<std::vector<double>> CovarianceMatrix(
    const std::vector<std::vector<double>>& m);

/// Pearson correlation matrix (unit diagonal; 0 for constant columns).
std::vector<std::vector<double>> CorrelationMatrix(
    const std::vector<std::vector<double>>& m);

/// Squared Euclidean distance between two points of equal dimension.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Sum over cells of squared differences between two equally-shaped
/// matrices — the SSE information-loss primitive.
double MatrixSse(const std::vector<std::vector<double>>& a,
                 const std::vector<std::vector<double>>& b);

}  // namespace tripriv

