#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace tripriv {

Histogram::Histogram(double lo, double hi, size_t bins) : lo_(lo), hi_(hi) {
  TRIPRIV_CHECK_LT(lo, hi);
  TRIPRIV_CHECK_GE(bins, 1u);
  counts_.assign(bins, 0.0);
}

Histogram Histogram::FromValues(const std::vector<double>& values, double lo,
                                double hi, size_t bins) {
  Histogram h(lo, hi, bins);
  for (double v : values) h.Add(v);
  return h;
}

size_t Histogram::BinIndex(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  const double w = bin_width();
  size_t idx = static_cast<size_t>((value - lo_) / w);
  return std::min(idx, counts_.size() - 1);
}

void Histogram::Add(double value) {
  counts_[BinIndex(value)] += 1.0;
  total_ += 1.0;
}

double Histogram::BinCenter(size_t i) const {
  TRIPRIV_CHECK_LT(i, counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

std::vector<double> Histogram::Probabilities() const {
  std::vector<double> p(counts_.size());
  if (total_ <= 0.0) {
    const double u = 1.0 / static_cast<double>(counts_.size());
    std::fill(p.begin(), p.end(), u);
    return p;
  }
  for (size_t i = 0; i < counts_.size(); ++i) p[i] = counts_[i] / total_;
  return p;
}

double Histogram::ApproxMean() const {
  const auto p = Probabilities();
  double m = 0;
  for (size_t i = 0; i < p.size(); ++i) m += p[i] * BinCenter(i);
  return m;
}

double TotalVariation(const std::vector<double>& p, const std::vector<double>& q) {
  TRIPRIV_CHECK_EQ(p.size(), q.size());
  double s = 0;
  for (size_t i = 0; i < p.size(); ++i) s += std::fabs(p[i] - q[i]);
  return 0.5 * s;
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  TRIPRIV_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  // Advance past all ties of the current smallest value in BOTH samples
  // before comparing CDFs, so equal samples yield distance 0.
  while (ia < a.size() || ib < b.size()) {
    double v;
    if (ia == a.size()) {
      v = b[ib];
    } else if (ib == b.size()) {
      v = a[ia];
    } else {
      v = std::min(a[ia], b[ib]);
    }
    while (ia < a.size() && a[ia] == v) ++ia;
    while (ib < b.size() && b[ib] == v) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected) {
  TRIPRIV_CHECK_EQ(observed.size(), expected.size());
  double s = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = observed[i] - expected[i];
    s += d * d / expected[i];
  }
  return s;
}

double HellingerDistance(const std::vector<double>& p,
                         const std::vector<double>& q) {
  TRIPRIV_CHECK_EQ(p.size(), q.size());
  double s = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double d = std::sqrt(std::max(0.0, p[i])) - std::sqrt(std::max(0.0, q[i]));
    s += d * d;
  }
  return std::sqrt(0.5 * s);
}

}  // namespace tripriv
