#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace tripriv {

double Mean(const std::vector<double>& v) {
  TRIPRIV_CHECK(!v.empty());
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double SampleVariance(const std::vector<double>& v) {
  TRIPRIV_CHECK_GE(v.size(), 2u);
  const double m = Mean(v);
  double ss = 0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size() - 1);
}

double PopulationVariance(const std::vector<double>& v) {
  TRIPRIV_CHECK(!v.empty());
  const double m = Mean(v);
  double ss = 0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size());
}

double SampleStddev(const std::vector<double>& v) {
  return std::sqrt(SampleVariance(v));
}

double SampleCovariance(const std::vector<double>& x,
                        const std::vector<double>& y) {
  TRIPRIV_CHECK_EQ(x.size(), y.size());
  TRIPRIV_CHECK_GE(x.size(), 2u);
  const double mx = Mean(x);
  const double my = Mean(y);
  double s = 0;
  for (size_t i = 0; i < x.size(); ++i) s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  const double cov = SampleCovariance(x, y);
  const double vx = SampleVariance(x);
  const double vy = SampleVariance(y);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double Quantile(std::vector<double> v, double q) {
  TRIPRIV_CHECK(!v.empty());
  TRIPRIV_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

double Min(const std::vector<double>& v) {
  TRIPRIV_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  TRIPRIV_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

std::vector<double> ColumnMeans(const std::vector<std::vector<double>>& m) {
  TRIPRIV_CHECK(!m.empty());
  const size_t d = m[0].size();
  std::vector<double> means(d, 0.0);
  for (const auto& row : m) {
    TRIPRIV_CHECK_EQ(row.size(), d);
    for (size_t j = 0; j < d; ++j) means[j] += row[j];
  }
  for (double& v : means) v /= static_cast<double>(m.size());
  return means;
}

std::vector<std::vector<double>> CovarianceMatrix(
    const std::vector<std::vector<double>>& m) {
  TRIPRIV_CHECK_GE(m.size(), 2u);
  const size_t d = m[0].size();
  const std::vector<double> means = ColumnMeans(m);
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (const auto& row : m) {
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i; j < d; ++j) {
        cov[i][j] += (row[i] - means[i]) * (row[j] - means[j]);
      }
    }
  }
  const double denom = static_cast<double>(m.size() - 1);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }
  return cov;
}

std::vector<std::vector<double>> CorrelationMatrix(
    const std::vector<std::vector<double>>& m) {
  auto cov = CovarianceMatrix(m);
  const size_t d = cov.size();
  std::vector<std::vector<double>> corr(d, std::vector<double>(d, 0.0));
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double denom = std::sqrt(cov[i][i] * cov[j][j]);
      corr[i][j] = denom > 0.0 ? cov[i][j] / denom : (i == j ? 1.0 : 0.0);
    }
  }
  for (size_t i = 0; i < d; ++i) corr[i][i] = 1.0;
  return corr;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TRIPRIV_CHECK_EQ(a.size(), b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double MatrixSse(const std::vector<std::vector<double>>& a,
                 const std::vector<std::vector<double>>& b) {
  TRIPRIV_CHECK_EQ(a.size(), b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += SquaredDistance(a[i], b[i]);
  return s;
}

}  // namespace tripriv
