#include "stats/linalg.h"

#include <cmath>

namespace tripriv {
namespace {

// One Cholesky attempt; false if a non-positive pivot is hit.
bool TryCholesky(const std::vector<std::vector<double>>& a,
                 std::vector<std::vector<double>>* l) {
  const size_t n = a.size();
  l->assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (size_t k = 0; k < j; ++k) sum -= (*l)[i][k] * (*l)[j][k];
      if (i == j) {
        if (sum <= 0.0) return false;
        (*l)[i][i] = std::sqrt(sum);
      } else {
        (*l)[i][j] = sum / (*l)[j][j];
      }
    }
  }
  return true;
}

}  // namespace

Result<std::vector<std::vector<double>>> CholeskyDecompose(
    std::vector<std::vector<double>> a, double jitter) {
  const size_t n = a.size();
  for (const auto& row : a) {
    if (row.size() != n) {
      return Status::InvalidArgument("Cholesky: matrix is not square");
    }
  }
  std::vector<std::vector<double>> l;
  if (TryCholesky(a, &l)) return l;
  // Escalate diagonal jitter for semidefinite inputs (e.g. covariance of a
  // group smaller than the dimension) — but only up to a tiny fraction of
  // the diagonal scale, so genuinely indefinite matrices still fail.
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) scale = std::max(scale, std::fabs(a[i][i]));
  const double max_eps = 1e-6 * std::max(scale, 1.0);
  for (double eps = jitter; eps <= max_eps; eps *= 100.0) {
    auto jittered = a;
    for (size_t i = 0; i < n; ++i) jittered[i][i] += eps;
    if (TryCholesky(jittered, &l)) return l;
  }
  return Status::InvalidArgument("Cholesky: matrix is not positive semidefinite");
}

std::vector<double> MultivariateNormalSample(
    const std::vector<double>& mean,
    const std::vector<std::vector<double>>& chol, Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  TRIPRIV_CHECK_EQ(mean.size(), chol.size());
  const size_t n = mean.size();
  std::vector<double> z(n);
  for (double& v : z) v = rng->Normal();
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    double s = mean[i];
    for (size_t j = 0; j <= i; ++j) s += chol[i][j] * z[j];
    out[i] = s;
  }
  return out;
}

std::vector<double> MatVec(const std::vector<std::vector<double>>& m,
                           const std::vector<double>& v) {
  std::vector<double> out(m.size(), 0.0);
  for (size_t i = 0; i < m.size(); ++i) {
    TRIPRIV_CHECK_EQ(m[i].size(), v.size());
    for (size_t j = 0; j < v.size(); ++j) out[i] += m[i][j] * v[j];
  }
  return out;
}

Result<std::vector<double>> SolveLinearSystem(
    std::vector<std::vector<double>> a, std::vector<double> b) {
  const size_t n = a.size();
  if (b.size() != n) return Status::InvalidArgument("dimension mismatch");
  for (const auto& row : a) {
    if (row.size() != n) return Status::InvalidArgument("matrix is not square");
  }
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::InvalidArgument("matrix is singular");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t c = row + 1; c < n; ++c) sum -= a[row][c] * x[c];
    x[row] = sum / a[row][row];
  }
  return x;
}

double FrobeniusNorm(const std::vector<std::vector<double>>& m) {
  double s = 0;
  for (const auto& row : m) {
    for (double v : row) s += v * v;
  }
  return std::sqrt(s);
}

}  // namespace tripriv
