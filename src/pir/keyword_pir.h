// Keyword PIR: retrieval by key instead of index.
//
// Practical queries name a key ("the record of patient 4711"), not an array
// position. Standard reduction (Chor, Gilboa & Naor): the server publishes
// a sorted key array; the client binary-searches it with O(log n) index-PIR
// reads, then retrieves the value — no server learns which key was probed.
// Built here on the 2-server XOR scheme.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "pir/it_pir.h"

namespace tripriv {

/// A replicated key-value PIR store (two non-colluding servers).
class KeywordPirStore {
 public:
  /// Builds the store from key-value pairs (keys must be unique; they are
  /// sorted internally). Values are fixed 8-byte payloads.
  static Result<KeywordPirStore> Create(
      std::vector<std::pair<uint64_t, uint64_t>> entries);

  size_t size() const { return num_entries_; }

  /// Privately looks up `key`; nullopt when absent. Accumulates stats over
  /// the O(log n) underlying PIR reads.
  Result<std::optional<uint64_t>> Lookup(uint64_t key, Rng* rng,
                                         PirStats* stats = nullptr);

  /// Combined view of both servers' observed queries (for the evaluation
  /// harness).
  size_t queries_observed() const;

 private:
  // Each record stores key (8 bytes LE) + value (8 bytes LE).
  XorPirServer server_a_;
  XorPirServer server_b_;
  size_t num_entries_ = 0;
};

}  // namespace tripriv

