#include "pir/keyword_pir.h"

#include <algorithm>

namespace tripriv {
namespace {

std::vector<uint8_t> EncodeRecord(uint64_t key, uint64_t value) {
  std::vector<uint8_t> record(16);
  for (int i = 0; i < 8; ++i) {
    record[i] = static_cast<uint8_t>(key >> (8 * i));
    record[8 + i] = static_cast<uint8_t>(value >> (8 * i));
  }
  return record;
}

uint64_t DecodeU64(const std::vector<uint8_t>& record, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(record[offset + i]) << (8 * i);
  }
  return v;
}

}  // namespace

Result<KeywordPirStore> KeywordPirStore::Create(
    std::vector<std::pair<uint64_t, uint64_t>> entries) {
  if (entries.empty()) return Status::InvalidArgument("empty store");
  std::sort(entries.begin(), entries.end());
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].first == entries[i - 1].first) {
      // Keys identify records; report the collision, not the key.
      return Status::InvalidArgument("duplicate key in store");
    }
  }
  std::vector<std::vector<uint8_t>> records;
  records.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    records.push_back(EncodeRecord(key, value));
  }
  KeywordPirStore store;
  TRIPRIV_ASSIGN_OR_RETURN(store.server_a_, XorPirServer::Create(records));
  TRIPRIV_ASSIGN_OR_RETURN(store.server_b_,
                           XorPirServer::Create(std::move(records)));
  store.num_entries_ = entries.size();
  return store;
}

Result<std::optional<uint64_t>> KeywordPirStore::Lookup(uint64_t key, Rng* rng,
                                                        PirStats* stats) {
  TRIPRIV_CHECK(rng != nullptr);
  // Private binary search over the sorted key array.
  size_t lo = 0;
  size_t hi = num_entries_;  // exclusive
  PirStats total;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    PirStats step;
    TRIPRIV_ASSIGN_OR_RETURN(
        auto record, TwoServerPirRead(&server_a_, &server_b_, mid, rng, &step));
    total.upload_bits += step.upload_bits;
    total.download_bits += step.download_bits;
    const uint64_t mid_key = DecodeU64(record, 0);
    if (mid_key == key) {
      if (stats != nullptr) *stats = total;
      return std::optional<uint64_t>(DecodeU64(record, 8));
    }
    if (mid_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (stats != nullptr) *stats = total;
  return std::optional<uint64_t>();
}

size_t KeywordPirStore::queries_observed() const {
  return static_cast<size_t>(server_a_.queries_answered() +
                             server_b_.queries_answered());
}

}  // namespace tripriv
