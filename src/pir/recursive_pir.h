// Recursive d-dimensional information-theoretic PIR with seed-compressed
// queries — the SealPIR/OnionPIR shape mapped onto replicated XOR servers.
//
// The flat 2-server scheme ships O(n) selection bits per query; at 10^6
// records the query upload dominates everything else the serving stack
// does. This module generalizes the 4-server cube path of pir/it_pir.h to
// a d-dimensional hypercube over 2^d replicas:
//
//   * the database is laid out as a hypercube of `side^d >= n` cells
//     (HypercubeGeometry), the target index split into one coordinate per
//     axis;
//   * the client draws ONE uniformly random selection bitmap per axis —
//     derived from a single 64-bit PRG seed via the RandomSelectionBits
//     draw discipline, so expansion is a pure function of the seed;
//   * replica s in [0, 2^d) answers the XOR of every cell in the product
//     selection, where axis k's bitmap is flipped at the target coordinate
//     iff bit k of s is set. XORing all 2^d answers cancels every cell an
//     even number of servers selected, leaving exactly the target record;
//   * upload: the all-unflipped replica (s = 0) receives ONLY the 64-bit
//     seed and expands its axis bitmaps locally; every other replica
//     receives explicit per-axis bitmaps, O(d * n^(1/d)) bits. The seed
//     must not be sent to a replica that also receives a flipped axis —
//     it could expand the unflipped bitmap and difference out the target
//     coordinate — so only s = 0 gets it. Total upload per read:
//     64 + (2^d - 1) * sum(side_k) bits, versus 2n flat.
//
// Privacy: each replica sees either a seed (whose expansion is a uniform
// bitmap per axis) or explicit bitmaps that are uniform on their own
// (flipping a fixed bit of a uniform bitmap preserves uniformity), so no
// single replica learns anything about the target — the same
// single-server blindness argument as the flat scheme, axis by axis.
//
// Every replica expands its axis bitmaps into the canonical flat n-bit
// product selection (padding bits zero, overhang cells of the geometric
// cube never set) before answering, so observed transcripts, popcount
// accounting, and the byte-identical-at-any-thread-count contract are
// EXACTLY those of the flat XorPirServer path.
//
// PirSessionRegistry is the OnionPIR `client_galois_keys_` shape mapped to
// this scheme: per-client expansion state that servers retain across a
// batch, keyed by an allowlisted tenant class (obs::kClass* index — a
// coarse service tier, NEVER a principal id) so holding the state does not
// build per-user profiles. A session caches the epoch's geometry and the
// axis/flat scratch buffers, so a batch of reads reuses one allocation
// instead of reallocating O(n/8) bytes per read.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/annotations.h"
#include "pir/it_pir.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Hypercube layout of an n-record database: d axes of `side` cells each,
/// side^d >= n, cell index = sum_k coord_k * stride_k with axis 0 outermost
/// (stride_{d-1} = 1). Cells with linear index >= n overhang the database
/// and are never selected.
struct HypercubeGeometry {
  size_t n = 0;
  size_t side = 0;
  size_t d = 0;

  /// Smallest balanced geometry for `n` records in `d` dimensions
  /// (side = ceil(n^(1/d))). Requires n >= 1 and d >= 1.
  static Result<HypercubeGeometry> Balanced(size_t n, size_t d);

  /// Replicas the scheme needs: 2^d.
  size_t num_servers() const { return size_t{1} << d; }
  /// Explicit per-axis upload of one non-seed replica, in bits.
  size_t axis_bits() const { return d * side; }
  /// coords[k] of flat record index `i` (requires i < side^d).
  std::vector<size_t> Coordinates(size_t i) const;
};

/// The query one replica receives: either the compact PRG seed (replica 0
/// only — see file comment) or explicit per-axis selection bitmaps, packed
/// LSB-first with canonical (zero) padding per axis.
struct HypercubeQuery {
  bool seed_only = false;
  uint64_t seed = 0;
  TRIPRIV_SENSITIVE(record)
  std::vector<std::vector<uint8_t>> axis_bits;

  /// Bits this query ships: 64 for the seed form, d*side explicit.
  size_t upload_bits(const HypercubeGeometry& g) const {
    return seed_only ? 64 : g.axis_bits();
  }
};

/// Expands `seed` into the base (unflipped) per-axis selection bitmaps —
/// a pure function of the seed: axis bitmaps are drawn in axis order with
/// the RandomSelectionBits draw discipline, so client and replica derive
/// byte-identical bitmaps from the same 64 bits.
TRIPRIV_SENSITIVE(record)
std::vector<std::vector<uint8_t>> ExpandAxisSelections(
    uint64_t seed, const HypercubeGeometry& g);

/// Expands per-axis bitmaps into the canonical flat n-bit product
/// selection: bit i set iff every axis bitmap has the bit of coordinate k
/// of cell i set. Padding bits are zero and overhang cells (>= n) are
/// skipped, so the result is exactly what XorPirServer observation and
/// popcount accounting expect. Writes into `*flat` (resized; reusable
/// session scratch). Returns the number of hypercube cells visited — the
/// expansion work metric.
TRIPRIV_SENSITIVE(record)
uint64_t ExpandProductSelection(
    const std::vector<std::vector<uint8_t>>& axis_bits,
    const HypercubeGeometry& g, std::vector<uint8_t>* flat);

/// Per-tenant-class expansion/session state retained across a batch (the
/// OnionPIR client_galois_keys_ shape; see file comment). Not thread-safe:
/// sessions live on the serial read path, like the rng draws.
class PirSessionRegistry {
 public:
  struct Session {
    uint8_t tenant_class = 0;
    uint64_t epoch = 0;
    HypercubeGeometry geometry;
    /// Reusable expansion scratch (axis bitmaps + flat product bitmap).
    TRIPRIV_SENSITIVE(record)
    std::vector<std::vector<uint8_t>> axis_scratch;
    TRIPRIV_SENSITIVE(record)
    std::vector<uint8_t> flat_scratch;
    /// Per-class accounting (class is allowlisted, so these are exportable).
    uint64_t reads = 0;
    uint64_t upload_bits = 0;
    uint64_t expanded_cells = 0;
  };

  /// The session for `tenant_class`, created on first use and refreshed
  /// (geometry swapped, scratch kept) when `epoch` moved past the cached
  /// one. Counters survive refreshes.
  Session* Establish(uint8_t tenant_class, const HypercubeGeometry& geometry,
                     uint64_t epoch);
  /// The session for `tenant_class`, or null.
  Session* Find(uint8_t tenant_class);
  const Session* Find(uint8_t tenant_class) const;
  /// Epoch-flip hook: drops the cached geometry and scratch of every
  /// session established for an epoch before `epoch` (counters survive).
  void InvalidateBefore(uint64_t epoch);

  size_t num_sessions() const { return sessions_.size(); }
  uint64_t total_reads() const;
  uint64_t total_upload_bits() const;
  uint64_t total_expanded_cells() const;

 private:
  std::map<uint8_t, Session> sessions_;
};

/// Builds the 2^d per-replica queries for a read of record `index`: one
/// NextU64 draw for the seed, then the flips. Exposed for tests and for
/// transports that ship queries; RecursivePirRead composes it.
Result<std::vector<HypercubeQuery>> BuildHypercubeQueries(
    const HypercubeGeometry& g, size_t index, Rng* rng);

/// Replica-side processing of one query: expand the axis bitmaps (from the
/// seed for the s = 0 form), expand the flat product selection, and answer.
/// `session` (optional) provides reusable scratch and accrues expansion
/// accounting; `pool` shards the XOR sweep.
Result<std::vector<uint8_t>> AnswerHypercubeQuery(
    XorPirServer* server, const HypercubeQuery& query,
    const HypercubeGeometry& g, ThreadPool* pool = nullptr,
    PirSessionRegistry::Session* session = nullptr);

/// Retrieves record `index` via the recursive scheme. `servers` must hold
/// g.num_servers() identical replicas (entries may alias one object for
/// benching — answers only depend on the queries). Draws exactly one
/// NextU64 from `rng` per read; `stats` accumulates (see PirStats
/// contract); `session` reuses expansion scratch across reads.
Result<std::vector<uint8_t>> RecursivePirRead(
    const std::vector<XorPirServer*>& servers, const HypercubeGeometry& g,
    size_t index, Rng* rng, ThreadPool* pool = nullptr,
    PirStats* stats = nullptr, PirSessionRegistry::Session* session = nullptr);

/// Batched recursive reads, positional answers. Items run serially in
/// index order (the rng transcript of a RecursivePirRead loop); `pool`
/// shards each replica's XOR sweep, so answers are bit-identical at any
/// thread count. One session's scratch serves the whole batch.
Result<std::vector<std::vector<uint8_t>>> RecursivePirBatchRead(
    const std::vector<XorPirServer*>& servers, const HypercubeGeometry& g,
    const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool = nullptr,
    PirStats* stats = nullptr, PirSessionRegistry::Session* session = nullptr);

}  // namespace tripriv
