// Single-server computational PIR via Paillier homomorphic folding
// (Kushilevitz-Ostrovsky style square layout).
//
// A single server holds the database; user privacy rests on a computational
// assumption (here: the security of Paillier). The database is arranged as
// an r x c matrix of 64-bit entries; the user sends one ciphertext per row
// (the encrypted row indicator e_i); the server returns, per column j,
//   Prod_i Enc(sel_i)^{M[i][j]}  =  Enc(M[target_row][j])
// and the user decrypts the column of interest. Communication is
// O(sqrt(n)) ciphertexts each way.

#pragma once

#include <cstdint>
#include <vector>

#include "smc/paillier.h"

namespace tripriv {

/// The single PIR server: matrix layout of a vector of 64-bit entries.
class CpirServer {
 public:
  /// Requires a non-empty database.
  static Result<CpirServer> Create(std::vector<uint64_t> database);

  size_t num_entries() const { return database_.size(); }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Server-side evaluation: one encrypted row-selector per row; returns
  /// one ciphertext per column. The server also logs each query it saw.
  Result<std::vector<BigInt>> Answer(const PaillierPublicKey& pub,
                                     const std::vector<BigInt>& encrypted_selector);

  /// Number of queries served (the server's entire view beyond ciphertexts).
  size_t queries_served() const { return queries_served_; }

 private:
  std::vector<uint64_t> database_;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t queries_served_ = 0;
};

/// Client-side state (key pair) plus the query protocol.
class CpirClient {
 public:
  /// Generates the client key pair. modulus_bits >= 256 recommended so
  /// 64-bit entries never wrap.
  static Result<CpirClient> Create(size_t modulus_bits, uint64_t seed);

  /// Retrieves entry `index` from the server privately.
  Result<uint64_t> Read(CpirServer* server, size_t index);

  /// Communication cost of the last Read, in ciphertext counts.
  size_t last_upload_ciphertexts() const { return last_upload_; }
  size_t last_download_ciphertexts() const { return last_download_; }

 private:
  PaillierKeyPair keys_;
  Rng rng_{0};
  size_t last_upload_ = 0;
  size_t last_download_ = 0;
};

}  // namespace tripriv

