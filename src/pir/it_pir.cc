#include "pir/it_pir.h"

#include <bit>
#include <cmath>

#include "pir/xor_kernel.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

bool GetBit(const std::vector<uint8_t>& bits, size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1u;
}

/// Flips grid cell (row, col) in a flat per-record bitmap, ignoring cells
/// past the end of the database (the grid may overhang n).
void FlipGridCell(std::vector<uint8_t>* flat, size_t row, size_t col,
                  size_t cols, size_t n) {
  const size_t i = row * cols + col;
  if (i < n) FlipSelectionBit(flat, i);
}

/// Answers below this many XORed bytes stay serial: the fork/join handoff
/// costs more than the kernel saves.
constexpr size_t kMinParallelAnswerBytes = 1 << 15;

}  // namespace

std::vector<uint8_t> RandomSelectionBits(size_t n, Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  std::vector<uint8_t> bits((n + 7) / 8);
  // One NextU64 fills 8 bitmap bytes; bytes are taken from the low end up
  // so the layout is identical on every platform.
  for (size_t i = 0; i < bits.size(); i += 8) {
    const uint64_t word = rng->NextU64();
    const size_t take = bits.size() - i < 8 ? bits.size() - i : 8;
    for (size_t k = 0; k < take; ++k) {
      bits[i + k] = static_cast<uint8_t>(word >> (8 * k));
    }
  }
  // Zero the padding bits so observed queries are canonical.
  if (n % 8 != 0) bits.back() &= static_cast<uint8_t>((1u << (n % 8)) - 1u);
  return bits;
}

void FlipSelectionBit(std::vector<uint8_t>* bits, size_t i) {
  (*bits)[i / 8] ^= static_cast<uint8_t>(1u << (i % 8));
}

Result<XorPirServer> XorPirServer::Create(
    std::vector<std::vector<uint8_t>> records) {
  if (records.empty()) return Status::InvalidArgument("empty database");
  const size_t size = records[0].size();
  if (size == 0) return Status::InvalidArgument("records must be non-empty");
  for (const auto& r : records) {
    if (r.size() != size) {
      return Status::InvalidArgument("records must have equal length");
    }
  }
  XorPirServer server;
  server.records_ = std::move(records);
  return server;
}

void XorPirServer::EnableObservationLog(size_t capacity) {
  TRIPRIV_CHECK(capacity >= 1);
  observe_capacity_ = capacity;
  observe_head_ = 0;
  observed_.clear();
}

void XorPirServer::ObserveQuery(const std::vector<uint8_t>& selection) {
  ++queries_answered_;
  uint64_t selected = 0;
  for (uint8_t byte : selection) {
    selected += static_cast<uint64_t>(std::popcount(byte));
  }
  bytes_xored_ += selected * record_size();
  if (observe_capacity_ == 0) return;
  if (observed_.size() < observe_capacity_) {
    observed_.push_back(selection);
    return;
  }
  observed_[observe_head_] = selection;
  observe_head_ = (observe_head_ + 1) % observe_capacity_;
}

const std::vector<uint8_t>& XorPirServer::observed_query(size_t i) const {
  TRIPRIV_CHECK_LT(i, observed_.size());
  if (observed_.size() < observe_capacity_) return observed_[i];
  return observed_[(observe_head_ + i) % observe_capacity_];
}

const std::vector<uint8_t>& XorPirServer::last_observed_query() const {
  TRIPRIV_CHECK(!observed_.empty());
  return observed_query(observed_.size() - 1);
}

void XorPirServer::Preprocess() {
  if (preprocessed()) return;
  const size_t size = record_size();
  const size_t pairs = (records_.size() + 1) / 2;
  // Slots padded to whole cache lines so every slot starts 64-byte aligned.
  parity_stride_ = (size + 63) / 64 * 64;
  parity_ = AlignedWordBuffer(pairs * 3 * parity_stride_ / 8);
  uint8_t* out = parity_.bytes();
  for (size_t p = 0; p < pairs; ++p) {
    const std::vector<uint8_t>& even = records_[2 * p];
    uint8_t* even_slot = out + (3 * p) * parity_stride_;
    uint8_t* odd_slot = even_slot + parity_stride_;
    uint8_t* parity_slot = odd_slot + parity_stride_;
    std::memcpy(even_slot, even.data(), size);
    std::memcpy(parity_slot, even.data(), size);
    if (2 * p + 1 < records_.size()) {
      // A lone trailing record leaves its odd slot zero, so its parity slot
      // degenerates to the record itself and the sweep stays uniform.
      const std::vector<uint8_t>& odd = records_[2 * p + 1];
      std::memcpy(odd_slot, odd.data(), size);
      XorBytesInto(parity_slot, odd.data(), size);
    }
  }
}

void XorPirServer::AccumulateRecords(const std::vector<uint8_t>& selection,
                                     size_t begin, size_t end,
                                     uint8_t* acc) const {
  const size_t size = record_size();
  size_t i = begin;
  while (i < end) {
    if (i % 8 == 0 && i + 8 <= end && selection[i / 8] == 0) {
      i += 8;  // skip a whole clear selection byte
      continue;
    }
    if (GetBit(selection, i)) XorBytesInto(acc, records_[i].data(), size);
    ++i;
  }
}

void XorPirServer::AccumulateRange(const std::vector<uint8_t>& selection,
                                   size_t begin, size_t end,
                                   uint8_t* acc) const {
  if (!preprocessed()) {
    AccumulateRecords(selection, begin, end, acc);
    return;
  }
  // Parity sweep: two selection bits cost at most one aligned XOR. Shard
  // boundaries may split a pair; the stray records on either side take the
  // single-slot path, and XOR commutativity makes the merged bytes
  // identical to the serial sweep regardless of the split.
  const size_t size = record_size();
  size_t i = begin;
  if (i < end && i % 2 == 1) {
    if (GetBit(selection, i)) {
      XorBytesInto(acc, ParitySlot(3 * (i / 2) + 1), size);
    }
    ++i;
  }
  for (; i + 2 <= end; i += 2) {
    if (i % 8 == 0 && i + 8 <= end && selection[i / 8] == 0) {
      i += 6;  // skip a whole clear selection byte (loop adds the other 2)
      continue;
    }
    const bool even = GetBit(selection, i);
    const bool odd = GetBit(selection, i + 1);
    if (even && odd) {
      XorBytesInto(acc, ParitySlot(3 * (i / 2) + 2), size);
    } else if (even) {
      XorBytesInto(acc, ParitySlot(3 * (i / 2)), size);
    } else if (odd) {
      XorBytesInto(acc, ParitySlot(3 * (i / 2) + 1), size);
    }
  }
  if (i < end && GetBit(selection, i)) {
    XorBytesInto(acc, ParitySlot(3 * (i / 2)), size);
  }
}

Result<std::vector<uint8_t>> XorPirServer::ComputeAnswer(
    const std::vector<uint8_t>& selection, ThreadPool* pool) const {
  if (!compute_fault_.ok()) return compute_fault_;
  if (selection.size() != (records_.size() + 7) / 8) {
    return Status::InvalidArgument("selection bitmap has wrong length");
  }
  const size_t size = record_size();
  std::vector<uint8_t> acc(size, 0);
  const size_t shards = pool == nullptr ? 1 : pool->NumShards(records_.size());
  if (shards <= 1 || records_.size() * size < kMinParallelAnswerBytes) {
    AccumulateRange(selection, 0, records_.size(), acc.data());
    return acc;
  }
  // Per-shard partial accumulators, XOR-merged in shard order below. XOR is
  // commutative, so the bytes cannot depend on the merge order anyway — the
  // fixed order keeps the parallel path structurally identical to the
  // serial one.
  std::vector<std::vector<uint8_t>> partial(shards,
                                            std::vector<uint8_t>(size, 0));
  pool->ParallelFor(records_.size(),
                    [this, &selection, &partial](size_t shard, size_t begin,
                                                 size_t end) {
                      AccumulateRange(selection, begin, end,
                                      partial[shard].data());
                    });
  for (size_t s = 0; s < shards; ++s) {
    XorBytesInto(acc.data(), partial[s].data(), size);
  }
  return acc;
}

Result<std::vector<uint8_t>> XorPirServer::Answer(
    const std::vector<uint8_t>& selection, ThreadPool* pool) {
  TRIPRIV_ASSIGN_OR_RETURN(auto answer, ComputeAnswer(selection, pool));
  ObserveQuery(selection);
  return answer;
}

Result<std::vector<uint8_t>> TwoServerPirRead(XorPirServer* server_a,
                                              XorPirServer* server_b,
                                              size_t index, Rng* rng,
                                              PirStats* stats) {
  TRIPRIV_CHECK(server_a != nullptr && server_b != nullptr && rng != nullptr);
  const size_t n = server_a->num_records();
  if (server_b->num_records() != n ||
      server_a->record_size() != server_b->record_size()) {
    return Status::InvalidArgument("servers must hold identical replicas");
  }
  if (index >= n) return Status::OutOfRange("record index out of range");

  std::vector<uint8_t> query_a = RandomSelectionBits(n, rng);
  std::vector<uint8_t> query_b = query_a;
  FlipSelectionBit(&query_b, index);

  TRIPRIV_ASSIGN_OR_RETURN(auto answer_a, server_a->Answer(query_a));
  TRIPRIV_ASSIGN_OR_RETURN(auto answer_b, server_b->Answer(query_b));
  XorBytesInto(answer_a.data(), answer_b.data(), answer_a.size());
  if (stats != nullptr) {
    // Accumulate, never overwrite — see the PirStats contract in it_pir.h.
    stats->upload_bits += 2 * n;
    stats->download_bits += 2 * 8 * server_a->record_size();
  }
  return answer_a;
}

Result<std::vector<std::vector<uint8_t>>> TwoServerPirBatchRead(
    XorPirServer* server_a, XorPirServer* server_b,
    const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool,
    PirStats* stats) {
  TRIPRIV_CHECK(server_a != nullptr && server_b != nullptr && rng != nullptr);
  const size_t n = server_a->num_records();
  if (server_b->num_records() != n ||
      server_a->record_size() != server_b->record_size()) {
    return Status::InvalidArgument("servers must hold identical replicas");
  }
  for (size_t index : indices) {
    if (index >= n) return Status::OutOfRange("record index out of range");
  }

  // Serial stage, in index order: draw the selection pairs and log the
  // observations — the exact rng draws and transcript a TwoServerPirRead
  // loop would produce, independent of the worker count.
  std::vector<std::vector<uint8_t>> queries_a(indices.size());
  std::vector<std::vector<uint8_t>> queries_b(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    queries_a[i] = RandomSelectionBits(n, rng);
    queries_b[i] = queries_a[i];
    FlipSelectionBit(&queries_b[i], indices[i]);
    server_a->ObserveQuery(queries_a[i]);
    server_b->ObserveQuery(queries_b[i]);
  }

  // Parallel stage: pure answer computation into positional slots. A slot
  // failure (a replica refusing or diverging mid-batch) lands in its own
  // Status slot — never a process abort inside the ParallelFor region —
  // and the first failure in index order becomes the batch's typed error
  // after the join.
  std::vector<std::vector<uint8_t>> answers(indices.size());
  std::vector<Status> slot_status(indices.size());
  const XorPirServer* a = server_a;
  const XorPirServer* b = server_b;
  auto answer_one = [a, b, &queries_a, &queries_b, &answers,
                     &slot_status](size_t i) {
    auto answer_a = a->ComputeAnswer(queries_a[i]);
    if (!answer_a.ok()) {
      slot_status[i] = answer_a.status();
      return;
    }
    auto answer_b = b->ComputeAnswer(queries_b[i]);
    if (!answer_b.ok()) {
      slot_status[i] = answer_b.status();
      return;
    }
    if (answer_a->size() != answer_b->size()) {
      slot_status[i] = Status::Internal("replica answers diverged in length");
      return;
    }
    XorBytesInto(answer_a->data(), answer_b->data(), answer_a->size());
    answers[i] = std::move(answer_a).value();
  };
  if (pool == nullptr || pool->num_threads() <= 1 || indices.size() <= 1) {
    for (size_t i = 0; i < indices.size(); ++i) answer_one(i);
  } else {
    pool->ParallelFor(indices.size(),
                      [&answer_one](size_t, size_t begin, size_t end) {
                        for (size_t i = begin; i < end; ++i) answer_one(i);
                      });
  }
  for (size_t i = 0; i < indices.size(); ++i) {
    if (!slot_status[i].ok()) {
      return Status(slot_status[i].code(),
                    "PIR batch slot " + std::to_string(i) +
                        " failed: " + slot_status[i].message());
    }
  }
  if (stats != nullptr) {
    stats->upload_bits += indices.size() * 2 * n;
    stats->download_bits += indices.size() * 2 * 8 * server_a->record_size();
  }
  return answers;
}

Result<std::vector<uint8_t>> FourServerCubePirRead(
    const std::array<XorPirServer*, 4>& servers, size_t index, Rng* rng,
    PirStats* stats) {
  TRIPRIV_CHECK(rng != nullptr);
  for (auto* s : servers) TRIPRIV_CHECK(s != nullptr);
  const size_t n = servers[0]->num_records();
  for (auto* s : servers) {
    if (s->num_records() != n || s->record_size() != servers[0]->record_size()) {
      return Status::InvalidArgument("servers must hold identical replicas");
    }
  }
  if (index >= n) return Status::OutOfRange("record index out of range");

  // Grid dimensions: rows x cols >= n.
  const size_t cols = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const size_t rows = (n + cols - 1) / cols;
  const size_t target_row = index / cols;
  const size_t target_col = index % cols;

  std::vector<uint8_t> row_sel = RandomSelectionBits(rows, rng);
  std::vector<uint8_t> col_sel = RandomSelectionBits(cols, rng);
  std::vector<uint8_t> row_sel_flipped = row_sel;
  FlipSelectionBit(&row_sel_flipped, target_row);

  // Server s in {0..3} gets (row_sel [xor {i1} if s&1], col_sel [xor {i2}
  // if s&2]) and answers the XOR of all records in the selected submatrix.
  // Expanding the product selection into a flat per-record bitmap keeps the
  // XorPirServer interface uniform; upload accounting uses the compact
  // per-axis size the real protocol would ship. The four flat bitmaps
  // differ only along the target row/column stripe, so server 0's O(n)
  // expansion is built once and the other three are derived by O(sqrt n)
  // stripe flips:
  //   flat1 = flat0 ^ {row target_row restricted to col_sel}
  //   flat2 = flat0 ^ {col target_col restricted to row_sel}
  //   flat3 = flat1 ^ {col target_col restricted to row_sel_flipped}
  std::vector<uint8_t> flat0((n + 7) / 8, 0);
  for (size_t i = 0; i < n; ++i) {
    if (GetBit(row_sel, i / cols) && GetBit(col_sel, i % cols)) {
      FlipSelectionBit(&flat0, i);
    }
  }
  std::vector<uint8_t> flat1 = flat0;
  for (size_t c = 0; c < cols; ++c) {
    if (GetBit(col_sel, c)) FlipGridCell(&flat1, target_row, c, cols, n);
  }
  std::vector<uint8_t> flat2 = flat0;
  for (size_t r = 0; r < rows; ++r) {
    if (GetBit(row_sel, r)) FlipGridCell(&flat2, r, target_col, cols, n);
  }
  std::vector<uint8_t> flat3 = flat1;
  for (size_t r = 0; r < rows; ++r) {
    if (GetBit(row_sel_flipped, r)) FlipGridCell(&flat3, r, target_col, cols, n);
  }

  const std::array<const std::vector<uint8_t>*, 4> flats{&flat0, &flat1,
                                                         &flat2, &flat3};
  std::vector<uint8_t> acc(servers[0]->record_size(), 0);
  for (size_t s = 0; s < 4; ++s) {
    TRIPRIV_ASSIGN_OR_RETURN(auto answer, servers[s]->Answer(*flats[s]));
    XorBytesInto(acc.data(), answer.data(), acc.size());
  }
  if (stats != nullptr) {
    // Accumulate, never overwrite — see the PirStats contract in it_pir.h.
    stats->upload_bits += 4 * (rows + cols);
    stats->download_bits += 4 * 8 * servers[0]->record_size();
  }
  return acc;
}

}  // namespace tripriv
