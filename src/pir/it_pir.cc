#include "pir/it_pir.h"

#include <cmath>

namespace tripriv {
namespace {

bool GetBit(const std::vector<uint8_t>& bits, size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1u;
}

void FlipBit(std::vector<uint8_t>* bits, size_t i) {
  (*bits)[i / 8] ^= static_cast<uint8_t>(1u << (i % 8));
}

std::vector<uint8_t> RandomBits(size_t n, Rng* rng) {
  std::vector<uint8_t> bits((n + 7) / 8);
  for (auto& b : bits) b = static_cast<uint8_t>(rng->NextU64());
  // Zero the padding bits so observed queries are canonical.
  if (n % 8 != 0) bits.back() &= static_cast<uint8_t>((1u << (n % 8)) - 1u);
  return bits;
}

void XorInto(std::vector<uint8_t>* acc, const std::vector<uint8_t>& v) {
  TRIPRIV_CHECK_EQ(acc->size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) (*acc)[i] ^= v[i];
}

}  // namespace

Result<XorPirServer> XorPirServer::Create(
    std::vector<std::vector<uint8_t>> records) {
  if (records.empty()) return Status::InvalidArgument("empty database");
  const size_t size = records[0].size();
  if (size == 0) return Status::InvalidArgument("records must be non-empty");
  for (const auto& r : records) {
    if (r.size() != size) {
      return Status::InvalidArgument("records must have equal length");
    }
  }
  XorPirServer server;
  server.records_ = std::move(records);
  return server;
}

Result<std::vector<uint8_t>> XorPirServer::Answer(
    const std::vector<uint8_t>& selection) {
  if (selection.size() != (records_.size() + 7) / 8) {
    return Status::InvalidArgument("selection bitmap has wrong length");
  }
  observed_.push_back(selection);
  std::vector<uint8_t> acc(record_size(), 0);
  for (size_t i = 0; i < records_.size(); ++i) {
    if (GetBit(selection, i)) XorInto(&acc, records_[i]);
  }
  return acc;
}

Result<std::vector<uint8_t>> TwoServerPirRead(XorPirServer* server_a,
                                              XorPirServer* server_b,
                                              size_t index, Rng* rng,
                                              PirStats* stats) {
  TRIPRIV_CHECK(server_a != nullptr && server_b != nullptr && rng != nullptr);
  const size_t n = server_a->num_records();
  if (server_b->num_records() != n ||
      server_a->record_size() != server_b->record_size()) {
    return Status::InvalidArgument("servers must hold identical replicas");
  }
  if (index >= n) return Status::OutOfRange("record index out of range");

  std::vector<uint8_t> query_a = RandomBits(n, rng);
  std::vector<uint8_t> query_b = query_a;
  FlipBit(&query_b, index);

  TRIPRIV_ASSIGN_OR_RETURN(auto answer_a, server_a->Answer(query_a));
  TRIPRIV_ASSIGN_OR_RETURN(auto answer_b, server_b->Answer(query_b));
  XorInto(&answer_a, answer_b);
  if (stats != nullptr) {
    stats->upload_bits = 2 * n;
    stats->download_bits = 2 * 8 * server_a->record_size();
  }
  return answer_a;
}

Result<std::vector<uint8_t>> FourServerCubePirRead(
    const std::array<XorPirServer*, 4>& servers, size_t index, Rng* rng,
    PirStats* stats) {
  TRIPRIV_CHECK(rng != nullptr);
  for (auto* s : servers) TRIPRIV_CHECK(s != nullptr);
  const size_t n = servers[0]->num_records();
  for (auto* s : servers) {
    if (s->num_records() != n || s->record_size() != servers[0]->record_size()) {
      return Status::InvalidArgument("servers must hold identical replicas");
    }
  }
  if (index >= n) return Status::OutOfRange("record index out of range");

  // Grid dimensions: rows x cols >= n.
  const size_t cols = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const size_t rows = (n + cols - 1) / cols;
  const size_t target_row = index / cols;
  const size_t target_col = index % cols;

  std::vector<uint8_t> row_sel = RandomBits(rows, rng);
  std::vector<uint8_t> col_sel = RandomBits(cols, rng);
  std::vector<uint8_t> row_sel_flipped = row_sel;
  FlipBit(&row_sel_flipped, target_row);
  std::vector<uint8_t> col_sel_flipped = col_sel;
  FlipBit(&col_sel_flipped, target_col);

  // Server s in {0..3} gets (row_sel [xor {i1} if s&1], col_sel [xor {i2}
  // if s&2]) and answers the XOR of all records in the selected submatrix.
  // Expanding the product selection into a flat per-record bitmap keeps the
  // XorPirServer interface uniform; upload accounting uses the compact
  // per-axis size the real protocol would ship.
  std::array<const std::vector<uint8_t>*, 2> row_choices{&row_sel,
                                                         &row_sel_flipped};
  std::array<const std::vector<uint8_t>*, 2> col_choices{&col_sel,
                                                         &col_sel_flipped};
  std::vector<uint8_t> acc(servers[0]->record_size(), 0);
  for (size_t s = 0; s < 4; ++s) {
    const auto& rsel = *row_choices[s & 1];
    const auto& csel = *col_choices[(s >> 1) & 1];
    std::vector<uint8_t> flat((n + 7) / 8, 0);
    for (size_t i = 0; i < n; ++i) {
      if (GetBit(rsel, i / cols) && GetBit(csel, i % cols)) FlipBit(&flat, i);
    }
    TRIPRIV_ASSIGN_OR_RETURN(auto answer, servers[s]->Answer(flat));
    XorInto(&acc, answer);
  }
  if (stats != nullptr) {
    stats->upload_bits = 4 * (rows + cols);
    stats->download_bits = 4 * 8 * servers[0]->record_size();
  }
  return acc;
}

}  // namespace tripriv
