#include "pir/epoch_pir.h"

#include <string>
#include <utility>

namespace tripriv {

std::vector<std::vector<uint8_t>> SnapshotRecords(const DataTable& table) {
  std::vector<std::vector<uint8_t>> records;
  records.reserve(table.num_rows());
  size_t widest = 1;  // XOR PIR needs non-zero record length
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::string text;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) text.push_back('|');
      text += table.at(r, c).ToDisplayString();
    }
    records.emplace_back(text.begin(), text.end());
    if (records.back().size() > widest) widest = records.back().size();
  }
  for (auto& record : records) record.resize(widest, 0);
  return records;
}

std::string RecordToString(const std::vector<uint8_t>& record) {
  size_t len = record.size();
  while (len > 0 && record[len - 1] == 0) --len;
  return std::string(record.begin(), record.begin() + len);
}

uint64_t EpochPirReader::preprocess_bytes() const {
  uint64_t total = 0;
  for (const Replicas& entry : cache_) {
    if (entry.a != nullptr) total += entry.a->preprocess_bytes();
    if (entry.b != nullptr) total += entry.b->preprocess_bytes();
  }
  return total;
}

Result<EpochPirReader::Replicas*> EpochPirReader::ReplicasFor(
    const PinnedEpoch& pinned) {
  const uint64_t epoch = pinned->epoch;
  for (Replicas& entry : cache_) {
    if (entry.epoch == epoch) return &entry;
  }
  auto records = SnapshotRecords(pinned->protected_table);
  Replicas built;
  built.epoch = epoch;
  if (options_.dimensions <= 1) {
    TRIPRIV_ASSIGN_OR_RETURN(XorPirServer a, XorPirServer::Create(records));
    TRIPRIV_ASSIGN_OR_RETURN(XorPirServer b,
                             XorPirServer::Create(std::move(records)));
    built.a = std::make_unique<XorPirServer>(std::move(a));
    built.b = std::make_unique<XorPirServer>(std::move(b));
  } else {
    // Recursive mode: one replica, aliased 2^d times at read time, plus
    // the epoch's hypercube geometry (the row count may change per epoch).
    TRIPRIV_ASSIGN_OR_RETURN(
        built.geometry,
        HypercubeGeometry::Balanced(records.size(), options_.dimensions));
    TRIPRIV_ASSIGN_OR_RETURN(XorPirServer a,
                             XorPirServer::Create(std::move(records)));
    built.a = std::make_unique<XorPirServer>(std::move(a));
  }
  if (options_.preprocess) {
    // Per-epoch preprocessing: the parity layout is rendered alongside the
    // replicas and evicted with them — the flip IS the invalidation.
    built.a->Preprocess();
    if (built.b != nullptr) built.b->Preprocess();
  }
  // A newly rendered epoch means any session scratch sized for an older
  // epoch's table is stale: drop it before the first read of this epoch.
  sessions_.InvalidateBefore(epoch);
  // At most two cached pairs — the manager's live-epoch bound. Oldest out.
  if (cache_.size() >= 2) cache_.erase(cache_.begin());
  cache_.push_back(std::move(built));
  ++replica_builds_;
  return &cache_.back();
}

Result<std::vector<uint8_t>> EpochPirReader::Read(size_t index, Rng* rng) {
  PinnedEpoch pinned = manager_->Pin();
  TRIPRIV_ASSIGN_OR_RETURN(Replicas * replicas, ReplicasFor(pinned));
  last_served_epoch_ = pinned->epoch;
  if (options_.dimensions <= 1) {
    return TwoServerPirRead(replicas->a.get(), replicas->b.get(), index, rng,
                            &stats_);
  }
  PirSessionRegistry::Session* session = sessions_.Establish(
      options_.tenant_class, replicas->geometry, replicas->epoch);
  const std::vector<XorPirServer*> servers(replicas->geometry.num_servers(),
                                           replicas->a.get());
  return RecursivePirRead(servers, replicas->geometry, index, rng,
                          /*pool=*/nullptr, &stats_, session);
}

Result<std::vector<std::vector<uint8_t>>> EpochPirReader::ReadBatch(
    const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool) {
  // One pin for the whole batch: every answer comes from the same frozen
  // epoch no matter how many flips land while the batch computes.
  PinnedEpoch pinned = manager_->Pin();
  TRIPRIV_ASSIGN_OR_RETURN(Replicas * replicas, ReplicasFor(pinned));
  last_served_epoch_ = pinned->epoch;
  if (options_.dimensions <= 1) {
    return TwoServerPirBatchRead(replicas->a.get(), replicas->b.get(), indices,
                                 rng, pool, &stats_);
  }
  PirSessionRegistry::Session* session = sessions_.Establish(
      options_.tenant_class, replicas->geometry, replicas->epoch);
  const std::vector<XorPirServer*> servers(replicas->geometry.num_servers(),
                                           replicas->a.get());
  return RecursivePirBatchRead(servers, replicas->geometry, indices, rng, pool,
                               &stats_, session);
}

}  // namespace tripriv
