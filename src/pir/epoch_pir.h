// Epoch-pinned private reads over the mutable protected database.
//
// The PIR servers of pir/it_pir.h answer over a fixed record array; the
// mutable database (table/versioned_table.h) replaces that array on every
// epoch flip. EpochPirReader bridges the two: each read batch pins ONE
// epoch, renders (or reuses) the two replica servers for exactly that
// epoch's protected table, and runs the whole batch against the frozen
// replicas. Flips landing mid-batch are invisible — the pin freezes the
// snapshot — so a batch is bit-identical at any thread count and under any
// interleaving with the writer, and two servers built from the same pinned
// epoch are byte-for-byte identical replicas.
//
// User privacy composes with respondent privacy here exactly as the paper's
// framework prescribes: the records served are the *protected* (centroid-
// masked, k-anonymous) rows — a PIR user retrieves without revealing their
// interest (user dimension), and what they retrieve is already safe for
// respondents (respondent dimension).
//
// The reader caches the replica pair per epoch, at most two entries —
// matching the manager's live-epoch bound — so a flip costs one rebuild,
// not one rebuild per read.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pir/it_pir.h"
#include "table/versioned_table.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Fixed-width byte records of a protected table, one per row: every cell
/// rendered with Value::ToDisplayString, joined with '|', then zero-padded
/// to the longest row (XOR PIR needs equal-length records; the padding
/// byte cannot collide with text).
std::vector<std::vector<uint8_t>> SnapshotRecords(const DataTable& table);

/// Decodes a SnapshotRecords record back to its text (padding stripped).
std::string RecordToString(const std::vector<uint8_t>& record);

/// Per-epoch replica pair + batch read driver; see file comment. Not
/// thread-safe itself (one reader per thread; the pinned epochs they share
/// are immutable).
class EpochPirReader {
 public:
  /// `manager` must outlive the reader.
  explicit EpochPirReader(EpochManager* manager) : manager_(manager) {}

  /// Privately retrieves row `index` of the CURRENT epoch's protected
  /// table (pins it for the duration of the read). Single reads are
  /// inline; parallelism lives in ReadBatch.
  Result<std::vector<uint8_t>> Read(size_t index, Rng* rng);

  /// Batched private reads, all against ONE pinned epoch: the batch is a
  /// consistent snapshot even if flips land while it runs. Answers are
  /// positional; bit-identical at any thread count.
  Result<std::vector<std::vector<uint8_t>>> ReadBatch(
      const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool = nullptr);

  /// Epoch the most recent (batch) read was served from (0 before any).
  uint64_t last_served_epoch() const { return last_served_epoch_; }
  /// Replica-pair builds so far (cache misses; flips cost one each).
  uint64_t replica_builds() const { return replica_builds_; }
  /// Accumulated upload/download bits across all reads.
  const PirStats& stats() const { return stats_; }

 private:
  /// One epoch's frozen replica pair.
  struct Replicas {
    uint64_t epoch = 0;
    std::unique_ptr<XorPirServer> a;
    std::unique_ptr<XorPirServer> b;
  };

  /// The replica pair for `pinned`'s epoch, building and caching it on
  /// miss (at most 2 cached pairs, oldest evicted — the live-epoch bound).
  Result<Replicas*> ReplicasFor(const PinnedEpoch& pinned);

  EpochManager* manager_;
  std::vector<Replicas> cache_;
  uint64_t last_served_epoch_ = 0;
  uint64_t replica_builds_ = 0;
  PirStats stats_;
};

}  // namespace tripriv
