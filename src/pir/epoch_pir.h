// Epoch-pinned private reads over the mutable protected database.
//
// The PIR servers of pir/it_pir.h answer over a fixed record array; the
// mutable database (table/versioned_table.h) replaces that array on every
// epoch flip. EpochPirReader bridges the two: each read batch pins ONE
// epoch, renders (or reuses) the two replica servers for exactly that
// epoch's protected table, and runs the whole batch against the frozen
// replicas. Flips landing mid-batch are invisible — the pin freezes the
// snapshot — so a batch is bit-identical at any thread count and under any
// interleaving with the writer, and two servers built from the same pinned
// epoch are byte-for-byte identical replicas.
//
// User privacy composes with respondent privacy here exactly as the paper's
// framework prescribes: the records served are the *protected* (centroid-
// masked, k-anonymous) rows — a PIR user retrieves without revealing their
// interest (user dimension), and what they retrieve is already safe for
// respondents (respondent dimension).
//
// The reader caches the replica pair per epoch, at most two entries —
// matching the manager's live-epoch bound — so a flip costs one rebuild,
// not one rebuild per read.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pir/it_pir.h"
#include "pir/recursive_pir.h"
#include "table/versioned_table.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Fixed-width byte records of a protected table, one per row: every cell
/// rendered with Value::ToDisplayString, joined with '|', then zero-padded
/// to the longest row (XOR PIR needs equal-length records; the padding
/// byte cannot collide with text).
std::vector<std::vector<uint8_t>> SnapshotRecords(const DataTable& table);

/// Decodes a SnapshotRecords record back to its text (padding stripped).
std::string RecordToString(const std::vector<uint8_t>& record);

/// How an EpochPirReader serves its reads.
struct EpochPirOptions {
  /// 1 = the flat 2-server scheme; >= 2 = the recursive 2^d-server
  /// hypercube scheme of pir/recursive_pir.h, served from ONE in-process
  /// replica aliased 2^d times (replicas are byte-identical by
  /// construction, and answers depend only on the queries, so aliasing
  /// trades nothing but the per-replica trust split — which an in-process
  /// reader never had).
  size_t dimensions = 1;
  /// Build the 64-byte-aligned parity layout (XorPirServer::Preprocess)
  /// when an epoch's replicas are rendered. The layout lives and dies with
  /// the cached epoch entry: the flip-driven eviction IS the invalidation.
  bool preprocess = false;
  /// Session key for recursive expansion scratch — an allowlisted tenant
  /// class (obs::kClass* index), never a principal id.
  uint8_t tenant_class = 0;
};

/// Per-epoch replica pair + batch read driver; see file comment. Not
/// thread-safe itself (one reader per thread; the pinned epochs they share
/// are immutable).
class EpochPirReader {
 public:
  /// `manager` must outlive the reader.
  explicit EpochPirReader(EpochManager* manager, EpochPirOptions options = {})
      : manager_(manager), options_(options) {}

  /// Privately retrieves row `index` of the CURRENT epoch's protected
  /// table (pins it for the duration of the read). Single reads are
  /// inline; parallelism lives in ReadBatch.
  Result<std::vector<uint8_t>> Read(size_t index, Rng* rng);

  /// Batched private reads, all against ONE pinned epoch: the batch is a
  /// consistent snapshot even if flips land while it runs. Answers are
  /// positional; bit-identical at any thread count.
  Result<std::vector<std::vector<uint8_t>>> ReadBatch(
      const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool = nullptr);

  /// Epoch the most recent (batch) read was served from (0 before any).
  uint64_t last_served_epoch() const { return last_served_epoch_; }
  /// Replica-pair builds so far (cache misses; flips cost one each).
  uint64_t replica_builds() const { return replica_builds_; }
  /// Accumulated upload/download bits across all reads.
  const PirStats& stats() const { return stats_; }
  /// Recursive-mode expansion sessions (empty in flat mode). Sessions for
  /// epochs older than the newest rendered one are invalidated at render
  /// time — the EpochManager flip hook.
  const PirSessionRegistry& sessions() const { return sessions_; }
  /// Bytes currently held by preprocessed parity layouts across the cache.
  uint64_t preprocess_bytes() const;

 private:
  /// One epoch's frozen replicas: the flat pair (a, b), or in recursive
  /// mode a single replica in `a` (aliased 2^d times at read time) plus
  /// its hypercube geometry.
  struct Replicas {
    uint64_t epoch = 0;
    std::unique_ptr<XorPirServer> a;
    std::unique_ptr<XorPirServer> b;
    HypercubeGeometry geometry;
  };

  /// The replica pair for `pinned`'s epoch, building and caching it on
  /// miss (at most 2 cached pairs, oldest evicted — the live-epoch bound).
  Result<Replicas*> ReplicasFor(const PinnedEpoch& pinned);

  EpochManager* manager_;
  EpochPirOptions options_;
  std::vector<Replicas> cache_;
  PirSessionRegistry sessions_;
  uint64_t last_served_epoch_ = 0;
  uint64_t replica_builds_ = 0;
  PirStats stats_;
};

}  // namespace tripriv
