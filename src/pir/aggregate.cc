#include "pir/aggregate.h"

#include <cmath>

namespace tripriv {
namespace {

/// Number of cells along one axis.
size_t AxisCells(const GridAxis& axis) {
  return static_cast<size_t>((axis.hi - axis.lo) / axis.step) + 1;
}

}  // namespace

Result<PrivateAggregateServer> PrivateAggregateServer::Build(
    const DataTable& table, std::vector<GridAxis> axes) {
  if (axes.empty()) return Status::InvalidArgument("need >= 1 grid axis");
  size_t cells = 1;
  for (const auto& axis : axes) {
    if (axis.step < 1 || axis.hi < axis.lo) {
      return Status::InvalidArgument("invalid grid axis for " + axis.attribute);
    }
    TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(axis.attribute));
    if (table.schema().attribute(col).type != AttributeType::kInteger) {
      return Status::InvalidArgument("grid attribute '" + axis.attribute +
                                     "' must be integer-typed");
    }
    cells *= AxisCells(axis);
    if (cells > (1u << 22)) {
      return Status::InvalidArgument("domain grid too large (> 4M cells)");
    }
  }

  PrivateAggregateServer server;
  server.axes_ = std::move(axes);
  server.counts_.assign(cells, 0);
  // Every numeric attribute gets precomputed per-cell sums.
  std::vector<size_t> sum_cols;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (table.schema().attribute(c).type == AttributeType::kInteger) {
      server.sum_attributes_.push_back(table.schema().attribute(c).name);
      sum_cols.push_back(c);
    }
  }
  server.sums_.assign(server.sum_attributes_.size(),
                      std::vector<uint64_t>(cells, 0));

  for (size_t r = 0; r < table.num_rows(); ++r) {
    size_t cell = 0;
    for (const auto& axis : server.axes_) {
      TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(axis.attribute));
      const Value& v = table.at(r, col);
      if (!v.is_int()) {
        return Status::InvalidArgument("null/non-integer grid cell at row " +
                                       std::to_string(r));
      }
      const int64_t x = v.AsInt();
      if (x < axis.lo || x > axis.hi) {
        // `x` is a cell value (record-level); name the public axis only.
        return Status::OutOfRange("value of '" + axis.attribute +
                                  "' outside the public domain");
      }
      cell = cell * AxisCells(axis) +
             static_cast<size_t>((x - axis.lo) / axis.step);
    }
    server.counts_[cell]++;
    for (size_t a = 0; a < sum_cols.size(); ++a) {
      const Value& v = table.at(r, sum_cols[a]);
      if (!v.is_int() || v.AsInt() < 0) {
        return Status::InvalidArgument(
            "aggregate attribute '" + server.sum_attributes_[a] +
            "' must be a non-negative integer");
      }
      server.sums_[a][cell] += static_cast<uint64_t>(v.AsInt());
    }
  }
  return server;
}

std::vector<int64_t> PrivateAggregateServer::CellRepresentative(
    size_t cell) const {
  TRIPRIV_CHECK_LT(cell, counts_.size());
  std::vector<int64_t> rep(axes_.size());
  for (size_t a = axes_.size(); a-- > 0;) {
    const size_t n = AxisCells(axes_[a]);
    rep[a] = axes_[a].lo + static_cast<int64_t>(cell % n) * axes_[a].step;
    cell /= n;
  }
  return rep;
}

namespace {

/// Homomorphic fold Prod_c Enc(w_c)^{weight_c}.
Result<BigInt> Fold(const PaillierPublicKey& pub,
                    const std::vector<BigInt>& selector,
                    const std::vector<uint64_t>& weights) {
  if (selector.size() != weights.size()) {
    return Status::InvalidArgument("selector must have one ciphertext per cell");
  }
  BigInt acc;
  bool have = false;
  for (size_t c = 0; c < weights.size(); ++c) {
    if (weights[c] == 0) continue;
    const BigInt term =
        PaillierMulPlain(pub, selector[c], BigInt::FromU64(weights[c]));
    acc = have ? PaillierAdd(pub, acc, term) : term;
    have = true;
  }
  if (!have) acc = BigInt(1);  // Enc(0) with unit randomness
  return acc;
}

}  // namespace

Result<BigInt> PrivateAggregateServer::EncryptedCount(
    const PaillierPublicKey& pub,
    const std::vector<BigInt>& encrypted_selector) const {
  ++queries_served_;
  return Fold(pub, encrypted_selector, counts_);
}

Result<BigInt> PrivateAggregateServer::EncryptedDpCount(
    const PaillierPublicKey& pub, const std::vector<BigInt>& encrypted_selector,
    double epsilon, Rng* rng) const {
  TRIPRIV_CHECK(rng != nullptr);
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be > 0");
  TRIPRIV_ASSIGN_OR_RETURN(BigInt enc_count,
                           EncryptedCount(pub, encrypted_selector));
  // Discretized Laplace(1/epsilon), encoded mod n: Enc(c) * g^noise.
  const double noise = rng->Laplace(0.0, 1.0 / epsilon);
  const auto rounded = static_cast<int64_t>(std::llround(noise));
  return PaillierAddPlain(pub, enc_count, BigInt(rounded));
}

Result<BigInt> PrivateAggregateServer::EncryptedSum(
    const PaillierPublicKey& pub, const std::vector<BigInt>& encrypted_selector,
    const std::string& attribute) const {
  for (size_t a = 0; a < sum_attributes_.size(); ++a) {
    if (sum_attributes_[a] == attribute) {
      ++queries_served_;
      return Fold(pub, encrypted_selector, sums_[a]);
    }
  }
  return Status::NotFound("no precomputed sums for attribute '" + attribute +
                          "'");
}

Result<PrivateAggregateClient> PrivateAggregateClient::Create(
    size_t modulus_bits, uint64_t seed) {
  PrivateAggregateClient client;
  client.rng_ = Rng(seed);
  TRIPRIV_ASSIGN_OR_RETURN(client.keys_,
                           PaillierGenerateKeys(modulus_bits, &client.rng_));
  return client;
}

Result<std::vector<BigInt>> PrivateAggregateClient::MakeSelector(
    const PrivateAggregateServer& server, const Predicate& predicate) {
  // Evaluate the private predicate on each cell representative. The
  // evaluation happens client-side on a single-row scratch table per cell.
  std::vector<Attribute> attrs;
  for (const auto& axis : server.axes()) {
    attrs.push_back(
        {axis.attribute, AttributeType::kInteger, AttributeRole::kNonConfidential});
  }
  const Schema grid_schema{Schema(attrs)};
  std::vector<BigInt> selector;
  selector.reserve(server.num_cells());
  for (size_t cell = 0; cell < server.num_cells(); ++cell) {
    DataTable scratch(grid_schema);
    std::vector<Value> row;
    for (int64_t v : server.CellRepresentative(cell)) row.push_back(Value(v));
    TRIPRIV_RETURN_IF_ERROR(scratch.AppendRow(std::move(row)));
    TRIPRIV_ASSIGN_OR_RETURN(bool selected, predicate.Matches(scratch, 0));
    TRIPRIV_ASSIGN_OR_RETURN(
        BigInt c,
        PaillierEncrypt(keys_.pub, selected ? BigInt(1) : BigInt(), &rng_));
    selector.push_back(std::move(c));
  }
  return selector;
}

Result<uint64_t> PrivateAggregateClient::Count(
    const PrivateAggregateServer& server, const Predicate& predicate) {
  TRIPRIV_ASSIGN_OR_RETURN(auto selector, MakeSelector(server, predicate));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt enc,
                           server.EncryptedCount(keys_.pub, selector));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt count,
                           PaillierDecrypt(keys_.pub, keys_.priv, enc));
  return count.ToU64();
}

Result<uint64_t> PrivateAggregateClient::Sum(
    const PrivateAggregateServer& server, const std::string& attribute,
    const Predicate& predicate) {
  TRIPRIV_ASSIGN_OR_RETURN(auto selector, MakeSelector(server, predicate));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt enc,
                           server.EncryptedSum(keys_.pub, selector, attribute));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt sum,
                           PaillierDecrypt(keys_.pub, keys_.priv, enc));
  return sum.ToU64();
}

Result<int64_t> PrivateAggregateClient::DpCount(
    const PrivateAggregateServer& server, const Predicate& predicate,
    double epsilon, Rng* server_rng) {
  TRIPRIV_ASSIGN_OR_RETURN(auto selector, MakeSelector(server, predicate));
  TRIPRIV_ASSIGN_OR_RETURN(
      BigInt enc, server.EncryptedDpCount(keys_.pub, selector, epsilon,
                                          server_rng));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt noisy,
                           PaillierDecrypt(keys_.pub, keys_.priv, enc));
  // Values above n/2 encode negatives (count + noise < 0).
  const BigInt half = keys_.pub.n >> 1;
  if (noisy > half) {
    const BigInt negated = keys_.pub.n - noisy;
    auto v = negated.ToI64();
    if (!v.has_value()) return Status::Internal("DP count out of range");
    return -*v;
  }
  auto v = noisy.ToI64();
  if (!v.has_value()) return Status::Internal("DP count out of range");
  return *v;
}

Result<double> PrivateAggregateClient::Average(
    const PrivateAggregateServer& server, const std::string& attribute,
    const Predicate& predicate) {
  // One selector serves both folds (two server calls, same ciphertexts).
  TRIPRIV_ASSIGN_OR_RETURN(auto selector, MakeSelector(server, predicate));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt enc_count,
                           server.EncryptedCount(keys_.pub, selector));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt enc_sum,
                           server.EncryptedSum(keys_.pub, selector, attribute));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt count,
                           PaillierDecrypt(keys_.pub, keys_.priv, enc_count));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt sum,
                           PaillierDecrypt(keys_.pub, keys_.priv, enc_sum));
  if (count.IsZero()) {
    return Status::FailedPrecondition("AVG over an empty selection");
  }
  return static_cast<double>(sum.ToU64()) / static_cast<double>(count.ToU64());
}

}  // namespace tripriv
