#include "pir/recursive_pir.h"

#include <cmath>

#include "pir/xor_kernel.h"

namespace tripriv {
namespace {

bool GetBit(const std::vector<uint8_t>& bits, size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1u;
}

void SetBit(std::vector<uint8_t>* bits, size_t i) {
  (*bits)[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
}

/// side^d >= n without overflow: the multiply only runs while the product
/// stays <= n, and a factor that would push past n returns early.
bool PowAtLeast(size_t side, size_t d, size_t n) {
  size_t acc = 1;
  for (size_t k = 0; k < d; ++k) {
    if (acc > n / side) return true;
    acc *= side;
  }
  return acc >= n;
}

/// Axis strides of the hypercube layout: stride[d-1] = 1, axis 0 outermost.
std::vector<size_t> Strides(const HypercubeGeometry& g) {
  std::vector<size_t> stride(g.d, 1);
  for (size_t k = g.d; k-- > 1;) stride[k - 1] = stride[k] * g.side;
  return stride;
}

/// Depth-first walk of the product of per-axis set-coordinate lists,
/// emitting each selected cell below n. Coordinate lists are ascending and
/// deeper axes only add to the cell index, so a cell >= n prunes the rest
/// of its axis level — overhang cells are never even visited.
struct ProductExpander {
  const std::vector<std::vector<size_t>>& set;
  const std::vector<size_t>& stride;
  size_t n;
  std::vector<uint8_t>* flat;
  uint64_t emitted = 0;

  void Walk(size_t axis, size_t base) {
    if (axis + 1 == set.size()) {
      for (size_t c : set[axis]) {  // innermost stride is 1
        const size_t cell = base + c;
        if (cell >= n) break;
        SetBit(flat, cell);
        ++emitted;
      }
      return;
    }
    for (size_t c : set[axis]) {
      const size_t cell = base + c * stride[axis];
      if (cell >= n) break;
      Walk(axis + 1, cell);
    }
  }
};

}  // namespace

Result<HypercubeGeometry> HypercubeGeometry::Balanced(size_t n, size_t d) {
  if (n < 1) return Status::InvalidArgument("hypercube needs >= 1 record");
  if (d < 1 || d > 8) {
    return Status::InvalidArgument("hypercube dimension must be in [1, 8]");
  }
  size_t side = static_cast<size_t>(
      std::pow(static_cast<double>(n), 1.0 / static_cast<double>(d)));
  if (side < 1) side = 1;
  // The float root can land one off in either direction; fix up exactly.
  while (!PowAtLeast(side, d, n)) ++side;
  while (side > 1 && PowAtLeast(side - 1, d, n)) --side;
  HypercubeGeometry g;
  g.n = n;
  g.side = side;
  g.d = d;
  return g;
}

std::vector<size_t> HypercubeGeometry::Coordinates(size_t i) const {
  std::vector<size_t> coords(d);
  for (size_t k = d; k-- > 0;) {
    coords[k] = i % side;
    i /= side;
  }
  return coords;
}

std::vector<std::vector<uint8_t>> ExpandAxisSelections(
    uint64_t seed, const HypercubeGeometry& g) {
  // A fresh generator per seed: expansion depends on nothing but the 64
  // bits shipped, so client and replica derive byte-identical bitmaps.
  Rng rng(seed);
  std::vector<std::vector<uint8_t>> axes(g.d);
  for (size_t k = 0; k < g.d; ++k) {
    axes[k] = RandomSelectionBits(g.side, &rng);
  }
  return axes;
}

uint64_t ExpandProductSelection(
    const std::vector<std::vector<uint8_t>>& axis_bits,
    const HypercubeGeometry& g, std::vector<uint8_t>* flat) {
  TRIPRIV_CHECK(flat != nullptr);
  TRIPRIV_CHECK(axis_bits.size() == g.d);
  // Ascending set-coordinate lists per axis: the walk touches only selected
  // cells (about n / 2^d of them), not all side^d.
  std::vector<std::vector<size_t>> set(g.d);
  for (size_t k = 0; k < g.d; ++k) {
    TRIPRIV_CHECK(axis_bits[k].size() == (g.side + 7) / 8);
    for (size_t c = 0; c < g.side; ++c) {
      if (GetBit(axis_bits[k], c)) set[k].push_back(c);
    }
  }
  flat->assign((g.n + 7) / 8, 0);
  const std::vector<size_t> stride = Strides(g);
  ProductExpander expander{set, stride, g.n, flat};
  expander.Walk(0, 0);
  return expander.emitted;
}

PirSessionRegistry::Session* PirSessionRegistry::Establish(
    uint8_t tenant_class, const HypercubeGeometry& geometry, uint64_t epoch) {
  Session& s = sessions_[tenant_class];
  s.tenant_class = tenant_class;
  s.geometry = geometry;
  s.epoch = epoch;
  return &s;
}

PirSessionRegistry::Session* PirSessionRegistry::Find(uint8_t tenant_class) {
  auto it = sessions_.find(tenant_class);
  return it == sessions_.end() ? nullptr : &it->second;
}

const PirSessionRegistry::Session* PirSessionRegistry::Find(
    uint8_t tenant_class) const {
  auto it = sessions_.find(tenant_class);
  return it == sessions_.end() ? nullptr : &it->second;
}

void PirSessionRegistry::InvalidateBefore(uint64_t epoch) {
  for (auto& [cls, s] : sessions_) {
    if (s.epoch >= epoch) continue;
    s.geometry = HypercubeGeometry{};
    s.axis_scratch.clear();
    // Actually release the flat scratch: it is sized for the stale epoch's
    // database and may be the largest allocation a session holds.
    std::vector<uint8_t>().swap(s.flat_scratch);
  }
}

uint64_t PirSessionRegistry::total_reads() const {
  uint64_t total = 0;
  for (const auto& [cls, s] : sessions_) total += s.reads;
  return total;
}

uint64_t PirSessionRegistry::total_upload_bits() const {
  uint64_t total = 0;
  for (const auto& [cls, s] : sessions_) total += s.upload_bits;
  return total;
}

uint64_t PirSessionRegistry::total_expanded_cells() const {
  uint64_t total = 0;
  for (const auto& [cls, s] : sessions_) total += s.expanded_cells;
  return total;
}

Result<std::vector<HypercubeQuery>> BuildHypercubeQueries(
    const HypercubeGeometry& g, size_t index, Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  if (g.n == 0 || g.d == 0) {
    return Status::InvalidArgument("uninitialized hypercube geometry");
  }
  if (index >= g.n) return Status::OutOfRange("record index out of range");
  // One draw per read — the entire base selection expands from this seed.
  const uint64_t seed = rng->NextU64();
  const std::vector<std::vector<uint8_t>> base = ExpandAxisSelections(seed, g);
  const std::vector<size_t> coords = g.Coordinates(index);
  std::vector<HypercubeQuery> queries(g.num_servers());
  // Only the all-unflipped replica may hold the seed (see recursive_pir.h):
  // seed plus any flipped axis would difference out the target coordinate.
  queries[0].seed_only = true;
  queries[0].seed = seed;
  for (size_t s = 1; s < queries.size(); ++s) {
    queries[s].axis_bits = base;
    for (size_t k = 0; k < g.d; ++k) {
      if ((s >> k) & 1u) {
        FlipSelectionBit(&queries[s].axis_bits[k], coords[k]);
      }
    }
  }
  return queries;
}

Result<std::vector<uint8_t>> AnswerHypercubeQuery(
    XorPirServer* server, const HypercubeQuery& query,
    const HypercubeGeometry& g, ThreadPool* pool,
    PirSessionRegistry::Session* session) {
  TRIPRIV_CHECK(server != nullptr);
  if (server->num_records() != g.n) {
    return Status::InvalidArgument("server does not replicate the geometry");
  }
  std::vector<std::vector<uint8_t>> local_axes;
  const std::vector<std::vector<uint8_t>>* axes = nullptr;
  if (query.seed_only) {
    auto& dst = session != nullptr ? session->axis_scratch : local_axes;
    dst = ExpandAxisSelections(query.seed, g);
    axes = &dst;
  } else {
    if (query.axis_bits.size() != g.d) {
      return Status::InvalidArgument("query has wrong axis count");
    }
    const size_t bytes = (g.side + 7) / 8;
    const uint8_t pad_mask =
        g.side % 8 == 0 ? 0
                        : static_cast<uint8_t>(~((1u << (g.side % 8)) - 1u));
    for (const auto& axis : query.axis_bits) {
      if (axis.size() != bytes) {
        return Status::InvalidArgument("axis bitmap has wrong length");
      }
      if (pad_mask != 0 && (axis.back() & pad_mask) != 0) {
        return Status::InvalidArgument("axis bitmap has non-canonical padding");
      }
    }
    axes = &query.axis_bits;
  }
  std::vector<uint8_t> local_flat;
  std::vector<uint8_t>* flat =
      session != nullptr ? &session->flat_scratch : &local_flat;
  const uint64_t cells = ExpandProductSelection(*axes, g, flat);
  if (session != nullptr) session->expanded_cells += cells;
  return server->Answer(*flat, pool);
}

Result<std::vector<uint8_t>> RecursivePirRead(
    const std::vector<XorPirServer*>& servers, const HypercubeGeometry& g,
    size_t index, Rng* rng, ThreadPool* pool, PirStats* stats,
    PirSessionRegistry::Session* session) {
  TRIPRIV_CHECK(rng != nullptr);
  if (servers.size() != g.num_servers()) {
    return Status::InvalidArgument("recursive scheme needs 2^d replicas");
  }
  for (auto* s : servers) TRIPRIV_CHECK(s != nullptr);
  const size_t size = servers[0]->record_size();
  for (auto* s : servers) {
    if (s->num_records() != g.n || s->record_size() != size) {
      return Status::InvalidArgument("servers must hold identical replicas");
    }
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto queries, BuildHypercubeQueries(g, index, rng));

  // Serial over replicas (the pool shards each replica's XOR sweep inside
  // Answer), so the observation transcript is a fixed function of the
  // queries at any thread count.
  std::vector<uint8_t> acc(size, 0);
  size_t upload = 0;
  for (size_t s = 0; s < servers.size(); ++s) {
    upload += queries[s].upload_bits(g);
    TRIPRIV_ASSIGN_OR_RETURN(
        auto answer, AnswerHypercubeQuery(servers[s], queries[s], g, pool,
                                          session));
    XorBytesInto(acc.data(), answer.data(), acc.size());
  }
  if (stats != nullptr) {
    // Accumulate, never overwrite — see the PirStats contract in it_pir.h.
    stats->upload_bits += upload;
    stats->download_bits += servers.size() * 8 * size;
  }
  if (session != nullptr) {
    session->reads += 1;
    session->upload_bits += upload;
  }
  return acc;
}

Result<std::vector<std::vector<uint8_t>>> RecursivePirBatchRead(
    const std::vector<XorPirServer*>& servers, const HypercubeGeometry& g,
    const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool,
    PirStats* stats, PirSessionRegistry::Session* session) {
  std::vector<std::vector<uint8_t>> answers;
  answers.reserve(indices.size());
  // Items run serially in index order — exactly the rng draws and the
  // observation transcript of a RecursivePirRead loop — and one session's
  // scratch serves every item.
  for (size_t index : indices) {
    TRIPRIV_ASSIGN_OR_RETURN(
        auto answer,
        RecursivePirRead(servers, g, index, rng, pool, stats, session));
    answers.push_back(std::move(answer));
  }
  return answers;
}

}  // namespace tripriv
