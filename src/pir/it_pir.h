// Information-theoretic private information retrieval (Chor, Goldreich,
// Kushilevitz & Sudan [8]).
//
// The user-privacy primitive: retrieve record i from replicated,
// non-colluding servers such that no single server learns anything about i.
//   * 2-server XOR scheme: server A gets a uniformly random subset S of
//     record indices, server B gets S xor {i}; each returns the XOR of the
//     selected records; the two answers XOR to record i. Query cost:
//     n bits up, one record down, per server.
//   * 4-server cube scheme: the index is split over a sqrt(n) x sqrt(n)
//     grid and the subset trick applied per axis, cutting upload to
//     O(sqrt(n)) bits per server.
// Every query also reports what the servers observed, which the evaluation
// harness uses to verify the "no single server learns i" claim empirically.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tripriv {

/// One PIR server: a replica of the database of equal-length records,
/// answering XOR-subset queries. The server keeps a log of the selection
/// vectors it has seen (its entire view of the protocol).
class XorPirServer {
 public:
  /// Requires >= 1 record; all records must have equal, non-zero length.
  static Result<XorPirServer> Create(std::vector<std::vector<uint8_t>> records);

  size_t num_records() const { return records_.size(); }
  size_t record_size() const { return records_.empty() ? 0 : records_[0].size(); }

  /// XOR of the records selected by `selection` (one bit per record, packed
  /// LSB-first into bytes). Also logs the query.
  Result<std::vector<uint8_t>> Answer(const std::vector<uint8_t>& selection);

  /// Everything this server has observed: the selection bitmaps of all
  /// queries answered so far.
  const std::vector<std::vector<uint8_t>>& observed_queries() const {
    return observed_;
  }

  /// Direct (non-private) record access, for testing and for the baseline
  /// "no PIR" comparison.
  const std::vector<uint8_t>& record(size_t i) const {
    TRIPRIV_CHECK_LT(i, records_.size());
    return records_[i];
  }

 private:
  std::vector<std::vector<uint8_t>> records_;
  std::vector<std::vector<uint8_t>> observed_;
};

/// Communication accounting for one query.
struct PirStats {
  size_t upload_bits = 0;
  size_t download_bits = 0;
};

/// Retrieves record `index` via the 2-server scheme. The two servers must
/// hold identical replicas.
Result<std::vector<uint8_t>> TwoServerPirRead(XorPirServer* server_a,
                                              XorPirServer* server_b,
                                              size_t index, Rng* rng,
                                              PirStats* stats = nullptr);

/// Retrieves record `index` via the 4-server cube scheme (upload
/// O(sqrt(n)) bits per server). All four servers must hold identical
/// replicas.
Result<std::vector<uint8_t>> FourServerCubePirRead(
    const std::array<XorPirServer*, 4>& servers, size_t index, Rng* rng,
    PirStats* stats = nullptr);

}  // namespace tripriv

