// Information-theoretic private information retrieval (Chor, Goldreich,
// Kushilevitz & Sudan [8]).
//
// The user-privacy primitive: retrieve record i from replicated,
// non-colluding servers such that no single server learns anything about i.
//   * 2-server XOR scheme: server A gets a uniformly random subset S of
//     record indices, server B gets S xor {i}; each returns the XOR of the
//     selected records; the two answers XOR to record i. Query cost:
//     n bits up, one record down, per server.
//   * 4-server cube scheme: the index is split over a sqrt(n) x sqrt(n)
//     grid and the subset trick applied per axis, cutting upload to
//     O(sqrt(n)) bits per server.
// The answer path is the system's steady-state hot loop: a blocked,
// word-wide XOR kernel (pir/xor_kernel.h), optionally sharded across a
// ThreadPool with per-shard partial accumulators merged in fixed shard
// order, so the answer is bit-identical at any thread count. Batched reads
// (TwoServerPirBatchRead) draw all query randomness serially in index
// order, then fan the answer computation out across the pool — the whole
// transcript is a pure function of the seed and the batch.
//
// Recording what a server observed (its view of the protocol, used by the
// evaluation harness and the attack demos) is opt-in and bounded: under
// sustained traffic an always-on, unbounded log of O(n)-bit selection
// vectors is a memory leak, so servers only count queries unless
// EnableObservationLog turns the ring buffer on.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Uniformly random `n`-bit selection bitmap, packed LSB-first into bytes,
/// with the padding bits of the last byte zeroed so observed queries are
/// canonical. Fills 8 bitmap bytes per NextU64 draw (ceil(n/64) draws).
TRIPRIV_SENSITIVE(record)
std::vector<uint8_t> RandomSelectionBits(size_t n, Rng* rng);

/// Flips bit `i` of a packed LSB-first selection bitmap.
void FlipSelectionBit(std::vector<uint8_t>* bits, size_t i);

/// One PIR server: a replica of the database of equal-length records,
/// answering XOR-subset queries.
class XorPirServer {
 public:
  /// Requires >= 1 record; all records must have equal, non-zero length.
  static Result<XorPirServer> Create(std::vector<std::vector<uint8_t>> records);

  size_t num_records() const { return records_.size(); }
  size_t record_size() const { return records_.empty() ? 0 : records_[0].size(); }

  /// XOR of the records selected by `selection` (one bit per record, packed
  /// LSB-first into bytes). Counts the query and, when the observation log
  /// is enabled, records the selection. `pool` (optional) shards the
  /// accumulation across workers; per-shard partial accumulators are
  /// XOR-merged in shard order, so the answer is bit-identical to the
  /// serial path at any thread count.
  TRIPRIV_SENSITIVE(record)
  Result<std::vector<uint8_t>> Answer(const std::vector<uint8_t>& selection,
                                      ThreadPool* pool = nullptr);

  /// The pure compute half of Answer: thread-safe const, no counting or
  /// logging. Batch executors call ObserveQuery serially in submission
  /// order, then fan ComputeAnswer out across workers.
  Result<std::vector<uint8_t>> ComputeAnswer(
      const std::vector<uint8_t>& selection, ThreadPool* pool = nullptr) const;

  /// The bookkeeping half of Answer: increments the query counter and, when
  /// the log is enabled, appends `selection` to the bounded ring. Not
  /// thread-safe — batch executors call it from their serial stage.
  void ObserveQuery(const std::vector<uint8_t>& selection);

  /// Opt-in attack-analysis mode: retain the most recent `capacity` (>= 1)
  /// selection bitmaps for observed_query() inspection. Off by default.
  void EnableObservationLog(size_t capacity);
  bool observation_enabled() const { return observe_capacity_ > 0; }

  /// Total queries answered (counted whether or not the log is enabled).
  uint64_t queries_answered() const { return queries_answered_; }

  /// Bytes this replica XORed into answer accumulators: popcount of each
  /// observed selection times the record size, accumulated per query. The
  /// aggregate work metric of the PIR hot loop — never per-query data.
  uint64_t bytes_xored() const { return bytes_xored_; }

  /// Observations currently retained: at most the enabled capacity, zero
  /// unless EnableObservationLog was called.
  size_t num_observed() const { return observed_.size(); }
  /// The `i`-th retained observation, oldest first. Requires i < num_observed().
  TRIPRIV_SENSITIVE(record)
  const std::vector<uint8_t>& observed_query(size_t i) const;
  /// The most recent observation. Requires num_observed() > 0.
  TRIPRIV_SENSITIVE(record)
  const std::vector<uint8_t>& last_observed_query() const;

  /// Direct (non-private) record access, for testing and for the baseline
  /// "no PIR" comparison.
  const std::vector<uint8_t>& record(size_t i) const {
    TRIPRIV_CHECK_LT(i, records_.size());
    return records_[i];
  }

 private:
  /// XORs the records selected in [begin, end) into `acc` (record_size()
  /// bytes), skipping 8 records at a time across clear selection bytes.
  void AccumulateRange(const std::vector<uint8_t>& selection, size_t begin,
                       size_t end, uint8_t* acc) const;

  std::vector<std::vector<uint8_t>> records_;
  uint64_t queries_answered_ = 0;
  uint64_t bytes_xored_ = 0;
  /// Bounded observation ring (attack-analysis mode). `observed_` holds at
  /// most `observe_capacity_` entries; once full, `observe_head_` is the
  /// slot holding the oldest entry (and the one the next query overwrites).
  size_t observe_capacity_ = 0;
  size_t observe_head_ = 0;
  std::vector<std::vector<uint8_t>> observed_;
};

/// Communication accounting. For single reads the per-query cost; for batch
/// reads the totals across the batch.
struct PirStats {
  size_t upload_bits = 0;
  size_t download_bits = 0;
};

/// Retrieves record `index` via the 2-server scheme. The two servers must
/// hold identical replicas.
Result<std::vector<uint8_t>> TwoServerPirRead(XorPirServer* server_a,
                                              XorPirServer* server_b,
                                              size_t index, Rng* rng,
                                              PirStats* stats = nullptr);

/// Batched 2-server reads. Selection randomness and observation logging
/// happen serially in index order — exactly the draws a TwoServerPirRead
/// loop would make — then the XOR answer kernels fan out across `pool`
/// (null or 0-worker pool = inline). Answers are positional and
/// bit-identical to the serial loop at any thread count; `stats`
/// accumulates the batch totals.
Result<std::vector<std::vector<uint8_t>>> TwoServerPirBatchRead(
    XorPirServer* server_a, XorPirServer* server_b,
    const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool = nullptr,
    PirStats* stats = nullptr);

/// Retrieves record `index` via the 4-server cube scheme (upload
/// O(sqrt(n)) bits per server). All four servers must hold identical
/// replicas.
Result<std::vector<uint8_t>> FourServerCubePirRead(
    const std::array<XorPirServer*, 4>& servers, size_t index, Rng* rng,
    PirStats* stats = nullptr);

}  // namespace tripriv
