// Information-theoretic private information retrieval (Chor, Goldreich,
// Kushilevitz & Sudan [8]).
//
// The user-privacy primitive: retrieve record i from replicated,
// non-colluding servers such that no single server learns anything about i.
//   * 2-server XOR scheme: server A gets a uniformly random subset S of
//     record indices, server B gets S xor {i}; each returns the XOR of the
//     selected records; the two answers XOR to record i. Query cost:
//     n bits up, one record down, per server.
//   * 4-server cube scheme: the index is split over a sqrt(n) x sqrt(n)
//     grid and the subset trick applied per axis, cutting upload to
//     O(sqrt(n)) bits per server.
// The answer path is the system's steady-state hot loop: a blocked,
// word-wide XOR kernel (pir/xor_kernel.h), optionally sharded across a
// ThreadPool with per-shard partial accumulators merged in fixed shard
// order, so the answer is bit-identical at any thread count. Preprocess()
// builds a 64-byte-aligned pair-parity layout (the XOR analog of SealPIR's
// preprocess_ntt) that the sweep streams instead of per-record vectors;
// pir/recursive_pir.h generalizes the 4-server cube below to d dimensions
// with seed-compressed queries. Batched reads
// (TwoServerPirBatchRead) draw all query randomness serially in index
// order, then fan the answer computation out across the pool — the whole
// transcript is a pure function of the seed and the batch.
//
// Recording what a server observed (its view of the protocol, used by the
// evaluation harness and the attack demos) is opt-in and bounded: under
// sustained traffic an always-on, unbounded log of O(n)-bit selection
// vectors is a memory leak, so servers only count queries unless
// EnableObservationLog turns the ring buffer on.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "table/aligned_buffer.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Uniformly random `n`-bit selection bitmap, packed LSB-first into bytes,
/// with the padding bits of the last byte zeroed so observed queries are
/// canonical. Fills 8 bitmap bytes per NextU64 draw (ceil(n/64) draws).
TRIPRIV_SENSITIVE(record)
std::vector<uint8_t> RandomSelectionBits(size_t n, Rng* rng);

/// Flips bit `i` of a packed LSB-first selection bitmap.
void FlipSelectionBit(std::vector<uint8_t>* bits, size_t i);

/// One PIR server: a replica of the database of equal-length records,
/// answering XOR-subset queries.
class XorPirServer {
 public:
  /// Requires >= 1 record; all records must have equal, non-zero length.
  static Result<XorPirServer> Create(std::vector<std::vector<uint8_t>> records);

  size_t num_records() const { return records_.size(); }
  size_t record_size() const { return records_.empty() ? 0 : records_[0].size(); }

  /// XOR of the records selected by `selection` (one bit per record, packed
  /// LSB-first into bytes). Counts the query and, when the observation log
  /// is enabled, records the selection. `pool` (optional) shards the
  /// accumulation across workers; per-shard partial accumulators are
  /// XOR-merged in shard order, so the answer is bit-identical to the
  /// serial path at any thread count.
  TRIPRIV_SENSITIVE(record)
  Result<std::vector<uint8_t>> Answer(const std::vector<uint8_t>& selection,
                                      ThreadPool* pool = nullptr);

  /// The pure compute half of Answer: thread-safe const, no counting or
  /// logging. Batch executors call ObserveQuery serially in submission
  /// order, then fan ComputeAnswer out across workers.
  Result<std::vector<uint8_t>> ComputeAnswer(
      const std::vector<uint8_t>& selection, ThreadPool* pool = nullptr) const;

  /// One-time per-epoch preprocessing — the XOR analog of SealPIR's
  /// preprocess_ntt. Copies the records into a 64-byte-aligned, word-padded
  /// parity layout: each pair of adjacent records occupies three aligned
  /// slots [even, odd, even^odd], so the hot sweep answers two selection
  /// bits with at most ONE aligned XOR (instead of an expected one and a
  /// worst-case two) and streams contiguous memory instead of chasing
  /// per-record heap pointers. Answers are byte-identical with or without
  /// the layout (XOR algebra — only the sweep changes), and bytes_xored()
  /// accounting is untouched because it is derived from the observed
  /// selection, not from the sweep. Idempotent; costs 1.5x the database.
  void Preprocess();
  bool preprocessed() const { return !parity_.empty(); }
  /// Bytes held by the preprocessed layout (0 before Preprocess).
  uint64_t preprocess_bytes() const { return parity_.size_bytes(); }

  /// Injected adversity for error-path tests: once armed with a non-OK
  /// status, every ComputeAnswer (and therefore Answer) call fails with it
  /// — the replica behaves as if it diverged from its pair. Arm with OK to
  /// disarm. Set only while no batch is in flight; reads are const and
  /// thread-safe.
  void InjectComputeFault(Status fault) { compute_fault_ = std::move(fault); }

  /// The bookkeeping half of Answer: increments the query counter and, when
  /// the log is enabled, appends `selection` to the bounded ring. Not
  /// thread-safe — batch executors call it from their serial stage.
  void ObserveQuery(const std::vector<uint8_t>& selection);

  /// Opt-in attack-analysis mode: retain the most recent `capacity` (>= 1)
  /// selection bitmaps for observed_query() inspection. Off by default.
  void EnableObservationLog(size_t capacity);
  bool observation_enabled() const { return observe_capacity_ > 0; }

  /// Total queries answered (counted whether or not the log is enabled).
  uint64_t queries_answered() const { return queries_answered_; }

  /// Bytes this replica XORed into answer accumulators: popcount of each
  /// observed selection times the record size, accumulated per query. The
  /// aggregate work metric of the PIR hot loop — never per-query data.
  uint64_t bytes_xored() const { return bytes_xored_; }

  /// Observations currently retained: at most the enabled capacity, zero
  /// unless EnableObservationLog was called.
  size_t num_observed() const { return observed_.size(); }
  /// The `i`-th retained observation, oldest first. Requires i < num_observed().
  TRIPRIV_SENSITIVE(record)
  const std::vector<uint8_t>& observed_query(size_t i) const;
  /// The most recent observation. Requires num_observed() > 0.
  TRIPRIV_SENSITIVE(record)
  const std::vector<uint8_t>& last_observed_query() const;

  /// Direct (non-private) record access, for testing and for the baseline
  /// "no PIR" comparison.
  const std::vector<uint8_t>& record(size_t i) const {
    TRIPRIV_CHECK_LT(i, records_.size());
    return records_[i];
  }

 private:
  /// XORs the records selected in [begin, end) into `acc` (record_size()
  /// bytes), skipping 8 records at a time across clear selection bytes.
  /// Sweeps the parity layout when Preprocess has built it.
  void AccumulateRange(const std::vector<uint8_t>& selection, size_t begin,
                       size_t end, uint8_t* acc) const;
  /// The plain per-record sweep (no layout).
  void AccumulateRecords(const std::vector<uint8_t>& selection, size_t begin,
                         size_t end, uint8_t* acc) const;
  /// Slot `slot` of the parity layout (3 slots per record pair).
  const uint8_t* ParitySlot(size_t slot) const {
    return parity_.bytes() + slot * parity_stride_;
  }

  std::vector<std::vector<uint8_t>> records_;
  /// Preprocessed parity layout (see Preprocess): ceil(n/2) pair groups of
  /// three 64-byte-aligned slots each, parity_stride_ bytes per slot.
  AlignedWordBuffer parity_;
  size_t parity_stride_ = 0;
  Status compute_fault_;  ///< injected ComputeAnswer failure (OK = disarmed)
  uint64_t queries_answered_ = 0;
  uint64_t bytes_xored_ = 0;
  /// Bounded observation ring (attack-analysis mode). `observed_` holds at
  /// most `observe_capacity_` entries; once full, `observe_head_` is the
  /// slot holding the oldest entry (and the one the next query overwrites).
  size_t observe_capacity_ = 0;
  size_t observe_head_ = 0;
  std::vector<std::vector<uint8_t>> observed_;
};

/// Communication accounting. Contract: EVERY read path — single, batch,
/// cube, recursive, keyword — ACCUMULATES into the caller's struct with
/// `+=`, never overwrites, so one PirStats can meter an arbitrary
/// interleaving of read paths as a running total. Callers wanting per-query
/// numbers pass a freshly zeroed struct (or call Reset between reads).
struct PirStats {
  size_t upload_bits = 0;
  size_t download_bits = 0;

  void Reset() { upload_bits = download_bits = 0; }
};

/// Retrieves record `index` via the 2-server scheme. The two servers must
/// hold identical replicas.
Result<std::vector<uint8_t>> TwoServerPirRead(XorPirServer* server_a,
                                              XorPirServer* server_b,
                                              size_t index, Rng* rng,
                                              PirStats* stats = nullptr);

/// Batched 2-server reads. Selection randomness and observation logging
/// happen serially in index order — exactly the draws a TwoServerPirRead
/// loop would make — then the XOR answer kernels fan out across `pool`
/// (null or 0-worker pool = inline). Answers are positional and
/// bit-identical to the serial loop at any thread count; `stats`
/// accumulates the batch totals. A per-slot compute failure never aborts
/// the process: slot statuses are collected across the join and the first
/// failure (in index order) is returned as the batch's typed error.
Result<std::vector<std::vector<uint8_t>>> TwoServerPirBatchRead(
    XorPirServer* server_a, XorPirServer* server_b,
    const std::vector<size_t>& indices, Rng* rng, ThreadPool* pool = nullptr,
    PirStats* stats = nullptr);

/// Retrieves record `index` via the 4-server cube scheme (upload
/// O(sqrt(n)) bits per server). All four servers must hold identical
/// replicas.
Result<std::vector<uint8_t>> FourServerCubePirRead(
    const std::array<XorPirServer*, 4>& servers, size_t index, Rng* rng,
    PirStats* stats = nullptr);

}  // namespace tripriv
