// Private aggregate queries: the "PIR protocols for statistical query
// types" hypothesized in Section 3 of the paper.
//
// The paper's user-privacy-without-respondent-privacy example assumes a
// user can run
//   SELECT COUNT(*)             WHERE height < 165 AND weight > 105
//   SELECT AVG(blood_pressure)  WHERE height < 165 AND weight > 105
// through PIR, so the server cannot see the predicate. This module builds
// that protocol from Paillier:
//   * the server publishes a public domain grid over the predicate
//     attributes (e.g. all (height, weight) cells) and precomputes, per
//     cell, the record count and attribute sums;
//   * the user evaluates their private predicate on each grid cell and
//     sends the encrypted indicator vector Enc(w_1) ... Enc(w_m);
//   * the server folds Prod_c Enc(w_c)^{count_c} = Enc(COUNT) and
//     Prod_c Enc(w_c)^{sum_c} = Enc(SUM) without learning the predicate;
//   * the user decrypts and, for AVG, divides.
// The server's view is ciphertexts only — exactly the property the Section
// 3 attack exploits and the Section 6 recipe must neutralize with
// k-anonymous data.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "smc/paillier.h"
#include "table/data_table.h"
#include "table/predicate.h"

namespace tripriv {

/// One axis of the public domain grid (integer-valued attribute).
struct GridAxis {
  std::string attribute;
  int64_t lo = 0;       ///< smallest domain value (inclusive)
  int64_t hi = 0;       ///< largest domain value (inclusive)
  int64_t step = 1;     ///< cell width; cells are [lo + k*step, lo + (k+1)*step)
};

/// Server side: per-cell precomputed counts and sums.
class PrivateAggregateServer {
 public:
  /// Bins `table` over the cross product of `axes`. Grid attributes must be
  /// integer-typed; aggregate attributes (everything numeric) must be
  /// non-negative integers (counts/sums ride inside Paillier plaintexts).
  /// Records falling outside the grid are rejected (the axes are supposed
  /// to cover the public attribute domains).
  static Result<PrivateAggregateServer> Build(const DataTable& table,
                                              std::vector<GridAxis> axes);

  size_t num_cells() const { return counts_.size(); }
  const std::vector<GridAxis>& axes() const { return axes_; }

  /// Enc(COUNT of records in cells with w_c = 1). One ciphertext per cell
  /// in `encrypted_selector`.
  Result<BigInt> EncryptedCount(const PaillierPublicKey& pub,
                                const std::vector<BigInt>& encrypted_selector) const;

  /// Enc(SUM of `attribute` over records in selected cells).
  Result<BigInt> EncryptedSum(const PaillierPublicKey& pub,
                              const std::vector<BigInt>& encrypted_selector,
                              const std::string& attribute) const;

  /// Enc(COUNT + Laplace(1/epsilon)) — the server adds discretized Laplace
  /// noise HOMOMORPHICALLY, so the released count is epsilon-differentially
  /// private w.r.t. respondents while the predicate stays hidden from the
  /// server: respondent privacy and user privacy from one ciphertext. The
  /// noise is encoded mod n (negative values as n - |x|); decode with
  /// PrivateAggregateClient::DpCount. Requires epsilon > 0.
  Result<BigInt> EncryptedDpCount(const PaillierPublicKey& pub,
                                  const std::vector<BigInt>& encrypted_selector,
                                  double epsilon, Rng* rng) const;

  /// Representative value of cell `cell` on each axis (the cell's lower
  /// bound) — the public information a client needs to evaluate its
  /// predicate per cell.
  std::vector<int64_t> CellRepresentative(size_t cell) const;

  /// How many aggregate queries this server has answered (its view is
  /// otherwise ciphertext-only).
  size_t queries_served() const { return queries_served_; }

 private:
  std::vector<GridAxis> axes_;
  std::vector<uint64_t> counts_;                       // per cell
  std::vector<std::string> sum_attributes_;            // numeric attrs
  std::vector<std::vector<uint64_t>> sums_;            // [attr][cell]
  mutable size_t queries_served_ = 0;
};

/// Client side: key pair, selector construction, decryption.
class PrivateAggregateClient {
 public:
  static Result<PrivateAggregateClient> Create(size_t modulus_bits,
                                               uint64_t seed);

  const PaillierPublicKey& public_key() const { return keys_.pub; }

  /// Builds the encrypted per-cell indicator vector for `predicate`, which
  /// may reference only grid attributes. The predicate is evaluated on each
  /// cell representative.
  Result<std::vector<BigInt>> MakeSelector(const PrivateAggregateServer& server,
                                           const Predicate& predicate);

  /// Private COUNT(*) WHERE predicate.
  Result<uint64_t> Count(const PrivateAggregateServer& server,
                         const Predicate& predicate);

  /// Private SUM(attribute) WHERE predicate.
  Result<uint64_t> Sum(const PrivateAggregateServer& server,
                       const std::string& attribute, const Predicate& predicate);

  /// Private AVG(attribute) WHERE predicate; fails when the count is 0.
  Result<double> Average(const PrivateAggregateServer& server,
                         const std::string& attribute,
                         const Predicate& predicate);

  /// Differentially private COUNT(*) WHERE predicate: the server never sees
  /// the predicate (PIR) and the client never sees the exact count (DP) —
  /// the composition Section 6 asks future research to explore. The result
  /// may be negative (Laplace noise); `server_rng` supplies the server's
  /// noise randomness.
  Result<int64_t> DpCount(const PrivateAggregateServer& server,
                          const Predicate& predicate, double epsilon,
                          Rng* server_rng);

 private:
  PaillierKeyPair keys_;
  Rng rng_{0};
};

}  // namespace tripriv

