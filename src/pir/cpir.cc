#include "pir/cpir.h"

#include <cmath>

namespace tripriv {

Result<CpirServer> CpirServer::Create(std::vector<uint64_t> database) {
  if (database.empty()) return Status::InvalidArgument("empty database");
  CpirServer server;
  server.cols_ = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(database.size()))));
  server.rows_ = (database.size() + server.cols_ - 1) / server.cols_;
  server.database_ = std::move(database);
  return server;
}

Result<std::vector<BigInt>> CpirServer::Answer(
    const PaillierPublicKey& pub, const std::vector<BigInt>& encrypted_selector) {
  if (encrypted_selector.size() != rows_) {
    return Status::InvalidArgument("selector must have one ciphertext per row");
  }
  ++queries_served_;
  std::vector<BigInt> out;
  out.reserve(cols_);
  for (size_t j = 0; j < cols_; ++j) {
    // Enc(sum_i sel_i * M[i][j]); missing cells in the last row count as 0.
    BigInt acc(1);  // neutral ciphertext product accumulator: Enc(0) not
                    // needed because c = prod of factors; start at 1 and
                    // multiply in (mod n^2) — the empty product decrypts
                    // from the first multiplied factor onward.
    bool have_factor = false;
    for (size_t i = 0; i < rows_; ++i) {
      const size_t idx = i * cols_ + j;
      if (idx >= database_.size()) continue;
      const uint64_t entry = database_[idx];
      if (entry == 0) continue;  // Enc(x)^0 contributes nothing
      const BigInt factor =
          PaillierMulPlain(pub, encrypted_selector[i], BigInt::FromU64(entry));
      acc = have_factor ? PaillierAdd(pub, acc, factor) : factor;
      have_factor = true;
    }
    if (!have_factor) {
      // Whole column is zero: Enc(0) with fixed randomness 1 -> ciphertext 1
      // ((1 + 0*n) * 1^n = 1). Deterministic, but it encodes a public fact.
      acc = BigInt(1);
    }
    out.push_back(std::move(acc));
  }
  return out;
}

Result<CpirClient> CpirClient::Create(size_t modulus_bits, uint64_t seed) {
  CpirClient client;
  client.rng_ = Rng(seed);
  TRIPRIV_ASSIGN_OR_RETURN(client.keys_,
                           PaillierGenerateKeys(modulus_bits, &client.rng_));
  return client;
}

Result<uint64_t> CpirClient::Read(CpirServer* server, size_t index) {
  TRIPRIV_CHECK(server != nullptr);
  if (index >= server->num_entries()) {
    return Status::OutOfRange("entry index out of range");
  }
  const size_t target_row = index / server->cols();
  const size_t target_col = index % server->cols();

  std::vector<BigInt> selector;
  selector.reserve(server->rows());
  for (size_t i = 0; i < server->rows(); ++i) {
    TRIPRIV_ASSIGN_OR_RETURN(
        BigInt c,
        PaillierEncrypt(keys_.pub, i == target_row ? BigInt(1) : BigInt(),
                        &rng_));
    selector.push_back(std::move(c));
  }
  last_upload_ = selector.size();
  TRIPRIV_ASSIGN_OR_RETURN(auto answer, server->Answer(keys_.pub, selector));
  last_download_ = answer.size();
  TRIPRIV_ASSIGN_OR_RETURN(
      BigInt value, PaillierDecrypt(keys_.pub, keys_.priv, answer[target_col]));
  return value.ToU64();
}

}  // namespace tripriv
