// Word-wide XOR kernel for the PIR hot path.
//
// The IT-PIR answer loop is pure XOR-accumulation over record bytes; doing
// it one byte at a time leaves ~8x of the memory bandwidth on the table.
// This kernel processes one 32-byte block (4 x uint64_t) per iteration,
// then a word tail, then a byte tail. memcpy is the alias-safe way to do
// unaligned word loads and compiles to plain MOVs; byte order never leaks
// into results because XOR is bytewise.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace tripriv {

/// dst[0..n) ^= src[0..n). The ranges must not partially overlap.
inline void XorBytesInto(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint64_t d[4];
    uint64_t s[4];
    std::memcpy(d, dst + i, 32);
    std::memcpy(s, src + i, 32);
    d[0] ^= s[0];
    d[1] ^= s[1];
    d[2] ^= s[2];
    d[3] ^= s[3];
    std::memcpy(dst + i, d, 32);
  }
  for (; i + 8 <= n; i += 8) {
    uint64_t d;
    uint64_t s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace tripriv
