// Additive noise masking.
//
// The masking family behind both SDC noise addition and the
// Agrawal-Srikant PPDM method [5]: release X + E instead of X. Two
// variants:
//   * uncorrelated: E_j ~ N(0, (alpha * sd(X_j))^2) independently per
//     attribute;
//   * correlated: E ~ N(0, alpha * Cov(X)) — preserves the correlation
//     structure of the data up to a known scale factor, so analyses on
//     second moments remain valid (classic Kim-style noise).

#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "table/data_table.h"

namespace tripriv {

/// Adds independent Gaussian noise with per-column standard deviation
/// alpha * sd(column) to the numeric columns `cols`. Requires alpha >= 0
/// and >= 2 rows (to estimate sd).
TRIPRIV_SANITIZES(aggregate)
Result<DataTable> AddUncorrelatedNoise(const DataTable& table, double alpha,
                                       const std::vector<size_t>& cols,
                                       uint64_t seed);

/// Adds multivariate Gaussian noise with covariance alpha * Cov(columns).
/// Requires alpha >= 0 and >= 2 rows.
TRIPRIV_SANITIZES(aggregate)
Result<DataTable> AddCorrelatedNoise(const DataTable& table, double alpha,
                                     const std::vector<size_t>& cols,
                                     uint64_t seed);

/// Adds N(0, sigma^2) noise with a fixed absolute sigma to one column —
/// the exact setting of the Agrawal-Srikant reconstruction experiments.
TRIPRIV_SANITIZES(aggregate)
Result<DataTable> AddFixedNoise(const DataTable& table, double sigma,
                                size_t col, uint64_t seed);

/// Kim-style noise with variance restoration: x' = mean + (x - mean + e) /
/// sqrt(1 + alpha^2) with e ~ N(0, (alpha sd)^2). Unlike plain addition,
/// the masked column keeps (asymptotically) the original mean AND
/// variance, so second-moment analyses need no correction — the classic
/// "masking for analytical validity" refinement of the SDC literature.
TRIPRIV_SANITIZES(aggregate)
Result<DataTable> AddNoiseWithVarianceRestoration(const DataTable& table,
                                                  double alpha,
                                                  const std::vector<size_t>& cols,
                                                  uint64_t seed);

}  // namespace tripriv

