// Global recoding + local suppression k-anonymizer (Datafly-style).
//
// The greedy full-domain algorithm of Sweeney's Datafly system, cited by the
// paper through [21]: while the table is not k-anonymous, generalize the
// quasi-identifier with the most distinct values by one hierarchy level;
// when fewer than `max_suppression_fraction * n` records remain in
// undersized classes, suppress (drop) them instead.

#pragma once

#include <map>
#include <memory>
#include <string>

#include "sdc/hierarchy.h"
#include "table/data_table.h"

namespace tripriv {

/// Configuration for DataflyAnonymize.
struct RecodingConfig {
  /// Required anonymity level (k >= 1).
  size_t k = 3;
  /// Records in undersized classes may be dropped once their number is at
  /// most this fraction of the table.
  double max_suppression_fraction = 0.05;
  /// Hierarchy per quasi-identifier attribute name. QIs without an entry
  /// get a SuppressionHierarchy.
  std::map<std::string, std::shared_ptr<const GeneralizationHierarchy>>
      hierarchies;
};

/// Result of recoding: the released table plus what it cost.
struct RecodingResult {
  /// The k-anonymous table. Generalized QI columns become categorical.
  DataTable table;
  /// Applied generalization level, keyed by QI attribute name.
  std::map<std::string, int> levels;
  /// Rows removed by local suppression.
  size_t suppressed_rows = 0;
};

/// Runs Datafly-style global recoding on the schema's quasi-identifiers.
/// Post-condition (verified by tests): the output is k-anonymous on its
/// QIs, or the table is empty.
Result<RecodingResult> DataflyAnonymize(const DataTable& table,
                                        const RecodingConfig& config);

/// Samarati's full-domain algorithm ([20], cited by the paper): searches
/// the lattice of generalization-level vectors for a MINIMAL solution —
/// a level vector of least total height whose generalization, after
/// suppressing at most max_suppression_fraction * n outlier rows, is
/// k-anonymous. Unlike the greedy Datafly heuristic this is exact w.r.t.
/// total generalization height. Exponential in the number of QIs (fine for
/// the handfuls of quasi-identifiers real microdata has); fails with
/// FailedPrecondition when even full suppression of every QI cannot reach
/// k (i.e. k > n).
Result<RecodingResult> SamaratiAnonymize(const DataTable& table,
                                         const RecodingConfig& config);

}  // namespace tripriv

