#include "sdc/hierarchy.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace tripriv {

NumericIntervalHierarchy::NumericIntervalHierarchy(double origin,
                                                   double base_width,
                                                   int growth, int levels)
    : origin_(origin), base_width_(base_width), growth_(growth), levels_(levels) {
  TRIPRIV_CHECK_GT(base_width, 0.0);
  TRIPRIV_CHECK_GE(growth, 2);
  TRIPRIV_CHECK_GE(levels, 1);
}

Result<Value> NumericIntervalHierarchy::Generalize(const Value& v,
                                                   int level) const {
  if (v.is_null()) return Value::Null();
  level = std::clamp(level, 0, max_level());
  if (level == 0) return v;
  if (!v.is_numeric()) {
    // The offending value is record-level; the type error suffices.
    return Status::InvalidArgument(
        "numeric hierarchy applied to non-numeric value");
  }
  if (level == max_level()) return Value("*");
  double width = base_width_;
  for (int l = 1; l < level; ++l) width *= growth_;
  const double x = v.ToDouble();
  const double lo = origin_ + std::floor((x - origin_) / width) * width;
  return Value("[" + FormatDouble(lo) + "," + FormatDouble(lo + width) + ")");
}

Status CategoricalTreeHierarchy::AddLeaf(const std::string& leaf,
                                         std::vector<std::string> ancestors) {
  if (ancestors.empty()) {
    return Status::InvalidArgument("ancestor chain must reach a root");
  }
  const int depth = static_cast<int>(ancestors.size());
  if (!chains_.empty() && depth != depth_) {
    return Status::InvalidArgument(
        "inconsistent hierarchy depth for leaf '" + leaf + "': expected " +
        std::to_string(depth_) + ", got " + std::to_string(depth));
  }
  auto [it, inserted] = chains_.emplace(leaf, std::move(ancestors));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("leaf '" + leaf + "' already registered");
  }
  depth_ = depth;
  return Status::OK();
}

Result<Value> CategoricalTreeHierarchy::Generalize(const Value& v,
                                                   int level) const {
  if (v.is_null()) return Value::Null();
  level = std::clamp(level, 0, max_level());
  if (level == 0) return v;
  if (!v.is_string()) {
    return Status::InvalidArgument(
        "categorical hierarchy applied to non-string value");
  }
  auto it = chains_.find(v.AsString());
  if (it == chains_.end()) {
    // The unmapped value is a cell value; keep it out of the message.
    return Status::NotFound("categorical value not in hierarchy");
  }
  return Value(it->second[static_cast<size_t>(level - 1)]);
}

Result<Value> SuppressionHierarchy::Generalize(const Value& v, int level) const {
  if (v.is_null()) return Value::Null();
  return level <= 0 ? v : Value("*");
}

}  // namespace tripriv
