#include "sdc/microaggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/descriptive.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

/// Distance scans over pools smaller than this stay serial: the fork/join
/// handoff costs more than the scan.
constexpr size_t kMinParallelPoolSize = 4096;

/// True when `workers` should shard a scan over `n` pool elements.
bool UsePool(const ThreadPool* workers, size_t n) {
  return workers != nullptr && workers->num_threads() > 1 &&
         n >= kMinParallelPoolSize;
}

/// Column-standardizes a row-major matrix in place (constant columns are
/// left centered at 0).
void Standardize(std::vector<std::vector<double>>* m) {
  if (m->empty()) return;
  const size_t d = (*m)[0].size();
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col(m->size());
    for (size_t i = 0; i < m->size(); ++i) col[i] = (*m)[i][j];
    const double mean = Mean(col);
    const double sd = col.size() >= 2 ? SampleStddev(col) : 0.0;
    for (size_t i = 0; i < m->size(); ++i) {
      (*m)[i][j] = sd > 0.0 ? ((*m)[i][j] - mean) / sd : 0.0;
    }
  }
}

/// Centroid of the rows at `idx`.
std::vector<double> CentroidOf(const std::vector<std::vector<double>>& m,
                               const std::vector<size_t>& idx) {
  TRIPRIV_CHECK(!idx.empty());
  std::vector<double> c(m[0].size(), 0.0);
  for (size_t i : idx) {
    for (size_t j = 0; j < c.size(); ++j) c[j] += m[i][j];
  }
  for (double& v : c) v /= static_cast<double>(idx.size());
  return c;
}

/// Index (into `pool`) of the element of `pool` farthest from `point`.
/// The strict `>` keeps the FIRST pool index among equal distances — the
/// tie-break the parallel path reproduces by merging per-shard winners in
/// shard order (shards are contiguous and ascending, so the earliest shard
/// holding the maximum wins, i.e. the lowest index).
size_t FarthestFrom(const std::vector<std::vector<double>>& m,
                    const std::vector<size_t>& pool,
                    const std::vector<double>& point,
                    ThreadPool* workers = nullptr) {
  auto scan = [&m, &pool, &point](size_t begin, size_t end, size_t* best,
                                  double* best_d) {
    for (size_t i = begin; i < end; ++i) {
      const double d = SquaredDistance(m[pool[i]], point);
      if (d > *best_d) {
        *best_d = d;
        *best = i;
      }
    }
  };
  if (!UsePool(workers, pool.size())) {
    size_t best = 0;
    double best_d = -1.0;
    scan(0, pool.size(), &best, &best_d);
    return best;
  }
  const size_t shards = workers->NumShards(pool.size());
  std::vector<size_t> shard_best(shards, 0);
  std::vector<double> shard_best_d(shards, -1.0);
  workers->ParallelFor(pool.size(), [&scan, &shard_best, &shard_best_d](
                                        size_t shard, size_t begin,
                                        size_t end) {
    shard_best[shard] = begin;
    scan(begin, end, &shard_best[shard], &shard_best_d[shard]);
  });
  size_t best = shard_best[0];
  double best_d = shard_best_d[0];
  for (size_t s = 1; s < shards; ++s) {
    if (shard_best_d[s] > best_d) {
      best_d = shard_best_d[s];
      best = shard_best[s];
    }
  }
  return best;
}

/// Removes from `pool` the record at pool-index `seed_pos` and its k-1
/// nearest pool neighbours; returns their row ids.
std::vector<size_t> TakeGroupAround(const std::vector<std::vector<double>>& m,
                                    std::vector<size_t>* pool, size_t seed_pos,
                                    size_t k, ThreadPool* workers = nullptr) {
  const size_t seed_row = (*pool)[seed_pos];
  // Order pool by distance to the seed record. The distance fill writes
  // positional slots (parallel-safe); the sort stays serial and ties break
  // on the pool index, so the ordering is thread-count independent.
  std::vector<std::pair<double, size_t>> by_dist(pool->size());
  auto fill = [&m, &pool, seed_row, &by_dist](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      by_dist[i] = {SquaredDistance(m[(*pool)[i]], m[seed_row]), i};
    }
  };
  if (!UsePool(workers, pool->size())) {
    fill(0, pool->size());
  } else {
    workers->ParallelFor(pool->size(),
                         [&fill](size_t, size_t begin, size_t end) {
                           fill(begin, end);
                         });
  }
  std::sort(by_dist.begin(), by_dist.end());
  const size_t take = std::min(k, pool->size());
  std::vector<size_t> group;
  std::vector<bool> taken(pool->size(), false);
  for (size_t i = 0; i < take; ++i) {
    group.push_back((*pool)[by_dist[i].second]);
    taken[by_dist[i].second] = true;
  }
  std::vector<size_t> rest;
  rest.reserve(pool->size() - take);
  for (size_t i = 0; i < pool->size(); ++i) {
    if (!taken[i]) rest.push_back((*pool)[i]);
  }
  *pool = std::move(rest);
  return group;
}

}  // namespace

Result<MicroaggregationResult> MdavMicroaggregate(
    const DataTable& table, size_t k, const std::vector<size_t>& cols,
    ThreadPool* workers) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot microaggregate an empty table");
  }
  if (cols.empty()) {
    return Status::InvalidArgument("no columns to microaggregate");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto raw, table.NumericMatrix(cols));
  auto std_data = raw;
  Standardize(&std_data);

  const size_t n = table.num_rows();
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<std::vector<size_t>> groups;

  // MDAV-generic main loop.
  while (pool.size() >= 3 * k) {
    const auto centroid = CentroidOf(std_data, pool);
    const size_t far1 = FarthestFrom(std_data, pool, centroid, workers);
    const size_t far1_row = pool[far1];
    groups.push_back(TakeGroupAround(std_data, &pool, far1, k, workers));
    // Record farthest from the first extreme.
    const size_t far2 =
        FarthestFrom(std_data, pool, std_data[far1_row], workers);
    groups.push_back(TakeGroupAround(std_data, &pool, far2, k, workers));
  }
  if (pool.size() >= 2 * k) {
    const auto centroid = CentroidOf(std_data, pool);
    const size_t far1 = FarthestFrom(std_data, pool, centroid, workers);
    groups.push_back(TakeGroupAround(std_data, &pool, far1, k, workers));
  }
  if (!pool.empty()) {
    groups.push_back(pool);  // remaining < 2k records form the last group
    pool.clear();
  }

  MicroaggregationResult result;
  result.table = table;
  result.group_of_row.assign(n, 0);
  result.num_groups = groups.size();
  // Replace values by group centroids (original scale) and accumulate the
  // standardized within-group SSE.
  std::vector<std::vector<double>> masked = raw;
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto centroid_raw = CentroidOf(raw, groups[g]);
    const auto centroid_std = CentroidOf(std_data, groups[g]);
    for (size_t row : groups[g]) {
      result.group_of_row[row] = g;
      masked[row] = centroid_raw;
      result.within_group_sse += SquaredDistance(std_data[row], centroid_std);
    }
  }
  for (size_t j = 0; j < cols.size(); ++j) {
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) col[r] = masked[r][j];
    TRIPRIV_RETURN_IF_ERROR(result.table.SetNumericColumn(cols[j], col));
  }
  return result;
}

Result<MicroaggregationResult> MdavMicroaggregate(const DataTable& table,
                                                  size_t k) {
  const auto qi = table.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::FailedPrecondition("schema declares no quasi-identifiers");
  }
  return MdavMicroaggregate(table, k, qi);
}

Result<std::vector<size_t>> OptimalUnivariateGroups(
    const std::vector<double>& values, size_t k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const size_t n = values.size();
  if (n == 0) return Status::InvalidArgument("empty input");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  // Hansen-Mukherjee: shortest path over sorted prefixes. cost[i] = minimal
  // SSE of grouping the first i sorted elements; the last group has size
  // g in [k, 2k-1].
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefix_sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double v = values[order[i]];
    prefix[i + 1] = prefix[i] + v;
    prefix_sq[i + 1] = prefix_sq[i] + v * v;
  }
  auto group_sse = [&](size_t lo, size_t hi) {  // sorted elements [lo, hi)
    const double cnt = static_cast<double>(hi - lo);
    const double sum = prefix[hi] - prefix[lo];
    return (prefix_sq[hi] - prefix_sq[lo]) - sum * sum / cnt;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> cost(n + 1, kInf);
  std::vector<size_t> prev(n + 1, 0);
  cost[0] = 0.0;
  for (size_t i = k; i <= n; ++i) {
    const size_t g_max = std::min(i, 2 * k - 1);
    for (size_t g = k; g <= g_max; ++g) {
      const size_t j = i - g;
      if (cost[j] == kInf) continue;
      // A valid predecessor must itself be partitionable: j == 0 or j >= k.
      if (j != 0 && j < k) continue;
      const double c = cost[j] + group_sse(j, i);
      if (c < cost[i]) {
        cost[i] = c;
        prev[i] = j;
      }
    }
  }
  if (cost[n] == kInf) {
    // n < k: a single group of everything is the only option.
    std::vector<size_t> all(n, 0);
    return all;
  }
  // Recover boundaries, then map back to original indices.
  std::vector<size_t> boundaries;
  for (size_t i = n; i > 0; i = prev[i]) boundaries.push_back(i);
  std::reverse(boundaries.begin(), boundaries.end());
  std::vector<size_t> group_of(n, 0);
  size_t start = 0;
  for (size_t g = 0; g < boundaries.size(); ++g) {
    for (size_t pos = start; pos < boundaries[g]; ++pos) {
      group_of[order[pos]] = g;
    }
    start = boundaries[g];
  }
  return group_of;
}

Result<MicroaggregationResult> OptimalUnivariateMicroaggregate(
    const DataTable& table, size_t k, size_t col) {
  TRIPRIV_ASSIGN_OR_RETURN(auto values, table.NumericColumn(col));
  TRIPRIV_ASSIGN_OR_RETURN(auto groups, OptimalUnivariateGroups(values, k));
  MicroaggregationResult result;
  result.table = table;
  result.group_of_row = groups;
  result.num_groups = *std::max_element(groups.begin(), groups.end()) + 1;
  // Replace by group means; SSE measured on standardized values.
  std::vector<double> sums(result.num_groups, 0.0);
  std::vector<double> counts(result.num_groups, 0.0);
  for (size_t r = 0; r < values.size(); ++r) {
    sums[groups[r]] += values[r];
    counts[groups[r]] += 1.0;
  }
  std::vector<double> masked(values.size());
  for (size_t r = 0; r < values.size(); ++r) {
    masked[r] = sums[groups[r]] / counts[groups[r]];
  }
  const double sd = values.size() >= 2 ? SampleStddev(values) : 0.0;
  for (size_t r = 0; r < values.size(); ++r) {
    const double d = sd > 0.0 ? (values[r] - masked[r]) / sd : 0.0;
    result.within_group_sse += d * d;
  }
  TRIPRIV_RETURN_IF_ERROR(result.table.SetNumericColumn(col, masked));
  return result;
}

}  // namespace tripriv
