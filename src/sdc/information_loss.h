// Information-loss (utility) measurement between an original table and its
// masked release.
//
// The flip side of disclosure risk: Section 6 of the paper asks what the
// "data utility penalty" of each privacy dimension is. These are the
// standard SDC measures ([10, 17]):
//   * IL1s — mean absolute cell deviation scaled by sqrt(2) * sd of the
//     original attribute;
//   * deviation of means and variances;
//   * relative Frobenius deviation of the covariance matrix (the statistic
//     condensation preserves by construction);
//   * relative deviation of the Pearson correlation matrix.

#pragma once

#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Per-release information-loss summary; all measures are >= 0 and 0 for
/// an identical release.
struct InformationLoss {
  double il1s = 0.0;             ///< mean |x - x'| / (sqrt(2) sd(x)) over cells
  double mean_deviation = 0.0;   ///< mean over cols of |mean - mean'| / sd
  double var_deviation = 0.0;    ///< mean over cols of |var - var'| / var
  double cov_deviation = 0.0;    ///< ||Cov - Cov'||_F / ||Cov||_F
  double corr_deviation = 0.0;   ///< ||Corr - Corr'||_F / d
};

/// Measures information loss of `masked` w.r.t. `original` over the numeric
/// columns `cols`. Requires row-aligned tables with >= 2 rows.
Result<InformationLoss> MeasureInformationLoss(const DataTable& original,
                                               const DataTable& masked,
                                               const std::vector<size_t>& cols);

/// MeasureInformationLoss over the schema's quasi-identifiers.
Result<InformationLoss> MeasureInformationLoss(const DataTable& original,
                                               const DataTable& masked);

/// The discernibility metric of the k-anonymity literature: sum over
/// equivalence classes of |class|^2 — each record pays a penalty equal to
/// the number of records it has become indistinguishable from. Works on
/// ANY release (including generalized/categorical tables where numeric
/// losses are undefined). Minimum n (all unique), maximum n^2 (one class).
double DiscernibilityMetric(const DataTable& table,
                            const std::vector<size_t>& qi_cols);

/// DiscernibilityMetric over the schema's quasi-identifiers.
double DiscernibilityMetric(const DataTable& table);

/// Normalized average equivalence-class size: (n / #classes) / k. A value
/// of 1 means classes are as small as k-anonymity allows (ideal utility);
/// larger values mean over-generalization.
Result<double> NormalizedAverageClassSize(const DataTable& table,
                                          const std::vector<size_t>& qi_cols,
                                          size_t k);

}  // namespace tripriv

