#include "sdc/anonymity.h"

#include <set>

namespace tripriv {

size_t AnonymityLevel(const DataTable& table,
                      const std::vector<size_t>& qi_cols) {
  return GroupByColumns(table, qi_cols).MinClassSize();
}

size_t AnonymityLevel(const DataTable& table) {
  return AnonymityLevel(table, table.schema().QuasiIdentifierIndices());
}

bool IsKAnonymous(const DataTable& table, size_t k,
                  const std::vector<size_t>& qi_cols) {
  return AnonymityLevel(table, qi_cols) >= k;
}

bool IsKAnonymous(const DataTable& table, size_t k) {
  return AnonymityLevel(table) >= k;
}

size_t SensitivityLevel(const DataTable& table,
                        const std::vector<size_t>& qi_cols, size_t conf_col) {
  const EquivalenceClasses classes = GroupByColumns(table, qi_cols);
  size_t min_distinct = 0;
  bool first = true;
  for (const auto& cls : classes.classes) {
    std::set<Value> distinct;
    for (size_t r : cls) distinct.insert(table.at(r, conf_col));
    if (first || distinct.size() < min_distinct) {
      min_distinct = distinct.size();
      first = false;
    }
  }
  return first ? 0 : min_distinct;
}

bool IsPSensitiveKAnonymous(const DataTable& table, size_t k, size_t p) {
  const std::vector<size_t> qi = table.schema().QuasiIdentifierIndices();
  if (AnonymityLevel(table, qi) < k) return false;
  for (size_t conf : table.schema().ConfidentialIndices()) {
    if (SensitivityLevel(table, qi, conf) < p) return false;
  }
  return true;
}

size_t DistinctLDiversity(const DataTable& table, size_t conf_col) {
  return SensitivityLevel(table, table.schema().QuasiIdentifierIndices(),
                          conf_col);
}

double UniquenessFraction(const DataTable& table,
                          const std::vector<size_t>& qi_cols) {
  if (table.num_rows() == 0) return 0.0;
  const EquivalenceClasses classes = GroupByColumns(table, qi_cols);
  size_t unique = 0;
  for (const auto& cls : classes.classes) {
    if (cls.size() == 1) ++unique;
  }
  return static_cast<double>(unique) / static_cast<double>(table.num_rows());
}

}  // namespace tripriv
