#include "sdc/information_loss.h"

#include <cmath>

#include "sdc/equivalence.h"
#include "stats/descriptive.h"
#include "stats/linalg.h"

namespace tripriv {

Result<InformationLoss> MeasureInformationLoss(const DataTable& original,
                                               const DataTable& masked,
                                               const std::vector<size_t>& cols) {
  if (original.num_rows() != masked.num_rows()) {
    return Status::InvalidArgument("tables must be row-aligned");
  }
  if (original.num_rows() < 2) {
    return Status::InvalidArgument("need >= 2 rows to measure loss");
  }
  if (cols.empty()) return Status::InvalidArgument("no columns given");
  TRIPRIV_ASSIGN_OR_RETURN(auto x, original.NumericMatrix(cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto y, masked.NumericMatrix(cols));

  InformationLoss loss;
  const size_t n = x.size();
  const size_t d = cols.size();

  // IL1s + mean/variance deviations, column by column.
  double il1s_sum = 0.0;
  size_t il1s_cells = 0;
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> xo(n);
    std::vector<double> xm(n);
    for (size_t i = 0; i < n; ++i) {
      xo[i] = x[i][j];
      xm[i] = y[i][j];
    }
    const double sd = SampleStddev(xo);
    if (sd > 0.0) {
      for (size_t i = 0; i < n; ++i) {
        il1s_sum += std::fabs(xo[i] - xm[i]) / (std::sqrt(2.0) * sd);
      }
      il1s_cells += n;
      loss.mean_deviation += std::fabs(Mean(xo) - Mean(xm)) / sd;
    }
    const double vo = SampleVariance(xo);
    if (vo > 0.0) {
      loss.var_deviation += std::fabs(vo - SampleVariance(xm)) / vo;
    }
  }
  loss.il1s = il1s_cells > 0 ? il1s_sum / static_cast<double>(il1s_cells) : 0.0;
  loss.mean_deviation /= static_cast<double>(d);
  loss.var_deviation /= static_cast<double>(d);

  // Covariance / correlation structure.
  const auto cov_x = CovarianceMatrix(x);
  const auto cov_y = CovarianceMatrix(y);
  std::vector<std::vector<double>> cov_diff(d, std::vector<double>(d));
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) cov_diff[i][j] = cov_x[i][j] - cov_y[i][j];
  }
  const double cov_norm = FrobeniusNorm(cov_x);
  loss.cov_deviation =
      cov_norm > 0.0 ? FrobeniusNorm(cov_diff) / cov_norm : FrobeniusNorm(cov_diff);

  const auto corr_x = CorrelationMatrix(x);
  const auto corr_y = CorrelationMatrix(y);
  std::vector<std::vector<double>> corr_diff(d, std::vector<double>(d));
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      corr_diff[i][j] = corr_x[i][j] - corr_y[i][j];
    }
  }
  loss.corr_deviation = FrobeniusNorm(corr_diff) / static_cast<double>(d);
  return loss;
}

Result<InformationLoss> MeasureInformationLoss(const DataTable& original,
                                               const DataTable& masked) {
  return MeasureInformationLoss(original, masked,
                                original.schema().QuasiIdentifierIndices());
}

double DiscernibilityMetric(const DataTable& table,
                            const std::vector<size_t>& qi_cols) {
  double dm = 0.0;
  for (const auto& cls : GroupByColumns(table, qi_cols).classes) {
    const double s = static_cast<double>(cls.size());
    dm += s * s;
  }
  return dm;
}

double DiscernibilityMetric(const DataTable& table) {
  return DiscernibilityMetric(table, table.schema().QuasiIdentifierIndices());
}

Result<double> NormalizedAverageClassSize(const DataTable& table,
                                          const std::vector<size_t>& qi_cols,
                                          size_t k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  const auto classes = GroupByColumns(table, qi_cols);
  if (classes.classes.empty()) {
    return Status::InvalidArgument("empty table");
  }
  return static_cast<double>(table.num_rows()) /
         static_cast<double>(classes.classes.size()) / static_cast<double>(k);
}

}  // namespace tripriv
