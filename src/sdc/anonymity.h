// k-anonymity and its refinements.
//
// Verifiers for the respondent-privacy properties the paper relies on:
//   * k-anonymity (Samarati & Sweeney [20, 21, 23]): every QI combination
//     is shared by at least k records;
//   * p-sensitive k-anonymity (Truta & Vinay [24], the paper's footnote 3):
//     additionally, each class contains at least p distinct values of every
//     confidential attribute;
//   * distinct l-diversity: l distinct values of one given confidential
//     attribute per class.

#pragma once

#include <vector>

#include "sdc/equivalence.h"
#include "table/data_table.h"

namespace tripriv {

/// The largest k for which `table` is k-anonymous on `qi_cols`
/// (i.e. the smallest equivalence-class size). 0 for an empty table.
size_t AnonymityLevel(const DataTable& table, const std::vector<size_t>& qi_cols);

/// AnonymityLevel over the schema's quasi-identifiers.
size_t AnonymityLevel(const DataTable& table);

/// True iff every equivalence class on `qi_cols` has size >= k.
bool IsKAnonymous(const DataTable& table, size_t k,
                  const std::vector<size_t>& qi_cols);

/// IsKAnonymous over the schema's quasi-identifiers.
bool IsKAnonymous(const DataTable& table, size_t k);

/// The largest p such that every equivalence class contains at least p
/// distinct values of the confidential column `conf_col`. 0 for an empty
/// table.
size_t SensitivityLevel(const DataTable& table,
                        const std::vector<size_t>& qi_cols, size_t conf_col);

/// True iff `table` is k-anonymous on `qi_cols` AND every class has at
/// least p distinct values of EVERY confidential attribute in the schema
/// (p-sensitive k-anonymity, [24]).
bool IsPSensitiveKAnonymous(const DataTable& table, size_t k, size_t p);

/// Distinct l-diversity of `conf_col` over the schema's quasi-identifiers:
/// alias of SensitivityLevel on the schema QIs.
size_t DistinctLDiversity(const DataTable& table, size_t conf_col);

/// Fraction of records whose QI combination is unique (class size 1) —
/// sample uniqueness, a baseline re-identification-risk measure.
double UniquenessFraction(const DataTable& table,
                          const std::vector<size_t>& qi_cols);

}  // namespace tripriv

