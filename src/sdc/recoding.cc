#include "sdc/recoding.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>

#include "sdc/equivalence.h"

namespace tripriv {
namespace {

/// Materializes the table with the QI columns generalized to `levels`
/// (levels keyed by position within `qi_cols`). Generalized columns become
/// categorical.
Result<DataTable> ApplyLevels(
    const DataTable& table, const std::vector<size_t>& qi_cols,
    const std::vector<int>& levels,
    const std::vector<std::shared_ptr<const GeneralizationHierarchy>>& hiers) {
  std::vector<Attribute> attrs = table.schema().attributes();
  for (size_t j = 0; j < qi_cols.size(); ++j) {
    if (levels[j] > 0) attrs[qi_cols[j]].type = AttributeType::kCategorical;
  }
  DataTable out{Schema(std::move(attrs))};
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> row = table.row(r);
    for (size_t j = 0; j < qi_cols.size(); ++j) {
      if (levels[j] == 0) continue;
      TRIPRIV_ASSIGN_OR_RETURN(
          Value g, hiers[j]->Generalize(table.at(r, qi_cols[j]), levels[j]));
      // Level >= 1 of any hierarchy yields string labels (or null).
      row[qi_cols[j]] = std::move(g);
    }
    TRIPRIV_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

/// Row indices living in equivalence classes smaller than k.
std::vector<size_t> OutlierRows(const DataTable& table,
                                const std::vector<size_t>& qi_cols, size_t k) {
  std::vector<size_t> out;
  for (const auto& cls : GroupByColumns(table, qi_cols).classes) {
    if (cls.size() < k) out.insert(out.end(), cls.begin(), cls.end());
  }
  return out;
}

/// Resolves a hierarchy per QI column (default: plain suppression).
std::vector<std::shared_ptr<const GeneralizationHierarchy>> ResolveHierarchies(
    const DataTable& table, const std::vector<size_t>& qi_cols,
    const RecodingConfig& config) {
  static const auto kDefault = std::make_shared<const SuppressionHierarchy>();
  std::vector<std::shared_ptr<const GeneralizationHierarchy>> hiers;
  hiers.reserve(qi_cols.size());
  for (size_t c : qi_cols) {
    const std::string& name = table.schema().attribute(c).name;
    auto it = config.hierarchies.find(name);
    hiers.push_back(it != config.hierarchies.end() ? it->second : kDefault);
  }
  return hiers;
}

/// Drops `outliers` from `table` and packages a RecodingResult.
RecodingResult FinishRecoding(const DataTable& table,
                              const std::vector<size_t>& qi_cols,
                              const std::vector<int>& levels,
                              const Schema& schema,
                              const std::vector<size_t>& outliers) {
  std::set<size_t> drop(outliers.begin(), outliers.end());
  std::vector<size_t> keep;
  keep.reserve(table.num_rows() - drop.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!drop.contains(r)) keep.push_back(r);
  }
  RecodingResult result{table.SelectRows(keep), {}, drop.size()};
  for (size_t j = 0; j < qi_cols.size(); ++j) {
    result.levels[schema.attribute(qi_cols[j]).name] = levels[j];
  }
  return result;
}

/// Enumerates level vectors with the given total height (bounded parts),
/// invoking `visit` until it returns true; returns whether any visit
/// succeeded.
bool EnumerateVectors(const std::vector<int>& max_levels, int height,
                      size_t pos, std::vector<int>* current,
                      const std::function<bool(const std::vector<int>&)>& visit) {
  if (pos == max_levels.size()) {
    return height == 0 && visit(*current);
  }
  // Remaining capacity prune.
  int capacity = 0;
  for (size_t j = pos; j < max_levels.size(); ++j) capacity += max_levels[j];
  if (height > capacity) return false;
  for (int level = 0; level <= std::min(max_levels[pos], height); ++level) {
    (*current)[pos] = level;
    if (EnumerateVectors(max_levels, height - level, pos + 1, current, visit)) {
      return true;
    }
  }
  (*current)[pos] = 0;
  return false;
}

}  // namespace

Result<RecodingResult> SamaratiAnonymize(const DataTable& table,
                                         const RecodingConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  const std::vector<size_t> qi_cols = table.schema().QuasiIdentifierIndices();
  if (qi_cols.empty()) return RecodingResult{table, {}, 0};
  const auto hiers = ResolveHierarchies(table, qi_cols, config);
  std::vector<int> max_levels(qi_cols.size());
  int total_max = 0;
  for (size_t j = 0; j < qi_cols.size(); ++j) {
    max_levels[j] = hiers[j]->max_level();
    total_max += max_levels[j];
  }
  const auto budget = static_cast<size_t>(config.max_suppression_fraction *
                                          static_cast<double>(table.num_rows()));

  Status lattice_error = Status::OK();
  std::optional<RecodingResult> found;
  for (int height = 0; height <= total_max && !found.has_value(); ++height) {
    std::vector<int> levels(qi_cols.size(), 0);
    EnumerateVectors(
        max_levels, height, 0, &levels, [&](const std::vector<int>& v) {
          auto current = ApplyLevels(table, qi_cols, v, hiers);
          if (!current.ok()) {
            lattice_error = current.status();
            return true;  // abort enumeration
          }
          const auto outliers = OutlierRows(*current, qi_cols, config.k);
          if (outliers.size() <= budget) {
            found = FinishRecoding(*current, qi_cols, v, current->schema(),
                                   outliers);
            return true;
          }
          return false;
        });
    TRIPRIV_RETURN_IF_ERROR(lattice_error);
  }
  if (!found.has_value()) {
    return Status::FailedPrecondition(
        "no generalization satisfies k = " + std::to_string(config.k) +
        " within the suppression budget (k larger than the table?)");
  }
  return std::move(*found);
}

Result<RecodingResult> DataflyAnonymize(const DataTable& table,
                                        const RecodingConfig& config) {
  if (config.k < 1) return Status::InvalidArgument("k must be >= 1");
  const std::vector<size_t> qi_cols = table.schema().QuasiIdentifierIndices();
  if (qi_cols.empty()) {
    // No quasi-identifiers: trivially k-anonymous for any k <= n.
    return RecodingResult{table, {}, 0};
  }

  // Resolve hierarchies (default: plain suppression).
  static const auto kDefault = std::make_shared<const SuppressionHierarchy>();
  std::vector<std::shared_ptr<const GeneralizationHierarchy>> hiers;
  for (size_t c : qi_cols) {
    const std::string& name = table.schema().attribute(c).name;
    auto it = config.hierarchies.find(name);
    hiers.push_back(it != config.hierarchies.end() ? it->second : kDefault);
  }

  std::vector<int> levels(qi_cols.size(), 0);
  const size_t n = table.num_rows();
  const auto suppression_budget =
      static_cast<size_t>(config.max_suppression_fraction * static_cast<double>(n));

  for (;;) {
    TRIPRIV_ASSIGN_OR_RETURN(DataTable current,
                             ApplyLevels(table, qi_cols, levels, hiers));
    std::vector<size_t> outliers = OutlierRows(current, qi_cols, config.k);
    const bool all_maxed = [&] {
      for (size_t j = 0; j < levels.size(); ++j) {
        if (levels[j] < hiers[j]->max_level()) return false;
      }
      return true;
    }();
    if (outliers.empty() || outliers.size() <= suppression_budget || all_maxed) {
      // Done: suppress residual outliers (always, if generalization is
      // exhausted — the released table must honour k-anonymity).
      std::set<size_t> drop(outliers.begin(), outliers.end());
      std::vector<size_t> keep;
      keep.reserve(n - drop.size());
      for (size_t r = 0; r < n; ++r) {
        if (!drop.contains(r)) keep.push_back(r);
      }
      RecodingResult result{current.SelectRows(keep), {}, drop.size()};
      for (size_t j = 0; j < qi_cols.size(); ++j) {
        result.levels[table.schema().attribute(qi_cols[j]).name] = levels[j];
      }
      return result;
    }
    // Generalize the QI with the most distinct values among those that can
    // still be generalized (the Datafly heuristic).
    size_t best = qi_cols.size();
    size_t best_distinct = 0;
    for (size_t j = 0; j < qi_cols.size(); ++j) {
      if (levels[j] >= hiers[j]->max_level()) continue;
      std::set<Value> distinct;
      for (size_t r = 0; r < current.num_rows(); ++r) {
        distinct.insert(current.at(r, qi_cols[j]));
      }
      if (best == qi_cols.size() || distinct.size() > best_distinct) {
        best = j;
        best_distinct = distinct.size();
      }
    }
    TRIPRIV_CHECK_LT(best, qi_cols.size());  // all_maxed handled above
    ++levels[best];
  }
}

}  // namespace tripriv
