#include "sdc/risk.h"

#include <cmath>
#include <limits>

#include "sdc/equivalence.h"
#include "stats/descriptive.h"

namespace tripriv {
namespace {

/// Standardizes `a` and `b` jointly with the column means/sds of `a` (the
/// attacker's external data defines the scale).
void StandardizeJointly(std::vector<std::vector<double>>* a,
                        std::vector<std::vector<double>>* b) {
  if (a->empty()) return;
  const size_t d = (*a)[0].size();
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col(a->size());
    for (size_t i = 0; i < a->size(); ++i) col[i] = (*a)[i][j];
    const double mean = Mean(col);
    const double sd = col.size() >= 2 ? SampleStddev(col) : 0.0;
    const double scale = sd > 0.0 ? 1.0 / sd : 1.0;
    for (auto& row : *a) row[j] = (row[j] - mean) * scale;
    for (auto& row : *b) row[j] = (row[j] - mean) * scale;
  }
}

}  // namespace

Result<LinkageResult> DistanceLinkageAttack(const DataTable& original,
                                            const DataTable& masked,
                                            const std::vector<size_t>& qi_cols) {
  if (original.num_rows() != masked.num_rows()) {
    return Status::InvalidArgument(
        "record linkage requires aligned original and masked tables");
  }
  if (qi_cols.empty()) {
    return Status::InvalidArgument("no quasi-identifier columns given");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto ext, original.NumericMatrix(qi_cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto rel, masked.NumericMatrix(qi_cols));
  StandardizeJointly(&ext, &rel);

  LinkageResult result;
  result.total = original.num_rows();
  double expected_correct = 0.0;
  for (size_t i = 0; i < ext.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> ties;
    for (size_t j = 0; j < rel.size(); ++j) {
      const double d = SquaredDistance(ext[i], rel[j]);
      if (d < best - 1e-12) {
        best = d;
        ties.assign(1, j);
      } else if (std::fabs(d - best) <= 1e-12) {
        ties.push_back(j);
      }
    }
    for (size_t j : ties) {
      if (j == i) {
        expected_correct += 1.0 / static_cast<double>(ties.size());
        break;
      }
    }
  }
  result.expected_correct = expected_correct;
  result.correct = static_cast<size_t>(std::llround(expected_correct));
  result.correct_fraction =
      result.total == 0 ? 0.0
                        : expected_correct / static_cast<double>(result.total);
  return result;
}

Result<LinkageResult> DistanceLinkageAttack(const DataTable& original,
                                            const DataTable& masked) {
  return DistanceLinkageAttack(original, masked,
                               original.schema().QuasiIdentifierIndices());
}

double ExpectedReidentificationRate(const DataTable& table,
                                    const std::vector<size_t>& qi_cols) {
  if (table.num_rows() == 0) return 0.0;
  const auto classes = GroupByColumns(table, qi_cols);
  return static_cast<double>(classes.classes.size()) /
         static_cast<double>(table.num_rows());
}

double ExpectedReidentificationRate(const DataTable& table) {
  return ExpectedReidentificationRate(table,
                                      table.schema().QuasiIdentifierIndices());
}

Result<double> IntervalDisclosureRate(const DataTable& original,
                                      const DataTable& masked, size_t col,
                                      double window_percent) {
  if (original.num_rows() != masked.num_rows()) {
    return Status::InvalidArgument("tables must be row-aligned");
  }
  if (window_percent < 0.0 || window_percent > 100.0) {
    return Status::InvalidArgument("window must be in [0, 100] percent");
  }
  if (original.num_rows() == 0) return 0.0;
  TRIPRIV_ASSIGN_OR_RETURN(auto orig, original.NumericColumn(col));
  TRIPRIV_ASSIGN_OR_RETURN(auto mask, masked.NumericColumn(col));
  const double range = Max(orig) - Min(orig);
  const double window = window_percent / 100.0 * (range > 0.0 ? range : 1.0);
  size_t disclosed = 0;
  for (size_t i = 0; i < orig.size(); ++i) {
    if (std::fabs(orig[i] - mask[i]) <= window) ++disclosed;
  }
  return static_cast<double>(disclosed) / static_cast<double>(orig.size());
}

}  // namespace tripriv
