// Partitioned MDAV: census-scale microaggregation.
//
// Plain MDAV is O(n^2 / k) distance work — perfect at survey scale,
// infeasible at the 10^6-row census runs the empirical Table 2 scoreboard
// measures. The standard scaling trick (the blocking used by large-scale
// SDC packages) is applied here: recursively median-split the table on the
// widest-range attribute (the Mondrian split rule) until every partition
// holds at most `max_partition_rows` records, then run exact MDAV inside
// each partition independently. Every group still has size in [k, 2k-1],
// so the release is k-anonymous on the microaggregated columns exactly as
// with plain MDAV; only the grouping objective is approximated (records
// never cross a partition boundary to join a closer group).
//
// Determinism: the split ranks ties by row index, partitions are processed
// through ParallelFor with per-partition result slots merged in partition
// order, and the per-partition MDAV is the serial exact algorithm — the
// output table is byte-identical at 0/1/2/8 threads.

#pragma once

#include <vector>

#include "sdc/microaggregation.h"
#include "table/data_table.h"

namespace tripriv {

class ThreadPool;

/// MDAV with median-split partitioning (see file comment). Requires k >= 1,
/// all `cols` numeric, at least one row, and max_partition_rows >= 2k (a
/// partition must be able to hold two groups, or splitting it could strand
/// fewer than k records). Groups are numbered partition-major, so
/// group_of_row is stable across thread counts. within_group_sse is the sum
/// of the per-partition standardized SSEs.
Result<MicroaggregationResult> PartitionedMdav(
    const DataTable& table, size_t k, const std::vector<size_t>& cols,
    ThreadPool* workers = nullptr, size_t max_partition_rows = 2048);

/// PartitionedMdav over the schema's quasi-identifiers.
Result<MicroaggregationResult> PartitionedMdav(const DataTable& table,
                                               size_t k, ThreadPool* workers,
                                               size_t max_partition_rows);

}  // namespace tripriv
