#include "sdc/diversity.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "sdc/equivalence.h"

namespace tripriv {
namespace {

/// Counts of each confidential value within the rows of `rows`.
std::map<Value, double> ValueCounts(const DataTable& table, size_t conf_col,
                                    const std::vector<size_t>& rows) {
  std::map<Value, double> counts;
  for (size_t r : rows) counts[table.at(r, conf_col)] += 1.0;
  return counts;
}

}  // namespace

double EntropyLDiversity(const DataTable& table,
                         const std::vector<size_t>& qi_cols, size_t conf_col) {
  const auto classes = GroupByColumns(table, qi_cols);
  if (classes.classes.empty()) return 0.0;
  double min_exp_entropy = 0.0;
  bool first = true;
  for (const auto& cls : classes.classes) {
    const auto counts = ValueCounts(table, conf_col, cls);
    const double n = static_cast<double>(cls.size());
    double h = 0.0;
    for (const auto& [value, count] : counts) {
      const double p = count / n;
      h -= p * std::log(p);
    }
    const double exp_h = std::exp(h);
    if (first || exp_h < min_exp_entropy) {
      min_exp_entropy = exp_h;
      first = false;
    }
  }
  return min_exp_entropy;
}

Result<bool> IsRecursiveCLDiverse(const DataTable& table,
                                  const std::vector<size_t>& qi_cols,
                                  size_t conf_col, double c, size_t l) {
  if (c <= 0.0) return Status::InvalidArgument("c must be > 0");
  if (l < 1) return Status::InvalidArgument("l must be >= 1");
  const auto classes = GroupByColumns(table, qi_cols);
  for (const auto& cls : classes.classes) {
    const auto counts = ValueCounts(table, conf_col, cls);
    std::vector<double> sorted;
    sorted.reserve(counts.size());
    for (const auto& [value, count] : counts) sorted.push_back(count);
    std::sort(sorted.rbegin(), sorted.rend());
    // Fewer than l distinct values: the tail sum is empty -> fails unless
    // l == 1 (where the condition is r_1 < c * total).
    double tail = 0.0;
    for (size_t i = l - 1; i < sorted.size(); ++i) tail += sorted[i];
    if (!(sorted[0] < c * tail)) return false;
  }
  return true;
}

Result<double> TClosenessMaxDistance(const DataTable& table,
                                     const std::vector<size_t>& qi_cols,
                                     size_t conf_col) {
  if (table.num_rows() == 0) return 0.0;
  const auto classes = GroupByColumns(table, qi_cols);
  // Global distribution over the ordered list of observed values.
  std::vector<size_t> all_rows(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) all_rows[r] = r;
  const auto global_counts = ValueCounts(table, conf_col, all_rows);
  std::vector<Value> domain;
  domain.reserve(global_counts.size());
  for (const auto& [value, count] : global_counts) domain.push_back(value);
  const bool numeric =
      table.schema().attribute(conf_col).type != AttributeType::kCategorical;
  const double n = static_cast<double>(table.num_rows());
  const double m = static_cast<double>(domain.size());

  double max_emd = 0.0;
  for (const auto& cls : classes.classes) {
    const auto counts = ValueCounts(table, conf_col, cls);
    const double cn = static_cast<double>(cls.size());
    double emd = 0.0;
    if (numeric) {
      // Ordered-domain EMD: sum of |cumulative differences| / (m - 1).
      double cum = 0.0;
      for (size_t i = 0; i + 1 < domain.size(); ++i) {
        const double p =
            (counts.contains(domain[i]) ? counts.at(domain[i]) : 0.0) / cn;
        const double q = global_counts.at(domain[i]) / n;
        cum += p - q;
        emd += std::fabs(cum);
      }
      if (m > 1) emd /= (m - 1);
    } else {
      // Equal-distance EMD = total variation.
      double tv = 0.0;
      for (const auto& value : domain) {
        const double p = (counts.contains(value) ? counts.at(value) : 0.0) / cn;
        const double q = global_counts.at(value) / n;
        tv += std::fabs(p - q);
      }
      emd = 0.5 * tv;
    }
    max_emd = std::max(max_emd, emd);
  }
  return max_emd;
}

Result<bool> IsTClose(const DataTable& table,
                      const std::vector<size_t>& qi_cols, size_t conf_col,
                      double t) {
  if (t < 0.0) return Status::InvalidArgument("t must be >= 0");
  TRIPRIV_ASSIGN_OR_RETURN(double d,
                           TClosenessMaxDistance(table, qi_cols, conf_col));
  return d <= t;
}

double HomogeneityAttackRate(const DataTable& table,
                             const std::vector<size_t>& qi_cols,
                             size_t conf_col) {
  if (table.num_rows() == 0) return 0.0;
  const auto classes = GroupByColumns(table, qi_cols);
  size_t exposed = 0;
  for (const auto& cls : classes.classes) {
    if (ValueCounts(table, conf_col, cls).size() == 1) exposed += cls.size();
  }
  return static_cast<double>(exposed) / static_cast<double>(table.num_rows());
}

}  // namespace tripriv
