#include "sdc/condensation.h"

#include "sdc/microaggregation.h"
#include "stats/descriptive.h"
#include "stats/linalg.h"
#include "util/random.h"

namespace tripriv {

Result<CondensationResult> Condense(const DataTable& table, size_t k,
                                    const std::vector<size_t>& cols,
                                    uint64_t seed) {
  // Group via MDAV so groups are locality-preserving (as in [1], where
  // groups are built around nearest neighbours).
  TRIPRIV_ASSIGN_OR_RETURN(auto mdav, MdavMicroaggregate(table, k, cols));
  TRIPRIV_ASSIGN_OR_RETURN(auto data, table.NumericMatrix(cols));

  Rng rng(seed);
  CondensationResult result;
  result.table = table;
  result.group_of_row = mdav.group_of_row;
  result.num_groups = mdav.num_groups;

  std::vector<std::vector<size_t>> groups(mdav.num_groups);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    groups[mdav.group_of_row[r]].push_back(r);
  }

  std::vector<std::vector<double>> synthetic = data;
  for (const auto& group : groups) {
    std::vector<std::vector<double>> sub;
    sub.reserve(group.size());
    for (size_t r : group) sub.push_back(data[r]);
    const auto mean = ColumnMeans(sub);
    if (sub.size() < 2) {
      // A singleton group (k == 1) regenerates as its own mean.
      synthetic[group[0]] = mean;
      continue;
    }
    auto cov = CovarianceMatrix(sub);
    auto chol = CholeskyDecompose(std::move(cov));
    if (!chol.ok()) return chol.status();
    for (size_t r : group) {
      synthetic[r] = MultivariateNormalSample(mean, *chol, &rng);
    }
  }
  for (size_t j = 0; j < cols.size(); ++j) {
    std::vector<double> col(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) col[r] = synthetic[r][j];
    TRIPRIV_RETURN_IF_ERROR(result.table.SetNumericColumn(cols[j], col));
  }
  return result;
}

Result<CondensationResult> Condense(const DataTable& table, size_t k,
                                    uint64_t seed) {
  const auto qi = table.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::FailedPrecondition("schema declares no quasi-identifiers");
  }
  return Condense(table, k, qi, seed);
}

}  // namespace tripriv
