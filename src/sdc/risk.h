// Disclosure-risk measurement: the attacks that operationalize
// "respondent privacy".
//
// Respondent privacy in the paper means resistance to re-identification.
// This module implements the standard empirical attacks used in the SDC
// literature ([17, 26]) to score it:
//   * distance-based record linkage — the intruder holds the original
//     quasi-identifier values (external identified data, like gauging the
//     height and weight of someone he knows) and links each of them to the
//     nearest released record;
//   * expected re-identification rate of a released table under the
//     prosecutor model (uniform guessing within an equivalence class);
//   * interval disclosure — even without exact linkage, a masked value that
//     stays within a narrow interval of the original leaks it.

#pragma once

#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Outcome of a record-linkage attack.
struct LinkageResult {
  /// Exact expected number of correct links under fractional tie credit
  /// (each tie set containing the true row credits 1/|ties|). This is the
  /// figure the attack subsystem (src/attack/linkage.h) reconciles against:
  /// `correct` is only its rounded rendering and must never be used to
  /// derive a rate (correct/total drifts from correct_fraction whenever the
  /// expectation is fractional — the metric drift the PR 10 reconciliation
  /// test pins down).
  double expected_correct = 0.0;
  size_t correct = 0;  ///< llround(expected_correct), for display
  size_t total = 0;
  double correct_fraction = 0.0;  ///< expected_correct / total
};

/// Distance-based record linkage. `original` and `masked` must have the
/// same row count with row i of both referring to the same respondent. For
/// each original record, the attack links the nearest masked record on the
/// standardized numeric columns `qi_cols`; a link is correct when it points
/// to the true row. Ties resolve to the lowest row (conservative for the
/// attacker when groups share a centroid: we instead credit the attacker
/// with probability 1/|tie set| when the true row is among the ties).
Result<LinkageResult> DistanceLinkageAttack(const DataTable& original,
                                            const DataTable& masked,
                                            const std::vector<size_t>& qi_cols);

/// DistanceLinkageAttack over the schema's quasi-identifiers.
Result<LinkageResult> DistanceLinkageAttack(const DataTable& original,
                                            const DataTable& masked);

/// Expected fraction of respondents an intruder re-identifies from the
/// released table alone under the prosecutor model: each equivalence class
/// of size s contributes s * (1/s) = 1 correct guess in expectation, so the
/// rate is (#classes / #rows). Equals 1.0 when all rows are unique and
/// <= 1/k for a k-anonymous table.
double ExpectedReidentificationRate(const DataTable& table,
                                    const std::vector<size_t>& qi_cols);

/// ExpectedReidentificationRate over the schema's quasi-identifiers.
double ExpectedReidentificationRate(const DataTable& table);

/// Fraction of cells in `col` whose masked value lies within
/// +-(window_percent/100)*range(original column) of the original value —
/// interval disclosure (a small value means the mask genuinely hides
/// magnitudes; 1.0 means values are essentially published).
Result<double> IntervalDisclosureRate(const DataTable& original,
                                      const DataTable& masked, size_t col,
                                      double window_percent);

}  // namespace tripriv

