// Top- and bottom-coding: the simplest SDC operators of [17, 26].
//
// Extreme values are the most identifying ones (the paper's Section 3
// respondent is "small and heavy"). Top/bottom-coding truncates the tails
// of a numeric attribute at chosen quantiles, collapsing outliers into the
// threshold value.

#pragma once

#include "table/data_table.h"

namespace tripriv {

/// Result of tail coding.
struct TailCodingResult {
  DataTable table;
  /// Values below this were raised to it (bottom-coding threshold).
  double lower_threshold = 0.0;
  /// Values above this were lowered to it (top-coding threshold).
  double upper_threshold = 0.0;
  size_t bottom_coded = 0;
  size_t top_coded = 0;
};

/// Bottom-codes `col` at the `lower_q` quantile and top-codes at the
/// `upper_q` quantile (0 <= lower_q < upper_q <= 1; use 0/1 to disable a
/// side). Requires a non-empty numeric column.
Result<TailCodingResult> TopBottomCode(const DataTable& table, size_t col,
                                       double lower_q, double upper_q);

}  // namespace tripriv

