#include "sdc/equivalence.h"

#include <map>

namespace tripriv {

size_t EquivalenceClasses::MinClassSize() const {
  size_t min = 0;
  for (const auto& cls : classes) {
    if (min == 0 || cls.size() < min) min = cls.size();
  }
  return min;
}

EquivalenceClasses GroupByColumns(const DataTable& table,
                                  const std::vector<size_t>& qi_cols) {
  // std::map keyed on the value tuple; Value has a strict weak order.
  std::map<std::vector<Value>, size_t> class_of_key;
  EquivalenceClasses out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(qi_cols.size());
    for (size_t c : qi_cols) key.push_back(table.at(r, c));
    auto [it, inserted] = class_of_key.try_emplace(std::move(key),
                                                   out.classes.size());
    if (inserted) out.classes.emplace_back();
    out.classes[it->second].push_back(r);
  }
  return out;
}

EquivalenceClasses GroupByQuasiIdentifiers(const DataTable& table) {
  return GroupByColumns(table, table.schema().QuasiIdentifierIndices());
}

}  // namespace tripriv
