#include "sdc/noise.h"

#include <cmath>

#include "stats/descriptive.h"
#include "stats/linalg.h"
#include "util/random.h"

namespace tripriv {

Result<DataTable> AddUncorrelatedNoise(const DataTable& table, double alpha,
                                       const std::vector<size_t>& cols,
                                       uint64_t seed) {
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (table.num_rows() < 2) {
    return Status::InvalidArgument("need >= 2 rows to estimate noise scale");
  }
  Rng rng(seed);
  DataTable out = table;
  for (size_t c : cols) {
    TRIPRIV_ASSIGN_OR_RETURN(auto values, table.NumericColumn(c));
    const double sigma = alpha * SampleStddev(values);
    for (double& v : values) v += rng.Normal(0.0, sigma);
    TRIPRIV_RETURN_IF_ERROR(out.SetNumericColumn(c, values));
  }
  return out;
}

Result<DataTable> AddCorrelatedNoise(const DataTable& table, double alpha,
                                     const std::vector<size_t>& cols,
                                     uint64_t seed) {
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (table.num_rows() < 2) {
    return Status::InvalidArgument("need >= 2 rows to estimate covariance");
  }
  if (alpha == 0.0) return table;
  Rng rng(seed);
  TRIPRIV_ASSIGN_OR_RETURN(auto data, table.NumericMatrix(cols));
  auto cov = CovarianceMatrix(data);
  for (auto& row : cov) {
    for (double& v : row) v *= alpha;
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto chol, CholeskyDecompose(std::move(cov)));
  const std::vector<double> zero(cols.size(), 0.0);
  for (auto& row : data) {
    const auto noise = MultivariateNormalSample(zero, chol, &rng);
    for (size_t j = 0; j < row.size(); ++j) row[j] += noise[j];
  }
  DataTable out = table;
  for (size_t j = 0; j < cols.size(); ++j) {
    std::vector<double> col(data.size());
    for (size_t r = 0; r < data.size(); ++r) col[r] = data[r][j];
    TRIPRIV_RETURN_IF_ERROR(out.SetNumericColumn(cols[j], col));
  }
  return out;
}

Result<DataTable> AddNoiseWithVarianceRestoration(
    const DataTable& table, double alpha, const std::vector<size_t>& cols,
    uint64_t seed) {
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (table.num_rows() < 2) {
    return Status::InvalidArgument("need >= 2 rows to estimate noise scale");
  }
  Rng rng(seed);
  DataTable out = table;
  const double shrink = 1.0 / std::sqrt(1.0 + alpha * alpha);
  for (size_t c : cols) {
    TRIPRIV_ASSIGN_OR_RETURN(auto values, table.NumericColumn(c));
    const double mean = Mean(values);
    const double sigma = alpha * SampleStddev(values);
    for (double& v : values) {
      v = mean + (v - mean + rng.Normal(0.0, sigma)) * shrink;
    }
    TRIPRIV_RETURN_IF_ERROR(out.SetNumericColumn(c, values));
  }
  return out;
}

Result<DataTable> AddFixedNoise(const DataTable& table, double sigma,
                                size_t col, uint64_t seed) {
  if (sigma < 0.0) return Status::InvalidArgument("sigma must be >= 0");
  Rng rng(seed);
  TRIPRIV_ASSIGN_OR_RETURN(auto values, table.NumericColumn(col));
  for (double& v : values) v += rng.Normal(0.0, sigma);
  DataTable out = table;
  TRIPRIV_RETURN_IF_ERROR(out.SetNumericColumn(col, values));
  return out;
}

}  // namespace tripriv
