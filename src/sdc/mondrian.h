// Mondrian: greedy multidimensional k-anonymity by recursive partitioning.
//
// The multidimensional recoding algorithm (LeFevre et al.; the class of
// k-anonymization algorithms referenced by the paper via [2]): recursively
// split the record set on the median of the quasi-identifier with the
// widest normalized range, as long as both halves keep at least k records;
// then recode each leaf partition by its QI centroid.

#pragma once

#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Result of Mondrian anonymization.
struct MondrianResult {
  /// Table with each partition's quasi-identifier values replaced by the
  /// partition centroid (so the output is k-anonymous on the QIs).
  DataTable table;
  std::vector<size_t> group_of_row;
  size_t num_groups = 0;
};

/// Runs strict Mondrian over the schema's quasi-identifiers, which must all
/// be numeric. Requires k >= 1 and a non-empty table.
Result<MondrianResult> MondrianAnonymize(const DataTable& table, size_t k);

}  // namespace tripriv

