// Condensation (Aggarwal & Yu [1]): privacy-preserving data mining through
// group-level synthetic regeneration.
//
// Records are partitioned into groups of at least k (here with MDAV, which
// [12] shows yields k-anonymity when run on the quasi-identifiers); within
// each group, first and second moments (mean vector and covariance matrix)
// are estimated and synthetic records are drawn from a Gaussian with those
// moments. The released data preserve the covariance structure — the
// property [1] relies on for downstream analyses — while no original record
// is released.

#pragma once

#include <cstdint>
#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Result of condensation.
struct CondensationResult {
  /// Table whose `cols` are replaced by per-group synthetic values; other
  /// columns are left untouched.
  DataTable table;
  std::vector<size_t> group_of_row;
  size_t num_groups = 0;
};

/// Condenses the numeric columns `cols` with minimum group size k.
/// Deterministic in `seed`.
Result<CondensationResult> Condense(const DataTable& table, size_t k,
                                    const std::vector<size_t>& cols,
                                    uint64_t seed);

/// Condenses the schema's quasi-identifiers.
Result<CondensationResult> Condense(const DataTable& table, size_t k,
                                    uint64_t seed);

}  // namespace tripriv

