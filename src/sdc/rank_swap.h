// Rank swapping: value-exchange masking for numeric attributes.
//
// For each masked attribute, values are sorted by rank and each value is
// swapped with another whose rank differs by at most p% of n. Marginal
// distributions are exactly preserved (the multiset of values is
// unchanged); record-level linkage is broken in proportion to p.

#pragma once

#include <cstdint>
#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Rank-swaps the numeric columns `cols` with a window of `p` percent of
/// the table size (p in [0, 100]). Deterministic in `seed`.
Result<DataTable> RankSwap(const DataTable& table, double p,
                           const std::vector<size_t>& cols, uint64_t seed);

}  // namespace tripriv

