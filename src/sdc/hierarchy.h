// Generalization hierarchies for recoding and suppression.
//
// A hierarchy maps an attribute value to progressively coarser
// representations: level 0 is the value itself, the top level is full
// suppression ("*"). Two concrete hierarchies cover the microdata types:
//   * NumericIntervalHierarchy — intervals whose width doubles (or grows by
//     a chosen factor) per level, e.g. age 37 -> [35,40) -> [30,40) -> ...
//   * CategoricalTreeHierarchy — a value taxonomy (leaf -> ancestors),
//     e.g. flu -> respiratory -> any-illness.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "table/value.h"
#include "util/status.h"

namespace tripriv {

/// Interface: per-attribute value generalization ladder.
class GeneralizationHierarchy {
 public:
  virtual ~GeneralizationHierarchy() = default;

  /// Number of the coarsest level. Level 0 is the identity; level
  /// max_level() must map every value to the same label (suppression).
  virtual int max_level() const = 0;

  /// Generalizes `v` to `level` (clamped to [0, max_level()]). Null values
  /// stay null. Fails on values outside the hierarchy's domain.
  virtual Result<Value> Generalize(const Value& v, int level) const = 0;
};

/// Equal-width interval generalization for numeric attributes.
///
/// Level l >= 1 maps v to the label "[lo,hi)" of the interval of width
/// base_width * growth^(l-1) containing v (intervals are anchored at
/// `origin`). The final level is "*".
class NumericIntervalHierarchy : public GeneralizationHierarchy {
 public:
  /// Requires base_width > 0, growth >= 2, levels >= 1. `levels` counts the
  /// interval levels; max_level() == levels + 1 (the suppression level).
  NumericIntervalHierarchy(double origin, double base_width, int growth,
                           int levels);

  int max_level() const override { return levels_ + 1; }
  Result<Value> Generalize(const Value& v, int level) const override;

 private:
  double origin_;
  double base_width_;
  int growth_;
  int levels_;
};

/// Taxonomy-tree generalization for categorical attributes.
///
/// Built from root-to-leaf paths; level l maps a leaf to its l-th ancestor
/// (clamped at the root). All paths must have equal depth so every level is
/// well-defined for every value; max_level() is that depth.
class CategoricalTreeHierarchy : public GeneralizationHierarchy {
 public:
  CategoricalTreeHierarchy() = default;

  /// Registers one leaf with its ancestor chain ordered from the leaf's
  /// immediate parent up to the root, e.g.
  ///   AddLeaf("flu", {"respiratory", "any"}).
  /// All chains must share the same length; the root of every chain should
  /// be the same label (conventionally "*"). Fails on inconsistent depth or
  /// duplicate leaf.
  Status AddLeaf(const std::string& leaf, std::vector<std::string> ancestors);

  int max_level() const override { return depth_; }
  Result<Value> Generalize(const Value& v, int level) const override;

 private:
  // leaf -> [parent, ..., root]
  std::map<std::string, std::vector<std::string>> chains_;
  int depth_ = 0;
};

/// Trivial hierarchy whose only non-identity level is suppression; works
/// for any attribute type. max_level() == 1.
class SuppressionHierarchy : public GeneralizationHierarchy {
 public:
  int max_level() const override { return 1; }
  Result<Value> Generalize(const Value& v, int level) const override;
};

}  // namespace tripriv

