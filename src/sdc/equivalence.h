// Equivalence classes over quasi-identifier attributes.
//
// An equivalence class is a maximal set of records sharing the same
// combination of quasi-identifier values — the unit over which k-anonymity,
// p-sensitivity, and l-diversity are defined (Samarati & Sweeney).

#pragma once

#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Partition of row indices into equivalence classes.
struct EquivalenceClasses {
  /// Row indices grouped by identical QI combination; classes ordered by
  /// first appearance, rows in table order within each class.
  std::vector<std::vector<size_t>> classes;

  /// Size of the smallest class; 0 when there are no rows.
  size_t MinClassSize() const;
};

/// Groups rows of `table` by identical values of the columns `qi_cols`.
/// Null (suppressed) cells compare equal to each other.
EquivalenceClasses GroupByColumns(const DataTable& table,
                                  const std::vector<size_t>& qi_cols);

/// Groups by the schema's quasi-identifier attributes.
EquivalenceClasses GroupByQuasiIdentifiers(const DataTable& table);

}  // namespace tripriv

