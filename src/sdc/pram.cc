#include "sdc/pram.h"

#include <algorithm>
#include <cmath>

#include "stats/linalg.h"
#include "util/random.h"

namespace tripriv {

Status PramSpec::Validate() const {
  const size_t c = domain.size();
  if (c == 0) return Status::InvalidArgument("PRAM domain is empty");
  if (transition.size() != c) {
    return Status::InvalidArgument("transition matrix must be |domain| x |domain|");
  }
  for (size_t i = 0; i < c; ++i) {
    if (transition[i].size() != c) {
      return Status::InvalidArgument("transition matrix must be square");
    }
    double row_sum = 0.0;
    for (double p : transition[i]) {
      if (p < 0.0) return Status::InvalidArgument("negative transition probability");
      row_sum += p;
    }
    if (std::fabs(row_sum - 1.0) > 1e-9) {
      return Status::InvalidArgument("transition row " + std::to_string(i) +
                                     " sums to " + std::to_string(row_sum));
    }
  }
  // Domain labels must be unique.
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = i + 1; j < c; ++j) {
      if (domain[i] == domain[j]) {
        return Status::InvalidArgument("duplicate domain label '" + domain[i] + "'");
      }
    }
  }
  return Status::OK();
}

PramSpec RetentionPramSpec(std::vector<std::string> domain, double p) {
  const size_t c = domain.size();
  PramSpec spec;
  spec.domain = std::move(domain);
  const double off = c > 0 ? (1.0 - p) / static_cast<double>(c) : 0.0;
  spec.transition.assign(c, std::vector<double>(c, off));
  for (size_t i = 0; i < c; ++i) spec.transition[i][i] += p;
  return spec;
}

namespace {

Result<size_t> DomainIndex(const PramSpec& spec, const std::string& v) {
  for (size_t i = 0; i < spec.domain.size(); ++i) {
    if (spec.domain[i] == v) return i;
  }
  // `v` is a cell value: report the miss, never the record.
  return Status::NotFound("categorical value outside the PRAM domain");
}

}  // namespace

Result<DataTable> PramMask(const DataTable& table, size_t col,
                           const PramSpec& spec, uint64_t seed) {
  TRIPRIV_RETURN_IF_ERROR(spec.Validate());
  if (col >= table.num_columns() ||
      table.schema().attribute(col).type != AttributeType::kCategorical) {
    return Status::InvalidArgument("PRAM needs a categorical column");
  }
  Rng rng(seed);
  DataTable out = table;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.at(r, col);
    if (v.is_null()) continue;
    TRIPRIV_ASSIGN_OR_RETURN(size_t from, DomainIndex(spec, v.AsString()));
    double u = rng.UniformDouble();
    size_t to = spec.domain.size() - 1;
    for (size_t j = 0; j < spec.domain.size(); ++j) {
      if (u < spec.transition[from][j]) {
        to = j;
        break;
      }
      u -= spec.transition[from][j];
    }
    TRIPRIV_RETURN_IF_ERROR(out.Set(r, col, Value(spec.domain[to])));
  }
  return out;
}

Result<std::map<std::string, double>> PramEstimateTrueDistribution(
    const DataTable& masked, size_t col, const PramSpec& spec) {
  TRIPRIV_RETURN_IF_ERROR(spec.Validate());
  const size_t c = spec.domain.size();
  // Observed frequencies, in domain order.
  std::vector<double> lambda(c, 0.0);
  double n = 0.0;
  for (size_t r = 0; r < masked.num_rows(); ++r) {
    const Value& v = masked.at(r, col);
    if (v.is_null()) continue;
    TRIPRIV_ASSIGN_OR_RETURN(size_t idx, DomainIndex(spec, v.AsString()));
    lambda[idx] += 1.0;
    n += 1.0;
  }
  if (n == 0.0) return Status::InvalidArgument("column has no values");
  for (double& v : lambda) v /= n;
  // Solve P^T pi = lambda.
  std::vector<std::vector<double>> pt(c, std::vector<double>(c));
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = 0; j < c; ++j) pt[i][j] = spec.transition[j][i];
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto pi, SolveLinearSystem(std::move(pt), lambda));
  // Clamp to a probability vector.
  double total = 0.0;
  for (double& v : pi) {
    v = std::clamp(v, 0.0, 1.0);
    total += v;
  }
  std::map<std::string, double> out;
  for (size_t i = 0; i < c; ++i) {
    out[spec.domain[i]] = total > 0.0 ? pi[i] / total : 0.0;
  }
  return out;
}

}  // namespace tripriv
