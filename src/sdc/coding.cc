#include "sdc/coding.h"

#include "stats/descriptive.h"

namespace tripriv {

Result<TailCodingResult> TopBottomCode(const DataTable& table, size_t col,
                                       double lower_q, double upper_q) {
  if (!(lower_q >= 0.0 && lower_q < upper_q && upper_q <= 1.0)) {
    return Status::InvalidArgument("need 0 <= lower_q < upper_q <= 1");
  }
  if (table.num_rows() == 0) return Status::InvalidArgument("empty table");
  TRIPRIV_ASSIGN_OR_RETURN(auto values, table.NumericColumn(col));
  TailCodingResult result;
  result.lower_threshold = Quantile(values, lower_q);
  result.upper_threshold = Quantile(values, upper_q);
  for (double& v : values) {
    if (v < result.lower_threshold) {
      v = result.lower_threshold;
      ++result.bottom_coded;
    } else if (v > result.upper_threshold) {
      v = result.upper_threshold;
      ++result.top_coded;
    }
  }
  result.table = table;
  TRIPRIV_RETURN_IF_ERROR(result.table.SetNumericColumn(col, values));
  return result;
}

}  // namespace tripriv
