// PRAM — the Post-RAndomization Method for categorical attributes.
//
// The general owner-applied randomization of the SDC handbook [17]: each
// category is replaced according to a row-stochastic transition matrix P
// (PRAM subsumes randomized response, which is P = p*I + (1-p)/c * J). The
// published frequencies relate to the true ones by lambda = P^T pi, so the
// owner (or any user given P) can recover unbiased estimates of the true
// distribution by solving the linear system.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// A PRAM specification: the category domain (defines matrix indexing) and
/// the row-stochastic transition matrix (transition[i][j] = P(i -> j)).
struct PramSpec {
  std::vector<std::string> domain;
  std::vector<std::vector<double>> transition;

  /// Validates shape, non-negativity, and row sums (within 1e-9).
  Status Validate() const;
};

/// The randomized-response matrix as a PramSpec: keep with probability p,
/// otherwise redraw uniformly from the whole domain.
PramSpec RetentionPramSpec(std::vector<std::string> domain, double p);

/// Applies PRAM to categorical column `col`. Every non-null cell must be in
/// the spec's domain. Deterministic in `seed`.
Result<DataTable> PramMask(const DataTable& table, size_t col,
                           const PramSpec& spec, uint64_t seed);

/// Unbiased estimate of the true category distribution of a PRAM-masked
/// column: solves P^T pi = lambda, then clamps to [0, 1] and renormalizes.
Result<std::map<std::string, double>> PramEstimateTrueDistribution(
    const DataTable& masked, size_t col, const PramSpec& spec);

}  // namespace tripriv

