#include "sdc/partitioned_mdav.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace tripriv {
namespace {

/// Column index with the widest value range over `rows` of `matrix`
/// (ties to the lowest column, the Mondrian convention).
size_t WidestColumn(const std::vector<std::vector<double>>& matrix,
                    const std::vector<size_t>& rows) {
  size_t best_col = 0;
  double best_range = -1.0;
  const size_t d = matrix.empty() ? 0 : matrix[0].size();
  for (size_t j = 0; j < d; ++j) {
    double lo = matrix[rows[0]][j];
    double hi = lo;
    for (size_t r : rows) {
      lo = std::min(lo, matrix[r][j]);
      hi = std::max(hi, matrix[r][j]);
    }
    if (hi - lo > best_range) {
      best_range = hi - lo;
      best_col = j;
    }
  }
  return best_col;
}

/// Recursively median-splits `rows` until every partition is at most
/// `max_rows`; appends finished partitions to `out` in split order (left
/// before right), which fixes the partition-major group numbering.
void SplitRows(const std::vector<std::vector<double>>& matrix,
               std::vector<size_t> rows, size_t max_rows,
               std::vector<std::vector<size_t>>* out) {
  if (rows.size() <= max_rows) {
    out->push_back(std::move(rows));
    return;
  }
  const size_t col = WidestColumn(matrix, rows);
  // Rank by (value, row index): the tie-break makes the median cut — and
  // with it every downstream group — a pure function of the data.
  std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
    if (matrix[a][col] != matrix[b][col]) {
      return matrix[a][col] < matrix[b][col];
    }
    return a < b;
  });
  const size_t mid = rows.size() / 2;
  std::vector<size_t> left(rows.begin(), rows.begin() + mid);
  std::vector<size_t> right(rows.begin() + mid, rows.end());
  SplitRows(matrix, std::move(left), max_rows, out);
  SplitRows(matrix, std::move(right), max_rows, out);
}

}  // namespace

Result<MicroaggregationResult> PartitionedMdav(
    const DataTable& table, size_t k, const std::vector<size_t>& cols,
    ThreadPool* workers, size_t max_partition_rows) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot microaggregate an empty table");
  }
  if (cols.empty()) return Status::InvalidArgument("no columns given");
  if (max_partition_rows < 2 * k) {
    return Status::InvalidArgument(
        "max_partition_rows must be >= 2k so every partition fits two "
        "groups");
  }
  if (table.num_rows() <= max_partition_rows) {
    // One partition: exact MDAV (and the parallel distance scans with it).
    return MdavMicroaggregate(table, k, cols, workers);
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto matrix, table.NumericMatrix(cols));

  std::vector<size_t> all(table.num_rows());
  for (size_t r = 0; r < all.size(); ++r) all[r] = r;
  std::vector<std::vector<size_t>> partitions;
  SplitRows(matrix, std::move(all), max_partition_rows, &partitions);

  // Pure per-partition stage: slot p holds partition p's exact-MDAV result.
  // The inner MDAV runs serially (ParallelFor does not nest); determinism
  // comes from the per-slot writes and the partition-order merge below.
  std::vector<Result<MicroaggregationResult>> slots;
  slots.reserve(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    slots.emplace_back(Status::Internal("partition not processed"));
  }
  const auto run_partition = [&](size_t p) {
    DataTable sub = table.SelectRows(partitions[p]);
    slots[p] = MdavMicroaggregate(sub, k, cols, nullptr);
  };
  if (workers != nullptr && workers->num_threads() > 0) {
    workers->ParallelFor(partitions.size(),
                         [&](size_t /*shard*/, size_t begin, size_t end) {
                           for (size_t p = begin; p < end; ++p) {
                             run_partition(p);
                           }
                         });
  } else {
    for (size_t p = 0; p < partitions.size(); ++p) run_partition(p);
  }

  // Serial merge in partition order.
  MicroaggregationResult merged;
  merged.table = table;
  merged.group_of_row.assign(table.num_rows(), 0);
  for (size_t p = 0; p < partitions.size(); ++p) {
    TRIPRIV_RETURN_IF_ERROR(slots[p].status());
    const MicroaggregationResult& part = *slots[p];
    const std::vector<size_t>& rows = partitions[p];
    for (size_t i = 0; i < rows.size(); ++i) {
      merged.group_of_row[rows[i]] = merged.num_groups + part.group_of_row[i];
      for (size_t c : cols) {
        TRIPRIV_RETURN_IF_ERROR(
            merged.table.Set(rows[i], c, part.table.at(i, c)));
      }
    }
    merged.num_groups += part.num_groups;
    merged.within_group_sse += part.within_group_sse;
  }
  return merged;
}

Result<MicroaggregationResult> PartitionedMdav(const DataTable& table,
                                               size_t k, ThreadPool* workers,
                                               size_t max_partition_rows) {
  return PartitionedMdav(table, k, table.schema().QuasiIdentifierIndices(),
                         workers, max_partition_rows);
}

}  // namespace tripriv
