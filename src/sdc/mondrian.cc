#include "sdc/mondrian.h"

#include <algorithm>
#include <numeric>

#include "stats/descriptive.h"

namespace tripriv {
namespace {

struct Context {
  const std::vector<std::vector<double>>* data;  // row-major QI matrix
  std::vector<double> col_range;                 // global range per QI, for normalization
  size_t k;
  std::vector<std::vector<size_t>> leaves;
};

/// Recursively partitions `rows`; appends finished leaves to ctx->leaves.
void Partition(Context* ctx, std::vector<size_t> rows) {
  const size_t d = ctx->col_range.size();
  if (rows.size() >= 2 * ctx->k) {
    // Rank QI attributes by normalized range over this partition.
    std::vector<std::pair<double, size_t>> spreads;
    for (size_t j = 0; j < d; ++j) {
      double lo = (*ctx->data)[rows[0]][j];
      double hi = lo;
      for (size_t r : rows) {
        lo = std::min(lo, (*ctx->data)[r][j]);
        hi = std::max(hi, (*ctx->data)[r][j]);
      }
      const double norm = ctx->col_range[j] > 0.0 ? ctx->col_range[j] : 1.0;
      spreads.emplace_back((hi - lo) / norm, j);
    }
    std::sort(spreads.rbegin(), spreads.rend());
    // Try attributes in decreasing spread until a strict median split keeps
    // k records on both sides.
    for (const auto& [spread, j] : spreads) {
      if (spread <= 0.0) break;
      std::vector<size_t> sorted = rows;
      std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
        return (*ctx->data)[a][j] < (*ctx->data)[b][j];
      });
      const double median = (*ctx->data)[sorted[sorted.size() / 2]][j];
      std::vector<size_t> left;
      std::vector<size_t> right;
      for (size_t r : sorted) {
        ((*ctx->data)[r][j] < median ? left : right).push_back(r);
      }
      if (left.size() >= ctx->k && right.size() >= ctx->k) {
        Partition(ctx, std::move(left));
        Partition(ctx, std::move(right));
        return;
      }
    }
  }
  ctx->leaves.push_back(std::move(rows));
}

}  // namespace

Result<MondrianResult> MondrianAnonymize(const DataTable& table, size_t k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot anonymize an empty table");
  }
  const std::vector<size_t> qi = table.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::FailedPrecondition("schema declares no quasi-identifiers");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto data, table.NumericMatrix(qi));

  Context ctx;
  ctx.data = &data;
  ctx.k = k;
  ctx.col_range.resize(qi.size());
  for (size_t j = 0; j < qi.size(); ++j) {
    double lo = data[0][j];
    double hi = lo;
    for (const auto& row : data) {
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    ctx.col_range[j] = hi - lo;
  }
  std::vector<size_t> all(table.num_rows());
  std::iota(all.begin(), all.end(), 0);
  Partition(&ctx, std::move(all));

  MondrianResult result;
  result.table = table;
  result.group_of_row.assign(table.num_rows(), 0);
  result.num_groups = ctx.leaves.size();
  std::vector<std::vector<double>> masked = data;
  for (size_t g = 0; g < ctx.leaves.size(); ++g) {
    std::vector<double> centroid(qi.size(), 0.0);
    for (size_t r : ctx.leaves[g]) {
      for (size_t j = 0; j < qi.size(); ++j) centroid[j] += data[r][j];
    }
    for (double& v : centroid) v /= static_cast<double>(ctx.leaves[g].size());
    for (size_t r : ctx.leaves[g]) {
      result.group_of_row[r] = g;
      masked[r] = centroid;
    }
  }
  for (size_t j = 0; j < qi.size(); ++j) {
    std::vector<double> col(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) col[r] = masked[r][j];
    TRIPRIV_RETURN_IF_ERROR(result.table.SetNumericColumn(qi[j], col));
  }
  return result;
}

}  // namespace tripriv
