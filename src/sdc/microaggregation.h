// Microaggregation: k-anonymity through aggregation of numeric records.
//
// Implements the two microaggregation flavours the paper leans on:
//   * MDAV (Maximum Distance to Average Vector) — the practical
//     data-oriented multivariate heuristic of Domingo-Ferrer & Mateo-Sanz
//     [10], also used by [12] to prove that microaggregation with minimum
//     group size k over the quasi-identifiers yields k-anonymity;
//   * optimal univariate microaggregation (Hansen-Mukherjee shortest-path
//     dynamic program) — exact minimum within-group SSE for one attribute.
//
// Groups have sizes in [k, 2k-1]; every record's microaggregated attributes
// are replaced by its group centroid.

#pragma once

#include <vector>

#include "table/data_table.h"

namespace tripriv {

class ThreadPool;

/// A masked table plus the group structure that produced it.
struct MicroaggregationResult {
  DataTable table;
  /// group_of_row[r] is the 0-based group id of row r.
  std::vector<size_t> group_of_row;
  size_t num_groups = 0;
  /// Within-group sum of squared errors, measured on standardized data —
  /// the objective microaggregation minimizes (a raw information-loss
  /// figure; see information_loss.h for normalized measures).
  double within_group_sse = 0.0;
};

/// MDAV-generic over the numeric columns `cols` (attribute values are
/// standardized for distance computation; centroids are written back in the
/// original scale). Requires k >= 1, all `cols` numeric, and at least one
/// row. Guarantees every group has size in [k, 2k-1] when n >= k; if
/// n < k the single group holds all rows.
///
/// `workers` (optional) shards the per-iteration distance scans — the
/// farthest-record argmax and the k-nearest ordering — across the pool.
/// Both are reductions over per-element distances with fixed-order merges
/// (per-shard argmax merged in shard order, the same strict-> tie-break as
/// the serial loop; distances written to positional slots then sorted
/// serially), so the grouping is bit-identical at any thread count.
Result<MicroaggregationResult> MdavMicroaggregate(
    const DataTable& table, size_t k, const std::vector<size_t>& cols,
    ThreadPool* workers = nullptr);

/// MDAV over the schema's quasi-identifiers (all must be numeric). By [12],
/// the result is k-anonymous on those attributes. (No ThreadPool parameter:
/// a defaulted pointer here would make a braced `{}` column list ambiguous
/// against the overload above — parallel callers pass the QI indices
/// explicitly.)
Result<MicroaggregationResult> MdavMicroaggregate(const DataTable& table,
                                                  size_t k);

/// Optimal univariate microaggregation of `values` (Hansen-Mukherjee):
/// returns the group id per element minimizing total within-group SSE under
/// the size constraint [k, 2k-1]. Group ids follow ascending value order.
Result<std::vector<size_t>> OptimalUnivariateGroups(
    const std::vector<double>& values, size_t k);

/// Applies optimal univariate microaggregation to one numeric column.
Result<MicroaggregationResult> OptimalUnivariateMicroaggregate(
    const DataTable& table, size_t k, size_t col);

}  // namespace tripriv

