#include "sdc/rank_swap.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace tripriv {

Result<DataTable> RankSwap(const DataTable& table, double p,
                           const std::vector<size_t>& cols, uint64_t seed) {
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("swap window must be in [0, 100] percent");
  }
  Rng rng(seed);
  DataTable out = table;
  const size_t n = table.num_rows();
  if (n < 2) return out;
  const auto window = static_cast<size_t>(p / 100.0 * static_cast<double>(n));
  for (size_t c : cols) {
    TRIPRIV_ASSIGN_OR_RETURN(auto values, table.NumericColumn(c));
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    // Walk ranks left to right, pairing each unswapped rank with a uniform
    // partner within the window.
    std::vector<bool> swapped(n, false);
    std::vector<double> masked = values;
    for (size_t i = 0; i < n; ++i) {
      if (swapped[i]) continue;
      const size_t max_j = std::min(n - 1, i + std::max<size_t>(window, 1));
      // Collect unswapped partners in (i, max_j].
      std::vector<size_t> candidates;
      for (size_t j = i + 1; j <= max_j; ++j) {
        if (!swapped[j]) candidates.push_back(j);
      }
      if (candidates.empty()) {
        swapped[i] = true;
        continue;
      }
      const size_t j = candidates[rng.UniformU64(candidates.size())];
      std::swap(masked[order[i]], masked[order[j]]);
      swapped[i] = true;
      swapped[j] = true;
    }
    TRIPRIV_RETURN_IF_ERROR(out.SetNumericColumn(c, masked));
  }
  return out;
}

}  // namespace tripriv
