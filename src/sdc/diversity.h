// Diversity and closeness models: the refinement line opened by the
// paper's footnote 3.
//
// The paper notes that k-anonymity alone fails when an equivalence class
// shares one confidential value, and points to p-sensitive k-anonymity
// [24]. This module implements the rest of that research line so releases
// can be vetted against attribute disclosure, not just identity
// disclosure:
//   * distinct l-diversity (in anonymity.h) and its entropy variant;
//   * recursive (c, l)-diversity (Machanavajjhala et al.);
//   * t-closeness (Li et al.): the class-conditional distribution of the
//     confidential attribute must stay within Earth Mover's Distance t of
//     the global distribution;
//   * the homogeneity attack that motivates all of them.

#pragma once

#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Entropy l-diversity level: min over equivalence classes of
/// exp(H(confidential distribution within the class)), where H is the
/// natural-log entropy. A table is entropy l-diverse iff this is >= l.
/// Returns 0 for an empty table.
double EntropyLDiversity(const DataTable& table,
                         const std::vector<size_t>& qi_cols, size_t conf_col);

/// Recursive (c, l)-diversity: in every class, with value counts sorted
/// descending r_1 >= r_2 >= ..., require r_1 < c * (r_l + r_{l+1} + ...).
/// Requires c > 0 and l >= 1. An empty table is trivially diverse.
Result<bool> IsRecursiveCLDiverse(const DataTable& table,
                                  const std::vector<size_t>& qi_cols,
                                  size_t conf_col, double c, size_t l);

/// Maximum Earth Mover's Distance between any class's confidential
/// distribution and the table-wide one. For numeric attributes the EMD is
/// computed on the ordered domain of observed values (normalized by the
/// domain size); for categorical attributes the equal-distance EMD (total
/// variation) is used. Returns 0 for an empty table.
Result<double> TClosenessMaxDistance(const DataTable& table,
                                     const std::vector<size_t>& qi_cols,
                                     size_t conf_col);

/// True iff TClosenessMaxDistance <= t.
Result<bool> IsTClose(const DataTable& table,
                      const std::vector<size_t>& qi_cols, size_t conf_col,
                      double t);

/// The homogeneity attack of the l-diversity literature: the fraction of
/// records whose equivalence class carries a single confidential value —
/// those respondents' confidential attribute is disclosed by ANY
/// k-anonymous release, which is footnote 3's point.
double HomogeneityAttackRate(const DataTable& table,
                             const std::vector<size_t>& qi_cols,
                             size_t conf_col);

}  // namespace tripriv

