// Incremental MDAV maintenance for the epoch-versioned protected database.
//
// A full MDAV pass is O(n^2/k) distance scans; re-running it on every epoch
// flip would make write throughput collapse with table size even when a
// batch touches a handful of records. The maintainer re-clusters only the
// *dirty* part of the table instead:
//
//   * a group is dirty when it gained no one but LOST or CHANGED a member
//     (a deleted or updated uid belonged to it) — its centroid and size
//     guarantees are stale;
//   * the recluster pool is every member of a dirty group plus every
//     inserted row; clean groups keep their membership untouched, so their
//     rows' masked values are provably identical to the previous epoch's;
//   * the pool is re-grouped by a fresh MDAV run when it holds at least k
//     records. A residual pool smaller than k cannot form a lawful group,
//     so its rows are absorbed into the nearest clean group by centroid
//     distance (deterministic: lowest group id wins ties) — the group only
//     grows, so k-anonymity is preserved;
//   * group centroids are recomputed in the original scale for ALL final
//     groups — for an untouched group this reproduces the previous values
//     exactly (same members, same mean).
//
// The maintainer itself never *emits* an under-k group except when the
// whole table has fewer than k rows; the epoch flip's fail-closed gate
// still re-verifies min group size and k-anonymity on the candidate table
// independently (defense in depth — see service/epoch_service.h).
//
// Determinism: the pool is ordered by row index, MdavMicroaggregate's
// parallel distance scans are bit-identical at any thread count (see
// microaggregation.h), and nearest-group absorption breaks ties on the
// lowest group id — the grouping is a pure function of the inputs.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sdc/microaggregation.h"
#include "table/data_table.h"

namespace tripriv {

class ThreadPool;

/// Output of one maintenance pass.
struct IncrementalMdavResult {
  /// group_of_row[r] is the 0-based group of base row r; groups have size
  /// in [k, ...] except the n < k degenerate case (gate refuses it).
  std::vector<size_t> group_of_row;
  size_t num_groups = 0;
  /// Base table with the `cols` attributes replaced by group centroids.
  DataTable protected_table;
  /// Rows that went through the recluster pool (the incremental work).
  size_t rows_reclustered = 0;
  /// Previous groups adopted untouched.
  size_t groups_kept = 0;
  /// Smallest final group — what the respondent-privacy gate checks
  /// against k.
  size_t min_group_size = 0;
};

/// Re-clusters only the dirty part of `base`; see file comment.
///
/// `uids[i]` is the stable id of base row `i` (post-mutation membership).
/// `prev_group_of_uid` maps every uid of the PREVIOUS epoch to its group id
/// there (empty on bootstrap: everything is pooled and this is a full MDAV
/// run). `dirty_uids` are the batch's inserted, updated, and deleted uids —
/// deleted uids are naturally absent from `uids` but mark their previous
/// group dirty. `workers` shards the MDAV distance scans (bit-identical at
/// any thread count).
Result<IncrementalMdavResult> IncrementalMdav(
    const DataTable& base, const std::vector<uint64_t>& uids,
    const std::vector<size_t>& cols, size_t k,
    const std::unordered_map<uint64_t, size_t>& prev_group_of_uid,
    const std::vector<uint64_t>& dirty_uids, ThreadPool* workers = nullptr);

}  // namespace tripriv
