#include "sdc/incremental_mdav.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <utility>

#include "stats/descriptive.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

/// Mean of the `cols` values over `member_rows` of `raw` (row-major over
/// cols), in the original scale.
std::vector<double> RawCentroid(const std::vector<std::vector<double>>& raw,
                                const std::vector<size_t>& member_rows) {
  TRIPRIV_CHECK(!member_rows.empty());
  std::vector<double> c(raw[0].size(), 0.0);
  for (size_t r : member_rows) {
    for (size_t j = 0; j < c.size(); ++j) c[j] += raw[r][j];
  }
  for (double& v : c) v /= static_cast<double>(member_rows.size());
  return c;
}

}  // namespace

Result<IncrementalMdavResult> IncrementalMdav(
    const DataTable& base, const std::vector<uint64_t>& uids,
    const std::vector<size_t>& cols, size_t k,
    const std::unordered_map<uint64_t, size_t>& prev_group_of_uid,
    const std::vector<uint64_t>& dirty_uids, ThreadPool* workers) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (base.num_rows() == 0) {
    return Status::InvalidArgument("cannot maintain an empty table");
  }
  if (uids.size() != base.num_rows()) {
    return Status::InvalidArgument("uid vector does not match table rows");
  }
  if (cols.empty()) return Status::InvalidArgument("no columns to maintain");

  const size_t n = base.num_rows();
  TRIPRIV_ASSIGN_OR_RETURN(auto raw, base.NumericMatrix(cols));

  // Previous groups that lost or changed a member.
  std::set<size_t> dirty_groups;
  for (uint64_t uid : dirty_uids) {
    auto it = prev_group_of_uid.find(uid);
    if (it != prev_group_of_uid.end()) dirty_groups.insert(it->second);
  }

  // Partition current rows: clean rows keep their previous group; inserted
  // rows and members of dirty groups enter the recluster pool (row order —
  // the determinism anchor).
  std::vector<size_t> pool_rows;
  std::vector<size_t> prev_group(n, SIZE_MAX);
  for (size_t r = 0; r < n; ++r) {
    auto it = prev_group_of_uid.find(uids[r]);
    const bool pooled =
        it == prev_group_of_uid.end() || dirty_groups.count(it->second) > 0;
    if (pooled) {
      pool_rows.push_back(r);
    } else {
      prev_group[r] = it->second;
    }
  }

  // Renumber surviving clean groups 0..m-1 in ascending previous-id order.
  std::set<size_t> kept_ids;
  for (size_t r = 0; r < n; ++r) {
    if (prev_group[r] != SIZE_MAX) kept_ids.insert(prev_group[r]);
  }
  std::unordered_map<size_t, size_t> renumber;
  renumber.reserve(kept_ids.size());
  for (size_t id : kept_ids) {
    const size_t next = renumber.size();
    renumber[id] = next;
  }
  const size_t kept = renumber.size();

  IncrementalMdavResult result;
  result.group_of_row.assign(n, SIZE_MAX);
  result.groups_kept = kept;
  result.rows_reclustered = pool_rows.size();
  for (size_t r = 0; r < n; ++r) {
    if (prev_group[r] != SIZE_MAX) {
      result.group_of_row[r] = renumber[prev_group[r]];
    }
  }
  size_t num_groups = kept;

  if (pool_rows.size() >= k) {
    // A lawful MDAV run over the pool alone; sub-group g becomes global
    // group kept + g.
    TRIPRIV_ASSIGN_OR_RETURN(
        MicroaggregationResult sub,
        MdavMicroaggregate(base.SelectRows(pool_rows), k, cols, workers));
    for (size_t i = 0; i < pool_rows.size(); ++i) {
      result.group_of_row[pool_rows[i]] = kept + sub.group_of_row[i];
    }
    num_groups = kept + sub.num_groups;
  } else if (!pool_rows.empty()) {
    if (kept == 0) {
      // The whole table is the pool and it is smaller than k: one
      // degenerate group. The flip gate refuses this candidate unless
      // n >= k, which cannot hold here.
      for (size_t r : pool_rows) result.group_of_row[r] = 0;
      num_groups = 1;
    } else {
      // Residual pool < k: absorb each row into the nearest clean group
      // (groups only grow, so their k-guarantee is preserved). Centroids
      // are the clean groups' raw means; ties break on the lowest id.
      std::vector<std::vector<size_t>> members(kept);
      for (size_t r = 0; r < n; ++r) {
        if (prev_group[r] != SIZE_MAX) {
          members[result.group_of_row[r]].push_back(r);
        }
      }
      std::vector<std::vector<double>> centroids(kept);
      for (size_t g = 0; g < kept; ++g) centroids[g] = RawCentroid(raw, members[g]);
      for (size_t r : pool_rows) {
        size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (size_t g = 0; g < kept; ++g) {
          const double d = SquaredDistance(raw[r], centroids[g]);
          if (d < best_d) {
            best_d = d;
            best = g;
          }
        }
        result.group_of_row[r] = best;
      }
    }
  }
  result.num_groups = num_groups;

  // Final membership, centroid recompute (original scale), and masking.
  std::vector<std::vector<size_t>> members(num_groups);
  for (size_t r = 0; r < n; ++r) {
    TRIPRIV_CHECK(result.group_of_row[r] != SIZE_MAX);
    members[result.group_of_row[r]].push_back(r);
  }
  result.min_group_size = n;
  std::vector<std::vector<double>> masked = raw;
  for (size_t g = 0; g < num_groups; ++g) {
    TRIPRIV_CHECK(!members[g].empty()) << "empty group after maintenance";
    result.min_group_size = std::min(result.min_group_size, members[g].size());
    const auto centroid = RawCentroid(raw, members[g]);
    for (size_t r : members[g]) masked[r] = centroid;
  }
  result.protected_table = base;
  for (size_t j = 0; j < cols.size(); ++j) {
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) col[r] = masked[r][j];
    TRIPRIV_RETURN_IF_ERROR(result.protected_table.SetNumericColumn(cols[j], col));
  }
  return result;
}

}  // namespace tripriv
