#include "service/query_service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/checksum.h"

namespace tripriv {
namespace {

/// FNV of the query's canonical rendering — what the WAL stores in place of
/// the query text.
uint64_t QueryFingerprint(const StatQuery& query) {
  const std::string canonical = query.ToString();
  return Fnv1a64(canonical.data(), canonical.size());
}

/// The primary backend runs the configured mode minus the policy checks the
/// service lifts into its own (WAL-recovered) AuditPolicy.
ProtectionConfig PrimaryConfig(const ProtectionConfig& protection) {
  ProtectionConfig out = protection;
  if (out.mode == ProtectionMode::kQuerySetSize ||
      out.mode == ProtectionMode::kAudit) {
    out.mode = ProtectionMode::kNone;
  }
  return out;
}

/// The degraded backend: epsilon-DP Laplace at degrade_epsilon per answer —
/// the one protection here that needs no query inspection, so it stays
/// sound even when the audit path is the thing that is failing.
ProtectionConfig DegradedConfig(const QueryServiceConfig& config) {
  ProtectionConfig out;
  out.mode = ProtectionMode::kDifferentialPrivacy;
  out.epsilon = config.degrade_epsilon;
  out.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;
  return out;
}

CircuitBreakerConfig WithSeed(CircuitBreakerConfig config, uint64_t seed) {
  config.seed = seed;
  return config;
}

constexpr double kEpsilonSlack = 1e-12;

}  // namespace

const char* AnswerTierToString(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kProtected:
      return "protected";
    case AnswerTier::kDpDegraded:
      return "dp-degraded";
    case AnswerTier::kRefused:
      return "refused";
  }
  return "?";
}

QueryService::QueryService(DataTable data, QueryServiceConfig config,
                           WalIo* wal_io)
    : config_(std::move(config)),
      clock_(std::make_unique<SimClock>()),
      wal_(wal_io),
      policy_(config_.protection.mode, config_.protection.min_query_set_size,
              data.num_rows()),
      backend_(data, PrimaryConfig(config_.protection)),
      dp_db_(std::move(data), DegradedConfig(config_)),
      admission_(
          std::make_unique<AdmissionController>(config_.admission, clock_.get())),
      primary_breaker_(std::make_unique<CircuitBreaker>(
          WithSeed(config_.breaker, config_.breaker.seed), clock_.get())),
      dp_breaker_(std::make_unique<CircuitBreaker>(
          WithSeed(config_.breaker, config_.breaker.seed ^ 0xD15EA5Eull),
          clock_.get())),
      fault_rng_(config_.faults.seed) {}

Result<QueryService> QueryService::Create(DataTable data,
                                          QueryServiceConfig config,
                                          WalIo* wal_io) {
  TRIPRIV_CHECK(wal_io != nullptr);
  if (config.degrade_epsilon <= 0.0) {
    return Status::InvalidArgument("degrade_epsilon must be > 0");
  }
  if (config.epsilon_budget < 0.0) {
    return Status::InvalidArgument("epsilon_budget must be >= 0");
  }
  // Recover BEFORE constructing the appender: Recover truncates the torn
  // tail, and AuditWal resumes appending at the repaired device size.
  TRIPRIV_ASSIGN_OR_RETURN(WalRecoveryResult recovered,
                           AuditWal::Recover(wal_io));
  QueryService service(std::move(data), std::move(config), wal_io);
  for (const WalRecord& record : recovered.records) {
    if (record.query_id >= service.next_query_id_) {
      service.next_query_id_ = record.query_id + 1;
    }
    switch (record.type) {
      case WalRecordType::kDecision:
        if (record.decision == WalDecision::kAdmitted) {
          std::vector<size_t> rows(record.rows.begin(), record.rows.end());
          service.policy_.RecordAnswered(std::move(rows));
        }
        break;
      case WalRecordType::kEpsilonSpend:
        service.epsilon_spent_ += record.epsilon;
        break;
      case WalRecordType::kEpochFlipBegin:
      case WalRecordType::kEpochFlipCommit:
      case WalRecordType::kEpochFlipAbort:
        // Epoch flips belong to the mutation subsystem; a shared device
        // replays them through EpochedDatabase::Create, not here.
        break;
    }
  }
  return service;
}

ServiceAnswer QueryService::Refuse(uint64_t query_id, Status why) {
  TRIPRIV_CHECK(!why.ok());
  ++stats_.refusals;
  if (metrics_ != nullptr) metrics_->OnAnswer(obs::kTierRefused);
  ServiceAnswer out;
  out.tier = AnswerTier::kRefused;
  out.refusal = std::move(why);
  out.query_id = query_id;
  return out;
}

ServiceAnswer QueryService::Submit(const StatQuery& query) {
  return Submit(query,
                Deadline::After(*clock_, config_.default_deadline_ticks));
}

ServiceAnswer QueryService::Submit(const StatQuery& query,
                                   const Deadline& deadline) {
  return SubmitPrepared(query, Prepare(query), deadline);
}

PreparedQuery QueryService::Prepare(const StatQuery& query) const {
  PreparedQuery prepared;
  prepared.rows = query.where.MatchingRows(backend_.data());
  prepared.fingerprint = QueryFingerprint(query);
  return prepared;
}

ServiceAnswer QueryService::SubmitPrepared(const StatQuery& query,
                                           PreparedQuery prepared) {
  return SubmitPrepared(query, std::move(prepared),
                        Deadline::After(*clock_, config_.default_deadline_ticks));
}

ServiceAnswer QueryService::SubmitPrepared(const StatQuery& query,
                                           PreparedQuery prepared,
                                           const Deadline& deadline) {
  const uint64_t submit_span = BeginSpan(span_ids_.submit, 0, next_query_id_);
  ServiceAnswer out =
      SubmitPreparedImpl(query, std::move(prepared), deadline, submit_span);
  // A class tag covers exactly one request; reset so an untagged caller
  // never inherits the previous tenant's class.
  request_class_ = obs::kClassUnattributed;
  FinishSpan(submit_span, out.tier == AnswerTier::kRefused
                              ? out.refusal.code()
                              : StatusCode::kOk);
  return out;
}

ServiceAnswer QueryService::SubmitPreparedImpl(const StatQuery& query,
                                               PreparedQuery prepared,
                                               const Deadline& deadline,
                                               uint64_t submit_span) {
  ++stats_.received;
  const uint64_t query_id = next_query_id_++;
  if (crashed_) {
    return Refuse(query_id, Status::Unavailable(
                                "service crashed; recover via Create()"));
  }

  // --- Policy stage: runs for EVERY query, before admission control and
  // deadline checks, so the audit state evolves as a deterministic function
  // of the query sequence alone. A fault further down can only withhold
  // this query's answer; it can never un-record the decision and let a
  // later overlapping query through.
  if (!prepared.rows.ok()) {
    // Malformed query: no query set exists, so no audit decision to log.
    return Refuse(query_id, prepared.rows.status());
  }
  std::vector<size_t> rows = std::move(prepared.rows).value();
  const uint64_t fingerprint = prepared.fingerprint;
  const uint64_t policy_span = BeginSpan(span_ids_.policy, submit_span, query_id);
  const std::optional<std::string> refusal_reason = policy_.Check(rows);
  FinishSpan(policy_span, refusal_reason ? StatusCode::kPermissionDenied
                                         : StatusCode::kOk);

  WalRecord decision;
  decision.type = WalRecordType::kDecision;
  decision.query_id = query_id;
  decision.query_fingerprint = fingerprint;
  decision.decision = refusal_reason ? WalDecision::kPolicyRefused
                                     : WalDecision::kAdmitted;
  if (!refusal_reason) decision.rows.assign(rows.begin(), rows.end());
  const uint64_t wal_span = BeginSpan(span_ids_.wal_append, submit_span, query_id);
  Status logged = wal_.Append(decision);
  FinishSpan(wal_span, logged.code());
  if (!logged.ok()) ++stats_.wal_append_failures;
  if (metrics_ != nullptr) {
    metrics_->OnWalAppend(logged.ok() ? wal_.last_append_bytes() : 0,
                          logged.ok());
  }
  if (!refusal_reason) {
    // In-memory audit state records the admission even when the WAL write
    // failed: the overlap check must see this set for the rest of this
    // process lifetime regardless, and the un-logged answer is simply never
    // released (below). Fail closed, both in memory and on disk.
    policy_.RecordAnswered(std::move(rows));
  }
  if (refusal_reason) {
    ++stats_.policy_refusals;
    if (metrics_ != nullptr) metrics_->OnPolicyRefusal();
    return Refuse(query_id, Status::PermissionDenied(*refusal_reason));
  }
  if (!logged.ok()) {
    return Refuse(query_id,
                  Status::Unavailable("audit trail not durable: " +
                                      logged.message()));
  }

  // --- Admission control: shed before any backend work.
  const uint64_t admission_span =
      BeginSpan(span_ids_.admission, submit_span, query_id);
  Status admitted = admission_->Admit();
  FinishSpan(admission_span, admitted.code());
  if (!admitted.ok()) {
    ++stats_.shed;
    // Attributed to the caller-declared tenant class — an allowlisted
    // label, never a principal id (unattributed when no class was set).
    if (metrics_ != nullptr) metrics_->OnShed(request_class_);
    return Refuse(query_id, std::move(admitted));
  }

  if (deadline.expired(*clock_)) {
    return Refuse(query_id,
                  DeadlineExceededError("request deadline at admission"));
  }

  // --- Primary path: exact answer under the configured protection.
  const uint64_t primary_span = BeginSpan(span_ids_.primary, submit_span, query_id);
  auto primary = TryPrimary(query, deadline);
  FinishSpan(primary_span, primary.status().code());
  if (primary.ok()) {
    if (primary->refused) {
      // A semantic refusal from the primary mode (e.g. MIN/MAX when the
      // configured mode is differential privacy).
      ++stats_.policy_refusals;
      if (metrics_ != nullptr) metrics_->OnPolicyRefusal();
      // Refusal reasons are policy-generated text, not record data.
      return Refuse(query_id,
                    // NOLINTNEXTLINE(taint-flow-to-sink)
                    Status::PermissionDenied(primary->refusal_reason));
    }
    if (fault_rng_.Bernoulli(config_.faults.crash_mid_answer_rate)) {
      // The decision record is durable but the client never hears back —
      // exactly the window monotone recovery is about.
      crashed_ = true;
      if (metrics_ != nullptr) metrics_->OnCrash();
      return Refuse(query_id, Status::Unavailable(
                                  "service crashed before releasing the answer"));
    }
    ++stats_.protected_answers;
    if (metrics_ != nullptr) metrics_->OnAnswer(obs::kTierProtected);
    ServiceAnswer out;
    out.tier = AnswerTier::kProtected;
    out.answer = std::move(primary).value();
    out.query_id = query_id;
    return out;
  }

  // --- Degradation ladder. Only an unavailable primary degrades; an
  // exceeded deadline refuses (the time budget is the client's, and more
  // work cannot un-spend it), and permanent failures refuse typed.
  if (primary.status().code() == StatusCode::kUnavailable) {
    ++stats_.degraded_attempts;
    const uint64_t degraded_span =
        BeginSpan(span_ids_.degraded, submit_span, query_id);
    ServiceAnswer degraded = TryDegraded(query, query_id);
    FinishSpan(degraded_span, degraded.tier == AnswerTier::kRefused
                                  ? degraded.refusal.code()
                                  : StatusCode::kOk);
    return degraded;
  }
  return Refuse(query_id, primary.status());
}

Result<ProtectedAnswer> QueryService::TryPrimary(const StatQuery& query,
                                                 const Deadline& deadline) {
  const RetryPolicy retry =
      config_.retry.Truncated(deadline.remaining_ticks(*clock_));
  const size_t max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  Status last = Status::Unavailable("no primary attempt was made");
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (deadline.expired(*clock_)) {
      return DeadlineExceededError("primary path after " +
                                   std::to_string(attempt) + " attempt(s)");
    }
    // The breaker gates EVERY attempt, not just the first. Checking once
    // before the loop let retries keep hammering a backend whose first
    // attempt had just tripped the breaker — and, worse, let a burst
    // arriving in the half-open window ride a single probe permission for
    // its whole retry budget, multiplying trial load on a barely-recovered
    // backend. Once the breaker refuses there is no point burning backoff:
    // return immediately and let the ladder degrade.
    if (!primary_breaker_->AllowRequest()) {
      return Status::Unavailable("primary circuit breaker is open");
    }
    if (fault_rng_.Bernoulli(config_.faults.backend_fault_rate)) {
      primary_breaker_->RecordFailure();
      last = Status::Unavailable("injected primary backend fault");
      clock_->Advance(retry.BackoffTicks(attempt));
      continue;
    }
    // Deadline-aware evaluation charges the scan cost to the clock and
    // fails typed when the budget runs out mid-scan.
    auto evaluated = ExecuteQuery(backend_.data(), query, clock_.get(), deadline);
    if (!evaluated.ok()) {
      if (evaluated.status().code() == StatusCode::kDeadlineExceeded) {
        // The request's budget, not the backend's health: no breaker
        // penalty, and retrying cannot help.
        return evaluated.status();
      }
      // The backend responded; the query itself is bad (permanent).
      primary_breaker_->RecordSuccess();
      return evaluated.status();
    }
    auto answer = backend_.Query(query);
    primary_breaker_->RecordSuccess();
    if (!answer.ok()) return answer.status();
    return answer;
  }
  return Status::Unavailable("primary path failed after " +
                             std::to_string(max_attempts) +
                             " attempt(s); last: " + last.message());
}

Status QueryService::ChargeEpsilon(uint64_t query_id, uint64_t fingerprint,
                                   bool aggregate_path) {
  // Charge memory FIRST: if the durable record then fails, the budget is
  // conservatively spent and the answer withheld — never the reverse.
  epsilon_spent_ += config_.degrade_epsilon;
  WalRecord spend;
  spend.type = WalRecordType::kEpsilonSpend;
  spend.query_id = query_id;
  spend.query_fingerprint = fingerprint;
  spend.decision = WalDecision::kAdmitted;
  spend.epsilon = config_.degrade_epsilon;
  const uint64_t span = BeginSpan(span_ids_.epsilon_charge, 0, query_id);
  Status logged = wal_.Append(spend);
  FinishSpan(span, logged.code());
  if (metrics_ != nullptr) {
    metrics_->OnWalAppend(logged.ok() ? wal_.last_append_bytes() : 0,
                          logged.ok());
  }
  if (!logged.ok()) {
    ++stats_.wal_append_failures;
    return Status::Unavailable("epsilon spend not durable: " +
                               logged.message());
  }
  // Mirror only DURABLE spends: the accountant is a read model of the WAL.
  if (metrics_ != nullptr) {
    metrics_->OnEpsilonSpend(aggregate_path, config_.degrade_epsilon);
  }
  return Status::OK();
}

ServiceAnswer QueryService::TryDegraded(const StatQuery& query,
                                        uint64_t query_id) {
  if (!dp_breaker_->AllowRequest()) {
    return Refuse(query_id,
                  Status::Unavailable("degraded-path circuit breaker is open"));
  }
  if (fault_rng_.Bernoulli(config_.faults.dp_fault_rate)) {
    dp_breaker_->RecordFailure();
    return Refuse(query_id,
                  Status::Unavailable("injected degraded-path fault"));
  }
  if (epsilon_spent_ + config_.degrade_epsilon >
      config_.epsilon_budget + kEpsilonSlack) {
    dp_breaker_->RecordSuccess();
    return Refuse(query_id, Status::PermissionDenied(
                                "degraded-path privacy budget exhausted"));
  }
  auto answer = dp_db_.Query(query);
  dp_breaker_->RecordSuccess();
  if (!answer.ok()) return Refuse(query_id, answer.status());
  if (answer->refused) {
    // NOLINTNEXTLINE(taint-flow-to-sink): policy-generated text
    return Refuse(query_id, Status::PermissionDenied(answer->refusal_reason));
  }
  Status charged = ChargeEpsilon(query_id, QueryFingerprint(query));
  if (!charged.ok()) return Refuse(query_id, std::move(charged));
  if (fault_rng_.Bernoulli(config_.faults.crash_mid_answer_rate)) {
    crashed_ = true;
    if (metrics_ != nullptr) metrics_->OnCrash();
    return Refuse(query_id, Status::Unavailable(
                                "service crashed before releasing the answer"));
  }
  ++stats_.dp_answers;
  if (metrics_ != nullptr) metrics_->OnAnswer(obs::kTierDpDegraded);
  ServiceAnswer out;
  out.tier = AnswerTier::kDpDegraded;
  out.answer = std::move(answer).value();
  out.query_id = query_id;
  return out;
}

void QueryService::AttachAggregateBackends(
    std::vector<const PrivateAggregateServer*> replicas,
    PrivateAggregateClient* client, Rng* server_noise_rng) {
  for (const auto* replica : replicas) TRIPRIV_CHECK(replica != nullptr);
  TRIPRIV_CHECK(client != nullptr);
  TRIPRIV_CHECK(server_noise_rng != nullptr);
  aggregate_replicas_ = std::move(replicas);
  aggregate_client_ = client;
  aggregate_server_rng_ = server_noise_rng;
}

Result<int64_t> QueryService::PrivateDpCount(const Predicate& predicate,
                                             const Deadline& deadline) {
  if (crashed_) {
    return Status::Unavailable("service crashed; recover via Create()");
  }
  if (aggregate_replicas_.empty() || aggregate_client_ == nullptr) {
    return Status::FailedPrecondition("no aggregate backends attached");
  }
  const uint64_t query_id = next_query_id_++;
  if (epsilon_spent_ + config_.degrade_epsilon >
      config_.epsilon_budget + kEpsilonSlack) {
    return Status::PermissionDenied("privacy budget exhausted");
  }
  const uint64_t span = BeginSpan(span_ids_.aggregate_count, 0, query_id);
  const RetryPolicy retry =
      config_.retry.Truncated(deadline.remaining_ticks(*clock_));
  const size_t max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  Status last = Status::Unavailable("no aggregate attempt was made");
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (deadline.expired(*clock_)) {
      FinishSpan(span, StatusCode::kDeadlineExceeded);
      return DeadlineExceededError("private aggregate count after " +
                                   std::to_string(attempt) + " attempt(s)");
    }
    // Replica failover: each attempt goes to the next replica.
    const auto* replica = aggregate_replicas_[attempt % aggregate_replicas_.size()];
    if (fault_rng_.Bernoulli(config_.faults.aggregate_fault_rate)) {
      last = Status::Unavailable("injected aggregate replica fault");
      clock_->Advance(retry.BackoffTicks(attempt));
      continue;
    }
    clock_->Advance(1);  // one round trip of ciphertexts
    auto count = aggregate_client_->DpCount(*replica, predicate,
                                            config_.degrade_epsilon,
                                            aggregate_server_rng_);
    if (!count.ok()) {
      if (!count.status().transient()) {
        FinishSpan(span, count.status().code());
        return count.status();
      }
      last = count.status();
      clock_->Advance(retry.BackoffTicks(attempt));
      continue;
    }
    const std::string canonical = predicate.ToString();
    Status charged =
        ChargeEpsilon(query_id, Fnv1a64(canonical.data(), canonical.size()),
                      /*aggregate_path=*/true);
    if (!charged.ok()) {
      FinishSpan(span, charged.code());
      return charged;
    }
    ++stats_.dp_answers;
    if (metrics_ != nullptr) metrics_->OnAnswer(obs::kTierDpDegraded);
    FinishSpan(span, StatusCode::kOk);
    return *count;
  }
  FinishSpan(span, StatusCode::kUnavailable);
  return Status::Unavailable("aggregate path failed after " +
                             std::to_string(max_attempts) +
                             " attempt(s); last: " + last.message());
}

void QueryService::AttachPirBackend(FailoverPirClient* pir) {
  TRIPRIV_CHECK(pir != nullptr);
  pir_ = pir;
}

void QueryService::AttachInstruments(obs::ServiceMetrics* metrics) {
  metrics_ = metrics;
  span_ids_ = SpanIds{};
  if (metrics_ != nullptr && metrics_->trace() != nullptr) {
    const obs::TraceRecorder& trace = *metrics_->trace();
    span_ids_.submit = trace.SpanNameId("submit");
    span_ids_.policy = trace.SpanNameId("policy");
    span_ids_.wal_append = trace.SpanNameId("wal_append");
    span_ids_.admission = trace.SpanNameId("admission");
    span_ids_.primary = trace.SpanNameId("primary");
    span_ids_.degraded = trace.SpanNameId("degraded");
    span_ids_.epsilon_charge = trace.SpanNameId("epsilon_charge");
    span_ids_.aggregate_count = trace.SpanNameId("aggregate_count");
    span_ids_.pir_read = trace.SpanNameId("pir_read");
    span_ids_.pir_batch = trace.SpanNameId("pir_batch");
  }
  if (metrics_ != nullptr && epsilon_spent_ > 0.0) {
    // Seed the budget read model with the WAL-recovered spend, so gauges
    // agree with the durable log from the first snapshot on.
    metrics_->OnEpsilonRecovered(epsilon_spent_);
  }
}

void QueryService::PublishMetrics() {
  if (metrics_ == nullptr) return;
  metrics_->PublishQueueDepth(admission_->in_system());
  metrics_->PublishBreaker(/*primary=*/true,
                           static_cast<uint8_t>(primary_breaker_->state()),
                           primary_breaker_->times_opened(),
                           primary_breaker_->rejected(),
                           primary_breaker_->half_open_probes());
  metrics_->PublishBreaker(/*primary=*/false,
                           static_cast<uint8_t>(dp_breaker_->state()),
                           dp_breaker_->times_opened(), dp_breaker_->rejected(),
                           dp_breaker_->half_open_probes());
  if (pir_ != nullptr) {
    metrics_->PublishPir(pir_->total_bytes_xored(), pir_->failovers(),
                         pir_->corrupt_answers_detected(),
                         pir_->total_queries_answered());
    metrics_->PublishPirTransport(pir_->sessions().total_upload_bits(),
                                  pir_->sessions().total_expanded_cells(),
                                  pir_->preprocess_bytes(),
                                  pir_->sessions().num_sessions());
  }
}

uint64_t QueryService::BeginSpan(uint32_t name_id, uint64_t parent,
                                 uint64_t query_id) {
  if (metrics_ == nullptr || metrics_->trace() == nullptr) return 0;
  return metrics_->trace()->StartSpanById(name_id, parent, query_id);
}

void QueryService::FinishSpan(uint64_t span, StatusCode code) {
  // The trace() null-check mirrors BeginSpan: span can only be nonzero
  // when a recorder was attached, but with instruments compiled out
  // trace() is a constant nullptr and the guard keeps the call unreachable.
  if (span == 0 || metrics_ == nullptr || metrics_->trace() == nullptr) return;
  metrics_->trace()->EndSpan(span, code);
}

Result<std::vector<uint8_t>> QueryService::PirRead(size_t index,
                                                   const Deadline& deadline) {
  if (crashed_) {
    return Status::Unavailable("service crashed; recover via Create()");
  }
  if (pir_ == nullptr) {
    return Status::FailedPrecondition("no PIR backend attached");
  }
  const uint64_t span = BeginSpan(span_ids_.pir_read, 0, next_query_id_);
  // The recursive backend keys its expansion session on the request class
  // — the same allowlisted class the admission ladder uses, never a
  // principal id.
  auto record = pir_->Read(index, deadline, request_class_);
  if (metrics_ != nullptr && record.ok()) metrics_->OnPirRead();
  FinishSpan(span, record.status().code());
  return record;
}

std::vector<Result<std::vector<uint8_t>>> QueryService::PirReadBatch(
    const std::vector<size_t>& indices, const Deadline& deadline,
    ThreadPool* pool) {
  if (crashed_) {
    return std::vector<Result<std::vector<uint8_t>>>(
        indices.size(), Result<std::vector<uint8_t>>(Status::Unavailable(
                            "service crashed; recover via Create()")));
  }
  if (pir_ == nullptr) {
    return std::vector<Result<std::vector<uint8_t>>>(
        indices.size(), Result<std::vector<uint8_t>>(Status::FailedPrecondition(
                            "no PIR backend attached")));
  }
  const uint64_t span = BeginSpan(span_ids_.pir_batch, 0, next_query_id_);
  auto records = pir_->ReadBatch(indices, deadline, pool, request_class_);
  if (metrics_ != nullptr) {
    metrics_->OnPirBatch(indices.size());
    for (const auto& record : records) {
      if (record.ok()) metrics_->OnPirRead();
    }
  }
  FinishSpan(span, StatusCode::kOk);
  return records;
}

}  // namespace tripriv
