#include "service/audit_wal.h"

#include <cstring>

#include "util/checksum.h"

namespace tripriv {
namespace {

// Record framing: [u32 payload_len | u64 fnv1a64(payload) | payload], all
// little-endian. The checksum covers only the payload, so a torn header, a
// torn payload, and bit rot are all detected the same way: the frame at the
// scan cursor fails to validate and the scan stops there.
constexpr size_t kHeaderBytes = sizeof(uint32_t) + sizeof(uint64_t);

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

double GetDouble(const uint8_t* p) {
  const uint64_t bits = GetU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<uint8_t> SerializeRecord(const WalRecord& record) {
  std::vector<uint8_t> payload;
  payload.push_back(static_cast<uint8_t>(record.type));
  payload.push_back(static_cast<uint8_t>(record.decision));
  PutU64(&payload, record.query_id);
  PutU64(&payload, record.query_fingerprint);
  PutDouble(&payload, record.epsilon);
  PutU64(&payload, record.rows.size());
  for (uint64_t row : record.rows) PutU64(&payload, row);

  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, Fnv1a64(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

// Parses one payload. Returns false on a structurally invalid payload (which
// counts as a corrupt record even when the checksum collided).
bool ParsePayload(const uint8_t* p, size_t len, WalRecord* out) {
  constexpr size_t kFixed = 1 + 1 + 8 + 8 + 8 + 8;
  if (len < kFixed) return false;
  const uint8_t type = p[0];
  if (type < static_cast<uint8_t>(WalRecordType::kDecision) ||
      type > static_cast<uint8_t>(WalRecordType::kEpochFlipAbort)) {
    return false;
  }
  const uint8_t decision = p[1];
  if (decision > static_cast<uint8_t>(WalDecision::kAdmitted)) return false;
  out->type = static_cast<WalRecordType>(type);
  out->decision = static_cast<WalDecision>(decision);
  out->query_id = GetU64(p + 2);
  out->query_fingerprint = GetU64(p + 10);
  out->epsilon = GetDouble(p + 18);
  const uint64_t num_rows = GetU64(p + 26);
  if (len != kFixed + num_rows * 8) return false;
  out->rows.clear();
  out->rows.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    out->rows.push_back(GetU64(p + kFixed + i * 8));
  }
  return true;
}

}  // namespace

bool WalRecord::operator==(const WalRecord& other) const {
  return type == other.type && query_id == other.query_id &&
         query_fingerprint == other.query_fingerprint &&
         decision == other.decision && epsilon == other.epsilon &&
         rows == other.rows;
}

Result<size_t> MemWalIo::Append(const std::vector<uint8_t>& bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
  return bytes.size();
}

Status MemWalIo::Sync() {
  synced_size_ = bytes_.size();
  return Status::OK();
}

Status MemWalIo::Truncate(size_t new_size) {
  if (new_size > bytes_.size()) {
    return Status::OutOfRange("truncate past end of WAL");
  }
  bytes_.resize(new_size);
  if (synced_size_ > new_size) synced_size_ = new_size;
  return Status::OK();
}

Result<std::vector<uint8_t>> MemWalIo::ReadAll() const { return bytes_; }

void MemWalIo::SimulateCrash() { bytes_.resize(synced_size_); }

void MemWalIo::CorruptByte(size_t offset) {
  TRIPRIV_CHECK(offset < bytes_.size());
  bytes_[offset] ^= 0xFF;
}

FaultyWalIo::FaultyWalIo(WalIo* base, const WalFaultPlan& plan)
    : base_(base), plan_(plan), rng_(plan.seed) {
  TRIPRIV_CHECK(base_ != nullptr);
}

Result<size_t> FaultyWalIo::Append(const std::vector<uint8_t>& bytes) {
  if (appends_ >= plan_.die_after_appends) died_ = true;
  if (died_) {
    return Status::Unavailable("WAL device failed");
  }
  ++appends_;
  if (!bytes.empty() && rng_.Bernoulli(plan_.short_write_rate)) {
    ++short_writes_;
    // Persist a strict prefix: the classic torn write.
    const size_t persisted = static_cast<size_t>(rng_.UniformU64(bytes.size()));
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(persisted));
    TRIPRIV_ASSIGN_OR_RETURN(size_t wrote, base_->Append(prefix));
    return wrote;  // < bytes.size(): caller sees the short write
  }
  return base_->Append(bytes);
}

Status FaultyWalIo::Sync() {
  if (died_) {
    return Status::Unavailable("WAL device failed");
  }
  if (rng_.Bernoulli(plan_.sync_fail_rate)) {
    ++sync_failures_;
    return Status::Unavailable("WAL sync failed");
  }
  return base_->Sync();
}

Status FaultyWalIo::Truncate(size_t new_size) {
  if (died_) {
    return Status::Unavailable("WAL device failed");
  }
  return base_->Truncate(new_size);
}

Result<std::vector<uint8_t>> FaultyWalIo::ReadAll() const {
  return base_->ReadAll();
}

AuditWal::AuditWal(WalIo* io) : io_(io) {
  TRIPRIV_CHECK(io_ != nullptr);
  durable_size_ = io_->size();
}

Status AuditWal::Append(const WalRecord& record) {
  if (broken_) {
    return Status::Unavailable("audit WAL is broken (earlier torn write "
                               "could not be repaired)");
  }
  const std::vector<uint8_t> frame = SerializeRecord(record);

  auto fail = [this](Status cause) -> Status {
    ++append_failures_;
    // The record is (possibly partially) on the device but not durable.
    // Repair by truncating back to the last durable offset; if the device
    // refuses even that, latch fail-stop so no later append can land after
    // a torn frame and masquerade as a valid log.
    Status repair = io_->Truncate(durable_size_);
    if (!repair.ok()) {
      broken_ = true;
      return Status::Unavailable("audit WAL append failed and tail repair "
                                 "failed; WAL is now fail-stop: " +
                                 cause.message());
    }
    return cause;
  };

  // The WAL is the epsilon ledger — spend amounts are exactly what this
  // channel exists to persist.
  // NOLINTNEXTLINE(taint-flow-to-sink)
  auto appended = io_->Append(frame);
  if (!appended.ok()) return fail(appended.status());
  if (*appended != frame.size()) {
    // Byte counts of the framed record, not its contents.
    // NOLINTNEXTLINE(taint-flow-to-sink)
    return fail(Status::Unavailable(
        "short WAL write: " + std::to_string(*appended) + " of " +
        std::to_string(frame.size()) + " bytes persisted"));
  }
  Status synced = io_->Sync();
  if (!synced.ok()) return fail(synced);

  durable_size_ += frame.size();
  ++records_appended_;
  bytes_appended_ += frame.size();
  last_append_bytes_ = frame.size();
  return Status::OK();
}

Result<WalRecoveryResult> AuditWal::Recover(WalIo* io) {
  TRIPRIV_CHECK(io != nullptr);
  TRIPRIV_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, io->ReadAll());

  WalRecoveryResult result;
  size_t cursor = 0;
  while (cursor < bytes.size()) {
    const size_t remaining = bytes.size() - cursor;
    if (remaining < kHeaderBytes) break;  // torn header
    const uint32_t len = GetU32(bytes.data() + cursor);
    const uint64_t checksum = GetU64(bytes.data() + cursor + 4);
    if (remaining < kHeaderBytes + len) break;  // torn payload
    const uint8_t* payload = bytes.data() + cursor + kHeaderBytes;
    if (Fnv1a64(payload, len) != checksum) break;  // corrupt payload
    WalRecord record;
    if (!ParsePayload(payload, len, &record)) break;  // structurally invalid
    result.records.push_back(std::move(record));
    cursor += kHeaderBytes + len;
  }

  result.bytes_truncated = bytes.size() - cursor;
  if (result.bytes_truncated > 0) {
    TRIPRIV_RETURN_IF_ERROR(io->Truncate(cursor));
  }
  return result;
}

}  // namespace tripriv
