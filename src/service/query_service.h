// Fault-tolerant front-end over the protected statistical database and the
// private-aggregation (PIR) path.
//
// QueryService composes the robustness primitives of this directory into
// one serving ladder with a single invariant: **fail closed**. Whatever
// breaks — a backend fault, an I/O fault in the audit log, load, a crash
// mid-request — every outcome is one of
//
//     exact protected answer  >  epsilon-DP degraded answer  >  typed refusal
//
// and never an unprotected exact answer, and never an answer the healthy
// policy would have refused.
//
// Request path (Submit):
//   1. policy stage — the query set is computed and the AuditPolicy
//      consulted FIRST, before admission control or deadline checks, and
//      the decision is recorded in the in-memory audit state and the
//      crash-recoverable AuditWal. Running the policy unconditionally makes
//      the audit-state evolution a deterministic function of the query
//      sequence alone, identical in healthy and faulty runs — faults can
//      only turn answers into refusals, never refusals into answers;
//   2. admission control — a full virtual queue sheds the request with
//      kResourceExhausted before any backend work;
//   3. primary path — exact evaluation under the request Deadline (cost
//      charged to the SimClock), guarded by a per-backend CircuitBreaker
//      and retried under the RetryPolicy truncated to the deadline;
//   4. degraded path — on a transient primary failure the service answers
//      from an epsilon-DP Laplace backend instead (the one protection in
//      this codebase that needs no query inspection), charging a durable
//      epsilon budget: the spend is WAL-logged before the answer is
//      released, and a budget overrun refuses;
//   5. typed refusal otherwise.
//
// Answers are acknowledged only after their WAL records are durable
// (ack-after-commit), so a restart via Create() on the surviving log
// recovers an audit state that covers every answer any client ever saw —
// the monotone-recovery property the chaos suite asserts.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/instruments.h"
#include "pir/aggregate.h"
#include "querydb/protection.h"
#include "service/admission.h"
#include "service/audit_wal.h"
#include "service/circuit_breaker.h"
#include "service/pir_failover.h"
#include "util/clock.h"
#include "util/retry.h"

namespace tripriv {

/// Seed-deterministic adversity injected into the serving path. WAL-level
/// faults are composed separately by wrapping the WalIo in a FaultyWalIo.
struct ServiceFaultPlan {
  /// P(one primary-backend attempt fails with kUnavailable).
  double backend_fault_rate = 0.0;
  /// P(the service crashes after committing a decision but before releasing
  /// the answer) — the window where fail-closed matters most.
  double crash_mid_answer_rate = 0.0;
  /// P(one degraded-path (DP) attempt fails with kUnavailable).
  double dp_fault_rate = 0.0;
  /// P(one aggregate-PIR replica attempt fails with kUnavailable).
  double aggregate_fault_rate = 0.0;
  /// Seed of the fault RNG.
  uint64_t seed = 0xC0FFEE;
};

/// Where in the degradation ladder an answer came from.
enum class AnswerTier : uint8_t {
  kProtected,   ///< exact answer under the configured protection mode
  kDpDegraded,  ///< epsilon-DP Laplace answer from the degraded path
  kRefused,     ///< typed refusal; `refusal` says why
};

const char* AnswerTierToString(AnswerTier tier);

/// Outcome of one Submit call.
struct ServiceAnswer {
  AnswerTier tier = AnswerTier::kRefused;
  /// Valid for kProtected / kDpDegraded.
  ProtectedAnswer answer;
  /// Valid for kRefused: a non-OK transient or permanent status.
  Status refusal;
  /// Service-assigned position of the query (matches its WAL records).
  uint64_t query_id = 0;
};

/// The side-effect-free prefix of the serving ladder, computed by Prepare().
/// Batch executors run Prepare for many queries in parallel (it touches no
/// mutable service state), then feed the results through SubmitPrepared
/// serially in submission order so the audit/WAL evolution is identical to
/// a serial Submit loop.
struct PreparedQuery {
  /// The query set, or the malformed-query error Submit would refuse with.
  Result<std::vector<size_t>> rows = Status::Internal("query not prepared");
  /// FNV of the query's canonical rendering (what the WAL stores).
  uint64_t fingerprint = 0;
};

/// Service configuration.
struct QueryServiceConfig {
  /// Protection mode of the primary path; kQuerySetSize / kAudit policy
  /// checks are lifted into the service so they can run against
  /// WAL-recovered audit state.
  ProtectionConfig protection;
  /// Epsilon of ONE degraded answer.
  double degrade_epsilon = 0.5;
  /// Total epsilon the degraded path may spend over the service lifetime
  /// (durable across restarts via the WAL).
  double epsilon_budget = 8.0;
  AdmissionConfig admission;
  CircuitBreakerConfig breaker;
  RetryPolicy retry;
  /// Deadline for Submit calls that do not bring their own.
  uint64_t default_deadline_ticks = 64;
  ServiceFaultPlan faults;
  uint64_t seed = 7;
};

/// Serving statistics (observability for tests and the bench harness).
struct ServiceStats {
  uint64_t received = 0;
  uint64_t protected_answers = 0;
  uint64_t dp_answers = 0;
  uint64_t refusals = 0;
  /// Refusals decided by the protection policy itself (healthy behaviour).
  uint64_t policy_refusals = 0;
  /// Requests shed by admission control.
  uint64_t shed = 0;
  /// Primary-path failures that entered the degraded path.
  uint64_t degraded_attempts = 0;
  /// WAL appends that failed (each one forced a refusal).
  uint64_t wal_append_failures = 0;
};

/// Fault-tolerant query service; see file comment.
class QueryService {
 public:
  /// Builds a service over `data`, recovering audit state and epsilon
  /// spend from `wal_io` (which may hold a torn log from a crashed
  /// predecessor). `wal_io` must outlive the service.
  static Result<QueryService> Create(DataTable data, QueryServiceConfig config,
                                     WalIo* wal_io);

  QueryService(QueryService&&) = default;
  QueryService& operator=(QueryService&&) = default;

  /// Runs one query through the serving ladder with the default deadline.
  ServiceAnswer Submit(const StatQuery& query);
  /// Same with an explicit deadline.
  ServiceAnswer Submit(const StatQuery& query, const Deadline& deadline);

  /// The pure, thread-safe prefix of Submit: evaluates the query predicate
  /// against the backend table and fingerprints the query. Touches no
  /// mutable service state, so a BatchExecutor may run it concurrently for
  /// many queries.
  PreparedQuery Prepare(const StatQuery& query) const;

  /// The stateful remainder of Submit, consuming a Prepare() result. NOT
  /// thread-safe; callers serialize invocations in submission order, which
  /// keeps the audit-state and WAL evolution identical to a serial Submit
  /// loop. Submit(query, deadline) == SubmitPrepared(query, Prepare(query),
  /// deadline).
  ServiceAnswer SubmitPrepared(const StatQuery& query, PreparedQuery prepared,
                               const Deadline& deadline);
  /// Same with the default deadline.
  ServiceAnswer SubmitPrepared(const StatQuery& query, PreparedQuery prepared);

  /// Attaches the private-aggregation path: replicated grid servers, the
  /// Paillier client, and the server-side noise RNG. All pointers must
  /// outlive the service; replicas must be built over the same grid.
  void AttachAggregateBackends(std::vector<const PrivateAggregateServer*> replicas,
                               PrivateAggregateClient* client,
                               Rng* server_noise_rng);

  /// epsilon-DP private COUNT(*) WHERE `predicate` over the aggregate-PIR
  /// path, failing over across replicas under the retry policy and
  /// `deadline`. Charges `degrade_epsilon` to the durable budget (WAL
  /// ack-after-commit, like the degraded path).
  Result<int64_t> PrivateDpCount(const Predicate& predicate,
                                 const Deadline& deadline);

  /// Attaches a record-retrieval PIR backend (must outlive the service).
  void AttachPirBackend(FailoverPirClient* pir);

  /// Attaches an observability bundle (must outlive the service; null
  /// detaches). From then on the serving ladder pushes counters, batch
  /// histograms, and — when the bundle carries a TraceRecorder — spans for
  /// each ladder stage, and WAL-recovered epsilon spend is mirrored into
  /// the bundle's budget accountant. Purely additive: instruments never
  /// touch the request clock or change any serving decision.
  void AttachInstruments(obs::ServiceMetrics* metrics);

  /// Copies the sampled component counters (queue depth, breaker states,
  /// PIR failover totals) into the attached bundle's gauges. No-op when no
  /// bundle is attached. Call from the serial driver, never mid-batch.
  void PublishMetrics();

  /// The attached bundle (null when none) — lets batch executors push
  /// batch-shape histograms alongside the service's own counters.
  obs::ServiceMetrics* instruments() const { return metrics_; }

  /// Tags the NEXT SubmitPrepared call with a tenant class
  /// (obs::kClassInteractive ...), so shed events carry an allowlisted,
  /// non-sensitive class label instead of landing in "unattributed". The
  /// tag covers exactly one request: SubmitPrepared resets it so an
  /// untagged caller can never inherit the previous tenant's class.
  /// Principal ids never enter this seam — callers map principal→class
  /// before the service sees the request.
  void set_request_class(uint8_t cls) { request_class_ = cls; }
  uint8_t request_class() const { return request_class_; }

  /// Privately reads record `index` through the attached failover client.
  Result<std::vector<uint8_t>> PirRead(size_t index, const Deadline& deadline);

  /// Batched private reads through the attached failover client, fanning
  /// the XOR answer kernels across `pool` (see FailoverPirClient::ReadBatch
  /// for the determinism contract). Results are positional.
  std::vector<Result<std::vector<uint8_t>>> PirReadBatch(
      const std::vector<size_t>& indices, const Deadline& deadline,
      ThreadPool* pool = nullptr);

  const ServiceStats& stats() const { return stats_; }
  const AuditPolicy& audit_policy() const { return policy_; }
  double epsilon_spent() const { return epsilon_spent_; }
  /// True after a simulated crash; every later Submit refuses. Restart by
  /// calling Create() again on the (crashed) WalIo.
  bool crashed() const { return crashed_; }
  SimClock* sim_clock() { return clock_.get(); }
  const AuditWal& wal() const { return wal_; }
  const CircuitBreaker& primary_breaker() const { return *primary_breaker_; }
  const CircuitBreaker& dp_breaker() const { return *dp_breaker_; }
  const AdmissionController& admission() const { return *admission_; }
  uint64_t next_query_id() const { return next_query_id_; }

 private:
  QueryService(DataTable data, QueryServiceConfig config, WalIo* wal_io);

  ServiceAnswer Refuse(uint64_t query_id, Status why);
  /// Span names the ladder emits, resolved to interned TraceRecorder ids
  /// once at AttachInstruments so the per-query path never compares
  /// strings. All zero (= rejected) until instruments are attached.
  struct SpanIds {
    uint32_t submit = 0;
    uint32_t policy = 0;
    uint32_t wal_append = 0;
    uint32_t admission = 0;
    uint32_t primary = 0;
    uint32_t degraded = 0;
    uint32_t epsilon_charge = 0;
    uint32_t aggregate_count = 0;
    uint32_t pir_read = 0;
    uint32_t pir_batch = 0;
  };
  /// Starts a trace span when a TraceRecorder is attached (0 otherwise).
  uint64_t BeginSpan(uint32_t name_id, uint64_t parent, uint64_t query_id);
  /// Ends `span` (no-op for span 0 / no recorder).
  void FinishSpan(uint64_t span, StatusCode code);
  /// The ladder body; `submit_span` parents the per-stage spans.
  ServiceAnswer SubmitPreparedImpl(const StatQuery& query,
                                   PreparedQuery prepared,
                                   const Deadline& deadline,
                                   uint64_t submit_span);
  /// The primary (exact, protected) path: breaker + retries + deadline.
  Result<ProtectedAnswer> TryPrimary(const StatQuery& query,
                                     const Deadline& deadline);
  /// The degraded (epsilon-DP) path: breaker + budget + WAL spend record.
  ServiceAnswer TryDegraded(const StatQuery& query, uint64_t query_id);
  /// Charges epsilon to the durable budget; OK only once the spend record
  /// is durable. `aggregate_path` only routes the spend to the right
  /// budget principal in the attached instruments.
  Status ChargeEpsilon(uint64_t query_id, uint64_t fingerprint,
                       bool aggregate_path = false);

  QueryServiceConfig config_;
  std::unique_ptr<SimClock> clock_;
  AuditWal wal_;
  /// Size/overlap policy over WAL-recovered state; the service's source of
  /// truth (the backends below run with the policy modes stripped).
  AuditPolicy policy_;
  /// Primary backend: the configured mode minus the lifted policy checks.
  StatDatabase backend_;
  /// Degraded backend: epsilon-DP Laplace at degrade_epsilon per answer.
  StatDatabase dp_db_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<CircuitBreaker> primary_breaker_;
  std::unique_ptr<CircuitBreaker> dp_breaker_;
  Rng fault_rng_;
  ServiceStats stats_;
  double epsilon_spent_ = 0.0;
  uint64_t next_query_id_ = 0;
  bool crashed_ = false;
  /// Tenant class of the in-flight request (see set_request_class).
  uint8_t request_class_ = obs::kClassUnattributed;

  // Optional attached paths.
  std::vector<const PrivateAggregateServer*> aggregate_replicas_;
  PrivateAggregateClient* aggregate_client_ = nullptr;
  Rng* aggregate_server_rng_ = nullptr;
  FailoverPirClient* pir_ = nullptr;
  obs::ServiceMetrics* metrics_ = nullptr;
  SpanIds span_ids_;
};

}  // namespace tripriv
