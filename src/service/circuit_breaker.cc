#include "service/circuit_breaker.h"

namespace tripriv {

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config,
                               SimClock* clock)
    : config_(config), clock_(clock), rng_(config.seed) {
  TRIPRIV_CHECK(clock_ != nullptr);
  TRIPRIV_CHECK(config_.failure_threshold > 0);
  TRIPRIV_CHECK(config_.half_open_successes > 0);
}

void CircuitBreaker::TripOpen() {
  state_ = BreakerState::kOpen;
  ++times_opened_;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  uint64_t jitter = 0;
  if (config_.open_jitter_ticks > 0) {
    jitter = rng_.UniformU64(config_.open_jitter_ticks + 1);
  }
  reopen_at_ = clock_->now() + config_.open_ticks + jitter;
}

bool CircuitBreaker::AllowRequest() {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock_->now() < reopen_at_) {
        ++rejected_;
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      ++half_open_probes_;
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        ++rejected_;
        return false;
      }
      probe_in_flight_ = true;
      ++half_open_probes_;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kOpen:
      // A straggler from before the trip; the open timer stands.
      break;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
      }
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripOpen();
      }
      break;
    case BreakerState::kOpen:
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: the backend is still sick.
      TripOpen();
      break;
  }
}

}  // namespace tripriv
