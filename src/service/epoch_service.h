// The mutable protected database: write admission, WAL-journaled epoch
// flips, and the fail-closed respondent-privacy gate.
//
// Everything upstream of this file serves a static snapshot: anonymize
// once, serve forever. EpochedDatabase makes the snapshot a *sequence* —
// writers submit RowMutations into a bounded pending buffer, and Flip()
// turns the buffer into the next epoch under one invariant borrowed from
// the PR 3 degradation ladder: **never publish unprotected**. A flip that
// cannot prove the new table keeps every MDAV group at size >= k (and the
// table k-anonymous on the QI columns) is refused with a typed Status and
// the old epoch keeps serving, exactly as a broken backend degrades to a
// refusal rather than an unprotected answer.
//
// Flip state machine (section 11 of DESIGN.md):
//
//   Idle
//    └─ Flip(): WAL kEpochFlipBegin (intent, durable)
//        └─ build candidate: copy-on-write apply + incremental MDAV
//            ├─ gate FAILS  → WAL kEpochFlipAbort(privacy), pending buffer
//            │                restored, old epoch serves  [fail closed]
//            ├─ I/O fault   → WAL kEpochFlipAbort(io), staged image erased,
//            │                old epoch serves            [fail closed]
//            └─ gate holds  → EpochStore Put + Sync (data durable FIRST)
//                └─ WAL kEpochFlipCommit (ack-after-commit)
//                    └─ EpochManager::Publish (readers see it atomically)
//
// Crash safety: recovery (Create on the surviving WAL + store) adopts the
// epoch of the LAST durable kEpochFlipCommit record, verifies the stored
// image against the record's table checksum, and garbage-collects every
// other image. A crash at any byte of the WAL therefore lands on exactly
// the old or the new epoch — the commit record is durable or it is not —
// and never on a torn hybrid; the chaos suite drives FaultyWalIo through
// every record boundary to prove it.
//
// Determinism: flips draw no randomness, the incremental MDAV pass is
// bit-identical at any thread count, and flip latency is charged to a
// SimClock from a deterministic cost model — the WAL byte stream, the
// epoch contents, and every metric are pure functions of the mutation
// sequence.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "obs/instruments.h"
#include "sdc/incremental_mdav.h"
#include "service/audit_wal.h"
#include "table/data_table.h"
#include "table/mutation.h"
#include "table/versioned_table.h"
#include "util/clock.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Configuration of the mutable protected database.
struct EpochConfig {
  /// Minimum MDAV group size — the respondent-privacy floor every epoch
  /// must prove before it may serve.
  size_t k = 3;
  /// Numeric quasi-identifier columns that are centroid-masked and gated.
  std::vector<size_t> qi_cols;
  /// Write admission: pending mutations beyond this are shed with
  /// kResourceExhausted (the write-side analog of the PR 3 query queue).
  size_t max_pending_mutations = 1024;
  /// Hard bound on live epochs (current + pinned retirees); Flip blocks
  /// until readers drain below it. See EpochManager.
  size_t max_live_epochs = 2;
  /// Deterministic flip cost model, charged to the SimClock:
  /// base + per_row * rows_reclustered ticks.
  uint64_t flip_base_ticks = 8;
  uint64_t flip_ticks_per_row = 1;
};

/// Serving statistics of the mutation subsystem.
struct EpochStats {
  uint64_t mutations_admitted = 0;
  uint64_t mutations_shed = 0;
  uint64_t mutations_applied = 0;
  uint64_t flips_attempted = 0;
  uint64_t flips_committed = 0;
  /// Fail-closed refusals: a group would have dropped below k.
  uint64_t flips_refused_privacy = 0;
  /// Store/WAL faults and invalid batches.
  uint64_t flips_refused_io = 0;
  uint64_t rows_reclustered_total = 0;
  /// Epoch adopted from a predecessor's WAL at Create (0 = fresh start).
  uint64_t recovered_epoch = 0;
};

/// Epoch-versioned mutable protected database; see file comment. Flip and
/// SubmitMutation are single-writer (call them from one thread); Pin() and
/// everything reachable through a pin are safe from any thread.
class EpochedDatabase {
 public:
  /// Builds the database over `wal_io` + `store`, both of which must
  /// outlive it and may hold the torn remains of a crashed predecessor.
  /// With no committed flip in the WAL, epoch 1 is bootstrapped from
  /// `initial_base` (full MDAV + gate; a base that cannot meet k is
  /// refused with kFailedPrecondition — the database never starts
  /// unprotected). With a committed flip, the last committed epoch is
  /// adopted from the store, checksum-verified, and `initial_base` is
  /// ignored.
  static Result<EpochedDatabase> Create(const DataTable& initial_base,
                                        EpochConfig config, WalIo* wal_io,
                                        EpochStore* store);

  EpochedDatabase(EpochedDatabase&&) = default;
  EpochedDatabase& operator=(EpochedDatabase&&) = default;

  /// Queues one mutation for the next flip. Sheds with kResourceExhausted
  /// when the pending buffer is full; payload errors surface at Flip.
  Status SubmitMutation(RowMutation mutation);

  /// Builds, gates, journals, and publishes the next epoch from the
  /// pending buffer (empty buffer = a pure re-verification flip). Returns
  /// the new epoch number, or:
  ///   kFailedPrecondition  the privacy gate refused (pending buffer kept —
  ///                        add covering inserts and retry);
  ///   kInvalidArgument /
  ///   kNotFound            the batch was invalid (dropped — transactional);
  ///   kUnavailable         store/WAL fault (pending buffer kept).
  /// On every non-OK outcome the previous epoch keeps serving.
  Result<uint64_t> Flip(ThreadPool* workers = nullptr);

  /// Pins the current epoch for a consistent read (thread-safe).
  PinnedEpoch Pin() { return manager_->Pin(); }

  /// The manager, for snapshot-pinned read paths (pir/epoch_pir.h).
  EpochManager* manager() { return manager_.get(); }

  uint64_t epoch() const { return manager_->current_epoch(); }
  size_t pending_mutations() const { return pending_.size(); }
  const EpochStats& stats() const { return stats_; }
  const AuditWal& wal() const { return wal_; }
  SimClock* sim_clock() { return clock_.get(); }
  const EpochConfig& config() const { return config_; }

  /// Attaches an observability bundle (null detaches; must outlive the
  /// database). Recovery state is mirrored with absolute Sets, so
  /// re-attaching after a crash never double-applies epoch counters.
  void AttachInstruments(obs::EpochMetrics* metrics);
  /// Copies sampled epoch state (current epoch, live epochs, pending
  /// depth, store footprint) into the attached bundle's gauges.
  void PublishMetrics();

 private:
  EpochedDatabase(EpochConfig config, WalIo* wal_io, EpochStore* store);

  /// Applies `batch` to a copy of the current epoch and runs incremental
  /// MDAV maintenance; returns the candidate next epoch.
  Result<std::shared_ptr<EpochData>> BuildCandidate(
      const std::vector<RowMutation>& batch, uint64_t target_epoch,
      ThreadPool* workers, IncrementalMdavResult* maintenance,
      MutationApplyResult* applied);
  /// The fail-closed respondent-privacy gate over a candidate.
  Status GateRespondentPrivacy(const EpochData& candidate,
                               size_t min_group_size) const;
  /// Appends a flip record, tolerating append failure on the abort path
  /// (the refusal stands whether or not it could be journaled).
  void JournalAbort(uint64_t target_epoch, WalFlipAbortReason reason);
  /// Bootstraps epoch 1 from `initial_base` (full MDAV + gate + journal).
  Status BootstrapFirstEpoch(const DataTable& initial_base,
                             ThreadPool* workers);

  EpochConfig config_;
  std::unique_ptr<SimClock> clock_;
  AuditWal wal_;
  EpochStore* store_;
  std::unique_ptr<EpochManager> manager_;
  std::deque<RowMutation> pending_;
  EpochStats stats_;
  obs::EpochMetrics* metrics_ = nullptr;
};

}  // namespace tripriv
