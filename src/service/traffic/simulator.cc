#include "service/traffic/simulator.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "service/audit_wal.h"
#include "table/datasets.h"
#include "util/logging.h"

namespace tripriv {
namespace traffic {
namespace {

/// Maps an event key to a query shape. Three families over the census
/// table, literals folded down to a handful of values — query text is
/// shaped by the key stream, never by raw principal ids.
StatQuery QueryForKey(uint64_t key) {
  StatQuery query;
  query.table = "census";
  const uint64_t variant = key / 3;
  switch (key % 3) {
    case 0: {
      const int64_t lo = 18 + static_cast<int64_t>(variant % 55);
      query.where = Predicate::And(
          Predicate::Compare("age", CompareOp::kGe, Value(lo)),
          Predicate::Compare("age", CompareOp::kLe, Value(lo + 12)));
      break;
    }
    case 1: {
      const int64_t floor = 1 + static_cast<int64_t>(variant % 12);
      query.where =
          Predicate::Compare("education", CompareOp::kGe, Value(floor));
      break;
    }
    default: {
      query.where = Predicate::Compare(
          "region", CompareOp::kEq,
          Value("R" + std::to_string(variant % 12)));
      break;
    }
  }
  return query;
}

uint8_t TierIndex(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kProtected:
      return obs::kTierProtected;
    case AnswerTier::kDpDegraded:
      return obs::kTierDpDegraded;
    case AnswerTier::kRefused:
      return obs::kTierRefused;
  }
  return obs::kTierRefused;
}

}  // namespace

uint64_t SimulationReport::total_arrivals() const {
  uint64_t total = 0;
  for (const ClassTotals& totals : by_class) total += totals.arrivals;
  return total;
}

uint64_t SimulationReport::total_scheduler_sheds() const {
  uint64_t total = 0;
  for (const ClassTotals& totals : by_class) {
    total += totals.shed_queue_full + totals.shed_overload +
             totals.shed_deadline;
  }
  return total;
}

Result<SimulationReport> RunTrafficSimulation(const SimulatorConfig& config,
                                              ThreadPool* pool,
                                              obs::MetricsRegistry* registry) {
  if (config.window_ticks < 1) {
    return Status::InvalidArgument("window_ticks must be >= 1");
  }
  if (config.batches_per_window < 1) {
    return Status::InvalidArgument("batches_per_window must be >= 1");
  }

  // Widen service admission past one window's dispatch volume: the fair
  // scheduler is the designed shedding point; the admission queue stays a
  // backstop instead of a second, class-blind shedder.
  QueryServiceConfig service_config = config.service;
  const size_t window_dispatch =
      config.scheduler.batch_size * config.batches_per_window;
  if (service_config.admission.capacity < window_dispatch + 4) {
    service_config.admission.capacity = window_dispatch + 4;
  }

  MemWalIo wal_io;
  TRIPRIV_ASSIGN_OR_RETURN(
      QueryService service,
      QueryService::Create(MakeCensus(config.table_rows, config.table_seed),
                           service_config, &wal_io));

  // Optional instruments. The service bundle carries the shed-by-class
  // counter (satellite of the same per-class surface); the traffic bundle
  // carries the latency histograms the SloGate reads.
  std::optional<obs::ServiceMetrics> service_metrics;
  std::optional<obs::TrafficMetrics> traffic_metrics;
  if (registry != nullptr) {
    TRIPRIV_ASSIGN_OR_RETURN(
        obs::ServiceMetrics sm,
        obs::ServiceMetrics::Create(registry, nullptr, nullptr));
    service_metrics.emplace(std::move(sm));
    service.AttachInstruments(&*service_metrics);
    TRIPRIV_ASSIGN_OR_RETURN(obs::TrafficMetrics tm,
                             obs::TrafficMetrics::Create(registry));
    traffic_metrics.emplace(std::move(tm));
  }

  BatchExecutor executor(&service, pool);
  TrafficGenerator generator(config.profile);
  FairScheduler scheduler(config.profile, config.scheduler);
  SimClock* clock = service.sim_clock();

  // tenant -> class, precomputed once (the publish loop runs per window).
  std::vector<uint8_t> tenant_class(config.profile.num_tenants);
  for (uint32_t t = 0; t < config.profile.num_tenants; ++t) {
    tenant_class[t] = TenantClass(config.profile, t);
  }

  SimulationReport report;
  std::vector<TrafficEvent> window_events;
  std::vector<TrafficEvent> shed_events;
  std::vector<TrafficEvent> runnable;
  std::vector<TrafficEvent> expired;
  std::vector<StatQuery> queries;
  std::vector<uint8_t> classes;

  const uint64_t total_windows = config.num_windows + config.drain_windows;
  for (uint64_t w = 0; w < total_windows; ++w) {
    const uint64_t window_end = (w + 1) * config.window_ticks;

    // --- Arrivals (none during drain windows). The generator stream is a
    // pure function of the profile; enqueue order is arrival order.
    window_events.clear();
    if (w < config.num_windows) {
      generator.GenerateWindow(w * config.window_ticks, window_end,
                               &window_events);
    }
    // The window's wall advances regardless of how little work happened —
    // open-loop load never waits for the service.
    if (clock->now() < window_end) clock->Advance(window_end - clock->now());

    for (const TrafficEvent& event : window_events) {
      ++report.by_class[event.cls].arrivals;
      if (traffic_metrics) traffic_metrics->OnArrival(event.cls);
      const EnqueueOutcome outcome = scheduler.Enqueue(event);
      if (!outcome.queued) {
        ++report.by_class[event.cls].shed_queue_full;
        if (traffic_metrics) {
          traffic_metrics->OnShed(event.cls, obs::kShedQueueFull);
        }
      }
    }

    // --- Overload control: shed newest-first from over-share tenants
    // only, each victim leaving as a typed refusal.
    shed_events.clear();
    scheduler.EnforceWatermark(&shed_events);
    for (const TrafficEvent& event : shed_events) {
      ++report.by_class[event.cls].shed_overload;
      if (traffic_metrics) {
        traffic_metrics->OnShed(event.cls, obs::kShedOverload);
      }
    }

    // --- Service: a bounded number of DRR batches per window. Deadline
    // corpses drop at dispatch; live events run the real serving ladder.
    for (size_t batch = 0; batch < config.batches_per_window; ++batch) {
      runnable.clear();
      expired.clear();
      scheduler.PollRound(clock->now(), &runnable, &expired);
      for (const TrafficEvent& event : expired) {
        ++report.by_class[event.cls].shed_deadline;
        if (traffic_metrics) {
          traffic_metrics->OnShed(event.cls, obs::kShedDeadline);
        }
      }
      if (runnable.empty()) continue;
      queries.clear();
      classes.clear();
      for (const TrafficEvent& event : runnable) {
        queries.push_back(QueryForKey(event.key));
        classes.push_back(event.cls);
      }
      // The serving ladder is the sanctioned carrier for query-shaped
      // data: every answer it releases is policy-checked and protected
      // (exact > epsilon-DP > refusal), which is the point of the
      // simulation. Keys reach it as MixKey digests folded to a handful
      // of literal values, never raw principal ids.
      const std::vector<ServiceAnswer> answers =
          // NOLINTNEXTLINE(taint-flow-to-sink)
          executor.ExecuteQueryBatch(queries, classes);
      const uint64_t completed_at = clock->now();
      for (size_t i = 0; i < answers.size(); ++i) {
        const TrafficEvent& event = runnable[i];
        ClassTotals& totals = report.by_class[event.cls];
        switch (answers[i].tier) {
          case AnswerTier::kProtected:
            ++totals.protected_answers;
            break;
          case AnswerTier::kDpDegraded:
            ++totals.dp_answers;
            break;
          case AnswerTier::kRefused:
            ++totals.refusals;
            break;
        }
        const uint64_t latency = completed_at > event.arrival_tick
                                     ? completed_at - event.arrival_tick
                                     : 0;
        totals.latency_ticks_sum += latency;
        ++totals.served;
        if (config.record_access_trail) {
          report.access_trail.push_back(
              {completed_at, event.cls, event.principal, event.key,
               TierIndex(answers[i].tier)});
        }
        if (traffic_metrics) {
          traffic_metrics->OnAnswer(event.cls, TierIndex(answers[i].tier));
          traffic_metrics->OnLatency(event.cls, latency);
        }
      }
    }

    // --- Publish sampled state from the serial loop, per the obs
    // discipline (gauges never move mid-batch).
    if (traffic_metrics) {
      uint64_t backlog_by_class[obs::kNumTenantClasses] = {};
      for (uint32_t t = 0; t < scheduler.num_tenants(); ++t) {
        backlog_by_class[tenant_class[t]] += scheduler.tenant_backlog(t);
      }
      for (uint8_t c = 0; c < obs::kNumTenantClasses; ++c) {
        traffic_metrics->PublishBacklog(c, backlog_by_class[c]);
      }
      service.PublishMetrics();
    }
  }

  report.scheduler_digest = scheduler.decision_digest();
  report.total_events = generator.events_generated();
  report.final_tick = clock->now();
  TRIPRIV_ASSIGN_OR_RETURN(std::vector<uint8_t> wal_bytes, wal_io.ReadAll());
  report.wal_bytes = wal_bytes.size();
  if (registry != nullptr) {
    report.metrics_json = obs::ToJson(registry->Snapshot());
  }
  return report;
}

}  // namespace traffic
}  // namespace tripriv
