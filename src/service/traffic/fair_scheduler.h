// Per-tenant weighted fair queueing with SLO-preserving overload control.
//
// FairScheduler sits between the traffic generator and the BatchExecutor:
// arrivals enter bounded per-tenant FIFOs (util/drr_queue), service order
// is deficit round-robin weighted by tenant class, and three shed paths
// keep the system inside its SLOs without ever weakening the protection
// ladder — a shed request becomes a *typed refusal*, the bottom rung of
// exact > epsilon-DP > refusal, never an unprotected answer:
//
//   queue_full  a tenant filled its own bounded FIFO; the push is refused
//               at the door (the flooding tenant absorbs its own overflow);
//   overload    total backlog crossed the high watermark; the scheduler
//               sheds newest-first, and ONLY from tenants above their fair
//               share of the watermark — the bounded-harm invariant
//               (checked at runtime) that makes a 100x flood invisible to
//               well-behaved tenants' p99;
//   deadline    the request's own budget expired while queued (the
//               slow-loris case); it is dropped at dispatch, before any
//               backend work.
//
// Every decision — enqueue, dispatch, shed — folds into a running FNV
// digest, so the determinism suite can assert byte-identical scheduling
// across thread counts with one integer compare.

#pragma once

#include <cstdint>
#include <vector>

#include "service/traffic/traffic_profile.h"
#include "util/clock.h"
#include "util/drr_queue.h"

namespace tripriv {
namespace traffic {

/// Scheduling shape of one tenant class.
struct ClassPolicy {
  /// DRR weight (relative throughput share).
  uint32_t weight = 1;
  /// Per-tenant queue bound.
  size_t queue_capacity = 64;
};

/// Scheduler tuning; defaults suit the bench and test profiles.
struct FairSchedulerConfig {
  /// Deficit refill per unit weight per DRR visit.
  uint64_t quantum = 4;
  /// Uniform DRR cost of one request.
  uint64_t cost_per_item = 4;
  /// Total backlog above which overload shedding engages.
  size_t high_watermark = 256;
  /// Max dispatches per PollRound (one executor batch).
  size_t batch_size = 32;
  /// Policies indexed by obs::kClass*; abusive gets low weight and a
  /// small bound, interactive the highest weight.
  ClassPolicy by_class[obs::kNumTenantClasses] = {
      /*interactive=*/{4, 64},
      /*batch=*/{2, 128},
      /*analytics=*/{1, 128},
      /*abusive=*/{1, 32},
      /*unattributed=*/{1, 64},
  };
};

/// Why (or whether) an arrival was turned away; mirrors obs::kShed*.
struct EnqueueOutcome {
  bool queued = false;
  /// Valid when !queued: obs::kShedQueueFull.
  uint8_t shed_reason = 0;
};

/// Per-scheduler counters (all by class, the allowlisted surface).
struct FairSchedulerStats {
  uint64_t enqueued[obs::kNumTenantClasses] = {};
  uint64_t dispatched[obs::kNumTenantClasses] = {};
  uint64_t shed_queue_full[obs::kNumTenantClasses] = {};
  uint64_t shed_overload[obs::kNumTenantClasses] = {};
  uint64_t shed_deadline[obs::kNumTenantClasses] = {};
};

/// Weighted fair queue over TrafficEvents; see file comment. Serial by
/// design — the simulator drives it from the one stateful loop, exactly
/// like SubmitPrepared.
class FairScheduler {
 public:
  FairScheduler(const TrafficProfile& profile, FairSchedulerConfig config);

  /// Admits `event` to its tenant's FIFO or refuses it (queue_full).
  EnqueueOutcome Enqueue(const TrafficEvent& event);

  /// Overload control: while total backlog exceeds the high watermark,
  /// sheds newest-first from the tenant most over its fair share,
  /// appending the victims to `shed`. Never touches a tenant at or below
  /// fair share (bounded harm; TRIPRIV_CHECK-enforced).
  void EnforceWatermark(std::vector<TrafficEvent>* shed);

  /// One DRR round at time `now`: dispatches up to batch_size runnable
  /// events into `runnable` (service order) and moves queue-expired
  /// events into `expired` (deadline sheds). Returns runnable count.
  size_t PollRound(uint64_t now, std::vector<TrafficEvent>* runnable,
                   std::vector<TrafficEvent>* expired);

  /// Fair share of the watermark for `tenant` (weight-proportional,
  /// >= 1): the overload shed floor.
  size_t FairShare(uint32_t tenant) const;

  size_t backlog() const { return queue_.backlog(); }
  size_t tenant_backlog(uint32_t tenant) const {
    return queue_.tenant_backlog(tenant);
  }
  uint32_t num_tenants() const { return num_tenants_; }
  const FairSchedulerStats& stats() const { return stats_; }
  const DrrQueueStats& queue_stats() const { return queue_.stats(); }

  /// FNV-1a over every (op, tenant, sequence) decision since construction
  /// — byte-identical schedules have byte-identical digests.
  uint64_t decision_digest() const { return digest_; }

 private:
  void Fold(uint8_t op, uint32_t tenant, uint64_t detail);

  FairSchedulerConfig config_;
  uint32_t num_tenants_;
  uint64_t total_weight_ = 0;
  DrrQueue queue_;
  /// Event arena; DRR items are indices into it. Slots are written once
  /// and read once — the arena only grows, which for simulation-sized
  /// runs (10^4..10^6 events) is cheaper than a free list and keeps
  /// handles stable for the digest.
  std::vector<TrafficEvent> arena_;
  FairSchedulerStats stats_;
  uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::vector<std::pair<uint32_t, uint64_t>> scratch_;
  std::vector<uint64_t> shed_scratch_;
};

}  // namespace traffic
}  // namespace tripriv
