#include "service/traffic/traffic_profile.h"

#include <cmath>

#include "util/logging.h"

namespace tripriv {
namespace traffic {
namespace {

/// SplitMix64 finalizer — decouples the query-shape key from the raw
/// principal id so the key stream has no exploitable structure while
/// staying a pure function of (principal, tick).
uint64_t MixKey(uint64_t principal, uint64_t tick) {
  uint64_t z = principal * 0x9E3779B97F4A7C15ULL + tick;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

uint32_t PrincipalTenant(const TrafficProfile& profile, uint64_t principal) {
  TRIPRIV_CHECK_GE(profile.num_tenants, 1u);
  return static_cast<uint32_t>(principal % profile.num_tenants);
}

uint8_t TenantClass(const TrafficProfile& profile, uint32_t tenant) {
  if (tenant == profile.flood_tenant || tenant == profile.loris_tenant) {
    return obs::kClassAbusive;
  }
  switch (tenant % 3) {
    case 0:
      return obs::kClassInteractive;
    case 1:
      return obs::kClassBatch;
    default:
      return obs::kClassAnalytics;
  }
}

TrafficProfile TrafficProfile::Steady(uint64_t seed) {
  TrafficProfile p;
  p.seed = seed;
  return p;
}

TrafficProfile TrafficProfile::Diurnal(uint64_t seed) {
  TrafficProfile p = Steady(seed);
  p.diurnal_amplitude = 0.8;
  p.diurnal_period = 256;
  return p;
}

TrafficProfile TrafficProfile::Bursty(uint64_t seed) {
  TrafficProfile p = Steady(seed);
  p.burst_on_prob = 0.02;
  p.burst_off_prob = 0.15;
  p.burst_multiplier = 4.0;
  return p;
}

TrafficProfile TrafficProfile::Flood(uint64_t seed) {
  TrafficProfile p = Steady(seed);
  p.flood_tenant = 7;
  p.flood_multiplier = 100.0;
  return p;
}

TrafficProfile TrafficProfile::SlowLoris(uint64_t seed) {
  TrafficProfile p = Steady(seed);
  p.loris_tenant = 11;
  p.loris_fraction = 0.8;
  p.loris_deadline_ticks = 1;
  return p;
}

TrafficProfile TrafficProfile::Mixed(uint64_t seed) {
  TrafficProfile p = Steady(seed);
  p.diurnal_amplitude = 0.5;
  p.burst_on_prob = 0.02;
  p.burst_off_prob = 0.15;
  p.burst_multiplier = 3.0;
  p.flood_tenant = 7;
  p.flood_multiplier = 100.0;
  p.loris_tenant = 11;
  return p;
}

TrafficGenerator::TrafficGenerator(const TrafficProfile& profile)
    : profile_(profile),
      zipf_(profile.num_principals, profile.zipf_s),
      diurnal_(profile.diurnal_amplitude, profile.diurnal_period),
      burst_(profile.burst_on_prob, profile.burst_off_prob,
             profile.burst_multiplier, profile.seed ^ 0xB02571ULL),
      rng_(profile.seed) {
  TRIPRIV_CHECK_GE(profile.num_principals, 1u);
  TRIPRIV_CHECK_GE(profile.num_tenants, 1u);
  TRIPRIV_CHECK(profile.base_rate >= 0.0);
}

TrafficEvent TrafficGenerator::MakeOrganicEvent(uint64_t t) {
  TrafficEvent event;
  event.principal = zipf_.Sample(&rng_);
  event.tenant = PrincipalTenant(profile_, event.principal);
  event.cls = TenantClass(profile_, event.tenant);
  event.arrival_tick = t;
  event.key = MixKey(event.principal, t);
  event.deadline_ticks = profile_.default_deadline_ticks;
  if (event.tenant == profile_.loris_tenant &&
      rng_.Bernoulli(profile_.loris_fraction)) {
    event.deadline_ticks = profile_.loris_deadline_ticks;
  }
  return event;
}

TrafficEvent TrafficGenerator::MakeFloodEvent(uint64_t t) {
  // The flood draws uniformly over the principals the flooding tenant
  // owns (tenant + k * num_tenants): one abusive org hammering through
  // its whole user base, not one hot key.
  const uint64_t owned =
      (profile_.num_principals + profile_.num_tenants - 1 -
       profile_.flood_tenant) /
      profile_.num_tenants;
  TrafficEvent event;
  event.principal = profile_.flood_tenant +
                    static_cast<uint64_t>(profile_.num_tenants) *
                        rng_.UniformU64(owned < 1 ? 1 : owned);
  event.tenant = profile_.flood_tenant;
  event.cls = TenantClass(profile_, event.tenant);
  event.arrival_tick = t;
  event.key = MixKey(event.principal, t);
  event.deadline_ticks = profile_.default_deadline_ticks;
  return event;
}

void TrafficGenerator::GenerateWindow(uint64_t t0, uint64_t t1,
                                      std::vector<TrafficEvent>* out) {
  TRIPRIV_CHECK(out != nullptr);
  TRIPRIV_CHECK_EQ(t0, next_tick_);  // contiguous windows own the carry state
  TRIPRIV_CHECK_LE(t0, t1);
  for (uint64_t t = t0; t < t1; ++t) {
    // One burst step per tick regardless of rate: the burst pattern is a
    // function of time, not of how many events happen to arrive.
    const double burst_multiplier =
        profile_.burst_on_prob > 0.0 ? burst_.Step() : 1.0;
    const double organic_rate =
        profile_.base_rate * diurnal_.MultiplierAt(t) * burst_multiplier;
    organic_carry_ += organic_rate;
    while (organic_carry_ >= 1.0) {
      organic_carry_ -= 1.0;
      out->push_back(MakeOrganicEvent(t));
      ++events_generated_;
    }
    if (profile_.flood_tenant != UINT32_MAX) {
      flood_carry_ += profile_.flood_multiplier * profile_.base_rate /
                      static_cast<double>(profile_.num_tenants);
      while (flood_carry_ >= 1.0) {
        flood_carry_ -= 1.0;
        out->push_back(MakeFloodEvent(t));
        ++events_generated_;
      }
    }
  }
  next_tick_ = t1;
}

}  // namespace traffic
}  // namespace tripriv
