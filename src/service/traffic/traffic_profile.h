// Seeded, replayable traffic profiles for the million-principal simulator.
//
// A TrafficProfile is a complete description of an open-loop arrival
// process: how many principals exist, how popularity skews across them
// (Zipf), how the aggregate rate swings over simulated time (diurnal wave),
// how load spikes correlate (two-state burst process), and which tenants —
// if any — misbehave (a flooding tenant pushing ~100x its fair share, a
// slow-loris tenant submitting requests whose deadlines are designed to
// expire in queue). TrafficGenerator turns a profile into a stream of
// TrafficEvents, deterministically: the same profile produces the same
// byte-exact event stream on every run, which is what lets the fairness
// and SLO suites replay adversarial scenarios as regression tests.
//
// Privacy posture: the principal id on an event is respondent-scoped data
// (TRIPRIV_SENSITIVE(record)); the only attributes that may reach metrics
// or SLO exports are the tenant *class* (five allowlisted values) — the
// sanitizing maps live here so the flow principal -> tenant -> class is a
// declared, lint-checked narrowing, not an accident of the scheduler.

#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "obs/instruments.h"
#include "util/random.h"
#include "util/workload.h"

namespace tripriv {
namespace traffic {

/// One simulated request arrival.
struct TrafficEvent {
  /// Simulated end user issuing the request — respondent-scoped; must
  /// never reach a metric label, SLO export, or log line.
  TRIPRIV_SENSITIVE(record)
  uint64_t principal = 0;
  /// Owning tenant (fair-queueing unit), in [0, num_tenants).
  uint32_t tenant = 0;
  /// obs::kClass* index of the tenant — the allowlisted label surface.
  uint8_t cls = obs::kClassUnattributed;
  /// Simulated tick the request arrived at the scheduler.
  uint64_t arrival_tick = 0;
  /// Relative deadline budget (slow-loris events carry tiny ones).
  uint64_t deadline_ticks = 0;
  /// Drives the query shape; derived from the principal's popularity
  /// rank, so hot keys concentrate exactly as the Zipf skew dictates.
  uint64_t key = 0;
};

/// Complete, seeded description of an arrival process; see file comment.
struct TrafficProfile {
  uint64_t seed = 1;
  /// Simulated end-user universe. The Zipf sampler is O(1) in this, so a
  /// million principals cost no memory.
  uint64_t num_principals = 1000000;
  /// Fair-queueing units; principals map onto tenants round-robin.
  uint32_t num_tenants = 32;
  /// Mean fleet-wide arrivals per simulated tick (before modulation).
  double base_rate = 2.0;
  /// Zipf exponent of principal popularity (rank 0 hottest).
  double zipf_s = 1.1;

  /// Diurnal rate swing: multiplier 1 +/- amplitude over one period.
  double diurnal_amplitude = 0.0;
  uint64_t diurnal_period = 256;

  /// Correlated bursts: quiet <-> burst Markov chain; multiplier applies
  /// to the base rate while bursting. on_prob == 0 disables.
  double burst_on_prob = 0.0;
  double burst_off_prob = 0.25;
  double burst_multiplier = 4.0;

  /// Adversarial flood: this tenant (UINT32_MAX = none) receives extra
  /// arrivals at flood_multiplier x its fair share (base_rate /
  /// num_tenants) on top of organic traffic.
  uint32_t flood_tenant = UINT32_MAX;
  double flood_multiplier = 100.0;

  /// Slow loris: this tenant (UINT32_MAX = none) submits a fraction of
  /// its requests with a deadline so short it expires in queue, holding
  /// scheduler slots for work that can never be served.
  uint32_t loris_tenant = UINT32_MAX;
  double loris_fraction = 0.8;
  uint64_t loris_deadline_ticks = 1;

  /// Deadline budget of well-behaved requests.
  uint64_t default_deadline_ticks = 512;

  // Named mixes, the replayable scenario library of the SLO bench and the
  // fairness suites. Each is the steady profile plus one twist.
  static TrafficProfile Steady(uint64_t seed);
  static TrafficProfile Diurnal(uint64_t seed);
  static TrafficProfile Bursty(uint64_t seed);
  static TrafficProfile Flood(uint64_t seed);
  static TrafficProfile SlowLoris(uint64_t seed);
  /// Everything at once: diurnal + bursts + flood + loris.
  static TrafficProfile Mixed(uint64_t seed);
};

/// principal -> tenant: round-robin over the tenant ring. A tenant id
/// aggregates ~num_principals / num_tenants respondents.
TRIPRIV_SANITIZES(aggregate)
uint32_t PrincipalTenant(const TrafficProfile& profile, uint64_t principal);

/// tenant -> class: the five-value allowlisted label surface. Abusive
/// tenants (flood / loris) map to kClassAbusive; organic tenants cycle
/// interactive / batch / analytics.
TRIPRIV_SANITIZES(clean)
uint8_t TenantClass(const TrafficProfile& profile, uint32_t tenant);

/// Turns a profile into its deterministic event stream, window by window.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficProfile& profile);

  /// Appends every event with arrival tick in [t0, t1) to `out`, in
  /// arrival order. Windows must be requested in increasing, contiguous
  /// order (the generator owns carry state between ticks); the stream is
  /// a pure function of the profile, so equal profiles produce
  /// byte-identical streams.
  void GenerateWindow(uint64_t t0, uint64_t t1,
                      std::vector<TrafficEvent>* out);

  uint64_t events_generated() const { return events_generated_; }
  const TrafficProfile& profile() const { return profile_; }

 private:
  /// Builds one organic event for tick `t` (draws principal + loris coin).
  TrafficEvent MakeOrganicEvent(uint64_t t);
  /// Builds one flood event for tick `t` (principal owned by the flooder).
  TrafficEvent MakeFloodEvent(uint64_t t);

  TrafficProfile profile_;
  ZipfSampler zipf_;
  DiurnalWave diurnal_;
  BurstProcess burst_;
  Rng rng_;
  /// Fractional-arrival accumulators: rate r per tick realizes as
  /// floor(carry += r) arrivals — exact, smooth, and draw-free.
  double organic_carry_ = 0.0;
  double flood_carry_ = 0.0;
  uint64_t next_tick_ = 0;
  uint64_t events_generated_ = 0;
};

}  // namespace traffic
}  // namespace tripriv
