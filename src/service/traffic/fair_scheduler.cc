#include "service/traffic/fair_scheduler.h"

#include <utility>

#include "util/logging.h"

namespace tripriv {
namespace traffic {
namespace {

/// Digest op codes (stable across builds; part of the replay contract).
constexpr uint8_t kOpEnqueue = 1;
constexpr uint8_t kOpDispatch = 2;
constexpr uint8_t kOpShedFull = 3;
constexpr uint8_t kOpShedOverload = 4;
constexpr uint8_t kOpShedDeadline = 5;

std::vector<DrrTenantConfig> BuildTenantConfigs(
    const TrafficProfile& profile, const FairSchedulerConfig& config) {
  std::vector<DrrTenantConfig> tenants(profile.num_tenants);
  for (uint32_t t = 0; t < profile.num_tenants; ++t) {
    const ClassPolicy& policy = config.by_class[TenantClass(profile, t)];
    tenants[t].weight = policy.weight < 1 ? 1 : policy.weight;
    tenants[t].capacity = policy.queue_capacity < 1 ? 1 : policy.queue_capacity;
  }
  return tenants;
}

}  // namespace

FairScheduler::FairScheduler(const TrafficProfile& profile,
                             FairSchedulerConfig config)
    : config_(config),
      num_tenants_(profile.num_tenants),
      queue_(BuildTenantConfigs(profile, config),
             config.quantum < 1 ? 1 : config.quantum) {
  TRIPRIV_CHECK_GE(config_.cost_per_item, 1u);
  TRIPRIV_CHECK_GE(config_.batch_size, 1u);
  for (uint32_t t = 0; t < num_tenants_; ++t) {
    total_weight_ += queue_.tenant_config(t).weight;
  }
}

void FairScheduler::Fold(uint8_t op, uint32_t tenant, uint64_t detail) {
  // FNV-1a over the 13 decision bytes, in a fixed little-endian layout.
  uint8_t bytes[13];
  bytes[0] = op;
  for (int i = 0; i < 4; ++i) {
    bytes[1 + i] = static_cast<uint8_t>(tenant >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    bytes[5 + i] = static_cast<uint8_t>(detail >> (8 * i));
  }
  for (uint8_t b : bytes) {
    digest_ ^= b;
    digest_ *= 1099511628211ULL;
  }
}

EnqueueOutcome FairScheduler::Enqueue(const TrafficEvent& event) {
  TRIPRIV_CHECK_LT(event.tenant, num_tenants_);
  EnqueueOutcome outcome;
  const uint64_t handle = arena_.size();
  Status pushed = queue_.Push(event.tenant, handle);
  if (!pushed.ok()) {
    ++stats_.shed_queue_full[event.cls];
    Fold(kOpShedFull, event.tenant, event.arrival_tick);
    outcome.queued = false;
    outcome.shed_reason = obs::kShedQueueFull;
    return outcome;
  }
  arena_.push_back(event);
  ++stats_.enqueued[event.cls];
  Fold(kOpEnqueue, event.tenant, handle);
  outcome.queued = true;
  return outcome;
}

size_t FairScheduler::FairShare(uint32_t tenant) const {
  TRIPRIV_CHECK_LT(tenant, num_tenants_);
  TRIPRIV_CHECK_GT(total_weight_, 0u);
  const size_t share = static_cast<size_t>(
      static_cast<uint64_t>(config_.high_watermark) *
      queue_.tenant_config(tenant).weight / total_weight_);
  return share < 1 ? 1 : share;
}

void FairScheduler::EnforceWatermark(std::vector<TrafficEvent>* shed) {
  TRIPRIV_CHECK(shed != nullptr);
  while (queue_.backlog() > config_.high_watermark) {
    // Pick the tenant furthest over its fair share; lowest id breaks ties
    // (a fixed rule — determinism again). A backlog above the watermark
    // with every tenant at or under fair share is impossible: the shares
    // sum to at most the watermark.
    uint32_t victim = UINT32_MAX;
    size_t worst_excess = 0;
    for (uint32_t t = 0; t < num_tenants_; ++t) {
      const size_t backlog = queue_.tenant_backlog(t);
      const size_t share = FairShare(t);
      if (backlog > share && backlog - share > worst_excess) {
        worst_excess = backlog - share;
        victim = t;
      }
    }
    // Bounded harm: overload shedding only ever lands on a tenant above
    // its own fair share. If every tenant is at or under share (possible
    // when the floor-clamped shares sum past the watermark), stop — a
    // compliant tenant is never shed, even over the watermark; DRR will
    // drain the residue.
    if (victim == UINT32_MAX) break;
    shed_scratch_.clear();
    const size_t drop = queue_.ShedNewest(victim, worst_excess, &shed_scratch_);
    TRIPRIV_CHECK_GT(drop, 0u);
    for (uint64_t handle : shed_scratch_) {
      const TrafficEvent& event = arena_[handle];
      ++stats_.shed_overload[event.cls];
      Fold(kOpShedOverload, victim, handle);
      shed->push_back(event);
    }
  }
}

size_t FairScheduler::PollRound(uint64_t now,
                                std::vector<TrafficEvent>* runnable,
                                std::vector<TrafficEvent>* expired) {
  TRIPRIV_CHECK(runnable != nullptr);
  TRIPRIV_CHECK(expired != nullptr);
  size_t dispatched = 0;
  // Expired events cost a dequeue but no service; keep polling until the
  // batch holds `batch_size` runnable events or the queue stops yielding.
  while (dispatched < config_.batch_size) {
    scratch_.clear();
    const size_t popped = queue_.PollRound(config_.batch_size - dispatched,
                                           config_.cost_per_item, &scratch_);
    if (popped == 0) break;
    for (const auto& [tenant, handle] : scratch_) {
      const TrafficEvent& event = arena_[handle];
      const uint64_t expiry = event.arrival_tick + event.deadline_ticks;
      if (expiry <= now) {
        // The request's own budget died in queue (the slow-loris shape):
        // drop before any backend work, as a typed refusal.
        ++stats_.shed_deadline[event.cls];
        Fold(kOpShedDeadline, tenant, handle);
        expired->push_back(event);
        continue;
      }
      ++stats_.dispatched[event.cls];
      Fold(kOpDispatch, tenant, handle);
      runnable->push_back(event);
      ++dispatched;
    }
  }
  return dispatched;
}

}  // namespace traffic
}  // namespace tripriv
