// The million-principal traffic simulator: generator -> fair scheduler ->
// BatchExecutor -> QueryService, all on one SimClock.
//
// RunTrafficSimulation drives a seeded TrafficProfile against a real
// QueryService in fixed arrival windows: each window's arrivals enter the
// FairScheduler's bounded per-tenant queues, overload control sheds from
// over-share tenants only, and a bounded number of DRR batches per window
// dispatch through BatchExecutor — so queueing delay, deadline expiry, and
// the service's own degradation ladder all emerge from the same simulated
// timeline. Per-class latency lands in obs le-histograms for the SloGate.
//
// Determinism contract (the integration suite's core assertion): for a
// fixed SimulatorConfig the report — scheduler decision digest, WAL bytes,
// per-class totals, rendered metrics — is byte-identical at 0, 1, 2, and 8
// worker threads. The only parallel stage is BatchExecutor's pure Prepare
// fan-out; every stateful step (generation, scheduling, submission,
// metric pushes) runs in this file's serial loop.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/instruments.h"
#include "obs/metrics.h"
#include "service/batch_executor.h"
#include "service/traffic/fair_scheduler.h"
#include "service/traffic/traffic_profile.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace traffic {

/// One simulation run, end to end.
struct SimulatorConfig {
  TrafficProfile profile = TrafficProfile::Steady(1);
  FairSchedulerConfig scheduler;
  /// Ticks per arrival window (one generate/enqueue/drain cycle).
  uint64_t window_ticks = 16;
  uint64_t num_windows = 64;
  /// DRR batches dispatched per window — the service-capacity knob that
  /// makes overload (and queueing latency) possible at all.
  size_t batches_per_window = 2;
  /// Extra windows after arrivals stop, to drain the backlog.
  uint64_t drain_windows = 8;
  /// Backend table (MakeCensus rows / seed).
  size_t table_rows = 256;
  uint64_t table_seed = 42;
  /// Service ladder configuration; the simulator widens admission to the
  /// scheduler's batch size so fair queueing is the shedding point.
  QueryServiceConfig service;
  /// Records one AccessEvent per served request into the report — the
  /// owner-side audit trail the src/attack/ query-log profiling adversary
  /// consumes. Off by default: the trail holds principal ids (respondent-
  /// scoped), so only attack harnesses should ask for it.
  bool record_access_trail = false;
};

/// One served request as the owner's audit log sees it. This is attack
/// auxiliary knowledge: `principal` and `key` are the fields PIR is meant
/// to hide, and the profiling adversary measures exactly how much of them
/// each deployment exposes.
struct AccessEvent {
  uint64_t tick = 0;
  uint8_t cls = 0;
  /// Simulated end user — respondent-scoped; never exported, only handed
  /// to the attack suite as ground truth / the unblinded owner view.
  TRIPRIV_SENSITIVE(record)
  uint64_t principal = 0;
  /// Query-shape key the request resolved to (what the owner's log shows
  /// without PIR; hidden from the blinded view). Named `query_key`, not
  /// `key`: tripriv_taint pools member sensitivity by bare field name, and
  /// annotating a name as generic as `key` would taint every `.key` in the
  /// tree (the metrics allowlist's for one).
  TRIPRIV_SENSITIVE(record)
  uint64_t query_key = 0;
  uint8_t tier = 0;
};

/// Per-class outcome tallies (indexed by obs::kClass*).
struct ClassTotals {
  uint64_t arrivals = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_overload = 0;
  uint64_t shed_deadline = 0;
  /// Served answers by tier.
  uint64_t protected_answers = 0;
  uint64_t dp_answers = 0;
  uint64_t refusals = 0;
  /// Sum of queue-to-completion latency ticks over served requests.
  uint64_t latency_ticks_sum = 0;
  uint64_t served = 0;
};

/// What a run returns; every field is part of the determinism contract.
struct SimulationReport {
  ClassTotals by_class[obs::kNumTenantClasses];
  /// FNV digest of every scheduler decision, in order.
  uint64_t scheduler_digest = 0;
  /// Bytes in the audit WAL after the run.
  uint64_t wal_bytes = 0;
  uint64_t total_events = 0;
  uint64_t final_tick = 0;
  /// obs JSON export (empty when `registry` was null or obs compiled out).
  std::string metrics_json;
  /// Served-request audit trail, in completion order; empty unless
  /// SimulatorConfig::record_access_trail. Part of the determinism
  /// contract like every other field.
  std::vector<AccessEvent> access_trail;

  /// Arrivals across all classes.
  uint64_t total_arrivals() const;
  /// Requests that left the system as typed refusals at the scheduler
  /// (queue_full + overload + deadline) — never unprotected answers.
  uint64_t total_scheduler_sheds() const;
};

/// Runs `config` to completion. `pool` may be null (serial Prepare);
/// `registry` may be null (no metrics export). The per-class latency
/// histograms the SloGate needs are registered on `registry` when given.
Result<SimulationReport> RunTrafficSimulation(const SimulatorConfig& config,
                                              ThreadPool* pool,
                                              obs::MetricsRegistry* registry);

}  // namespace traffic
}  // namespace tripriv
