#include "service/epoch_service.h"

#include <unordered_map>
#include <utility>

#include "sdc/anonymity.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

/// Finds the last durable kEpochFlipCommit in a recovered record stream.
/// Returns false when no flip ever committed (fresh start).
bool LastCommittedFlip(const std::vector<WalRecord>& records,
                       WalRecord* commit) {
  bool found = false;
  for (const WalRecord& record : records) {
    if (record.type == WalRecordType::kEpochFlipCommit) {
      *commit = record;
      found = true;
    }
  }
  return found;
}

}  // namespace

EpochedDatabase::EpochedDatabase(EpochConfig config, WalIo* wal_io,
                                 EpochStore* store)
    : config_(std::move(config)),
      clock_(new SimClock()),
      wal_(wal_io),
      store_(store),
      manager_(new EpochManager(config_.max_live_epochs)) {}

Result<EpochedDatabase> EpochedDatabase::Create(const DataTable& initial_base,
                                                EpochConfig config,
                                                WalIo* wal_io,
                                                EpochStore* store) {
  if (config.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (config.qi_cols.empty()) {
    return Status::InvalidArgument("qi_cols must name the gated columns");
  }
  if (config.max_live_epochs < 2) {
    return Status::InvalidArgument("max_live_epochs must be >= 2");
  }
  TRIPRIV_ASSIGN_OR_RETURN(WalRecoveryResult recovered,
                           AuditWal::Recover(wal_io));

  EpochedDatabase db(std::move(config), wal_io, store);

  WalRecord commit;
  if (!LastCommittedFlip(recovered.records, &commit)) {
    // Fresh start (or every journaled flip aborted / tore before its commit
    // record): epoch 1 is born from `initial_base`, never from the store.
    TRIPRIV_RETURN_IF_ERROR(db.BootstrapFirstEpoch(initial_base, nullptr));
    return db;
  }

  // Adopt the last committed epoch. The commit record is the source of
  // truth; the store image must exist and match its journaled digest
  // byte-for-byte before it may serve.
  std::shared_ptr<const EpochData> image = store->Get(commit.query_id);
  if (image == nullptr) {
    return Status::Internal(
        "committed epoch image missing from store (write-ahead ordering "
        "violated or store lost durable data)");
  }
  if (image->epoch != commit.query_id ||
      TableChecksum(image->protected_table) != commit.query_fingerprint) {
    return Status::Internal(
        "committed epoch image fails its journaled checksum");
  }
  // GC every other image: staged leftovers of a torn flip and stale
  // predecessors. Exactly one epoch survives a reboot.
  for (uint64_t epoch : store->Epochs()) {
    if (epoch != commit.query_id) store->Erase(epoch);
  }
  db.stats_.recovered_epoch = commit.query_id;
  db.manager_->Bootstrap(std::move(image));
  return db;
}

Status EpochedDatabase::BootstrapFirstEpoch(const DataTable& initial_base,
                                            ThreadPool* workers) {
  auto first = std::make_shared<EpochData>();
  first->epoch = 1;
  first->base = initial_base;
  first->uids.resize(initial_base.num_rows());
  for (size_t i = 0; i < first->uids.size(); ++i) {
    first->uids[i] = static_cast<uint64_t>(i);
  }
  first->next_uid = static_cast<uint64_t>(initial_base.num_rows());

  // An empty previous grouping pools every row: this is a full MDAV run.
  TRIPRIV_ASSIGN_OR_RETURN(
      IncrementalMdavResult maintenance,
      IncrementalMdav(first->base, first->uids, config_.qi_cols, config_.k,
                      /*prev_group_of_uid=*/{}, /*dirty_uids=*/{}, workers));
  first->group_of_row = std::move(maintenance.group_of_row);
  first->num_groups = maintenance.num_groups;
  first->protected_table = std::move(maintenance.protected_table);
  first->protected_checksum = TableChecksum(first->protected_table);

  // The database never starts unprotected: the same fail-closed gate that
  // guards every flip guards epoch 1.
  TRIPRIV_RETURN_IF_ERROR(
      GateRespondentPrivacy(*first, maintenance.min_group_size));

  WalRecord begin;
  begin.type = WalRecordType::kEpochFlipBegin;
  begin.query_id = first->epoch;
  begin.query_fingerprint = MutationBatchFingerprint({});
  begin.rows = {0};
  TRIPRIV_RETURN_IF_ERROR(wal_.Append(begin));

  // Data before commit: the image must be durable before the WAL says the
  // epoch exists, so a recovered commit record always finds its image.
  store_->Put(first);
  TRIPRIV_RETURN_IF_ERROR(store_->Sync());

  WalRecord commit;
  commit.type = WalRecordType::kEpochFlipCommit;
  commit.query_id = first->epoch;
  commit.query_fingerprint = first->protected_checksum;
  commit.rows = {static_cast<uint64_t>(first->base.num_rows()),
                 static_cast<uint64_t>(first->num_groups)};
  TRIPRIV_RETURN_IF_ERROR(wal_.Append(commit));

  clock_->Advance(config_.flip_base_ticks +
                  config_.flip_ticks_per_row * maintenance.rows_reclustered);
  manager_->Bootstrap(std::move(first));
  return Status::OK();
}

Status EpochedDatabase::SubmitMutation(RowMutation mutation) {
  if (pending_.size() >= config_.max_pending_mutations) {
    ++stats_.mutations_shed;
    if (metrics_ != nullptr) metrics_->OnMutationShed();
    return Status::ResourceExhausted("mutation buffer full; flip first");
  }
  const uint8_t kind = static_cast<uint8_t>(mutation.kind);
  pending_.push_back(std::move(mutation));
  ++stats_.mutations_admitted;
  if (metrics_ != nullptr) metrics_->OnMutationAdmitted(kind);
  return Status::OK();
}

Result<std::shared_ptr<EpochData>> EpochedDatabase::BuildCandidate(
    const std::vector<RowMutation>& batch, uint64_t target_epoch,
    ThreadPool* workers, IncrementalMdavResult* maintenance,
    MutationApplyResult* applied) {
  PinnedEpoch current = manager_->Pin();

  // Copy-on-write: mutate scratch copies; the pinned epoch stays frozen.
  auto candidate = std::make_shared<EpochData>();
  candidate->epoch = target_epoch;
  candidate->base = current->base;
  candidate->uids = current->uids;
  candidate->next_uid = current->next_uid;
  TRIPRIV_ASSIGN_OR_RETURN(
      *applied, ApplyMutations(batch, &candidate->base, &candidate->uids,
                               &candidate->next_uid));
  if (candidate->base.num_rows() == 0) {
    // A valid batch that deletes every record: unprotectable, so it is a
    // fail-closed gate refusal (batch kept pending), not a poisoned batch.
    return Status::FailedPrecondition(
        "mutations would empty the table; flip refused");
  }

  std::unordered_map<uint64_t, size_t> prev_group_of_uid;
  prev_group_of_uid.reserve(current->uids.size());
  for (size_t i = 0; i < current->uids.size(); ++i) {
    prev_group_of_uid.emplace(current->uids[i], current->group_of_row[i]);
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      *maintenance,
      IncrementalMdav(candidate->base, candidate->uids, config_.qi_cols,
                      config_.k, prev_group_of_uid, applied->dirty_uids,
                      workers));
  candidate->group_of_row = maintenance->group_of_row;
  candidate->num_groups = maintenance->num_groups;
  candidate->protected_table = std::move(maintenance->protected_table);
  candidate->protected_checksum = TableChecksum(candidate->protected_table);
  return candidate;
}

Status EpochedDatabase::GateRespondentPrivacy(const EpochData& candidate,
                                              size_t min_group_size) const {
  if (candidate.base.num_rows() < config_.k) {
    return Status::FailedPrecondition(
        "table would hold fewer than k records; flip refused");
  }
  if (min_group_size < config_.k) {
    return Status::FailedPrecondition(
        "a group would drop below k; flip refused");
  }
  if (!IsKAnonymous(candidate.protected_table, config_.k, config_.qi_cols)) {
    return Status::FailedPrecondition(
        "candidate table is not k-anonymous on the QI columns; flip refused");
  }
  return Status::OK();
}

void EpochedDatabase::JournalAbort(uint64_t target_epoch,
                                   WalFlipAbortReason reason) {
  WalRecord abort;
  abort.type = WalRecordType::kEpochFlipAbort;
  abort.query_id = target_epoch;
  abort.decision = static_cast<WalDecision>(reason);
  // The refusal stands whether or not it could be journaled: an abort
  // record is forensic, not load-bearing (recovery ignores aborted flips).
  IgnoreError(wal_.Append(abort));
}

Result<uint64_t> EpochedDatabase::Flip(ThreadPool* workers) {
  ++stats_.flips_attempted;
  std::vector<RowMutation> batch(
      std::make_move_iterator(pending_.begin()),
      std::make_move_iterator(pending_.end()));
  pending_.clear();
  const uint64_t target = manager_->current_epoch() + 1;

  // Restores the (still unapplied) batch so a refused flip loses no writes.
  auto restore_pending = [&]() {
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      pending_.push_front(std::move(*it));
    }
  };

  WalRecord begin;
  begin.type = WalRecordType::kEpochFlipBegin;
  begin.query_id = target;
  begin.query_fingerprint = MutationBatchFingerprint(batch);
  begin.rows = {static_cast<uint64_t>(batch.size())};
  if (!wal_.Append(begin).ok()) {
    restore_pending();
    ++stats_.flips_refused_io;
    if (metrics_ != nullptr) metrics_->OnFlipRefused(false);
    return Status::Unavailable("WAL refused the flip-begin record");
  }

  IncrementalMdavResult maintenance;
  MutationApplyResult applied;
  Result<std::shared_ptr<EpochData>> built =
      BuildCandidate(batch, target, workers, &maintenance, &applied);
  if (!built.ok()) {
    if (built.status().code() == StatusCode::kFailedPrecondition) {
      // BuildCandidate pre-gated the batch (it would empty the table):
      // same fail-closed semantics as the k-gate below.
      JournalAbort(target, WalFlipAbortReason::kPrivacyGate);
      restore_pending();
      ++stats_.flips_refused_privacy;
      if (metrics_ != nullptr) metrics_->OnFlipRefused(true);
      return built.status();
    }
    // The batch itself is invalid (unknown uid, type mismatch, ...): it is
    // dropped, not restored — retrying a poisoned batch can never succeed.
    JournalAbort(target, WalFlipAbortReason::kIo);
    ++stats_.flips_refused_io;
    if (metrics_ != nullptr) metrics_->OnFlipRefused(false);
    return built.status();
  }
  std::shared_ptr<EpochData> candidate = std::move(built).value();

  // Deterministic flip cost, charged before the outcome is known — refused
  // flips cost what they measured too.
  clock_->Advance(config_.flip_base_ticks +
                  config_.flip_ticks_per_row * maintenance.rows_reclustered);

  Status gate = GateRespondentPrivacy(*candidate, maintenance.min_group_size);
  if (!gate.ok()) {
    // Fail closed: journal the refusal, keep the writes pending (covering
    // inserts can rescue them), keep serving the old epoch.
    JournalAbort(target, WalFlipAbortReason::kPrivacyGate);
    restore_pending();
    ++stats_.flips_refused_privacy;
    if (metrics_ != nullptr) metrics_->OnFlipRefused(true);
    return gate;
  }

  // Data before commit (see header): image durable, then the WAL record.
  store_->Put(candidate);
  if (!store_->Sync().ok()) {
    store_->Erase(target);
    JournalAbort(target, WalFlipAbortReason::kIo);
    restore_pending();
    ++stats_.flips_refused_io;
    if (metrics_ != nullptr) metrics_->OnFlipRefused(false);
    return Status::Unavailable("epoch store refused to sync the new image");
  }

  WalRecord commit;
  commit.type = WalRecordType::kEpochFlipCommit;
  commit.query_id = target;
  commit.query_fingerprint = candidate->protected_checksum;
  commit.rows = {static_cast<uint64_t>(candidate->base.num_rows()),
                 static_cast<uint64_t>(candidate->num_groups)};
  if (!wal_.Append(commit).ok()) {
    // The image is durable but unnamed — recovery GCs it as an orphan; we
    // GC it here too when still alive to keep the footprint bounded.
    store_->Erase(target);
    restore_pending();
    ++stats_.flips_refused_io;
    if (metrics_ != nullptr) metrics_->OnFlipRefused(false);
    return Status::Unavailable("WAL refused the flip-commit record");
  }

  // Committed: readers switch atomically; old epoch drains under its pins.
  manager_->Publish(candidate);
  for (uint64_t epoch : store_->Epochs()) {
    if (epoch + 1 < target) store_->Erase(epoch);
  }

  ++stats_.flips_committed;
  stats_.mutations_applied += batch.size();
  stats_.rows_reclustered_total += maintenance.rows_reclustered;
  if (metrics_ != nullptr) {
    metrics_->OnFlipCommitted(
        config_.flip_base_ticks +
            config_.flip_ticks_per_row * maintenance.rows_reclustered,
        maintenance.rows_reclustered);
  }
  return target;
}

void EpochedDatabase::AttachInstruments(obs::EpochMetrics* metrics) {
  metrics_ = metrics;
  PublishMetrics();
}

void EpochedDatabase::PublishMetrics() {
  if (metrics_ == nullptr) return;
  metrics_->PublishEpochState(manager_->current_epoch(),
                              manager_->live_epochs(),
                              manager_->peak_live_epochs(), pending_.size(),
                              store_->num_images());
}

}  // namespace tripriv
