#include "service/admission.h"

#include <algorithm>

namespace tripriv {

AdmissionController::AdmissionController(const AdmissionConfig& config,
                                         SimClock* clock)
    : config_(config), clock_(clock) {
  TRIPRIV_CHECK(clock_ != nullptr);
  TRIPRIV_CHECK(config_.capacity > 0);
  TRIPRIV_CHECK(config_.parallelism > 0);
}

void AdmissionController::Drain() {
  const uint64_t now = clock_->now();
  while (!finish_ticks_.empty() && finish_ticks_.front() <= now) {
    finish_ticks_.pop_front();
  }
}

Status AdmissionController::Admit() {
  Drain();
  if (finish_ticks_.size() >= config_.capacity) {
    ++shed_;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(config_.capacity) +
        " in system)");
  }
  // A worker frees up when the request `parallelism` places ahead of this
  // one finishes; with fewer in the system a worker is free right now.
  uint64_t start = clock_->now();
  if (finish_ticks_.size() >= config_.parallelism) {
    start = std::max(
        start, finish_ticks_[finish_ticks_.size() - config_.parallelism]);
  }
  const uint64_t service = config_.service_ticks < 1 ? 1 : config_.service_ticks;
  finish_ticks_.push_back(start + service);
  ++admitted_;
  return Status::OK();
}

size_t AdmissionController::in_system() {
  Drain();
  return finish_ticks_.size();
}

}  // namespace tripriv
