// Multi-server IT-PIR with failover.
//
// The 2-server XOR scheme (pir/it_pir.h) needs both servers of a pair to
// answer, and answers correctly only if neither lies: the client XORs two
// opaque blobs, so a single corrupt answer silently yields a corrupt
// record. FailoverPirClient makes the scheme serviceable:
//
//   * the database is replicated onto `num_pairs` independent server pairs;
//   * every stored record carries an 8-byte FNV-1a checksum suffix, so the
//     client can detect a corrupted reconstruction without any reference
//     copy (both pair members would have to corrupt consistently to forge
//     it — excluded by the non-collusion assumption IT-PIR already makes);
//   * a crashed server (kUnavailable) or a detected-corrupt reconstruction
//     fails the attempt over to the next pair under a RetryPolicy, with
//     backoff charged to the simulated clock and the caller's Deadline
//     enforced between attempts.
//
// Privacy note: failing over re-issues the query to a *different* pair with
// fresh selection randomness; no server ever sees both halves of one
// query, so the single-server view stays information-theoretically blind
// across retries.

#pragma once

#include <cstdint>
#include <vector>

#include "pir/it_pir.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/status.h"

namespace tripriv {

/// Injectable misbehaviour of one physical PIR server.
struct PirServerFault {
  /// Crashed: every query fails with kUnavailable.
  bool crashed = false;
  /// P(an answer comes back with a flipped byte).
  double corrupt_rate = 0.0;
};

/// 2-server XOR PIR across `num_pairs` replicated pairs with checksum
/// verification and pair failover. See file comment.
class FailoverPirClient {
 public:
  /// Replicates `records` (plus per-record checksums) onto 2 * num_pairs
  /// servers. Requires num_pairs >= 1 and valid records (see
  /// XorPirServer::Create).
  static Result<FailoverPirClient> Build(
      const std::vector<std::vector<uint8_t>>& records, size_t num_pairs,
      const RetryPolicy& retry, SimClock* clock, uint64_t seed);

  /// Installs `fault` on physical server `server` (pair s/2, side s%2).
  void InjectFault(size_t server, const PirServerFault& fault);

  /// Privately reads record `index`, failing over across pairs under the
  /// retry policy and `deadline`. Returns the record WITHOUT its checksum
  /// suffix. Fails with kUnavailable when every attempt hit a crashed pair
  /// or a corrupt reconstruction, kDeadlineExceeded when time ran out.
  Result<std::vector<uint8_t>> Read(size_t index, const Deadline& deadline);

  /// Batched private reads with positional results. Pair assignment,
  /// selection randomness, observation logging, and fault draws all happen
  /// serially in index order; only the pure XOR answer kernels and checksum
  /// verification fan out across `pool` (null = inline). When no fault
  /// fires, the rng transcript is identical to a serial Read loop. Items
  /// whose fast-path attempt fails (crashed pair, corrupt reconstruction)
  /// fall back to the serial Read retry ladder, again in index order, so
  /// answers, counters, and server views are independent of the thread
  /// count.
  std::vector<Result<std::vector<uint8_t>>> ReadBatch(
      const std::vector<size_t>& indices, const Deadline& deadline,
      ThreadPool* pool = nullptr);

  size_t num_pairs() const { return servers_.size() / 2; }
  size_t num_records() const { return num_records_; }
  /// Attempts that moved past the first-choice pair.
  size_t failovers() const { return failovers_; }
  /// Reconstructions rejected by the checksum.
  size_t corrupt_answers_detected() const { return corrupt_detected_; }
  /// Sum of bytes_xored() across all physical servers — the aggregate work
  /// metric of the PIR hot loop.
  uint64_t total_bytes_xored() const {
    uint64_t total = 0;
    for (const XorPirServer& server : servers_) total += server.bytes_xored();
    return total;
  }
  /// Sum of queries_answered() across all physical servers.
  uint64_t total_queries_answered() const {
    uint64_t total = 0;
    for (const XorPirServer& server : servers_) {
      total += server.queries_answered();
    }
    return total;
  }
  /// Physical server `i` (pair i/2, side i%2) — its observation ring holds
  /// the single-server view the blindness tests inspect (enable it with
  /// EnableObservationLogs first).
  const XorPirServer& server(size_t i) const {
    TRIPRIV_CHECK_LT(i, servers_.size());
    return servers_[i];
  }

  /// Attack-analysis mode: turns on a bounded observation ring of
  /// `capacity` entries on every physical server (see
  /// XorPirServer::EnableObservationLog). Off by default.
  void EnableObservationLogs(size_t capacity);

 private:
  FailoverPirClient(const RetryPolicy& retry, SimClock* clock, uint64_t seed)
      : retry_(retry), clock_(clock), rng_(seed) {}

  /// One 2-server read against pair `pair`, with fault injection and
  /// checksum verification.
  Result<std::vector<uint8_t>> ReadFromPair(size_t pair, size_t index);

  RetryPolicy retry_;
  SimClock* clock_;
  Rng rng_;
  size_t num_records_ = 0;
  size_t payload_size_ = 0;  ///< record size before the checksum suffix
  std::vector<XorPirServer> servers_;  ///< [pair0 A, pair0 B, pair1 A, ...]
  std::vector<PirServerFault> faults_;
  size_t next_pair_ = 0;  ///< round-robin start of the next read
  size_t failovers_ = 0;
  size_t corrupt_detected_ = 0;
};

}  // namespace tripriv
