// Multi-server IT-PIR with failover.
//
// The 2-server XOR scheme (pir/it_pir.h) needs both servers of a pair to
// answer, and answers correctly only if neither lies: the client XORs two
// opaque blobs, so a single corrupt answer silently yields a corrupt
// record. FailoverPirClient makes the scheme serviceable:
//
//   * the database is replicated onto `num_pairs` independent server pairs;
//   * every stored record carries an 8-byte FNV-1a checksum suffix, so the
//     client can detect a corrupted reconstruction without any reference
//     copy (both pair members would have to corrupt consistently to forge
//     it — excluded by the non-collusion assumption IT-PIR already makes);
//   * a crashed server (kUnavailable) or a detected-corrupt reconstruction
//     fails the attempt over to the next pair under a RetryPolicy, with
//     backoff charged to the simulated clock and the caller's Deadline
//     enforced between attempts.
//
// Privacy note: failing over re-issues the query to a *different* pair with
// fresh selection randomness; no server ever sees both halves of one
// query, so the single-server view stays information-theoretically blind
// across retries.
//
// BuildRecursive swaps the pairs for groups of 2^d replicas running the
// recursive hypercube scheme (pir/recursive_pir.h): upload drops from O(n)
// to O(d * n^(1/d)) bits per read, failover moves whole groups, and a
// PirSessionRegistry keyed by allowlisted tenant class retains expansion
// scratch across a batch. d = 1 degenerates to the flat pair path,
// byte-identical to Build.

#pragma once

#include <cstdint>
#include <vector>

#include "pir/it_pir.h"
#include "pir/recursive_pir.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/status.h"

namespace tripriv {

/// Injectable misbehaviour of one physical PIR server.
struct PirServerFault {
  /// Crashed: every query fails with kUnavailable.
  bool crashed = false;
  /// P(an answer comes back with a flipped byte).
  double corrupt_rate = 0.0;
};

/// 2-server XOR PIR across `num_pairs` replicated pairs with checksum
/// verification and pair failover. See file comment.
class FailoverPirClient {
 public:
  /// Replicates `records` (plus per-record checksums) onto 2 * num_pairs
  /// servers. Requires num_pairs >= 1 and valid records (see
  /// XorPirServer::Create).
  static Result<FailoverPirClient> Build(
      const std::vector<std::vector<uint8_t>>& records, size_t num_pairs,
      const RetryPolicy& retry, SimClock* clock, uint64_t seed);

  /// Like Build, but each failover group runs the recursive d-dimensional
  /// scheme across 2^d replicas (d = 1 is exactly the flat pair path).
  /// `preprocess` renders the per-replica parity layout at build time.
  /// Requires num_groups >= 1 and d in [1, 8].
  static Result<FailoverPirClient> BuildRecursive(
      const std::vector<std::vector<uint8_t>>& records, size_t num_groups,
      size_t dimensions, const RetryPolicy& retry, SimClock* clock,
      uint64_t seed, bool preprocess = false);

  /// Installs `fault` on physical server `server` (group s / group_size(),
  /// member s % group_size()).
  void InjectFault(size_t server, const PirServerFault& fault);

  /// Privately reads record `index`, failing over across groups under the
  /// retry policy and `deadline`. Returns the record WITHOUT its checksum
  /// suffix. Fails with kUnavailable when every attempt hit a crashed group
  /// or a corrupt reconstruction, kDeadlineExceeded when time ran out.
  /// `tenant_class` keys the recursive expansion session (allowlisted
  /// class index, never a principal id; ignored in flat mode).
  Result<std::vector<uint8_t>> Read(size_t index, const Deadline& deadline,
                                    uint8_t tenant_class = 0);

  /// Batched private reads with positional results. Pair assignment,
  /// selection randomness, observation logging, and fault draws all happen
  /// serially in index order; only the pure XOR answer kernels and checksum
  /// verification fan out across `pool` (null = inline). When no fault
  /// fires, the rng transcript is identical to a serial Read loop. Items
  /// whose fast-path attempt fails (crashed pair, corrupt reconstruction)
  /// fall back to the serial Read retry ladder, again in index order, so
  /// answers, counters, and server views are independent of the thread
  /// count.
  std::vector<Result<std::vector<uint8_t>>> ReadBatch(
      const std::vector<size_t>& indices, const Deadline& deadline,
      ThreadPool* pool = nullptr, uint8_t tenant_class = 0);

  size_t num_pairs() const { return servers_.size() / 2; }
  /// Replicas per failover group: 2 flat, 2^d recursive.
  size_t group_size() const {
    return dimensions_ <= 1 ? 2 : (size_t{1} << dimensions_);
  }
  /// Independent failover groups (== num_pairs() in flat mode).
  size_t num_groups() const { return servers_.size() / group_size(); }
  /// 1 for the flat pair scheme, else the hypercube dimension.
  size_t dimensions() const { return dimensions_; }
  /// Recursive-mode hypercube geometry (zero-initialized in flat mode).
  const HypercubeGeometry& geometry() const { return geometry_; }
  /// Per-tenant-class recursive expansion sessions (empty in flat mode).
  const PirSessionRegistry& sessions() const { return sessions_; }
  /// Bytes held by preprocessed parity layouts across all replicas.
  uint64_t preprocess_bytes() const {
    uint64_t total = 0;
    for (const XorPirServer& server : servers_) {
      total += server.preprocess_bytes();
    }
    return total;
  }
  size_t num_records() const { return num_records_; }
  /// Attempts that moved past the first-choice pair.
  size_t failovers() const { return failovers_; }
  /// Reconstructions rejected by the checksum.
  size_t corrupt_answers_detected() const { return corrupt_detected_; }
  /// Sum of bytes_xored() across all physical servers — the aggregate work
  /// metric of the PIR hot loop.
  uint64_t total_bytes_xored() const {
    uint64_t total = 0;
    for (const XorPirServer& server : servers_) total += server.bytes_xored();
    return total;
  }
  /// Sum of queries_answered() across all physical servers.
  uint64_t total_queries_answered() const {
    uint64_t total = 0;
    for (const XorPirServer& server : servers_) {
      total += server.queries_answered();
    }
    return total;
  }
  /// Physical server `i` (group i / group_size(), member i % group_size())
  /// — its observation ring holds the single-server view the blindness
  /// tests inspect (enable it with EnableObservationLogs first).
  const XorPirServer& server(size_t i) const {
    TRIPRIV_CHECK_LT(i, servers_.size());
    return servers_[i];
  }

  /// Attack-analysis mode: turns on a bounded observation ring of
  /// `capacity` entries on every physical server (see
  /// XorPirServer::EnableObservationLog). Off by default.
  void EnableObservationLogs(size_t capacity);

 private:
  FailoverPirClient(const RetryPolicy& retry, SimClock* clock, uint64_t seed)
      : retry_(retry), clock_(clock), rng_(seed) {}

  /// One read against group `group` (the 2-server scheme flat, the
  /// recursive scheme otherwise), with fault injection and checksum
  /// verification. `pool` shards each replica's XOR sweep in recursive
  /// mode (unused flat — the batch path owns flat parallelism).
  Result<std::vector<uint8_t>> ReadFromGroup(size_t group, size_t index,
                                             uint8_t tenant_class,
                                             ThreadPool* pool);
  /// Read with an explicit pool for the recursive per-replica sweeps.
  Result<std::vector<uint8_t>> ReadImpl(size_t index, const Deadline& deadline,
                                        uint8_t tenant_class,
                                        ThreadPool* pool);
  /// Strips and verifies the checksum suffix of a reconstruction; counts a
  /// failure as a detected-corrupt answer.
  Result<std::vector<uint8_t>> VerifyReconstruction(std::vector<uint8_t> rec,
                                                    size_t group);

  RetryPolicy retry_;
  SimClock* clock_;
  Rng rng_;
  size_t num_records_ = 0;
  size_t payload_size_ = 0;  ///< record size before the checksum suffix
  size_t dimensions_ = 1;    ///< 1 = flat pairs; >= 2 = recursive groups
  HypercubeGeometry geometry_;  ///< recursive mode only
  PirSessionRegistry sessions_;
  std::vector<XorPirServer> servers_;  ///< [group0 m0, group0 m1, ...]
  std::vector<PirServerFault> faults_;
  size_t next_pair_ = 0;  ///< round-robin start of the next read
  size_t failovers_ = 0;
  size_t corrupt_detected_ = 0;
};

}  // namespace tripriv
