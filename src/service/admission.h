// Admission control for the query service: a bounded virtual queue with
// load shedding.
//
// The service models itself as `parallelism` workers each taking
// `service_ticks` of simulated time per request. Admit() first retires the
// requests whose finish tick has passed, then either enqueues the new
// request (recording when it will finish) or — when `capacity` requests are
// already in the system — sheds it with kResourceExhausted. Shedding at the
// front door is itself a privacy control: an overloaded service that
// answers slowly but eventually is indistinguishable from one silently
// dropping protection steps; a typed early refusal keeps the fail-closed
// ladder observable.

#pragma once

#include <cstdint>
#include <deque>

#include "util/clock.h"
#include "util/status.h"

namespace tripriv {

/// Shape of the virtual queue.
struct AdmissionConfig {
  /// Maximum requests in the system (queued + in service).
  size_t capacity = 8;
  /// Simulated ticks one request occupies a worker.
  uint64_t service_ticks = 4;
  /// Concurrent workers draining the queue.
  size_t parallelism = 1;
};

/// Bounded-queue admission controller on simulated time.
class AdmissionController {
 public:
  AdmissionController(const AdmissionConfig& config, SimClock* clock);

  /// Admits one request (OK) or sheds it (kResourceExhausted). An admitted
  /// request is scheduled onto the least-loaded virtual worker.
  Status Admit();

  /// Requests currently queued or in service (after draining finished ones).
  size_t in_system();

  size_t admitted() const { return admitted_; }
  size_t shed() const { return shed_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  void Drain();

  AdmissionConfig config_;
  SimClock* clock_;
  /// Finish tick of every request in the system, non-decreasing.
  std::deque<uint64_t> finish_ticks_;
  size_t admitted_ = 0;
  size_t shed_ = 0;
};

}  // namespace tripriv
