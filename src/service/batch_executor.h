// Parallel batched execution over the fault-tolerant query service.
//
// One client rarely submits one query: the evaluation harness, the bench
// suite, and any real front-end push batches. BatchExecutor turns a batch
// into throughput without touching the service's semantics:
//
//   * statistical queries run as Prepare (pure: predicate evaluation +
//     fingerprinting) fanned out across the ThreadPool into positional
//     slots, then SubmitPrepared serially in submission order — so the
//     admission decisions, audit-state evolution, WAL bytes, fault draws,
//     and answers are byte-identical to a serial Submit loop at any thread
//     count;
//   * PIR record reads go through FailoverPirClient::ReadBatch, which draws
//     all query randomness serially and fans only the XOR answer kernels
//     out across the pool.
//
// Determinism is not a nicety here: the fault-injection and WAL-recovery
// suites replay runs from seeds and diff transcripts byte-for-byte, and
// that only stays meaningful if the worker count is invisible to every
// transcript.

#pragma once

#include <cstdint>
#include <vector>

#include "service/query_service.h"
#include "util/status.h"

namespace tripriv {

class ThreadPool;

/// Batch observability counters.
struct BatchExecutorStats {
  uint64_t stat_batches = 0;
  uint64_t stat_queries = 0;
  uint64_t pir_batches = 0;
  uint64_t pir_reads = 0;
};

/// Fans batch work over a QueryService across a ThreadPool. See file
/// comment for the determinism contract. Both pointers must outlive the
/// executor; `pool` may be null (inline execution).
class BatchExecutor {
 public:
  BatchExecutor(QueryService* service, ThreadPool* pool);

  /// Runs `queries` through the serving ladder; results are positional.
  /// Prepare runs in parallel, SubmitPrepared serially in batch order —
  /// equivalent to calling service->Submit on each query in order.
  std::vector<ServiceAnswer> ExecuteQueryBatch(
      const std::vector<StatQuery>& queries);

  /// Same, tagging query i with tenant class `classes[i]` (obs::kClass*
  /// indices; positional, same length as `queries`) so shed and answer
  /// metrics attribute to the right class. Classes only label metrics —
  /// they never change a serving decision, so the determinism contract is
  /// untouched.
  std::vector<ServiceAnswer> ExecuteQueryBatch(
      const std::vector<StatQuery>& queries,
      const std::vector<uint8_t>& classes);

  /// Batched private record reads via the service's PIR backend; results
  /// are positional. Requires AttachPirBackend on the service.
  /// `tenant_class` tags the batch with an allowlisted class (obs::kClass*
  /// index, never a principal id): the recursive backend keys its
  /// expansion session on it, so a whole batch reuses one expanded state.
  std::vector<Result<std::vector<uint8_t>>> ExecutePirBatch(
      const std::vector<size_t>& indices, const Deadline& deadline,
      uint8_t tenant_class = obs::kClassUnattributed);

  const BatchExecutorStats& stats() const { return stats_; }

 private:
  QueryService* service_;
  ThreadPool* pool_;
  BatchExecutorStats stats_;
};

}  // namespace tripriv
