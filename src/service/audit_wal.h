// Crash-recoverable write-ahead log for the query service's audit state.
//
// The Chin-Ozsoyoglu overlap audit and the DP epsilon budget are exactly
// the state that blocks the Schlörer tracker and difference attacks; if a
// restart resets them, the attacker just waits for a crash. AuditWal makes
// them durable with classic WAL discipline:
//
//   * records are framed [u32 length | u64 FNV-1a checksum | payload] and
//     appended through an injectable WalIo, so an I/O fault plan (short
//     writes, sync failures, device death, crash between records) can be
//     driven deterministically;
//   * Append persists AND syncs before returning OK — the service only
//     acknowledges an answer after its audit record is durable;
//   * Append repairs a torn tail it created (short write, failed sync) by
//     truncating back to the last durable offset, so every record that was
//     ever acknowledged is recoverable; if even the repair fails the WAL
//     declares itself broken and every later Append fails typed (fail-stop,
//     never a silently unlogged answer);
//   * Recover scans the log, drops the torn/corrupt tail (truncating the
//     device), and replays the intact prefix.
//
// Records never contain query text or record-level data — only query
// fingerprints (FNV of the canonical form), row-index sets (the audit
// state itself), decisions, and epsilon amounts. The no-sensitive-logging
// lint rule additionally bans stream I/O in this directory, so the WAL
// cannot grow a debug-print side channel.

#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

/// Byte-level storage a WAL appends to. Implementations are simulated
/// devices; fault injection wraps one WalIo around another.
class WalIo {
 public:
  virtual ~WalIo() = default;

  /// Appends `bytes`; returns how many were persisted (short writes are a
  /// legal fault). A full write returns bytes.size().
  virtual Result<size_t> Append(const std::vector<uint8_t>& bytes) = 0;

  /// Makes all appended bytes durable across a crash.
  virtual Status Sync() = 0;

  /// Drops everything past `new_size` bytes (tail repair / recovery).
  virtual Status Truncate(size_t new_size) = 0;

  /// Entire current contents (what a reboot would read back).
  virtual Result<std::vector<uint8_t>> ReadAll() const = 0;

  /// Current length in bytes.
  virtual size_t size() const = 0;
};

/// In-memory simulated log device. Bytes appended after the last successful
/// Sync are lost by SimulateCrash — the window torn-tail recovery exists
/// for. Test helpers can also corrupt bytes in place (bit rot in flight).
class MemWalIo final : public WalIo {
 public:
  Result<size_t> Append(const std::vector<uint8_t>& bytes) override;
  Status Sync() override;
  Status Truncate(size_t new_size) override;
  Result<std::vector<uint8_t>> ReadAll() const override;
  size_t size() const override { return bytes_.size(); }

  /// Discards all bytes written after the last successful Sync.
  void SimulateCrash();
  /// Flips every bit of byte `offset` (must be < size()).
  void CorruptByte(size_t offset);
  size_t synced_size() const { return synced_size_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t synced_size_ = 0;
};

/// Deterministic, seed-driven I/O adversity for a wrapped WalIo.
struct WalFaultPlan {
  static constexpr uint64_t kNever = UINT64_MAX;

  /// P(an append persists only a strict prefix of the record).
  double short_write_rate = 0.0;
  /// P(a sync fails; unsynced bytes then die with the next crash).
  double sync_fail_rate = 0.0;
  /// Device death: append number `die_after_appends` (0-based) and every
  /// mutation after it fail with kUnavailable. ReadAll still works — a
  /// reboot reads the disk back.
  uint64_t die_after_appends = kNever;
  /// Seed of the fault RNG.
  uint64_t seed = 0x3A17;
};

/// Wraps a WalIo with the WalFaultPlan adversities.
class FaultyWalIo final : public WalIo {
 public:
  FaultyWalIo(WalIo* base, const WalFaultPlan& plan);

  Result<size_t> Append(const std::vector<uint8_t>& bytes) override;
  Status Sync() override;
  Status Truncate(size_t new_size) override;
  Result<std::vector<uint8_t>> ReadAll() const override;
  size_t size() const override { return base_->size(); }

  size_t short_writes() const { return short_writes_; }
  size_t sync_failures() const { return sync_failures_; }

 private:
  WalIo* base_;
  WalFaultPlan plan_;
  Rng rng_;
  /// Latched when append number die_after_appends is attempted; all
  /// mutations fail from then on.
  bool died_ = false;
  uint64_t appends_ = 0;
  size_t short_writes_ = 0;
  size_t sync_failures_ = 0;
};

/// What a WAL record describes.
///
/// The flip records journal the epoch lifecycle of the mutable protected
/// database (service/epoch_service.h). They reuse the existing frame
/// fields — no wire-format change — with this aliasing:
///
///   kEpochFlipBegin   query_id = target epoch, query_fingerprint =
///                     MutationBatchFingerprint, rows = {batch size};
///   kEpochFlipCommit  query_id = committed epoch, query_fingerprint =
///                     TableChecksum(protected table), rows = {row count,
///                     group count};
///   kEpochFlipAbort   query_id = refused target epoch, decision carries a
///                     WalFlipAbortReason.
///
/// Like every record here, flip records hold only epoch numbers, digests,
/// and aggregate counts — never mutation payloads or cell values.
enum class WalRecordType : uint8_t {
  kDecision = 1,        ///< one query's audit decision (trail + overlap state)
  kEpsilonSpend = 2,    ///< DP budget charged before a degraded answer
  kEpochFlipBegin = 3,  ///< flip intent journaled before any epoch work
  kEpochFlipCommit = 4, ///< flip durable; recovery adopts the last of these
  kEpochFlipAbort = 5,  ///< flip refused (privacy gate or I/O); no new epoch
};

/// Why a journaled flip did not commit (stored in the decision byte of a
/// kEpochFlipAbort record).
enum class WalFlipAbortReason : uint8_t {
  kPrivacyGate = 0,  ///< a group would drop below k — fail-closed refusal
  kIo = 1,           ///< store/WAL fault or an invalid mutation batch
};

/// Audit outcome of one query.
enum class WalDecision : uint8_t {
  kPolicyRefused = 0,  ///< the protection policy refused the query
  kAdmitted = 1,       ///< policy admitted it; `rows` joins the audit state
};

/// One durable audit fact.
struct WalRecord {
  WalRecordType type = WalRecordType::kDecision;
  /// Position of the query in the service's lifetime (monotone).
  uint64_t query_id = 0;
  /// FNV-1a of the query's canonical text — never the text itself.
  uint64_t query_fingerprint = 0;
  WalDecision decision = WalDecision::kPolicyRefused;
  /// Epsilon charged (kEpsilonSpend). Spend amounts are record-level at the
  /// taint layer: the WAL is their one sanctioned carrier (the durable
  /// ledger), marked by a named NOLINT at the append seam.
  TRIPRIV_SENSITIVE(record)
  double epsilon = 0.0;
  /// Admitted query set, sorted row indices (kDecision/kAdmitted).
  std::vector<uint64_t> rows;

  bool operator==(const WalRecord& other) const;
};

/// Result of scanning a (possibly torn) log.
struct WalRecoveryResult {
  std::vector<WalRecord> records;
  /// Bytes dropped from the tail (0 on a clean log).
  size_t bytes_truncated = 0;
};

/// Append-side WAL discipline (see file comment).
class AuditWal {
 public:
  explicit AuditWal(WalIo* io);

  /// Serializes, appends, and syncs `record`; OK only once it is durable.
  /// A failure means the record is NOT durable (tail repaired or WAL
  /// broken) and the caller must not acknowledge the guarded answer.
  TRIPRIV_SINK(wal)
  Status Append(const WalRecord& record);

  /// True once an unrepairable fault has latched; all Appends fail.
  bool broken() const { return broken_; }
  size_t records_appended() const { return records_appended_; }
  /// Framed bytes made durable across all successful Appends.
  uint64_t bytes_appended() const { return bytes_appended_; }
  /// Frame size of the most recent successful Append (0 before the first) —
  /// what instrumentation feeds the fsync-latency model.
  uint64_t last_append_bytes() const { return last_append_bytes_; }
  /// Appends that failed (short write, sync failure, device death).
  uint64_t append_failures() const { return append_failures_; }

  /// Scans `io`, truncates the torn/corrupt tail on the device, and returns
  /// the intact record prefix.
  static Result<WalRecoveryResult> Recover(WalIo* io);

 private:
  WalIo* io_;
  /// Bytes known durable and well-formed; appends resume here.
  size_t durable_size_;
  bool broken_ = false;
  size_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t last_append_bytes_ = 0;
  uint64_t append_failures_ = 0;
};

}  // namespace tripriv
