#include "service/pir_failover.h"

#include "util/checksum.h"

namespace tripriv {
namespace {

// Bit helpers over packed LSB-first selection bitmaps. These mirror the
// file-local helpers in pir/it_pir.cc (which does not export them): the
// failover client builds its own selection pairs so it can inject faults
// between the two Answer calls and verify the reconstruction before
// stripping the checksum suffix.

std::vector<uint8_t> RandomSelection(size_t n, Rng* rng) {
  std::vector<uint8_t> bits((n + 7) / 8);
  for (auto& b : bits) b = static_cast<uint8_t>(rng->NextU64());
  if (n % 8 != 0) bits.back() &= static_cast<uint8_t>((1u << (n % 8)) - 1u);
  return bits;
}

void FlipSelectionBit(std::vector<uint8_t>* bits, size_t i) {
  (*bits)[i / 8] ^= static_cast<uint8_t>(1u << (i % 8));
}

}  // namespace

Result<FailoverPirClient> FailoverPirClient::Build(
    const std::vector<std::vector<uint8_t>>& records, size_t num_pairs,
    const RetryPolicy& retry, SimClock* clock, uint64_t seed) {
  TRIPRIV_CHECK(clock != nullptr);
  if (num_pairs < 1) {
    return Status::InvalidArgument("need at least one server pair");
  }
  if (records.empty()) return Status::InvalidArgument("empty database");
  const size_t payload_size = records[0].size();

  // Append the integrity suffix before replication so every server stores
  // checksummed records and any reconstruction is verifiable.
  std::vector<std::vector<uint8_t>> stored;
  stored.reserve(records.size());
  for (const auto& r : records) {
    if (r.size() != payload_size) {
      return Status::InvalidArgument("records must have equal length");
    }
    std::vector<uint8_t> with_sum = r;
    const uint64_t sum = Fnv1a64(r.data(), r.size());
    for (int i = 0; i < 8; ++i) {
      with_sum.push_back(static_cast<uint8_t>(sum >> (8 * i)));
    }
    stored.push_back(std::move(with_sum));
  }

  FailoverPirClient client(retry, clock, seed);
  client.num_records_ = records.size();
  client.payload_size_ = payload_size;
  client.servers_.reserve(2 * num_pairs);
  for (size_t s = 0; s < 2 * num_pairs; ++s) {
    TRIPRIV_ASSIGN_OR_RETURN(XorPirServer server, XorPirServer::Create(stored));
    client.servers_.push_back(std::move(server));
  }
  client.faults_.resize(2 * num_pairs);
  return client;
}

void FailoverPirClient::InjectFault(size_t server, const PirServerFault& fault) {
  TRIPRIV_CHECK_LT(server, faults_.size());
  faults_[server] = fault;
}

Result<std::vector<uint8_t>> FailoverPirClient::ReadFromPair(size_t pair,
                                                             size_t index) {
  const size_t a = 2 * pair;
  const size_t b = 2 * pair + 1;
  for (size_t s : {a, b}) {
    if (faults_[s].crashed) {
      return Status::Unavailable("PIR server " + std::to_string(s) +
                                 " is down");
    }
  }

  const size_t n = num_records_;
  std::vector<uint8_t> sel_a = RandomSelection(n, &rng_);
  std::vector<uint8_t> sel_b = sel_a;
  FlipSelectionBit(&sel_b, index);

  TRIPRIV_ASSIGN_OR_RETURN(auto ans_a, servers_[a].Answer(sel_a));
  TRIPRIV_ASSIGN_OR_RETURN(auto ans_b, servers_[b].Answer(sel_b));
  for (size_t s : {a, b}) {
    auto& ans = (s == a) ? ans_a : ans_b;
    if (!ans.empty() && rng_.Bernoulli(faults_[s].corrupt_rate)) {
      const size_t byte = static_cast<size_t>(rng_.UniformU64(ans.size()));
      ans[byte] ^= 0x5A;
    }
  }

  TRIPRIV_CHECK_EQ(ans_a.size(), ans_b.size());
  for (size_t i = 0; i < ans_a.size(); ++i) ans_a[i] ^= ans_b[i];

  // ans_a is now (payload | checksum); verify before trusting it.
  TRIPRIV_CHECK_EQ(ans_a.size(), payload_size_ + 8);
  uint64_t stored_sum = 0;
  for (int i = 0; i < 8; ++i) {
    stored_sum |= static_cast<uint64_t>(ans_a[payload_size_ + i]) << (8 * i);
  }
  if (Fnv1a64(ans_a.data(), payload_size_) != stored_sum) {
    ++corrupt_detected_;
    return Status::Unavailable("PIR pair " + std::to_string(pair) +
                               " returned a corrupt reconstruction");
  }
  ans_a.resize(payload_size_);
  return ans_a;
}

Result<std::vector<uint8_t>> FailoverPirClient::Read(size_t index,
                                                     const Deadline& deadline) {
  if (index >= num_records_) {
    return Status::OutOfRange("record index out of range");
  }
  const size_t pairs = num_pairs();
  const size_t first_pair = next_pair_;
  next_pair_ = (next_pair_ + 1) % pairs;

  Status last = Status::Unavailable("no PIR attempt was made");
  const size_t max_attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (deadline.expired(*clock_)) {
      return DeadlineExceededError("PIR read after " +
                                   std::to_string(attempt) + " attempt(s)");
    }
    const size_t pair = (first_pair + attempt) % pairs;
    if (attempt > 0) ++failovers_;
    auto read = ReadFromPair(pair, index);
    if (read.ok()) return read;
    if (!read.status().transient()) return read.status();
    last = read.status();
    // Charge backoff to the simulated clock; the deadline check at the top
    // of the loop turns an expired budget into a typed failure.
    clock_->Advance(retry_.BackoffTicks(attempt));
  }
  return Status::Unavailable("PIR read failed after " +
                             std::to_string(max_attempts) +
                             " attempts across " + std::to_string(pairs) +
                             " pair(s); last: " + last.message());
}

}  // namespace tripriv
