#include "service/pir_failover.h"

#include "pir/xor_kernel.h"
#include "util/checksum.h"
#include "util/thread_pool.h"

namespace tripriv {
namespace {

/// Appends the 8-byte FNV-1a integrity suffix to every record so each
/// server stores checksummed records and any reconstruction is verifiable.
Result<std::vector<std::vector<uint8_t>>> ChecksumRecords(
    const std::vector<std::vector<uint8_t>>& records) {
  if (records.empty()) return Status::InvalidArgument("empty database");
  const size_t payload_size = records[0].size();
  std::vector<std::vector<uint8_t>> stored;
  stored.reserve(records.size());
  for (const auto& r : records) {
    if (r.size() != payload_size) {
      return Status::InvalidArgument("records must have equal length");
    }
    std::vector<uint8_t> with_sum = r;
    const uint64_t sum = Fnv1a64(r.data(), r.size());
    for (int i = 0; i < 8; ++i) {
      with_sum.push_back(static_cast<uint8_t>(sum >> (8 * i)));
    }
    stored.push_back(std::move(with_sum));
  }
  return stored;
}

}  // namespace

Result<FailoverPirClient> FailoverPirClient::Build(
    const std::vector<std::vector<uint8_t>>& records, size_t num_pairs,
    const RetryPolicy& retry, SimClock* clock, uint64_t seed) {
  return BuildRecursive(records, num_pairs, /*dimensions=*/1, retry, clock,
                        seed);
}

Result<FailoverPirClient> FailoverPirClient::BuildRecursive(
    const std::vector<std::vector<uint8_t>>& records, size_t num_groups,
    size_t dimensions, const RetryPolicy& retry, SimClock* clock,
    uint64_t seed, bool preprocess) {
  TRIPRIV_CHECK(clock != nullptr);
  if (num_groups < 1) {
    return Status::InvalidArgument("need at least one server group");
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto stored, ChecksumRecords(records));

  FailoverPirClient client(retry, clock, seed);
  client.num_records_ = records.size();
  client.payload_size_ = records[0].size();
  client.dimensions_ = dimensions;
  if (dimensions > 1) {
    TRIPRIV_ASSIGN_OR_RETURN(
        client.geometry_, HypercubeGeometry::Balanced(stored.size(), dimensions));
  } else if (dimensions < 1) {
    return Status::InvalidArgument("hypercube dimension must be in [1, 8]");
  }
  const size_t total = client.group_size() * num_groups;
  client.servers_.reserve(total);
  for (size_t s = 0; s < total; ++s) {
    TRIPRIV_ASSIGN_OR_RETURN(XorPirServer server, XorPirServer::Create(stored));
    if (preprocess) server.Preprocess();
    client.servers_.push_back(std::move(server));
  }
  client.faults_.resize(total);
  return client;
}

void FailoverPirClient::InjectFault(size_t server, const PirServerFault& fault) {
  TRIPRIV_CHECK_LT(server, faults_.size());
  faults_[server] = fault;
}

void FailoverPirClient::EnableObservationLogs(size_t capacity) {
  for (auto& server : servers_) server.EnableObservationLog(capacity);
}

Result<std::vector<uint8_t>> FailoverPirClient::VerifyReconstruction(
    std::vector<uint8_t> rec, size_t group) {
  // rec is (payload | checksum); verify before trusting it.
  TRIPRIV_CHECK_EQ(rec.size(), payload_size_ + 8);
  uint64_t stored_sum = 0;
  for (int i = 0; i < 8; ++i) {
    stored_sum |= static_cast<uint64_t>(rec[payload_size_ + i]) << (8 * i);
  }
  if (Fnv1a64(rec.data(), payload_size_) != stored_sum) {
    ++corrupt_detected_;
    return Status::Unavailable("PIR group " + std::to_string(group) +
                               " returned a corrupt reconstruction");
  }
  rec.resize(payload_size_);
  return rec;
}

Result<std::vector<uint8_t>> FailoverPirClient::ReadFromGroup(
    size_t group, size_t index, uint8_t tenant_class, ThreadPool* pool) {
  const size_t gs = group_size();
  const size_t base = gs * group;
  for (size_t s = base; s < base + gs; ++s) {
    if (faults_[s].crashed) {
      return Status::Unavailable("PIR server " + std::to_string(s) +
                                 " is down");
    }
  }

  if (dimensions_ <= 1) {
    const size_t a = base;
    const size_t b = base + 1;
    const size_t n = num_records_;
    std::vector<uint8_t> sel_a = RandomSelectionBits(n, &rng_);
    std::vector<uint8_t> sel_b = sel_a;
    FlipSelectionBit(&sel_b, index);

    TRIPRIV_ASSIGN_OR_RETURN(auto ans_a, servers_[a].Answer(sel_a));
    TRIPRIV_ASSIGN_OR_RETURN(auto ans_b, servers_[b].Answer(sel_b));
    for (size_t s : {a, b}) {
      auto& ans = (s == a) ? ans_a : ans_b;
      if (!ans.empty() && rng_.Bernoulli(faults_[s].corrupt_rate)) {
        const size_t byte = static_cast<size_t>(rng_.UniformU64(ans.size()));
        ans[byte] ^= 0x5A;
      }
    }
    TRIPRIV_CHECK_EQ(ans_a.size(), ans_b.size());
    for (size_t i = 0; i < ans_a.size(); ++i) ans_a[i] ^= ans_b[i];
    return VerifyReconstruction(std::move(ans_a), group);
  }

  // Recursive group: seed-compressed queries, one answer per replica,
  // fault draws in member order (the flat path's per-side discipline).
  PirSessionRegistry::Session* session =
      sessions_.Establish(tenant_class, geometry_, /*epoch=*/0);
  TRIPRIV_ASSIGN_OR_RETURN(auto queries,
                           BuildHypercubeQueries(geometry_, index, &rng_));
  std::vector<uint8_t> rec(payload_size_ + 8, 0);
  size_t upload = 0;
  for (size_t m = 0; m < gs; ++m) {
    upload += queries[m].upload_bits(geometry_);
    TRIPRIV_ASSIGN_OR_RETURN(
        auto ans, AnswerHypercubeQuery(&servers_[base + m], queries[m],
                                       geometry_, pool, session));
    if (!ans.empty() && rng_.Bernoulli(faults_[base + m].corrupt_rate)) {
      const size_t byte = static_cast<size_t>(rng_.UniformU64(ans.size()));
      ans[byte] ^= 0x5A;
    }
    TRIPRIV_CHECK_EQ(ans.size(), rec.size());
    XorBytesInto(rec.data(), ans.data(), rec.size());
  }
  session->reads += 1;
  session->upload_bits += upload;
  return VerifyReconstruction(std::move(rec), group);
}

Result<std::vector<uint8_t>> FailoverPirClient::Read(size_t index,
                                                     const Deadline& deadline,
                                                     uint8_t tenant_class) {
  return ReadImpl(index, deadline, tenant_class, /*pool=*/nullptr);
}

Result<std::vector<uint8_t>> FailoverPirClient::ReadImpl(
    size_t index, const Deadline& deadline, uint8_t tenant_class,
    ThreadPool* pool) {
  if (index >= num_records_) {
    return Status::OutOfRange("record index out of range");
  }
  const size_t groups = num_groups();
  const size_t first_group = next_pair_;
  next_pair_ = (next_pair_ + 1) % groups;

  Status last = Status::Unavailable("no PIR attempt was made");
  const size_t max_attempts = retry_.max_attempts < 1 ? 1 : retry_.max_attempts;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (deadline.expired(*clock_)) {
      return DeadlineExceededError("PIR read after " +
                                   std::to_string(attempt) + " attempt(s)");
    }
    const size_t group = (first_group + attempt) % groups;
    if (attempt > 0) ++failovers_;
    auto read = ReadFromGroup(group, index, tenant_class, pool);
    if (read.ok()) return read;
    if (!read.status().transient()) return read.status();
    last = read.status();
    // Charge backoff to the simulated clock; the deadline check at the top
    // of the loop turns an expired budget into a typed failure.
    clock_->Advance(retry_.BackoffTicks(attempt));
  }
  return Status::Unavailable("PIR read failed after " +
                             std::to_string(max_attempts) +
                             " attempts across " + std::to_string(groups) +
                             " group(s); last: " + last.message());
}

std::vector<Result<std::vector<uint8_t>>> FailoverPirClient::ReadBatch(
    const std::vector<size_t>& indices, const Deadline& deadline,
    ThreadPool* pool, uint8_t tenant_class) {
  if (dimensions_ > 1) {
    // Recursive groups: items run serially in index order (the exact rng
    // transcript of a Read loop) and the pool instead shards each
    // replica's XOR sweep inside the answer — expansion state and the
    // session scratch never cross threads, and one session serves the
    // whole batch.
    std::vector<Result<std::vector<uint8_t>>> results;
    results.reserve(indices.size());
    for (size_t index : indices) {
      results.push_back(ReadImpl(index, deadline, tenant_class, pool));
    }
    return results;
  }

  // One fast-path attempt per item against its round-robin pair, with all
  // randomness pre-drawn so the compute stage is pure.
  struct BatchAttempt {
    size_t pair = 0;
    bool fast_path = false;  ///< pair healthy; attempt runs in stage 2
    std::vector<uint8_t> sel_a;
    std::vector<uint8_t> sel_b;
    bool corrupt[2] = {false, false};
    size_t corrupt_byte[2] = {0, 0};
    bool verified = false;  ///< stage-2 verdict: checksum held
    std::vector<uint8_t> payload;
  };

  const size_t count = indices.size();
  const size_t pairs = num_pairs();
  const size_t stored_size = payload_size_ + 8;
  std::vector<Result<std::vector<uint8_t>>> results(
      count, Result<std::vector<uint8_t>>(
                 Status::Unavailable("PIR batch item not attempted")));
  std::vector<BatchAttempt> attempts(count);

  // Stage 1 (serial, index order): validate, assign pairs round-robin, draw
  // selection pairs and fault outcomes, log observations — the same rng
  // transcript a serial Read loop produces when no fault fires.
  const bool expired = deadline.expired(*clock_);
  for (size_t i = 0; i < count; ++i) {
    if (indices[i] >= num_records_) {
      results[i] = Status::OutOfRange("record index out of range");
      continue;
    }
    if (expired) {
      results[i] = DeadlineExceededError("PIR batch read");
      continue;
    }
    BatchAttempt& at = attempts[i];
    at.pair = next_pair_;
    next_pair_ = (next_pair_ + 1) % pairs;
    const size_t a = 2 * at.pair;
    const size_t b = a + 1;
    if (faults_[a].crashed || faults_[b].crashed) {
      continue;  // stage 3 sends this item down the retry ladder
    }
    at.sel_a = RandomSelectionBits(num_records_, &rng_);
    at.sel_b = at.sel_a;
    FlipSelectionBit(&at.sel_b, indices[i]);
    servers_[a].ObserveQuery(at.sel_a);
    servers_[b].ObserveQuery(at.sel_b);
    for (size_t side = 0; side < 2; ++side) {
      at.corrupt[side] = rng_.Bernoulli(faults_[a + side].corrupt_rate);
      if (at.corrupt[side]) {
        at.corrupt_byte[side] =
            static_cast<size_t>(rng_.UniformU64(stored_size));
      }
    }
    at.fast_path = true;
  }

  // Stage 2 (parallel): pure reconstruction + checksum verification into
  // per-item slots. No rng, no counters, no shared mutation.
  auto run_attempt = [this, stored_size, &attempts](size_t i) {
    BatchAttempt& at = attempts[i];
    if (!at.fast_path) return;
    const size_t a = 2 * at.pair;
    const size_t b = a + 1;
    auto ans_a = servers_[a].ComputeAnswer(at.sel_a);
    auto ans_b = servers_[b].ComputeAnswer(at.sel_b);
    TRIPRIV_CHECK(ans_a.ok() && ans_b.ok());
    for (size_t side = 0; side < 2; ++side) {
      if (!at.corrupt[side]) continue;
      auto& ans = (side == 0) ? *ans_a : *ans_b;
      ans[at.corrupt_byte[side]] ^= 0x5A;
    }
    std::vector<uint8_t> rec = std::move(ans_a).value();
    XorBytesInto(rec.data(), ans_b->data(), rec.size());
    TRIPRIV_CHECK_EQ(rec.size(), stored_size);
    uint64_t stored_sum = 0;
    for (int k = 0; k < 8; ++k) {
      stored_sum |= static_cast<uint64_t>(rec[payload_size_ + k]) << (8 * k);
    }
    if (Fnv1a64(rec.data(), payload_size_) != stored_sum) return;
    rec.resize(payload_size_);
    at.payload = std::move(rec);
    at.verified = true;
  };
  if (pool == nullptr || pool->num_threads() <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) run_attempt(i);
  } else {
    pool->ParallelFor(count, [&run_attempt](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) run_attempt(i);
    });
  }

  // Stage 3 (serial, index order): publish verdicts, update counters, and
  // run the failure ladder for items whose fast-path attempt did not
  // verify.
  for (size_t i = 0; i < count; ++i) {
    BatchAttempt& at = attempts[i];
    if (at.fast_path && at.verified) {
      results[i] = std::move(at.payload);
      continue;
    }
    if (indices[i] >= num_records_ || expired) continue;  // already typed
    if (at.fast_path) {
      // The reconstruction was rejected by the checksum — same accounting
      // as the serial ReadFromPair path.
      ++corrupt_detected_;
    }
    // The attempt moved past its first-choice pair: charge a failover and
    // backoff, then re-enter the serial retry ladder with fresh randomness.
    ++failovers_;
    clock_->Advance(retry_.BackoffTicks(0));
    results[i] = Read(indices[i], deadline);
  }
  return results;
}

}  // namespace tripriv
