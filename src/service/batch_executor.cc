#include "service/batch_executor.h"

#include <utility>

#include "util/thread_pool.h"

namespace tripriv {

BatchExecutor::BatchExecutor(QueryService* service, ThreadPool* pool)
    : service_(service), pool_(pool) {
  TRIPRIV_CHECK(service != nullptr);
}

std::vector<ServiceAnswer> BatchExecutor::ExecuteQueryBatch(
    const std::vector<StatQuery>& queries) {
  return ExecuteQueryBatch(queries, {});
}

std::vector<ServiceAnswer> BatchExecutor::ExecuteQueryBatch(
    const std::vector<StatQuery>& queries,
    const std::vector<uint8_t>& classes) {
  TRIPRIV_CHECK(classes.empty() || classes.size() == queries.size());
  ++stats_.stat_batches;
  stats_.stat_queries += queries.size();
  if (service_->instruments() != nullptr && !queries.empty()) {
    service_->instruments()->OnStatBatch(queries.size());
  }

  // Parallel stage: Prepare is const and touches no mutable service state;
  // each item writes only its own slot.
  std::vector<PreparedQuery> prepared(queries.size());
  const QueryService* service = service_;
  auto prepare_one = [service, &queries, &prepared](size_t i) {
    prepared[i] = service->Prepare(queries[i]);
  };
  if (pool_ == nullptr || pool_->num_threads() <= 1 || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) prepare_one(i);
  } else {
    pool_->ParallelFor(queries.size(),
                       [&prepare_one](size_t, size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) prepare_one(i);
                       });
  }

  // Serial stage, in batch order: the stateful serving ladder. Query ids,
  // audit state, WAL bytes, and fault draws evolve exactly as a serial
  // Submit loop would evolve them.
  std::vector<ServiceAnswer> answers;
  answers.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Class tags ride the serial stage only (metrics attribution is
    // stateful); SubmitPrepared resets the tag after each request.
    if (!classes.empty()) service_->set_request_class(classes[i]);
    answers.push_back(
        service_->SubmitPrepared(queries[i], std::move(prepared[i])));
  }
  return answers;
}

std::vector<Result<std::vector<uint8_t>>> BatchExecutor::ExecutePirBatch(
    const std::vector<size_t>& indices, const Deadline& deadline,
    uint8_t tenant_class) {
  ++stats_.pir_batches;
  stats_.pir_reads += indices.size();
  // Tag the whole batch with the caller's class, restoring the previous
  // tag after — the same discipline SubmitPrepared applies per request.
  const uint8_t previous_class = service_->request_class();
  service_->set_request_class(tenant_class);
  auto results = service_->PirReadBatch(indices, deadline, pool_);
  service_->set_request_class(previous_class);
  return results;
}

}  // namespace tripriv
