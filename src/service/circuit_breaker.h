// Per-backend circuit breaker on simulated time.
//
// Classic three-state breaker: kClosed passes everything and counts
// consecutive failures; `failure_threshold` of them trip it to kOpen, which
// rejects instantly (protecting both the caller's deadline budget and the
// struggling backend) until a seed-deterministic reopen tick; the first
// allowed request after that runs in kHalfOpen as a probe, and
// `half_open_successes` consecutive probe successes close the breaker while
// any probe failure re-opens it. The reopen tick carries seeded jitter so
// replicated services do not retry-stampede a recovering backend in
// lock-step — the jitter draws from an explicit Rng, keeping chaos runs
// bit-reproducible.

#pragma once

#include <cstdint>

#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

/// Breaker tuning.
struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker.
  size_t failure_threshold = 3;
  /// Base ticks the breaker stays open before probing.
  uint64_t open_ticks = 32;
  /// Uniform jitter in [0, open_jitter_ticks] added to each open period.
  uint64_t open_jitter_ticks = 8;
  /// Consecutive half-open successes required to close again.
  size_t half_open_successes = 2;
  /// Seed of the jitter RNG.
  uint64_t seed = 0xB4EA;
};

/// Breaker state, exposed for tests and stats.
enum class BreakerState : uint8_t {
  kClosed,    ///< traffic flows; failures are counted
  kOpen,      ///< traffic rejected until the reopen tick
  kHalfOpen,  ///< one probe at a time decides open vs closed
};

const char* BreakerStateToString(BreakerState state);

/// Three-state circuit breaker; see file comment.
class CircuitBreaker {
 public:
  CircuitBreaker(const CircuitBreakerConfig& config, SimClock* clock);

  /// True when the caller may attempt the backend now. In kHalfOpen only
  /// one in-flight probe is allowed; further calls are rejected until the
  /// probe reports via RecordSuccess/RecordFailure.
  bool AllowRequest();

  /// Reports the outcome of an allowed request.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const { return state_; }
  size_t times_opened() const { return times_opened_; }
  /// Requests rejected by an open breaker (or a busy half-open probe slot).
  size_t rejected() const { return rejected_; }
  /// Failures counted toward the trip threshold since the last success.
  size_t consecutive_failures() const { return consecutive_failures_; }
  /// Consecutive probe successes recorded in the current half-open episode.
  size_t half_open_successes() const { return half_open_successes_; }
  /// Total probe requests admitted while half-open, across all episodes.
  size_t half_open_probes() const { return half_open_probes_; }
  /// True while an admitted half-open probe has not yet reported.
  bool probe_in_flight() const { return probe_in_flight_; }

 private:
  void TripOpen();

  CircuitBreakerConfig config_;
  SimClock* clock_;
  Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  size_t consecutive_failures_ = 0;
  size_t half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  uint64_t reopen_at_ = 0;
  size_t times_opened_ = 0;
  size_t rejected_ = 0;
  size_t half_open_probes_ = 0;
};

}  // namespace tripriv
