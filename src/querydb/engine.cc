#include "querydb/engine.h"

#include <algorithm>

namespace tripriv {

Result<QueryAnswer> ExecuteQuery(const DataTable& table,
                                 const StatQuery& query) {
  TRIPRIV_ASSIGN_OR_RETURN(auto rows, query.where.MatchingRows(table));
  QueryAnswer answer;
  answer.query_set_size = rows.size();
  if (query.fn == AggregateFn::kCount) {
    answer.value = static_cast<double>(rows.size());
    return answer;
  }
  if (query.attribute.empty()) {
    return Status::InvalidArgument("aggregate needs an attribute");
  }
  TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(query.attribute));
  std::vector<double> values;
  values.reserve(rows.size());
  for (size_t r : rows) {
    const Value& v = table.at(r, col);
    if (v.is_null()) continue;  // nulls are excluded from aggregates
    if (!v.is_numeric()) {
      return Status::InvalidArgument("attribute '" + query.attribute +
                                     "' is not numeric");
    }
    values.push_back(v.ToDouble());
  }
  switch (query.fn) {
    case AggregateFn::kSum: {
      double s = 0;
      for (double v : values) s += v;
      answer.value = s;
      return answer;
    }
    case AggregateFn::kAvg: {
      if (values.empty()) {
        return Status::FailedPrecondition("AVG over an empty selection");
      }
      double s = 0;
      for (double v : values) s += v;
      answer.value = s / static_cast<double>(values.size());
      return answer;
    }
    case AggregateFn::kMin:
      if (values.empty()) {
        return Status::FailedPrecondition("MIN over an empty selection");
      }
      answer.value = *std::min_element(values.begin(), values.end());
      return answer;
    case AggregateFn::kMax:
      if (values.empty()) {
        return Status::FailedPrecondition("MAX over an empty selection");
      }
      answer.value = *std::max_element(values.begin(), values.end());
      return answer;
    case AggregateFn::kCount:
      break;  // handled above
  }
  return Status::Internal("unhandled aggregate");
}

Result<QueryAnswer> ExecuteQuery(const DataTable& table, const StatQuery& query,
                                 SimClock* clock, const Deadline& deadline) {
  TRIPRIV_CHECK(clock != nullptr);
  if (deadline.expired(*clock)) {
    return DeadlineExceededError("query evaluation (not started)");
  }
  const size_t rows = table.num_rows();
  clock->Advance(rows / kEvalRowsPerTick + 1);
  if (deadline.expired(*clock)) {
    return DeadlineExceededError("query evaluation over " +
                                 std::to_string(rows) + " rows");
  }
  return ExecuteQuery(table, query);
}

}  // namespace tripriv
