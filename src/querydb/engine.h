// Exact (unprotected) evaluation of statistical queries.

#pragma once

#include "querydb/query.h"
#include "table/data_table.h"
#include "util/clock.h"

namespace tripriv {

/// Exact answer to a query plus the query-set size — the quantity
/// protection mechanisms key off.
struct QueryAnswer {
  double value = 0.0;
  size_t query_set_size = 0;
};

/// Evaluates `query` on `table`. COUNT needs no attribute; SUM/AVG/MIN/MAX
/// need a numeric attribute. AVG/MIN/MAX over an empty selection fail with
/// FailedPrecondition; SUM and COUNT return 0.
Result<QueryAnswer> ExecuteQuery(const DataTable& table, const StatQuery& query);

/// Rows scanned per simulated tick in the deadline-aware overload's cost
/// model. A request-level Deadline therefore bounds how much table the
/// evaluator may touch before failing typed.
inline constexpr size_t kEvalRowsPerTick = 256;

/// Deadline-aware evaluation: charges the scan cost (one tick per started
/// kEvalRowsPerTick rows) to `clock`, then fails with kDeadlineExceeded —
/// without producing an answer — when `deadline` has passed. This is how a
/// QueryService request deadline propagates into query evaluation.
Result<QueryAnswer> ExecuteQuery(const DataTable& table, const StatQuery& query,
                                 SimClock* clock, const Deadline& deadline);

}  // namespace tripriv

