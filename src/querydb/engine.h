// Exact (unprotected) evaluation of statistical queries.

#pragma once

#include "querydb/query.h"
#include "table/data_table.h"

namespace tripriv {

/// Exact answer to a query plus the query-set size — the quantity
/// protection mechanisms key off.
struct QueryAnswer {
  double value = 0.0;
  size_t query_set_size = 0;
};

/// Evaluates `query` on `table`. COUNT needs no attribute; SUM/AVG/MIN/MAX
/// need a numeric attribute. AVG/MIN/MAX over an empty selection fail with
/// FailedPrecondition; SUM and COUNT return 0.
Result<QueryAnswer> ExecuteQuery(const DataTable& table, const StatQuery& query);

}  // namespace tripriv

