#include "querydb/protection.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace tripriv {

const char* ProtectionModeToString(ProtectionMode mode) {
  switch (mode) {
    case ProtectionMode::kNone:
      return "none";
    case ProtectionMode::kQuerySetSize:
      return "query-set-size";
    case ProtectionMode::kAudit:
      return "audit";
    case ProtectionMode::kOutputNoise:
      return "output-noise";
    case ProtectionMode::kCamouflage:
      return "camouflage";
    case ProtectionMode::kDifferentialPrivacy:
      return "differential-privacy";
  }
  return "?";
}

AuditPolicy::AuditPolicy(ProtectionMode mode, size_t min_query_set_size,
                         size_t num_records)
    : mode_(mode),
      min_query_set_size_(min_query_set_size),
      num_records_(num_records) {}

std::optional<std::string> AuditPolicy::Check(
    const std::vector<size_t>& rows) const {
  if (mode_ != ProtectionMode::kQuerySetSize &&
      mode_ != ProtectionMode::kAudit) {
    return std::nullopt;
  }
  const size_t t = min_query_set_size_;
  if (rows.size() < t) {
    return "query set smaller than " + std::to_string(t);
  }
  if (rows.size() + t > num_records_) {
    return "query set larger than n - " + std::to_string(t);
  }
  if (mode_ == ProtectionMode::kAudit) {
    // Overlap control (Chin-Ozsoyoglu flavour): refuse when the symmetric
    // difference with a previously answered query set would isolate fewer
    // than t records — the pair would function as a difference attack.
    for (const auto& prev : answered_sets_) {
      std::vector<size_t> sym;
      std::set_symmetric_difference(rows.begin(), rows.end(), prev.begin(),
                                    prev.end(), std::back_inserter(sym));
      if (!sym.empty() && sym.size() < t) {
        return "audit: overlap with an answered query isolates " +
               std::to_string(sym.size()) + " record(s)";
      }
    }
  }
  return std::nullopt;
}

void AuditPolicy::RecordAnswered(std::vector<size_t> rows) {
  if (mode_ != ProtectionMode::kAudit) return;
  answered_sets_.push_back(std::move(rows));
}

StatDatabase::StatDatabase(DataTable data, ProtectionConfig config)
    : data_(std::move(data)),
      config_(config),
      rng_(config.seed),
      policy_(config.mode, config.min_query_set_size, data_.num_rows()) {}

Result<ProtectedAnswer> StatDatabase::Query(const StatQuery& query) {
  log_.push_back(query);
  TRIPRIV_ASSIGN_OR_RETURN(auto rows, query.where.MatchingRows(data_));

  ProtectedAnswer answer;
  if (auto reason = policy_.Check(rows)) {
    answer.refused = true;
    answer.refusal_reason = *reason;
    return answer;
  }
  TRIPRIV_ASSIGN_OR_RETURN(QueryAnswer exact, ExecuteQuery(data_, query));

  switch (config_.mode) {
    case ProtectionMode::kNone:
    case ProtectionMode::kQuerySetSize:
      answer.value = exact.value;
      break;
    case ProtectionMode::kAudit:
      answer.value = exact.value;
      policy_.RecordAnswered(std::move(rows));
      break;
    case ProtectionMode::kOutputNoise: {
      // Noise scale anchored to the aggregated attribute's dispersion (for
      // COUNT: to sqrt(n), the Duncan-Mukherjee deterrent regime).
      double scale;
      if (query.fn == AggregateFn::kCount) {
        scale = std::sqrt(static_cast<double>(data_.num_rows()));
      } else {
        auto col = data_.NumericColumn(query.attribute);
        if (!col.ok()) return col.status();
        scale = col->size() >= 2 ? SampleStddev(*col) : 1.0;
        if (query.fn == AggregateFn::kSum) {
          scale *= std::sqrt(static_cast<double>(std::max<size_t>(1, exact.query_set_size)));
        }
      }
      answer.value = exact.value + rng_.Normal(0.0, config_.noise_fraction * scale);
      if (query.fn == AggregateFn::kCount) {
        answer.value = std::max(0.0, std::round(answer.value));
      }
      break;
    }
    case ProtectionMode::kDifferentialPrivacy: {
      if (config_.epsilon <= 0.0) {
        return Status::FailedPrecondition("epsilon must be > 0");
      }
      // Laplace mechanism: noise scale = sensitivity / epsilon.
      double sensitivity = 1.0;
      switch (query.fn) {
        case AggregateFn::kCount:
          sensitivity = 1.0;
          break;
        case AggregateFn::kSum:
        case AggregateFn::kAvg: {
          // One respondent moves a SUM by at most the attribute range (a
          // public domain bound; estimated from the data here and noted as
          // leakage in DESIGN.md). AVG is released as a noisy SUM divided
          // by a noisy COUNT.
          auto col = data_.NumericColumn(query.attribute);
          if (!col.ok()) return col.status();
          sensitivity = col->empty() ? 1.0 : (Max(*col) - Min(*col));
          if (sensitivity <= 0.0) sensitivity = 1.0;
          break;
        }
        case AggregateFn::kMin:
        case AggregateFn::kMax:
          answer.refused = true;
          answer.refusal_reason =
              "MIN/MAX have unbounded sensitivity under differential privacy";
          return answer;
      }
      if (query.fn == AggregateFn::kAvg) {
        // Split the budget between the sum and the count.
        const double half_eps = config_.epsilon / 2.0;
        StatQuery sum_query = query;
        sum_query.fn = AggregateFn::kSum;
        TRIPRIV_ASSIGN_OR_RETURN(QueryAnswer exact_sum,
                                 ExecuteQuery(data_, sum_query));
        const double noisy_sum =
            exact_sum.value + rng_.Laplace(0.0, sensitivity / half_eps);
        const double noisy_count =
            static_cast<double>(exact.query_set_size) +
            rng_.Laplace(0.0, 1.0 / half_eps);
        if (noisy_count < 1.0) {
          answer.refused = true;
          answer.refusal_reason = "noisy count too small to release an average";
          return answer;
        }
        answer.value = noisy_sum / noisy_count;
      } else {
        answer.value =
            exact.value + rng_.Laplace(0.0, sensitivity / config_.epsilon);
        if (query.fn == AggregateFn::kCount) {
          answer.value = std::max(0.0, std::round(answer.value));
        }
      }
      break;
    }
    case ProtectionMode::kCamouflage: {
      // Interval guaranteed to contain the truth; its placement is
      // randomized so the midpoint does not reveal the exact answer.
      double range;
      if (query.fn == AggregateFn::kCount) {
        range = static_cast<double>(data_.num_rows());
      } else {
        auto col = data_.NumericColumn(query.attribute);
        if (!col.ok()) return col.status();
        range = col->empty() ? 1.0 : (Max(*col) - Min(*col));
        if (query.fn == AggregateFn::kSum) {
          range *= static_cast<double>(std::max<size_t>(1, exact.query_set_size));
        }
      }
      const double half_width = std::max(1e-9, config_.camouflage_fraction * range);
      const double offset = rng_.UniformDouble(0.0, half_width);
      answer.interval_lo = exact.value - offset;
      answer.interval_hi = exact.value + (half_width - offset);
      answer.value = 0.5 * (answer.interval_lo + answer.interval_hi);
      break;
    }
  }
  return answer;
}

Result<ProtectedAnswer> StatDatabase::Query(std::string_view sql) {
  TRIPRIV_ASSIGN_OR_RETURN(StatQuery query, ParseQuery(sql));
  return Query(query);
}

}  // namespace tripriv
