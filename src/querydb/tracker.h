// The Schlörer tracker attack [22] on query-set-size-restricted databases.
//
// Section 3: "the SDC problem in this kind of databases is known to be
// difficult since the 1980s, due to the existence of the tracker attack."
// A query-set-size control refuses any query whose set C has |C| < t or
// |C| > n - t. A *tracker* is a padding predicate T with both |T| and
// |not T| answerable; the refused statistic splits into answerable pieces:
//
//   count(C) = count(C or T) + count(C or not T) - n
//   sum(C)   = sum(C or T)  + sum(C or not T)  - (sum(T) + sum(not T))
//
// The attacker below finds a tracker automatically by probing threshold
// predicates on numeric attributes, then infers a target respondent's
// confidential value — demonstrating respondent-privacy failure of pure
// query restriction.

#pragma once

#include <optional>
#include <string>

#include "querydb/protection.h"

namespace tripriv {

/// Outcome of a tracker attack.
struct TrackerAttackResult {
  bool succeeded = false;
  /// Why the attack failed (refusals that padding could not circumvent).
  std::string failure_reason;
  /// Inferred count of records matching the target predicate.
  double inferred_count = 0.0;
  /// Inferred sum of the confidential attribute over the target set; when
  /// inferred_count == 1 this is the respondent's exact value.
  double inferred_sum = 0.0;
  /// Queries issued against the database during the attack.
  size_t queries_used = 0;
};

/// Probes `db` for a general tracker: a threshold predicate on a numeric
/// attribute such that both T and NOT T are answerable. Issues live probe
/// queries (they appear in the log, like a real attack). Returns nullopt if
/// no tracker is found among the probed candidates.
std::optional<Predicate> FindTracker(StatDatabase* db,
                                     const std::string& numeric_attribute,
                                     double lo, double hi, size_t probes = 16);

/// Runs the full attack: uses `tracker` to pad the (presumably refused)
/// target predicate and infer count(target) and sum(conf_attribute) over
/// the target set via the Schlörer identities.
Result<TrackerAttackResult> TrackerAttack(StatDatabase* db,
                                          const Predicate& target,
                                          const std::string& conf_attribute,
                                          const Predicate& tracker);

}  // namespace tripriv

