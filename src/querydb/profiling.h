// Query-log profiling: what the owner learns about a user.
//
// The paper's Section 1 motivation is the August 2006 AOL release — 36
// million user queries, each a window into a person's life. This module
// makes "the owner can profile users from the query log" measurable: given
// a log, it summarizes which attributes and value regions a user probed,
// and scores how revealing the log is.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "querydb/query.h"

namespace tripriv {

/// An owner-side profile distilled from a user's query log.
struct UserProfile {
  /// How often each attribute was referenced in WHERE clauses.
  std::map<std::string, size_t> attribute_interest;
  /// How often each aggregate function was used.
  std::map<std::string, size_t> function_use;
  /// Number of logged queries.
  size_t queries = 0;
  /// Number of distinct WHERE predicates (verbatim).
  size_t distinct_predicates = 0;

  /// The attribute the user probed most (empty when no predicates logged).
  std::string TopInterest() const;
  /// Human-readable rendering.
  std::string ToString() const;
};

/// Builds the profile an owner can extract from `log`.
UserProfile ProfileQueryLog(const std::vector<StatQuery>& log);

/// A [0, 1] score of how much the log reveals: 0 when the log is empty or
/// predicate-free, approaching 1 as queries carry many distinct,
/// attribute-rich predicates. Defined as the fraction of logged queries
/// whose full predicate is visible (which, for a plaintext query channel,
/// is all of them — the measured "none" user-privacy grade of Table 2).
double QueryLogVisibility(const std::vector<StatQuery>& log);

}  // namespace tripriv

