#include "querydb/query.h"

#include <cctype>

#include "util/string_util.h"

namespace tripriv {

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "COUNT";
    case AggregateFn::kSum:
      return "SUM";
    case AggregateFn::kAvg:
      return "AVG";
    case AggregateFn::kMin:
      return "MIN";
    case AggregateFn::kMax:
      return "MAX";
  }
  return "?";
}

std::string StatQuery::ToString() const {
  std::string out = "SELECT ";
  out += AggregateFnToString(fn);
  out += "(";
  out += attribute.empty() ? "*" : attribute;
  out += ") FROM ";
  out += table.empty() ? "t" : table;
  out += " WHERE ";
  out += where.ToString();
  return out;
}

namespace {

/// Token kinds for the small lexer.
enum class Tok {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kComma,
  kStar,
  kOp,   // comparison operator
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text{};
  Value literal{};  // for numbers / strings
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '(') {
        out.push_back({Tok::kLParen, "("});
        ++pos_;
      } else if (c == ')') {
        out.push_back({Tok::kRParen, ")"});
        ++pos_;
      } else if (c == ',') {
        out.push_back({Tok::kComma, ","});
        ++pos_;
      } else if (c == '*') {
        out.push_back({Tok::kStar, "*"});
        ++pos_;
      } else if (c == ';') {
        ++pos_;  // trailing semicolon is cosmetic
      } else if (c == '\'') {
        TRIPRIV_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+' || c == '.') {
        TRIPRIV_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        TRIPRIV_ASSIGN_OR_RETURN(Token t, LexOperator());
        out.push_back(std::move(t));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' in query");
      }
    }
    out.push_back({Tok::kEnd, ""});
    return out;
  }

 private:
  Result<Token> LexString() {
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < input_.size() && input_[pos_] != '\'') {
      text += input_[pos_++];
    }
    if (pos_ == input_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // closing quote
    Token t{Tok::kString, text};
    t.literal = Value(text);
    return t;
  }

  Result<Token> LexNumber() {
    const size_t start = pos_;
    if (input_[pos_] == '-' || input_[pos_] == '+') ++pos_;
    bool has_dot = false;
    bool has_exp = false;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !has_dot && !has_exp) {
        has_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    const std::string text(input_.substr(start, pos_ - start));
    Token t{Tok::kNumber, text};
    int64_t iv;
    double dv;
    if (!has_dot && !has_exp && ParseInt64(text, &iv)) {
      t.literal = Value(iv);
    } else if (ParseDouble(text, &dv)) {
      t.literal = Value(dv);
    } else {
      return Status::InvalidArgument("malformed number '" + text + "'");
    }
    return t;
  }

  Result<Token> LexOperator() {
    const char c = input_[pos_];
    std::string op(1, c);
    ++pos_;
    if (pos_ < input_.size() && input_[pos_] == '=') {
      op += '=';
      ++pos_;
    }
    if (op == "=" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      return Token{Tok::kOp, op};
    }
    return Status::InvalidArgument("unknown operator '" + op + "'");
  }

  Token LexIdent() {
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    return {Tok::kIdent, std::string(input_.substr(start, pos_ - start))};
  }

  std::string_view input_;
  size_t pos_ = 0;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatQuery> Parse() {
    StatQuery query;
    TRIPRIV_RETURN_IF_ERROR(ExpectKeyword("select"));
    TRIPRIV_ASSIGN_OR_RETURN(query.fn, ParseAggregateFn());
    TRIPRIV_RETURN_IF_ERROR(Expect(Tok::kLParen, "("));
    if (Peek().kind == Tok::kStar) {
      if (query.fn != AggregateFn::kCount) {
        return Status::InvalidArgument("'*' is only valid in COUNT(*)");
      }
      Advance();
    } else {
      TRIPRIV_ASSIGN_OR_RETURN(query.attribute, ExpectIdent());
    }
    TRIPRIV_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
    TRIPRIV_RETURN_IF_ERROR(ExpectKeyword("from"));
    TRIPRIV_ASSIGN_OR_RETURN(query.table, ExpectIdent());
    if (PeekKeyword("where")) {
      Advance();
      TRIPRIV_ASSIGN_OR_RETURN(query.where, ParseOr());
    }
    if (Peek().kind != Tok::kEnd) {
      return Status::InvalidArgument("trailing tokens after query: '" +
                                     Peek().text + "'");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == Tok::kIdent && ToLower(Peek().text) == kw;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return Status::InvalidArgument("expected '" + std::string(kw) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Expect(Tok kind, std::string_view what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected '" + std::string(what) +
                                     "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<AggregateFn> ParseAggregateFn() {
    TRIPRIV_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    const std::string lower = ToLower(name);
    if (lower == "count") return AggregateFn::kCount;
    if (lower == "sum") return AggregateFn::kSum;
    if (lower == "avg") return AggregateFn::kAvg;
    if (lower == "min") return AggregateFn::kMin;
    if (lower == "max") return AggregateFn::kMax;
    return Status::InvalidArgument("unknown aggregate '" + name + "'");
  }

  // or := and (OR and)*
  Result<Predicate> ParseOr() {
    TRIPRIV_ASSIGN_OR_RETURN(Predicate lhs, ParseAnd());
    while (PeekKeyword("or")) {
      Advance();
      TRIPRIV_ASSIGN_OR_RETURN(Predicate rhs, ParseAnd());
      lhs = Predicate::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // and := unary (AND unary)*
  Result<Predicate> ParseAnd() {
    TRIPRIV_ASSIGN_OR_RETURN(Predicate lhs, ParseUnary());
    while (PeekKeyword("and")) {
      Advance();
      TRIPRIV_ASSIGN_OR_RETURN(Predicate rhs, ParseUnary());
      lhs = Predicate::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // unary := NOT unary | '(' or ')' | comparison
  Result<Predicate> ParseUnary() {
    if (PeekKeyword("not")) {
      Advance();
      TRIPRIV_ASSIGN_OR_RETURN(Predicate inner, ParseUnary());
      return Predicate::Not(std::move(inner));
    }
    if (Peek().kind == Tok::kLParen) {
      Advance();
      TRIPRIV_ASSIGN_OR_RETURN(Predicate inner, ParseOr());
      TRIPRIV_RETURN_IF_ERROR(Expect(Tok::kRParen, ")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<Predicate> ParseComparison() {
    TRIPRIV_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
    if (Peek().kind != Tok::kOp) {
      return Status::InvalidArgument("expected comparison operator after '" +
                                     attr + "'");
    }
    const std::string op = Peek().text;
    Advance();
    if (Peek().kind != Tok::kNumber && Peek().kind != Tok::kString) {
      return Status::InvalidArgument("expected literal after operator, got '" +
                                     Peek().text + "'");
    }
    Value literal = Peek().literal;
    Advance();
    CompareOp cmp;
    if (op == "=") cmp = CompareOp::kEq;
    else if (op == "!=") cmp = CompareOp::kNe;
    else if (op == "<") cmp = CompareOp::kLt;
    else if (op == "<=") cmp = CompareOp::kLe;
    else if (op == ">") cmp = CompareOp::kGt;
    else cmp = CompareOp::kGe;
    return Predicate::Compare(std::move(attr), cmp, std::move(literal));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatQuery> ParseQuery(std::string_view sql) {
  Lexer lexer(sql);
  TRIPRIV_ASSIGN_OR_RETURN(auto tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tripriv
