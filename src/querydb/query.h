// Statistical queries: AST and a small SQL-ish parser.
//
// The interactive-statistical-database scenario of Section 3: users submit
// aggregate queries such as
//   SELECT COUNT(*) FROM trial WHERE height < 165 AND weight > 105
//   SELECT AVG(blood_pressure) FROM trial WHERE height < 165 AND weight > 105
// This module parses exactly that shape: one aggregate over one table with
// a boolean combination of attribute/literal comparisons.

#pragma once

#include <string>
#include <string_view>

#include "table/predicate.h"

namespace tripriv {

/// Supported aggregate functions.
enum class AggregateFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggregateFnToString(AggregateFn fn);

/// One statistical query.
struct StatQuery {
  AggregateFn fn = AggregateFn::kCount;
  /// Aggregated attribute; empty for COUNT(*).
  std::string attribute;
  /// FROM table name (informational; execution binds to a DataTable).
  std::string table;
  Predicate where = Predicate::True();

  /// SQL-ish rendering.
  std::string ToString() const;
};

/// Parses "SELECT <FN>(<attr>|*) FROM <name> [WHERE <condition>]".
/// Keywords are case-insensitive; condition supports comparisons
/// (= != < <= > >=) between an attribute and an integer, real, or
/// single-quoted string literal, combined with AND / OR / NOT and
/// parentheses (AND binds tighter than OR).
Result<StatQuery> ParseQuery(std::string_view sql);

}  // namespace tripriv

