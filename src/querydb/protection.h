// Protected interactive statistical database.
//
// Section 3: "currently employed strategies rely on perturbing, restricting
// or replacing by intervals the answers to certain queries" — citing
// Chin & Ozsoyoglu [7] (auditing / restriction), Duncan & Mukherjee [14]
// (additive output noise), and Gopal et al. [16] (CVC interval answers).
// StatDatabase wraps a DataTable behind one of those mechanisms, and —
// crucially for the framework — keeps the full query log: every SDC method
// for interactive databases assumes the owner sees the queries, which is
// exactly why this protection family provides NO user privacy (Table 2).

#pragma once

#include <optional>
#include <vector>

#include "querydb/engine.h"
#include "util/random.h"

namespace tripriv {

/// Protection mechanism applied to query answers.
enum class ProtectionMode {
  kNone,            ///< exact answers, no restriction (the AOL scenario)
  kQuerySetSize,    ///< refuse when |QS| < t or |QS| > n - t
  kAudit,           ///< query-set-size + overlap control over the audit log
  kOutputNoise,     ///< exact size checks off; answers perturbed with noise
  kCamouflage,      ///< interval answers guaranteed to contain the truth
  /// The paper's "future research" direction, as it played out historically:
  /// epsilon-differential privacy via the Laplace mechanism. COUNT queries
  /// get Laplace(1/epsilon) noise; SUM/AVG use the public attribute range
  /// as sensitivity bound; MIN/MAX are refused (unbounded sensitivity).
  /// Unlike query auditing, no query inspection is needed — so this mode,
  /// alone among the respondent protections here, composes with PIR.
  kDifferentialPrivacy,
};

const char* ProtectionModeToString(ProtectionMode mode);

/// Configuration of a protected database.
struct ProtectionConfig {
  ProtectionMode mode = ProtectionMode::kQuerySetSize;
  /// Query-set-size threshold t.
  size_t min_query_set_size = 3;
  /// Output-noise standard deviation as a fraction of the aggregated
  /// attribute's standard deviation (Duncan-Mukherjee style).
  double noise_fraction = 0.15;
  /// Camouflage interval half-width as a fraction of the attribute range.
  double camouflage_fraction = 0.1;
  /// Per-query privacy budget for kDifferentialPrivacy.
  double epsilon = 1.0;
  uint64_t seed = 1;
};

/// The Chin-Ozsoyoglu-style admission policy over query sets: the
/// query-set-size bound and, in kAudit mode, pairwise overlap control
/// against previously answered sets. Factored out of StatDatabase so the
/// fault-tolerant QueryService front-end (src/service/) can run the same
/// policy against audit state it persists in a crash-recoverable WAL —
/// degraded serving must refuse exactly what the healthy policy refuses.
class AuditPolicy {
 public:
  /// `num_records` is the table size n of the "|QS| > n - t" upper bound.
  /// Modes other than kQuerySetSize / kAudit admit everything.
  AuditPolicy(ProtectionMode mode, size_t min_query_set_size,
              size_t num_records);

  /// Refusal reason for the sorted query set `rows`, or nullopt when the
  /// policy admits it. Pure: does not record anything.
  std::optional<std::string> Check(const std::vector<size_t>& rows) const;

  /// Commits `rows` (sorted) for future overlap checks. Only kAudit keeps
  /// state; other modes drop the set.
  void RecordAnswered(std::vector<size_t> rows);

  const std::vector<std::vector<size_t>>& answered_sets() const {
    return answered_sets_;
  }
  ProtectionMode mode() const { return mode_; }
  size_t min_query_set_size() const { return min_query_set_size_; }

 private:
  ProtectionMode mode_;
  size_t min_query_set_size_;
  size_t num_records_;
  std::vector<std::vector<size_t>> answered_sets_;
};

/// Answer from a protected database.
struct ProtectedAnswer {
  bool refused = false;
  std::string refusal_reason;
  /// Point answer (kNone, kQuerySetSize, kAudit, kOutputNoise).
  double value = 0.0;
  /// Interval answer (kCamouflage); contains the true value.
  double interval_lo = 0.0;
  double interval_hi = 0.0;
};

/// An interactive statistical database guarded by one protection mode.
class StatDatabase {
 public:
  StatDatabase(DataTable data, ProtectionConfig config);

  /// Answers (or refuses) `query`; the query is logged either way.
  Result<ProtectedAnswer> Query(const StatQuery& query);

  /// Parses and answers a SQL-ish query string.
  Result<ProtectedAnswer> Query(std::string_view sql);

  /// The owner's complete view of user activity. Its existence is the
  /// user-privacy failure the paper attributes to query control.
  const std::vector<StatQuery>& query_log() const { return log_; }

  size_t num_records() const { return data_.num_rows(); }
  const DataTable& data() const { return data_; }
  const ProtectionConfig& config() const { return config_; }

 private:
  DataTable data_;
  ProtectionConfig config_;
  Rng rng_;
  std::vector<StatQuery> log_;
  /// Size/overlap policy; records the sets of *answered* queries (kAudit).
  AuditPolicy policy_;
};

}  // namespace tripriv

