#include "querydb/profiling.h"

#include <set>
#include <sstream>

namespace tripriv {

std::string UserProfile::TopInterest() const {
  std::string best;
  size_t best_count = 0;
  for (const auto& [attr, count] : attribute_interest) {
    if (count > best_count) {
      best = attr;
      best_count = count;
    }
  }
  return best;
}

std::string UserProfile::ToString() const {
  std::ostringstream os;
  os << queries << " queries, " << distinct_predicates
     << " distinct predicates; interests:";
  for (const auto& [attr, count] : attribute_interest) {
    os << " " << attr << "(" << count << ")";
  }
  return os.str();
}

UserProfile ProfileQueryLog(const std::vector<StatQuery>& log) {
  UserProfile profile;
  profile.queries = log.size();
  std::set<std::string> predicates;
  for (const auto& query : log) {
    profile.function_use[AggregateFnToString(query.fn)]++;
    for (const auto& attr : query.where.ReferencedAttributes()) {
      profile.attribute_interest[attr]++;
    }
    predicates.insert(query.where.ToString());
  }
  profile.distinct_predicates = predicates.size();
  return profile;
}

double QueryLogVisibility(const std::vector<StatQuery>& log) {
  if (log.empty()) return 0.0;
  size_t with_predicates = 0;
  for (const auto& query : log) {
    if (!query.where.ReferencedAttributes().empty()) ++with_predicates;
  }
  return static_cast<double>(with_predicates) / static_cast<double>(log.size());
}

}  // namespace tripriv
