#include "querydb/tracker.h"

#include <cmath>

namespace tripriv {
namespace {

StatQuery CountQuery(Predicate where) {
  StatQuery q;
  q.fn = AggregateFn::kCount;
  q.table = "t";
  q.where = std::move(where);
  return q;
}

StatQuery SumQuery(std::string attribute, Predicate where) {
  StatQuery q;
  q.fn = AggregateFn::kSum;
  q.attribute = std::move(attribute);
  q.table = "t";
  q.where = std::move(where);
  return q;
}

}  // namespace

std::optional<Predicate> FindTracker(StatDatabase* db,
                                     const std::string& numeric_attribute,
                                     double lo, double hi, size_t probes) {
  TRIPRIV_CHECK(db != nullptr);
  // Among answerable candidates, prefer the most balanced one
  // (|T| close to |not T|): padding a refused query with a lopsided tracker
  // can push the padded set past the upper size bound n - t, so balance
  // maximizes the attack's room (Schloerer's "general tracker" condition).
  std::optional<Predicate> best;
  double best_imbalance = 0.0;
  for (size_t i = 1; i <= probes; ++i) {
    const double threshold =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(probes + 1);
    Predicate t =
        Predicate::Compare(numeric_attribute, CompareOp::kLt, Value(threshold));
    auto a = db->Query(CountQuery(t));
    auto b = db->Query(CountQuery(Predicate::Not(t)));
    if (a.ok() && b.ok() && !a->refused && !b->refused) {
      const double imbalance = std::fabs(a->value - b->value);
      if (!best.has_value() || imbalance < best_imbalance) {
        best = t;
        best_imbalance = imbalance;
      }
    }
  }
  return best;
}

Result<TrackerAttackResult> TrackerAttack(StatDatabase* db,
                                          const Predicate& target,
                                          const std::string& conf_attribute,
                                          const Predicate& tracker) {
  TRIPRIV_CHECK(db != nullptr);
  TrackerAttackResult result;
  const size_t log_before = db->query_log().size();

  auto ask = [&](const StatQuery& q) -> Result<double> {
    TRIPRIV_ASSIGN_OR_RETURN(ProtectedAnswer a, db->Query(q));
    if (a.refused) {
      // The refusal transcript is the attacker's view — exposing it is
      // the point of the demo.
      // NOLINTNEXTLINE(taint-flow-to-sink)
      return Status::PermissionDenied("refused: " + a.refusal_reason +
                                      " for " + q.ToString());
    }
    return a.value;
  };

  const Predicate not_tracker = Predicate::Not(tracker);
  // n = count(T) + count(not T); both answerable by tracker definition.
  auto n_left = ask(CountQuery(tracker));
  auto n_right = ask(CountQuery(not_tracker));
  // Padded target counts.
  auto c_left = ask(CountQuery(Predicate::Or(target, tracker)));
  auto c_right = ask(CountQuery(Predicate::Or(target, not_tracker)));
  // Padded sums.
  auto s_t = ask(SumQuery(conf_attribute, tracker));
  auto s_nt = ask(SumQuery(conf_attribute, not_tracker));
  auto s_left = ask(SumQuery(conf_attribute, Predicate::Or(target, tracker)));
  auto s_right =
      ask(SumQuery(conf_attribute, Predicate::Or(target, not_tracker)));

  result.queries_used = db->query_log().size() - log_before;
  for (const auto* piece :
       {&n_left, &n_right, &c_left, &c_right, &s_t, &s_nt, &s_left, &s_right}) {
    if (!piece->ok()) {
      result.succeeded = false;
      result.failure_reason = piece->status().message();
      return result;
    }
  }
  const double n = n_left.value() + n_right.value();
  result.inferred_count = c_left.value() + c_right.value() - n;
  result.inferred_sum =
      s_left.value() + s_right.value() - (s_t.value() + s_nt.value());
  result.succeeded = true;
  return result;
}

}  // namespace tripriv
