// Deterministic fixed-size thread pool.
//
// Parallelism in TriPriv must never change results: the fault-injection and
// WAL-recovery machinery replay runs from seeds and compare transcripts
// byte-for-byte, so a thread count may change wall-clock time and nothing
// else. The pool therefore exposes exactly one primitive, ParallelFor, with
// a determinism contract rather than a scheduling contract:
//
//   * [0, n) is split into NumShards(n) contiguous shards whose boundaries
//     depend only on n and the worker count — never on scheduling;
//   * the callback may only write state it owns (per-shard slots or
//     per-index slots); any cross-shard reduction is the caller's job and
//     must merge partial results in shard order;
//   * ParallelFor blocks until every shard has finished, so the caller
//     resumes with all shard writes visible (the completion mutex provides
//     the release/acquire pairing).
//
// A pool built with num_threads == 0 runs every shard inline on the calling
// thread — the serial reference the parallel determinism suite compares
// against. ParallelFor must not be called from inside a pool task (a worker
// waiting on its own pool's queue deadlocks).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tripriv {

/// Fixed set of workers driving ParallelFor. See file comment.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = run everything inline on the caller).
  explicit ThreadPool(size_t num_threads);
  /// Joins all workers; queued shards are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 = inline mode).
  size_t num_threads() const { return workers_.size(); }

  /// Shard count ParallelFor(n, ...) uses: min(max(1, num_threads()), n).
  size_t NumShards(size_t n) const;

  /// Runs `fn(shard, begin, end)` for each of the NumShards(n) contiguous
  /// shards covering [0, n); blocks until all have finished. Shards on
  /// distinct workers run concurrently — `fn` must honor the ownership rules
  /// in the file comment.
  void ParallelFor(size_t n,
                   const std::function<void(size_t shard, size_t begin,
                                            size_t end)>& fn);

  // Dispatch counters, bumped serially at ParallelFor entry (callers of
  // ParallelFor are serial by the no-nesting rule). The first two depend
  // only on the call sequence — identical at any worker count — while
  // shards_dispatched() varies with it, so observability treats it as a
  // thread-VARIANT metric excluded from deterministic snapshots.

  /// ParallelFor calls that dispatched work (one barrier wait each).
  uint64_t parallel_fors() const { return parallel_fors_; }
  /// Sum of n across dispatching ParallelFor calls.
  uint64_t items_dispatched() const { return items_dispatched_; }
  /// Sum of NumShards(n) across calls — a function of the worker count.
  uint64_t shards_dispatched() const { return shards_dispatched_; }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  uint64_t parallel_fors_ = 0;
  uint64_t items_dispatched_ = 0;
  uint64_t shards_dispatched_ = 0;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace tripriv
