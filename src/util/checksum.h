// FNV-1a 64-bit checksums over byte ranges.
//
// Used wherever the tree needs cheap, portable integrity detection:
// AuditWal record framing (src/service/audit_wal.h) and the per-record
// checksums that let a PIR client detect a corrupt-answer server
// (src/service/pir_failover.h). Not cryptographic — it detects fault
// injection and bit rot, not adversarial tampering.

#pragma once

#include <cstddef>
#include <cstdint>

#include "core/annotations.h"

namespace tripriv {

inline constexpr uint64_t kFnv1aOffset = 1469598103934665603ull;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ull;

/// Incrementally mixes one byte into an FNV-1a state.
TRIPRIV_SANITIZES(aggregate, digest)
inline void Fnv1aMix(uint64_t* h, uint8_t b) {
  *h ^= b;
  *h *= kFnv1aPrime;
}

/// FNV-1a over `len` bytes starting at `data`.
TRIPRIV_SANITIZES(aggregate, digest)
inline uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = kFnv1aOffset;
  for (size_t i = 0; i < len; ++i) Fnv1aMix(&h, data[i]);
  return h;
}

/// FNV-1a over a NUL-agnostic character range (e.g. a std::string's data).
TRIPRIV_SANITIZES(aggregate, digest)
inline uint64_t Fnv1a64(const char* data, size_t len) {
  uint64_t h = kFnv1aOffset;
  for (size_t i = 0; i < len; ++i) Fnv1aMix(&h, static_cast<uint8_t>(data[i]));
  return h;
}

}  // namespace tripriv
