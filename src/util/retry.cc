#include "util/retry.h"

#include <cmath>

namespace tripriv {

uint64_t RetryPolicy::BackoffTicks(size_t attempt) const {
  const uint64_t cap = max_backoff_ticks < 1 ? 1 : max_backoff_ticks;
  const double base = static_cast<double>(initial_backoff_ticks < 1
                                              ? 1
                                              : initial_backoff_ticks);
  const double mult = backoff_multiplier < 1.0 ? 1.0 : backoff_multiplier;
  const double raw = base * std::pow(mult, static_cast<double>(attempt));
  // Clamp to the integer ceiling BEFORE the cast: for large attempt counts
  // `raw` overflows to +inf (and a cap near UINT64_MAX rounds up to 2^64
  // as a double), and casting a double outside uint64_t's range is
  // undefined behavior. The negated comparison also routes NaN to the cap.
  if (!(raw < static_cast<double>(cap))) return cap;
  return raw < 1.0 ? 1 : static_cast<uint64_t>(raw);
}

RetryPolicy RetryPolicy::Truncated(uint64_t remaining_ticks) const {
  RetryPolicy out = *this;
  if (remaining_ticks < out.deadline_ticks) out.deadline_ticks = remaining_ticks;
  return out;
}

}  // namespace tripriv
