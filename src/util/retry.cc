#include "util/retry.h"

#include <cmath>

namespace tripriv {

uint64_t RetryPolicy::BackoffTicks(size_t attempt) const {
  const double base = static_cast<double>(initial_backoff_ticks < 1
                                              ? 1
                                              : initial_backoff_ticks);
  const double mult = backoff_multiplier < 1.0 ? 1.0 : backoff_multiplier;
  const double raw = base * std::pow(mult, static_cast<double>(attempt));
  const double cap = static_cast<double>(max_backoff_ticks < 1
                                             ? 1
                                             : max_backoff_ticks);
  const double clamped = raw < 1.0 ? 1.0 : (raw > cap ? cap : raw);
  return static_cast<uint64_t>(clamped);
}

}  // namespace tripriv
