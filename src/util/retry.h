// Retry policies for operations over unreliable substrates.
//
// The SMC protocols run over a simulated lossy network (smc/party.h); a
// RetryPolicy bounds how hard a reliability layer fights the faults before
// surfacing a typed transient error. Time is measured in *simulated ticks*
// (PartyNetwork's clock), never wall clock, so chaos experiments stay
// bit-reproducible: a given seed always retries, backs off, and gives up at
// exactly the same points.

#pragma once

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace tripriv {

/// Bounded-attempt exponential backoff with a total deadline budget.
struct RetryPolicy {
  /// Transmissions allowed per message (first send + retransmissions).
  size_t max_attempts = 6;
  /// Backoff before the first retransmission, in simulated ticks.
  uint64_t initial_backoff_ticks = 1;
  /// Multiplier applied per additional attempt (>= 1).
  double backoff_multiplier = 2.0;
  /// Backoff ceiling, in simulated ticks.
  uint64_t max_backoff_ticks = 64;
  /// Total simulated-tick budget of one blocking receive; when the budget
  /// is exhausted the operation fails with kDeadlineExceeded (or
  /// kUnavailable when a peer is known to have crashed).
  uint64_t deadline_ticks = 512;

  /// Backoff before retransmission number `attempt` (0-based):
  /// min(initial * multiplier^attempt, max), and at least 1 tick.
  uint64_t BackoffTicks(size_t attempt) const;

  /// Copy of this policy whose deadline budget is capped at
  /// `remaining_ticks` — how an enclosing Deadline (util/clock.h) propagates
  /// into a nested retry loop without widening the caller's time budget.
  RetryPolicy Truncated(uint64_t remaining_ticks) const;
};

/// True when `status` is worth retrying under a RetryPolicy.
inline bool IsTransient(const Status& status) {
  return IsTransientCode(status.code());
}

}  // namespace tripriv

