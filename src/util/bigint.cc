#include "util/bigint.h"

#include <algorithm>
#include <array>

namespace tripriv {
namespace {

constexpr uint64_t kBase = 1ULL << 32;

}  // namespace

BigInt::BigInt(int64_t v) {
  negative_ = v < 0;
  // Two's-complement-safe absolute value.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  if (mag != 0) limbs_.push_back(static_cast<uint32_t>(mag & 0xFFFFFFFFu));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
  Normalize();
}

BigInt BigInt::FromU64(uint64_t v) {
  BigInt out;
  if (v != 0) out.limbs_.push_back(static_cast<uint32_t>(v & 0xFFFFFFFFu));
  if (v >> 32) out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
  return out;
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::TestBit(size_t i) const {
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

uint64_t BigInt::ToU64() const {
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() > 1) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  return negative_ ? ~mag + 1 : mag;
}

std::optional<int64_t> BigInt::ToI64() const {
  if (BitLength() > 63) {
    // The one representable 64-bit value with 64 magnitude bits is INT64_MIN.
    if (negative_ && BitLength() == 64 && limbs_[0] == 0 &&
        limbs_[1] == 0x80000000u) {
      return INT64_MIN;
    }
    return std::nullopt;
  }
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() > 1) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  return negative_ ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::CompareMagnitude(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  const int mag = CompareMagnitude(*this, other);
  return negative_ ? -mag : mag;
}

BigInt BigInt::AddMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum & 0xFFFFFFFFu);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigInt BigInt::SubMagnitude(const BigInt& a, const BigInt& b) {
  TRIPRIV_CHECK_GE(CompareMagnitude(a, b), 0);
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    BigInt out = AddMagnitude(*this, other);
    out.negative_ = negative_ && !out.IsZero();
    return out;
  }
  const int mag = CompareMagnitude(*this, other);
  if (mag == 0) return BigInt();
  BigInt out = mag > 0 ? SubMagnitude(*this, other) : SubMagnitude(other, *this);
  out.negative_ = (mag > 0 ? negative_ : other.negative_) && !out.IsZero();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::MulMagnitude(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.IsZero() || b.IsZero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
    }
    size_t k = i + b.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out = MulMagnitude(*this, other);
  out.negative_ = (negative_ != other.negative_) && !out.IsZero();
  return out;
}

void BigInt::DivModMagnitude(const BigInt& a, const BigInt& b, BigInt* q,
                             BigInt* r) {
  TRIPRIV_CHECK(!b.IsZero()) << "BigInt division by zero";
  if (CompareMagnitude(a, b) < 0) {
    *q = BigInt();
    *r = a;
    r->negative_ = false;
    return;
  }
  if (b.limbs_.size() == 1) {
    // Short division by a single limb.
    const uint64_t d = b.limbs_[0];
    BigInt quot;
    quot.limbs_.resize(a.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      quot.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    quot.Normalize();
    *q = std::move(quot);
    *r = FromU64(rem);
    return;
  }

  // Knuth Algorithm D (TAOCP vol. 2, 4.3.1) on base-2^32 limbs.
  // D1: normalize so the top limb of the divisor has its high bit set.
  int shift = 0;
  uint32_t top = b.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  BigInt u = a.Abs() << static_cast<size_t>(shift);
  const BigInt v = b.Abs() << static_cast<size_t>(shift);
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() - n;
  u.limbs_.resize(u.limbs_.size() + 1, 0);  // u has m+n+1 limbs

  BigInt quot;
  quot.limbs_.assign(m + 1, 0);
  const uint64_t v1 = v.limbs_[n - 1];
  const uint64_t v2 = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat from the top two limbs of the current remainder.
    const uint64_t num =
        (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t q_hat = num / v1;
    uint64_t r_hat = num % v1;
    while (q_hat >= kBase ||
           q_hat * v2 > ((r_hat << 32) | u.limbs_[j + n - 2])) {
      --q_hat;
      r_hat += v1;
      if (r_hat >= kBase) break;
    }
    // D4: multiply-and-subtract q_hat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t prod = q_hat * v.limbs_[i] + carry;
      carry = prod >> 32;
      int64_t diff = static_cast<int64_t>(u.limbs_[i + j]) -
                     static_cast<int64_t>(prod & 0xFFFFFFFFu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u.limbs_[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u.limbs_[j + n] = static_cast<uint32_t>(diff & 0xFFFFFFFF);

    // D6: q_hat was one too large (probability ~2/2^32): add back.
    if (negative) {
      --q_hat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + carry2;
        u.limbs_[i + j] = static_cast<uint32_t>(sum & 0xFFFFFFFFu);
        carry2 = sum >> 32;
      }
      u.limbs_[j + n] = static_cast<uint32_t>(u.limbs_[j + n] + carry2);
    }
    quot.limbs_[j] = static_cast<uint32_t>(q_hat);
  }

  quot.Normalize();
  // D8: de-normalize the remainder.
  u.Normalize();
  BigInt rem = u >> static_cast<size_t>(shift);
  *q = std::move(quot);
  *r = std::move(rem);
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r) {
  BigInt qm;
  BigInt rm;
  DivModMagnitude(a.Abs(), b.Abs(), &qm, &rm);
  qm.negative_ = (a.negative_ != b.negative_) && !qm.IsZero();
  rm.negative_ = a.negative_ && !rm.IsZero();
  *q = std::move(qm);
  *r = std::move(rm);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  BigInt r;
  DivMod(*this, other, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt q;
  BigInt r;
  DivMod(*this, other, &q, &r);
  return r;
}

BigInt BigInt::Mod(const BigInt& mod) const {
  TRIPRIV_CHECK(!mod.IsZero() && !mod.IsNegative());
  BigInt r = *this % mod;
  if (r.IsNegative()) r += mod;
  return r;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t shifted = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(shifted & 0xFFFFFFFFu);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(shifted >> 32);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = bits / 32;
  const size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t cur = static_cast<uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      cur |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
             << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(cur & 0xFFFFFFFFu);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::ModAdd(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a + b;
  if (s >= m) s -= m;
  return s;
}

BigInt BigInt::ModSub(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a - b;
  if (s.IsNegative()) s += m;
  return s;
}

BigInt BigInt::ModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).Mod(m);
}

BigInt BigInt::ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  TRIPRIV_CHECK(!m.IsZero() && !m.IsNegative());
  TRIPRIV_CHECK(!exp.IsNegative()) << "ModExp requires non-negative exponent";
  if (m == BigInt(1)) return BigInt();
  BigInt result(1);
  BigInt b = base.Mod(m);
  const size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = ModMul(result, result, m);
    if (exp.TestBit(i)) result = ModMul(result, b, m);
  }
  return result;
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  TRIPRIV_CHECK(!m.IsZero() && !m.IsNegative());
  // Extended Euclid on (a mod m, m).
  BigInt r0 = a.Mod(m);
  BigInt r1 = m;
  BigInt s0(1);
  BigInt s1(0);
  while (!r1.IsZero()) {
    BigInt q;
    BigInt r;
    DivMod(r0, r1, &q, &r);
    BigInt s = s0 - q * s1;
    r0 = std::move(r1);
    r1 = std::move(r);
    s0 = std::move(s1);
    s1 = std::move(s);
  }
  if (r0 != BigInt(1)) {
    return Status::InvalidArgument("ModInverse: operands are not coprime");
  }
  return s0.Mod(m);
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  return (a.Abs() / Gcd(a, b)) * b.Abs();
}

BigInt BigInt::Random(size_t bits, Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  BigInt out;
  if (bits == 0) return out;
  const size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) limb = static_cast<uint32_t>(rng->NextU64());
  const size_t extra = limbs * 32 - bits;
  if (extra != 0) out.limbs_.back() &= 0xFFFFFFFFu >> extra;
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng* rng) {
  TRIPRIV_CHECK(!bound.IsZero() && !bound.IsNegative());
  const size_t bits = bound.BitLength();
  for (;;) {
    BigInt candidate = Random(bits, rng);
    if (candidate < bound) return candidate;
  }
}

bool BigInt::IsProbablePrime(const BigInt& n, int rounds, Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  if (n.IsNegative()) return false;
  static constexpr std::array<uint32_t, 15> kSmallPrimes = {
      2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47};
  for (uint32_t p : kSmallPrimes) {
    const BigInt bp(static_cast<int64_t>(p));
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  if (n < BigInt(2)) return false;

  // Write n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    const BigInt a = BigInt(2) + RandomBelow(n - BigInt(4), rng);
    BigInt x = ModExp(a, d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = ModMul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::RandomPrime(size_t bits, Rng* rng, int rounds) {
  TRIPRIV_CHECK_GE(bits, 2u);
  for (;;) {
    BigInt candidate = Random(bits, rng);
    // Force exact bit length and oddness.
    candidate.limbs_.resize((bits + 31) / 32, 0);
    const size_t top_bit = (bits - 1) % 32;
    candidate.limbs_.back() |= 1u << top_bit;
    const size_t extra = candidate.limbs_.size() * 32 - bits;
    if (extra != 0) candidate.limbs_.back() &= 0xFFFFFFFFu >> extra;
    candidate.limbs_[0] |= 1u;
    candidate.Normalize();
    if (IsProbablePrime(candidate, rounds, rng)) return candidate;
  }
}

Result<BigInt> BigInt::FromString(std::string_view s) {
  s = std::string_view(s.data(), s.size());
  bool negative = false;
  size_t i = 0;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    negative = s[i] == '-';
    ++i;
  }
  if (i == s.size()) return Status::InvalidArgument("BigInt: empty numeral");
  BigInt out;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::InvalidArgument("BigInt: invalid digit in numeral");
    }
    out = out * ten + BigInt(s[i] - '0');
  }
  if (negative && !out.IsZero()) out.negative_ = true;
  return out;
}

Result<BigInt> BigInt::FromHex(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("BigInt: empty hex numeral");
  BigInt out;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return Status::InvalidArgument("BigInt: invalid hex digit");
    out = (out << 4) + BigInt(digit);
  }
  return out;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  // Repeated short division by 10^9.
  std::vector<uint32_t> chunks;
  BigInt cur = Abs();
  const BigInt billion(1000000000);
  while (!cur.IsZero()) {
    BigInt q;
    BigInt r;
    DivMod(cur, billion, &q, &r);
    chunks.push_back(static_cast<uint32_t>(r.ToU64()));
    cur = std::move(q);
  }
  std::string out;
  if (negative_) out += '-';
  out += std::to_string(chunks.back());
  char buf[16];
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof(buf), "%09u", chunks[i]);
    out += buf;
  }
  return out;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      const uint32_t d = (limbs_[i] >> (nib * 4)) & 0xF;
      if (out.empty() && d == 0) continue;
      out += kDigits[d];
    }
  }
  return out;
}

}  // namespace tripriv
