// RFC-4180-style CSV reading and writing.
//
// Supports quoted fields (embedded commas, quotes doubled, embedded
// newlines), CRLF and LF line endings. Used by table/io for microdata files.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tripriv {

/// Parses an entire CSV document into rows of fields.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Serializes rows as CSV, quoting fields only when necessary.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Quotes one field if it contains a comma, quote, or newline.
std::string CsvEscape(std::string_view field);

}  // namespace tripriv

