// Status and Result<T>: exception-free error handling for TriPriv.
//
// The library follows the Google C++ Style Guide and does not use C++
// exceptions. Every fallible operation returns either a `Status` (when there
// is no payload) or a `Result<T>` (a value-or-status union). Programmer
// errors (violated preconditions) abort via the CHECK macros in logging.h.

#pragma once

#include <optional>
#include <string>
#include <utility>

#include "core/annotations.h"
#include "util/logging.h"

namespace tripriv {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller supplied a malformed value
  kNotFound,          ///< a named entity (column, key, record) does not exist
  kOutOfRange,        ///< an index or parameter is outside its legal domain
  kFailedPrecondition,///< object state does not allow the operation
  kAlreadyExists,     ///< a named entity would be duplicated
  kUnimplemented,     ///< declared but not supported combination
  kInternal,          ///< invariant violation detected at runtime
  kPermissionDenied,  ///< a privacy policy or protection mechanism refused
  kUnavailable,       ///< transient: resource not ready, retry may succeed
  kDeadlineExceeded,  ///< transient: operation ran out of time budget
  kResourceExhausted, ///< transient: load shed by admission control, back off
};

/// True for the transient codes (kUnavailable, kDeadlineExceeded,
/// kResourceExhausted): the operation may succeed if retried; all other
/// codes are permanent.
bool IsTransientCode(StatusCode code);

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation with no payload.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (an OK
/// status stores no message).
///
/// `[[nodiscard]]` makes silently dropping a returned Status a compiler
/// warning (an error under TRIPRIV_WERROR): transient network failures
/// (kUnavailable, kDeadlineExceeded) surface as Statuses, and ignoring one
/// turns a recoverable fault into silent data corruption. A call site that
/// genuinely cannot fail should still branch on ok() and escalate with
/// TRIPRIV_CHECK rather than cast the result away.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message. Status messages
  /// surface in logs, test output, and RPC responses: a sink at the taint
  /// layer, so record-level values (cells, keys, epsilon amounts) must be
  /// scrubbed or digested before interpolation. The named constructors
  /// below forward here and are derived sinks automatically.
  TRIPRIV_SINK(status_message)
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True when the failure is transient (see IsTransientCode).
  bool transient() const { return IsTransientCode(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status union returned by fallible operations with a payload.
///
/// Use `ok()` to discriminate; `value()` CHECK-fails on a non-OK result, so
/// callers must test first (or use ASSIGN_OR_RETURN below).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    TRIPRIV_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    TRIPRIV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TRIPRIV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TRIPRIV_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Explicitly discards a Status: the call site has considered the failure
/// and decided it is irrelevant (e.g. a probe whose side effect, not answer,
/// is being measured). Unlike a `(void)` cast this is greppable and states
/// intent; use `Fallible().status()` / `IgnoreError(...)` for Result<T>.
inline void IgnoreError(const Status&) {}

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define TRIPRIV_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::tripriv::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define TRIPRIV_CONCAT_INNER_(a, b) a##b
#define TRIPRIV_CONCAT_(a, b) TRIPRIV_CONCAT_INNER_(a, b)

/// `TRIPRIV_ASSIGN_OR_RETURN(auto x, Fallible())` — unwraps a Result<T> or
/// propagates its Status.
#define TRIPRIV_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto TRIPRIV_CONCAT_(_res_, __LINE__) = (rexpr);                 \
  if (!TRIPRIV_CONCAT_(_res_, __LINE__).ok())                      \
    return TRIPRIV_CONCAT_(_res_, __LINE__).status();              \
  lhs = std::move(TRIPRIV_CONCAT_(_res_, __LINE__)).value()

}  // namespace tripriv

