// Simulated time for the serving path: SimClock and Deadline.
//
// Like PartyNetwork's tick counter on the SMC side, SimClock is a pure
// logical clock — it only moves when a component explicitly charges time to
// it (query evaluation, admission slots, retry backoff). No wall clock is
// ever read (the no-wall-clock lint rule enforces this tree-wide), so every
// deadline decision, load-shed, and circuit-breaker transition replays
// bit-identically for a given seed and workload.
//
// A Deadline is an absolute tick on a SimClock. It propagates down the call
// chain — service front-end → query evaluation → backend retries → PIR
// server calls — so one request-level time budget bounds every nested
// operation (see RetryPolicy::Truncated in util/retry.h).

#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tripriv {

/// Deterministic logical clock, measured in simulated ticks.
class SimClock {
 public:
  /// Current simulated time.
  uint64_t now() const { return tick_; }

  /// Advances the clock; components call this to charge simulated work.
  void Advance(uint64_t ticks) { tick_ += ticks; }

 private:
  uint64_t tick_ = 0;
};

/// An absolute point on a SimClock by which an operation must finish.
/// Default-constructed deadlines are infinite (never expire).
class Deadline {
 public:
  /// Tick value representing "no deadline".
  static constexpr uint64_t kInfinite = UINT64_MAX;

  /// Infinite deadline.
  constexpr Deadline() = default;

  /// Deadline at absolute tick `tick`.
  static Deadline AtTick(uint64_t tick) { return Deadline(tick); }

  /// Deadline `ticks` from `clock`'s current time (saturating).
  static Deadline After(const SimClock& clock, uint64_t ticks) {
    const uint64_t now = clock.now();
    return Deadline(ticks > kInfinite - now ? kInfinite : now + ticks);
  }

  bool infinite() const { return tick_ == kInfinite; }
  uint64_t tick() const { return tick_; }

  /// True when `clock` has reached (or passed) the deadline.
  bool expired(const SimClock& clock) const {
    return !infinite() && clock.now() >= tick_;
  }

  /// Ticks left before expiry; 0 when expired, kInfinite when infinite.
  uint64_t remaining_ticks(const SimClock& clock) const {
    if (infinite()) return kInfinite;
    const uint64_t now = clock.now();
    return now >= tick_ ? 0 : tick_ - now;
  }

 private:
  constexpr explicit Deadline(uint64_t tick) : tick_(tick) {}
  uint64_t tick_ = kInfinite;
};

/// kDeadlineExceeded Status naming the operation that ran out of budget.
inline Status DeadlineExceededError(const std::string& what) {
  return Status::DeadlineExceeded(what + ": simulated-time budget exhausted");
}

}  // namespace tripriv
