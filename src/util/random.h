// Deterministic pseudo-random number generation.
//
// Every randomized component in TriPriv (noise masking, randomized response,
// secret sharing, synthetic data generation, ...) draws from an explicit
// `Rng` so experiments are bit-reproducible across runs and platforms. The
// generator is xoshiro256++ seeded via SplitMix64; all derived distributions
// (uniform, normal, laplace, shuffle) are implemented here rather than with
// <random> distributions, whose output is implementation-defined.

#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "util/logging.h"

namespace tripriv {

/// xoshiro256++ PRNG with SplitMix64 seeding and portable distributions.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  TRIPRIV_SENSITIVE(record)
  uint64_t NextU64();

  /// Uniform in [0, bound). Requires bound > 0. Unbiased (rejection method).
  TRIPRIV_SENSITIVE(record)
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  TRIPRIV_SENSITIVE(record)
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  TRIPRIV_SENSITIVE(record)
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  TRIPRIV_SENSITIVE(record)
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic given the seed).
  TRIPRIV_SENSITIVE(record)
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Laplace(mu, b) via inverse CDF.
  TRIPRIV_SENSITIVE(record)
  double Laplace(double mu, double b);

  /// Bernoulli with success probability p in [0, 1].
  TRIPRIV_SENSITIVE(record)
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v` in place.
  TRIPRIV_SENSITIVE(record)
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    TRIPRIV_CHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// `k` distinct indices sampled uniformly from [0, n), in random order.
  TRIPRIV_SENSITIVE(record)
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent generator (seeded from this stream); useful for
  /// giving each simulated party its own randomness.
  TRIPRIV_SENSITIVE(record)
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tripriv

