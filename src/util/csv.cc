#include "util/csv.h"

namespace tripriv {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "CSV: quote inside unquoted field at offset " + std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // Swallow; row terminates at the following '\n'.
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::InvalidArgument("CSV: unterminated quoted field");
  // A trailing line without '\n' still counts as a row.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace tripriv
