// Deficit round-robin over bounded per-tenant queues.
//
// The fair-queueing core of the traffic scheduler (service/traffic/): each
// tenant owns one bounded FIFO; a Push to a full queue is refused with
// kResourceExhausted (the caller turns that into a typed refusal — the
// shed is itself part of the fail-closed ladder, never a dropped
// protection). PollRound drains items in classic DRR order: tenants with
// backlog sit on an activation-ordered round list, each visit tops the
// tenant's deficit up by weight x quantum, and the tenant dequeues items
// while its deficit covers their cost. Weights therefore buy proportional
// *throughput*, and a tenant flooding its own queue can only fill its own
// bounded FIFO — it cannot displace other tenants' items or rounds. That
// bounded-harm shape is what the fairness-isolation property test asserts.
//
// Everything here is serial and allocation-light; determinism needs no
// locks, only the fixed visit order (activation order, ties broken by
// arrival) that this class maintains.

#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "util/status.h"

namespace tripriv {

/// Per-tenant shape: scheduling weight and queue bound.
struct DrrTenantConfig {
  /// Relative share of service capacity (>= 1).
  uint32_t weight = 1;
  /// Maximum queued items; pushes beyond this are refused.
  size_t capacity = 64;
};

/// Aggregate queue counters.
struct DrrQueueStats {
  uint64_t pushed = 0;
  /// Pushes refused because the tenant's queue was full.
  uint64_t shed_full = 0;
  uint64_t popped = 0;
  /// PollRound calls that dispatched at least one item.
  uint64_t rounds = 0;
};

/// Deficit round-robin scheduler; see file comment. Items are opaque
/// uint64_t handles (the traffic layer indexes an event arena with them).
class DrrQueue {
 public:
  /// One entry per tenant; tenant ids are indices into this vector.
  /// `quantum` is the deficit refill per unit weight per visit (>= 1).
  DrrQueue(std::vector<DrrTenantConfig> tenants, uint64_t quantum);

  size_t num_tenants() const { return tenants_.size(); }

  /// Enqueues `item` for `tenant`; kResourceExhausted when its FIFO is at
  /// capacity (the item is NOT queued — the caller owns the refusal).
  Status Push(size_t tenant, uint64_t item);

  /// One DRR scan over the active tenants: pops up to `max_items` items of
  /// uniform `cost_per_item` (>= 1), appending (tenant, item) to `out` in
  /// dispatch order. Returns the number dispatched. Tenants visited in
  /// activation order; a tenant drained empty leaves the round list and
  /// forfeits its remaining deficit (classic DRR anti-hoarding rule).
  size_t PollRound(size_t max_items, uint64_t cost_per_item,
                   std::vector<std::pair<uint32_t, uint64_t>>* out);

  /// Pops up to `n` items from the NEWEST end of `tenant`'s queue (the
  /// overload-shedding path: latest arrivals go first so long-waiting items
  /// keep their place). Appends to `out`, returns the count shed.
  size_t ShedNewest(size_t tenant, size_t n, std::vector<uint64_t>* out);

  /// Items queued across all tenants.
  size_t backlog() const { return backlog_; }
  size_t tenant_backlog(size_t tenant) const;
  uint64_t tenant_deficit(size_t tenant) const;
  const DrrTenantConfig& tenant_config(size_t tenant) const;
  const DrrQueueStats& stats() const { return stats_; }

 private:
  struct Tenant {
    DrrTenantConfig config;
    std::deque<uint64_t> fifo;
    uint64_t deficit = 0;
    bool on_round_list = false;
  };

  /// Puts `tenant` at the tail of the round list if it has backlog and is
  /// not already listed.
  void Activate(size_t tenant);

  std::vector<Tenant> tenants_;
  uint64_t quantum_;
  /// Activation-ordered ids of tenants with backlog.
  std::deque<uint32_t> round_list_;
  size_t backlog_ = 0;
  DrrQueueStats stats_;
};

}  // namespace tripriv
