// Deterministic workload-shape generators for the traffic simulator.
//
// Three building blocks, all pure functions of a seed and simulated time so
// a million-principal arrival stream replays bit-identically:
//
//   ZipfSampler   rank-skewed key popularity via Hörmann's
//                 rejection-inversion — O(1) memory at any universe size, so
//                 drawing from 10^6 principals costs no table;
//   DiurnalWave   a smooth rate multiplier over simulated ticks (the
//                 day/night swing of a real serving fleet);
//   BurstProcess  a two-state Markov chain (quiet <-> burst) whose draws
//                 come from an explicit Rng stream, giving *correlated*
//                 load spikes rather than independent per-tick noise.
//
// None of these read a wall clock (the no-wall-clock lint rule covers this
// file) and none own hidden randomness: every draw goes through the Rng the
// caller passes or seeds.

#pragma once

#include <cstdint>

#include "core/annotations.h"
#include "util/random.h"

namespace tripriv {

/// Zipf(s) sampler over ranks [0, n) using rejection inversion (Hörmann &
/// Derflinger). Memory is O(1) regardless of n; draws are deterministic
/// given the caller's Rng stream. Exponent s must be > 0 and != 1 is NOT
/// required (the harmonic helper handles s == 1 via the log branch).
class ZipfSampler {
 public:
  /// Universe size `n` >= 1, exponent `s` > 0. Rank 0 is the most popular.
  ZipfSampler(uint64_t n, double s);

  /// One rank in [0, n), skewed toward small ranks.
  TRIPRIV_SENSITIVE(record)
  uint64_t Sample(Rng* rng) const;

  uint64_t universe() const { return n_; }
  double exponent() const { return s_; }

 private:
  /// Generalized harmonic integral H(x) = ∫ x^-s dx (log branch at s == 1).
  double H(double x) const;
  double HInverse(double u) const;

  uint64_t n_;
  double s_;
  double h_x1_;        // H(1.5) - 1
  double h_n_;         // H(n + 0.5)
  double threshold_;   // acceptance shortcut for rank 0
};

/// Smooth diurnal rate multiplier: 1 + amplitude * sin(2π t / period),
/// clamped at >= 0. amplitude in [0, 1] keeps the multiplier in [0, 2].
class DiurnalWave {
 public:
  /// `period` ticks per full cycle (>= 1); amplitude 0 disables the wave.
  DiurnalWave(double amplitude, uint64_t period);

  /// Multiplier at simulated tick `t`, in [0, 1 + amplitude].
  double MultiplierAt(uint64_t t) const;

 private:
  double amplitude_;
  uint64_t period_;
};

/// Two-state Markov burst process: in the quiet state each step enters a
/// burst with probability `on_prob`; in the burst state each step leaves it
/// with probability `off_prob`. While bursting, the load multiplier is
/// `multiplier`; otherwise 1. Steps draw from the Rng seeded at
/// construction, so the burst *pattern* is a pure function of the seed and
/// the number of steps taken — correlated in time, replayable forever.
class BurstProcess {
 public:
  BurstProcess(double on_prob, double off_prob, double multiplier,
               uint64_t seed);

  /// Advances one step and returns the multiplier for the new state.
  double Step();

  bool bursting() const { return bursting_; }
  uint64_t bursts_entered() const { return bursts_entered_; }

 private:
  double on_prob_;
  double off_prob_;
  double multiplier_;
  Rng rng_;
  bool bursting_ = false;
  uint64_t bursts_entered_ = 0;
};

}  // namespace tripriv
