#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>

namespace tripriv {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace tripriv
