// Small string helpers shared across the library.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tripriv {

/// Splits `s` on `sep`; adjacent separators yield empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` parses completely as a signed 64-bit integer; stores it.
bool ParseInt64(std::string_view s, int64_t* out);

/// True if `s` parses completely as a double; stores it.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double compactly (up to `precision` significant digits, no
/// trailing zeros), suitable for table output.
std::string FormatDouble(double v, int precision = 6);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tripriv

