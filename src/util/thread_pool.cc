#include "util/thread_pool.h"

#include <utility>

namespace tripriv {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and the queue is drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::NumShards(size_t n) const {
  const size_t width = workers_.empty() ? 1 : workers_.size();
  return n < width ? n : width;
}

void ThreadPool::ParallelFor(
    size_t n,
    const std::function<void(size_t shard, size_t begin, size_t end)>& fn) {
  if (n == 0) return;
  const size_t shards = NumShards(n);
  ++parallel_fors_;
  items_dispatched_ += n;
  shards_dispatched_ += shards;
  const size_t base = n / shards;
  const size_t extra = n % shards;  // the first `extra` shards get one more
  auto shard_bounds = [base, extra](size_t shard) {
    const size_t begin = shard * base + (shard < extra ? shard : extra);
    return std::pair<size_t, size_t>(begin,
                                     begin + base + (shard < extra ? 1 : 0));
  };
  if (workers_.empty() || shards == 1) {
    for (size_t s = 0; s < shards; ++s) {
      const auto [begin, end] = shard_bounds(s);
      fn(s, begin, end);
    }
    return;
  }
  // Completion barrier shared by the enqueued shard tasks. Notifying under
  // the barrier mutex makes the caller's wakeup safe against the barrier
  // going out of scope while a worker still holds a reference.
  struct Barrier {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
  } barrier;
  barrier.remaining = shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t s = 0; s < shards; ++s) {
      const auto [begin, end] = shard_bounds(s);
      tasks_.emplace_back([&fn, &barrier, s, begin, end] {
        fn(s, begin, end);
        std::lock_guard<std::mutex> barrier_lock(barrier.mu);
        if (--barrier.remaining == 0) barrier.done.notify_all();
      });
    }
  }
  work_ready_.notify_all();
  std::unique_lock<std::mutex> lock(barrier.mu);
  barrier.done.wait(lock, [&barrier] { return barrier.remaining == 0; });
}

}  // namespace tripriv
