#include "util/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tripriv {

// --- ZipfSampler -----------------------------------------------------------
//
// Rejection inversion after Hörmann & Derflinger ("Rejection-inversion to
// generate variates from monotone discrete distributions"). The continuous
// envelope x^-s is inverted exactly; each candidate k = floor(x + 0.5) is
// accepted when u falls under the discrete mass, which happens with high
// probability, so expected draws per sample stay ~1 even at s close to 1.

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  TRIPRIV_CHECK(n_ >= 1);
  TRIPRIV_CHECK(s_ > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::HInverse(double u) const {
  if (s_ == 1.0) return std::exp(u);
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  TRIPRIV_CHECK(rng != nullptr);
  if (n_ == 1) return 0;
  for (;;) {
    const double u = h_n_ + rng->UniformDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    // Candidate rank in [1, n] (1-based like the classic derivation).
    const double clamped =
        std::min(std::max(x + 0.5, 1.0), static_cast<double>(n_));
    const uint64_t k = static_cast<uint64_t>(clamped);
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // back to 0-based ranks
    }
  }
}

// --- DiurnalWave -----------------------------------------------------------

DiurnalWave::DiurnalWave(double amplitude, uint64_t period)
    : amplitude_(amplitude), period_(period) {
  TRIPRIV_CHECK(amplitude_ >= 0.0);
  TRIPRIV_CHECK(period_ >= 1);
}

double DiurnalWave::MultiplierAt(uint64_t t) const {
  if (amplitude_ == 0.0) return 1.0;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double phase =
      static_cast<double>(t % period_) / static_cast<double>(period_);
  const double m = 1.0 + amplitude_ * std::sin(kTwoPi * phase);
  return m < 0.0 ? 0.0 : m;
}

// --- BurstProcess ----------------------------------------------------------

BurstProcess::BurstProcess(double on_prob, double off_prob, double multiplier,
                           uint64_t seed)
    : on_prob_(on_prob),
      off_prob_(off_prob),
      multiplier_(multiplier),
      rng_(seed) {
  TRIPRIV_CHECK(on_prob_ >= 0.0 && on_prob_ <= 1.0);
  TRIPRIV_CHECK(off_prob_ >= 0.0 && off_prob_ <= 1.0);
  TRIPRIV_CHECK(multiplier_ >= 1.0);
}

double BurstProcess::Step() {
  if (bursting_) {
    if (rng_.Bernoulli(off_prob_)) bursting_ = false;
  } else if (rng_.Bernoulli(on_prob_)) {
    bursting_ = true;
    ++bursts_entered_;
  }
  return bursting_ ? multiplier_ : 1.0;
}

}  // namespace tripriv
