#include "util/random.h"

#include <cmath>
#include <numbers>

namespace tripriv {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  // xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  TRIPRIV_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TRIPRIV_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  TRIPRIV_CHECK_LT(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::Laplace(double mu, double b) {
  TRIPRIV_CHECK_GT(b, 0.0);
  const double u = UniformDouble() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return mu - b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

bool Rng::Bernoulli(double p) {
  TRIPRIV_CHECK(p >= 0.0 && p <= 1.0);
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TRIPRIV_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformU64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace tripriv
