// Arbitrary-precision integers.
//
// TriPriv implements its own multi-precision arithmetic (sign-magnitude,
// base-2^32 limbs) so the cryptographic substrates — the Paillier
// cryptosystem used by crypto PPDM and computational PIR, commutative
// encryption for private set intersection, and prime-field secret sharing —
// have no external dependencies. The feature set is exactly what those
// protocols need: ring arithmetic, Knuth division, modular exponentiation
// and inversion, gcd/lcm, Miller-Rabin primality, and random prime
// generation from the deterministic `Rng`.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace tripriv {

/// Arbitrary-precision signed integer (sign-magnitude, base 2^32).
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer (implicit: BigInt participates in arithmetic
  /// expressions with int literals throughout the crypto code).
  BigInt(int64_t v);            // NOLINT(runtime/explicit)
  static BigInt FromU64(uint64_t v);

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(std::string_view s);
  /// Parses a hexadecimal string (no prefix, no sign).
  static Result<BigInt> FromHex(std::string_view s);

  /// Decimal representation.
  std::string ToString() const;
  /// Lowercase hexadecimal magnitude (no sign); "0" for zero.
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool IsEven() const { return !IsOdd(); }

  /// Number of significant bits of the magnitude; 0 for zero.
  size_t BitLength() const;
  /// Bit `i` (zero-based, little-endian) of the magnitude.
  bool TestBit(size_t i) const;

  /// Low 64 bits of the magnitude, with the sign applied modulo 2^64.
  uint64_t ToU64() const;
  /// Exact conversion to int64_t when the value fits, else nullopt.
  std::optional<int64_t> ToI64() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated (C-style) quotient. Requires non-zero divisor.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend. Requires non-zero divisor.
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }

  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  /// -1, 0, +1 for less / equal / greater.
  int Compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  /// Quotient and remainder in one division. Requires non-zero divisor.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r);

  /// Canonical residue in [0, mod). Requires mod > 0.
  BigInt Mod(const BigInt& mod) const;

  /// (a + b) mod m, inputs assumed in [0, m).
  static BigInt ModAdd(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (a - b) mod m, inputs assumed in [0, m).
  static BigInt ModSub(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (a * b) mod m.
  static BigInt ModMul(const BigInt& a, const BigInt& b, const BigInt& m);
  /// base^exp mod m via left-to-right square-and-multiply. Requires m > 0
  /// and exp >= 0.
  static BigInt ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);
  /// Multiplicative inverse of a mod m, when gcd(a, m) == 1.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  /// Greatest common divisor (non-negative).
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple (non-negative).
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  /// Uniform value with exactly `bits` random bits (top bit may be zero).
  static BigInt Random(size_t bits, Rng* rng);
  /// Uniform value in [0, bound). Requires bound > 0.
  static BigInt RandomBelow(const BigInt& bound, Rng* rng);
  /// Miller-Rabin with `rounds` random bases (plus small-prime sieve).
  static bool IsProbablePrime(const BigInt& n, int rounds, Rng* rng);
  /// Random probable prime with exactly `bits` bits (top bit set).
  static BigInt RandomPrime(size_t bits, Rng* rng, int rounds = 20);

 private:
  void Normalize();
  static int CompareMagnitude(const BigInt& a, const BigInt& b);
  static BigInt AddMagnitude(const BigInt& a, const BigInt& b);
  /// Requires |a| >= |b|.
  static BigInt SubMagnitude(const BigInt& a, const BigInt& b);
  static BigInt MulMagnitude(const BigInt& a, const BigInt& b);
  /// Knuth Algorithm D on magnitudes. Requires b non-zero.
  static void DivModMagnitude(const BigInt& a, const BigInt& b, BigInt* q,
                              BigInt* r);

  // Little-endian base-2^32 magnitude; empty means zero.
  std::vector<uint32_t> limbs_;
  bool negative_ = false;
};

}  // namespace tripriv

