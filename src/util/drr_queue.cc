#include "util/drr_queue.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace tripriv {

DrrQueue::DrrQueue(std::vector<DrrTenantConfig> tenants, uint64_t quantum)
    : quantum_(quantum) {
  TRIPRIV_CHECK(!tenants.empty());
  TRIPRIV_CHECK(quantum_ >= 1);
  tenants_.reserve(tenants.size());
  for (const DrrTenantConfig& config : tenants) {
    TRIPRIV_CHECK(config.weight >= 1);
    TRIPRIV_CHECK(config.capacity >= 1);
    Tenant t;
    t.config = config;
    tenants_.push_back(std::move(t));
  }
}

void DrrQueue::Activate(size_t tenant) {
  Tenant& t = tenants_[tenant];
  if (t.on_round_list || t.fifo.empty()) return;
  t.on_round_list = true;
  round_list_.push_back(static_cast<uint32_t>(tenant));
}

Status DrrQueue::Push(size_t tenant, uint64_t item) {
  TRIPRIV_CHECK(tenant < tenants_.size());
  Tenant& t = tenants_[tenant];
  if (t.fifo.size() >= t.config.capacity) {
    ++stats_.shed_full;
    return Status::ResourceExhausted(
        "tenant queue full (" + std::to_string(t.config.capacity) +
        " queued)");
  }
  t.fifo.push_back(item);
  ++backlog_;
  ++stats_.pushed;
  Activate(tenant);
  return Status::OK();
}

size_t DrrQueue::PollRound(size_t max_items, uint64_t cost_per_item,
                          std::vector<std::pair<uint32_t, uint64_t>>* out) {
  TRIPRIV_CHECK(out != nullptr);
  TRIPRIV_CHECK(cost_per_item >= 1);
  size_t dispatched = 0;
  // One pass over the tenants currently listed: later activations join the
  // tail and wait for the next round, so a fresh burst cannot jump ahead of
  // tenants already waiting.
  size_t visits = round_list_.size();
  while (visits-- > 0 && dispatched < max_items) {
    const uint32_t id = round_list_.front();
    round_list_.pop_front();
    Tenant& t = tenants_[id];
    t.deficit += static_cast<uint64_t>(t.config.weight) * quantum_;
    while (!t.fifo.empty() && t.deficit >= cost_per_item &&
           dispatched < max_items) {
      out->emplace_back(id, t.fifo.front());
      t.fifo.pop_front();
      t.deficit -= cost_per_item;
      --backlog_;
      ++dispatched;
      ++stats_.popped;
    }
    if (t.fifo.empty()) {
      // Forfeit the unused deficit: an idle tenant must not bank credit to
      // burst with later (the DRR anti-hoarding rule).
      t.deficit = 0;
      t.on_round_list = false;
    } else {
      round_list_.push_back(id);
    }
  }
  if (dispatched > 0) ++stats_.rounds;
  return dispatched;
}

size_t DrrQueue::ShedNewest(size_t tenant, size_t n,
                            std::vector<uint64_t>* out) {
  TRIPRIV_CHECK(tenant < tenants_.size());
  TRIPRIV_CHECK(out != nullptr);
  Tenant& t = tenants_[tenant];
  size_t shed = 0;
  while (shed < n && !t.fifo.empty()) {
    out->push_back(t.fifo.back());
    t.fifo.pop_back();
    --backlog_;
    ++shed;
  }
  if (t.fifo.empty() && t.on_round_list) {
    // Lazy removal would also work, but keeping the invariant "listed iff
    // backlog" makes PollRound's visit accounting exact.
    for (auto it = round_list_.begin(); it != round_list_.end(); ++it) {
      if (*it == tenant) {
        round_list_.erase(it);
        break;
      }
    }
    t.on_round_list = false;
    t.deficit = 0;
  }
  return shed;
}

size_t DrrQueue::tenant_backlog(size_t tenant) const {
  TRIPRIV_CHECK(tenant < tenants_.size());
  return tenants_[tenant].fifo.size();
}

uint64_t DrrQueue::tenant_deficit(size_t tenant) const {
  TRIPRIV_CHECK(tenant < tenants_.size());
  return tenants_[tenant].deficit;
}

const DrrTenantConfig& DrrQueue::tenant_config(size_t tenant) const {
  TRIPRIV_CHECK(tenant < tenants_.size());
  return tenants_[tenant].config;
}

}  // namespace tripriv
