#include "util/status.h"

namespace tripriv {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool IsTransientCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace tripriv
