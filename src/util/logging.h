// Minimal logging and assertion macros.
//
// TRIPRIV_CHECK(cond) aborts with a message when `cond` is false; it is the
// mechanism for programmer-error preconditions in an exception-free codebase.
// Streaming extra context is supported: TRIPRIV_CHECK(i < n) << "i=" << i;

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tripriv {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed check-failure expression to void so it can sit on
/// one arm of a ternary whose other arm is `(void)0` (glog's Voidify trick;
/// `&` binds looser than `<<`).
class Voidify {
 public:
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace tripriv

/// Aborts the process with a diagnostic if `condition` is false. Additional
/// context may be streamed: TRIPRIV_CHECK(ok) << "context";
#define TRIPRIV_CHECK(condition)                            \
  (condition) ? (void)0                                     \
              : ::tripriv::internal::Voidify() &            \
                    ::tripriv::internal::CheckFailStream(   \
                        __FILE__, __LINE__, #condition)

#define TRIPRIV_CHECK_EQ(a, b) TRIPRIV_CHECK((a) == (b))
#define TRIPRIV_CHECK_NE(a, b) TRIPRIV_CHECK((a) != (b))
#define TRIPRIV_CHECK_LT(a, b) TRIPRIV_CHECK((a) < (b))
#define TRIPRIV_CHECK_LE(a, b) TRIPRIV_CHECK((a) <= (b))
#define TRIPRIV_CHECK_GT(a, b) TRIPRIV_CHECK((a) > (b))
#define TRIPRIV_CHECK_GE(a, b) TRIPRIV_CHECK((a) >= (b))

