// Built-in datasets: the paper's Table 1 microdata plus synthetic
// generators used by the evaluation harness.
//
// The LNCS rendering of Table 1 garbles the numeric cells, so the two
// 10-record patient datasets are reconstructed here to satisfy every
// property the text asserts about them:
//   Dataset 1: spontaneously 3-anonymous w.r.t. key attributes
//     (height, weight) — each (height, weight) combination appears at least
//     3 times — and each equivalence class carries at least two distinct
//     values of each confidential attribute (so it is also 2-sensitive).
//   Dataset 2: NOT 3-anonymous (most key combinations are unique), and it
//     contains exactly one individual with height < 165 and weight > 105,
//     whose systolic blood pressure is 146 — the record isolated by the
//     Section 3 COUNT/AVG attack.
//   Both: every patient is hypertensive (systolic >= 140), since only
//   hypertension patients underwent the trial.

#pragma once

#include <cstdint>

#include "table/data_table.h"

namespace tripriv {

/// Schema shared by the two paper datasets: height (cm) and weight (kg) are
/// integer quasi-identifiers; systolic blood pressure (mmHg, integer) and
/// AIDS (Y/N, categorical) are confidential.
Schema PatientSchema();

/// Table 1 (left): the spontaneously 3-anonymous clinical-trial dataset.
DataTable PaperDataset1();

/// Table 1 (right): the non-3-anonymous clinical-trial dataset with the
/// unique short-and-heavy respondent (160 cm, 110 kg, blood pressure 146).
DataTable PaperDataset2();

/// Synthetic hypertension drug-trial microdata with the PatientSchema
/// (plus real-valued height/weight correlation structure mapped onto the
/// integer columns). Deterministic in `seed`.
DataTable MakeClinicalTrial(size_t n, uint64_t seed);

/// Richer trial microdata for the Table 2 evaluation harness: four numeric
/// quasi-identifiers (age, height, weight, cholesterol) plus the
/// confidential systolic blood pressure (integer) and AIDS flag
/// (categorical). More quasi-identifiers make record-linkage attacks
/// realistic (with only two, nearest-neighbour linkage underestimates
/// risk). Deterministic in `seed`.
DataTable MakeExtendedTrial(size_t n, uint64_t seed);

/// Census-like microdata: age, sex, region, education (quasi-identifiers);
/// income and diagnosis (confidential). Deterministic in `seed`. This is
/// the standing workload for the SDC / Table 2 experiments.
DataTable MakeCensus(size_t n, uint64_t seed);

/// Census-scale microdata for the empirical Table 2 attack runs: four
/// numeric quasi-identifiers (age, education_years, hours_per_week, and a
/// near-unique real survey_weight) plus the categorical quasi-identifiers
/// sex and region (PRAM targets) and the confidential income (real) and
/// diagnosis (categorical). The near-unique weight makes raw-data record
/// linkage succeed almost surely — the baseline the attack suite needs —
/// while MakeCensus (above) keeps only two numeric QIs and stays
/// byte-identical for the traffic-simulator digests that depend on it.
/// Deterministic in `seed`.
DataTable MakeCensusScale(size_t n, uint64_t seed);

/// n x d binary microdata (integer 0/1 attributes "a0".."a{d-1}", all
/// quasi-identifiers except the last, which is confidential), with attribute
/// probabilities drawn so that higher d yields sparser combination space —
/// the regime of the [11] sparsity attack (Section 2).
DataTable MakeHighDimBinary(size_t n, size_t d, uint64_t seed);

/// Agrawal-Srikant-style classification benchmark data: predictors age
/// (years), salary, commission, elevel (education level 0..4), and a binary
/// class label "group" ("A"/"B") defined by `function_id` in {1, 2, 3}:
///   1: A iff age < 40 or age >= 60
///   2: A iff salary band depends on age decade (the classic F2)
///   3: A iff (age < 40 and elevel in [0,1]) or (40 <= age < 60 and
///      elevel in [1,3]) or (age >= 60 and elevel in [2,4])
DataTable MakeClassification(size_t n, int function_id, uint64_t seed);

}  // namespace tripriv

