#include "table/predicate.h"

namespace tripriv {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Predicate Predicate::True() { return Predicate(); }

Predicate Predicate::Compare(std::string attribute, CompareOp op, Value literal) {
  Predicate p;
  p.kind_ = Kind::kCompare;
  p.attribute_ = std::move(attribute);
  p.op_ = op;
  p.literal_ = std::move(literal);
  return p;
}

Predicate Predicate::And(Predicate lhs, Predicate rhs) {
  Predicate p;
  p.kind_ = Kind::kAnd;
  p.lhs_ = std::make_shared<const Predicate>(std::move(lhs));
  p.rhs_ = std::make_shared<const Predicate>(std::move(rhs));
  return p;
}

Predicate Predicate::Or(Predicate lhs, Predicate rhs) {
  Predicate p;
  p.kind_ = Kind::kOr;
  p.lhs_ = std::make_shared<const Predicate>(std::move(lhs));
  p.rhs_ = std::make_shared<const Predicate>(std::move(rhs));
  return p;
}

Predicate Predicate::Not(Predicate inner) {
  Predicate p;
  p.kind_ = Kind::kNot;
  p.lhs_ = std::make_shared<const Predicate>(std::move(inner));
  return p;
}

namespace {

/// Three-valued comparison result following SQL null semantics.
Result<bool> EvalCompare(const Value& cell, CompareOp op, const Value& literal) {
  if (cell.is_null()) {
    // Suppressed cells match nothing except explicit inequality to a value.
    return op == CompareOp::kNe;
  }
  if (cell.is_numeric() && literal.is_numeric()) {
    const double a = cell.ToDouble();
    const double b = literal.ToDouble();
    switch (op) {
      case CompareOp::kEq:
        return a == b;
      case CompareOp::kNe:
        return a != b;
      case CompareOp::kLt:
        return a < b;
      case CompareOp::kLe:
        return a <= b;
      case CompareOp::kGt:
        return a > b;
      case CompareOp::kGe:
        return a >= b;
    }
  }
  if (cell.is_string() && literal.is_string()) {
    const int cmp = cell.AsString().compare(literal.AsString());
    switch (op) {
      case CompareOp::kEq:
        return cmp == 0;
      case CompareOp::kNe:
        return cmp != 0;
      case CompareOp::kLt:
        return cmp < 0;
      case CompareOp::kLe:
        return cmp <= 0;
      case CompareOp::kGt:
        return cmp > 0;
      case CompareOp::kGe:
        return cmp >= 0;
    }
  }
  // Neither operand may enter the message: the cell is record-level
  // (and echoing the literal would confirm what it was compared against).
  return Status::InvalidArgument("type mismatch in comparison");
}

}  // namespace

Result<bool> Predicate::Matches(const DataTable& table, size_t row) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare: {
      TRIPRIV_ASSIGN_OR_RETURN(size_t col, table.schema().IndexOf(attribute_));
      return EvalCompare(table.at(row, col), op_, literal_);
    }
    case Kind::kAnd: {
      TRIPRIV_ASSIGN_OR_RETURN(bool a, lhs_->Matches(table, row));
      if (!a) return false;
      return rhs_->Matches(table, row);
    }
    case Kind::kOr: {
      TRIPRIV_ASSIGN_OR_RETURN(bool a, lhs_->Matches(table, row));
      if (a) return true;
      return rhs_->Matches(table, row);
    }
    case Kind::kNot: {
      TRIPRIV_ASSIGN_OR_RETURN(bool a, lhs_->Matches(table, row));
      return !a;
    }
  }
  return Status::Internal("corrupt predicate kind");
}

Result<std::vector<size_t>> Predicate::MatchingRows(const DataTable& table) const {
  std::vector<size_t> out;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    TRIPRIV_ASSIGN_OR_RETURN(bool match, Matches(table, r));
    if (match) out.push_back(r);
  }
  return out;
}

void Predicate::CollectAttributes(std::vector<std::string>* out) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kCompare:
      out->push_back(attribute_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      lhs_->CollectAttributes(out);
      rhs_->CollectAttributes(out);
      return;
    case Kind::kNot:
      lhs_->CollectAttributes(out);
      return;
  }
}

std::vector<std::string> Predicate::ReferencedAttributes() const {
  std::vector<std::string> out;
  CollectAttributes(&out);
  return out;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return attribute_ + " " + CompareOpToString(op_) + " " +
             (literal_.is_string() ? "'" + literal_.AsString() + "'"
                                   : literal_.ToDisplayString());
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs_->ToString() + ")";
  }
  return "?";
}

}  // namespace tripriv
