#include "table/mutation.h"

#include <unordered_map>
#include <utility>

#include "util/checksum.h"

namespace tripriv {
namespace {

void MixU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) Fnv1aMix(h, static_cast<uint8_t>(v >> (8 * i)));
}

/// Type-tagged cell digest: the tag separates Value(1) from Value(1.0) and
/// "" from null, so two tables hash equal iff they compare equal.
void MixValue(uint64_t* h, const Value& v) {
  if (v.is_null()) {
    Fnv1aMix(h, 0);
  } else if (v.is_int()) {
    Fnv1aMix(h, 1);
    MixU64(h, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_real()) {
    Fnv1aMix(h, 2);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(double));
    const double d = v.AsReal();
    __builtin_memcpy(&bits, &d, sizeof(bits));
    MixU64(h, bits);
  } else {
    Fnv1aMix(h, 3);
    const std::string& s = v.AsString();
    MixU64(h, s.size());
    for (char c : s) Fnv1aMix(h, static_cast<uint8_t>(c));
  }
}

}  // namespace

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kInsert:
      return "insert";
    case MutationKind::kDelete:
      return "delete";
    case MutationKind::kUpdate:
      return "update";
  }
  return "unknown";
}

RowMutation RowMutation::Insert(std::vector<Value> row) {
  RowMutation m;
  m.kind = MutationKind::kInsert;
  m.row = std::move(row);
  return m;
}

RowMutation RowMutation::Delete(uint64_t uid) {
  RowMutation m;
  m.kind = MutationKind::kDelete;
  m.uid = uid;
  return m;
}

RowMutation RowMutation::Update(uint64_t uid, std::vector<Value> row) {
  RowMutation m;
  m.kind = MutationKind::kUpdate;
  m.uid = uid;
  m.row = std::move(row);
  return m;
}

Result<MutationApplyResult> ApplyMutations(const std::vector<RowMutation>& batch,
                                           DataTable* base,
                                           std::vector<uint64_t>* uids,
                                           uint64_t* next_uid) {
  TRIPRIV_CHECK(base != nullptr);
  TRIPRIV_CHECK(uids != nullptr);
  TRIPRIV_CHECK(next_uid != nullptr);
  if (uids->size() != base->num_rows()) {
    return Status::InvalidArgument("uid vector does not match table rows");
  }

  // Work on a positional copy with tombstones; the table is rebuilt once at
  // the end (deletes would otherwise shift row indices under the map).
  std::vector<std::vector<Value>> rows;
  rows.reserve(base->num_rows());
  for (size_t r = 0; r < base->num_rows(); ++r) rows.push_back(base->row(r));
  std::vector<uint64_t> out_uids = *uids;
  std::vector<bool> dead(rows.size(), false);
  std::unordered_map<uint64_t, size_t> index_of_uid;
  index_of_uid.reserve(out_uids.size());
  for (size_t r = 0; r < out_uids.size(); ++r) index_of_uid[out_uids[r]] = r;

  auto validate_row = [base](const std::vector<Value>& row) -> Status {
    if (row.size() != base->num_columns()) {
      return Status::InvalidArgument("mutation row arity does not match schema");
    }
    for (size_t c = 0; c < row.size(); ++c) {
      TRIPRIV_RETURN_IF_ERROR(base->ValidateCell(c, row[c]));
    }
    return Status::OK();
  };

  MutationApplyResult result;
  for (const RowMutation& m : batch) {
    switch (m.kind) {
      case MutationKind::kInsert: {
        TRIPRIV_RETURN_IF_ERROR(validate_row(m.row));
        const uint64_t uid = (*next_uid)++;
        index_of_uid[uid] = rows.size();
        rows.push_back(m.row);
        out_uids.push_back(uid);
        dead.push_back(false);
        result.dirty_uids.push_back(uid);
        ++result.inserts;
        break;
      }
      case MutationKind::kDelete: {
        auto it = index_of_uid.find(m.uid);
        if (it == index_of_uid.end() || dead[it->second]) {
          return Status::NotFound("delete of unknown uid");
        }
        dead[it->second] = true;
        result.dirty_uids.push_back(m.uid);
        ++result.deletes;
        break;
      }
      case MutationKind::kUpdate: {
        auto it = index_of_uid.find(m.uid);
        if (it == index_of_uid.end() || dead[it->second]) {
          return Status::NotFound("update of unknown uid");
        }
        TRIPRIV_RETURN_IF_ERROR(validate_row(m.row));
        rows[it->second] = m.row;
        result.dirty_uids.push_back(m.uid);
        ++result.updates;
        break;
      }
    }
  }

  std::vector<std::vector<Value>> kept_rows;
  std::vector<uint64_t> kept_uids;
  kept_rows.reserve(rows.size());
  kept_uids.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (dead[r]) continue;
    kept_rows.push_back(std::move(rows[r]));
    kept_uids.push_back(out_uids[r]);
  }
  TRIPRIV_ASSIGN_OR_RETURN(
      *base, DataTable::FromRows(base->schema(), std::move(kept_rows)));
  *uids = std::move(kept_uids);
  return result;
}

uint64_t MutationBatchFingerprint(const std::vector<RowMutation>& batch) {
  uint64_t h = kFnv1aOffset;
  MixU64(&h, batch.size());
  for (const RowMutation& m : batch) {
    Fnv1aMix(&h, static_cast<uint8_t>(m.kind));
    MixU64(&h, m.uid);
    MixU64(&h, m.row.size());
    for (const Value& v : m.row) MixValue(&h, v);
  }
  return h;
}

uint64_t TableChecksum(const DataTable& table) {
  uint64_t h = kFnv1aOffset;
  MixU64(&h, table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.schema().attribute(c).name;
    MixU64(&h, name.size());
    for (char ch : name) Fnv1aMix(&h, static_cast<uint8_t>(ch));
  }
  MixU64(&h, table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      MixValue(&h, table.at(r, c));
    }
  }
  return h;
}

}  // namespace tripriv
