#include "table/value.h"

#include <functional>

#include "util/string_util.h"

namespace tripriv {

std::string Value::ToDisplayString() const {
  if (is_null()) return "";
  if (is_int()) return std::to_string(AsInt());
  if (is_real()) return FormatDouble(AsReal(), 10);
  return AsString();
}

bool Value::operator<(const Value& other) const {
  // Rank: null(0) < numeric(1) < string(2); numerics compare by value.
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  const int ra = rank(*this);
  const int rb = rank(other);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // null == null
  if (ra == 1) {
    const double a = ToDouble();
    const double b = other.ToDouble();
    if (a != b) return a < b;
    // Numerically equal: order ints before reals for a strict weak order
    // consistent with operator== (Value(1) != Value(1.0)).
    return is_int() && other.is_real();
  }
  return AsString() < other.AsString();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_int()) return std::hash<int64_t>{}(AsInt());
  if (is_real()) return std::hash<double>{}(AsReal());
  return std::hash<std::string>{}(AsString());
}

}  // namespace tripriv
