// Cell values for microdata tables.
//
// A `Value` is a small tagged union: null, 64-bit integer, double, or
// string. Attribute typing lives in the Schema; Value is the dynamic
// representation used for storage, predicates, and I/O.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/logging.h"

namespace tripriv {

/// Dynamic cell value: null, integer, real, or string.
class Value {
 public:
  /// Null (missing / suppressed) value.
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}             // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}        // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}              // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  /// True for int or real.
  bool is_numeric() const { return is_int() || is_real(); }

  /// The integer payload. Requires is_int().
  int64_t AsInt() const {
    TRIPRIV_CHECK(is_int()) << "Value::AsInt on non-integer";
    return std::get<int64_t>(data_);
  }
  /// The real payload. Requires is_real().
  double AsReal() const {
    TRIPRIV_CHECK(is_real()) << "Value::AsReal on non-real";
    return std::get<double>(data_);
  }
  /// The string payload. Requires is_string().
  const std::string& AsString() const {
    TRIPRIV_CHECK(is_string()) << "Value::AsString on non-string";
    return std::get<std::string>(data_);
  }

  /// Numeric coercion: int -> double, real -> itself. Requires is_numeric().
  double ToDouble() const {
    if (is_int()) return static_cast<double>(AsInt());
    TRIPRIV_CHECK(is_real()) << "Value::ToDouble on non-numeric";
    return AsReal();
  }

  /// Display / CSV form. Null renders as the empty string; reals use a
  /// compact representation.
  std::string ToDisplayString() const;

  /// Deep equality. Integer and real payloads are distinct even when
  /// numerically equal (Value(1) != Value(1.0)).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for grouping and sorting: null < numerics (by numeric
  /// value; ints and reals compare numerically) < strings (lexicographic).
  bool operator<(const Value& other) const;

  /// Hash compatible with operator== (used by equivalence-class grouping).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace tripriv

