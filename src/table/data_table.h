// DataTable: an in-memory microdata table (rows of Values under a Schema).
//
// Row-major storage: the privacy algorithms in this library are
// record-oriented (records are the unit of re-identification), and tables
// are laptop-scale. Cells are type-checked against the schema on insertion.

#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "core/annotations.h"
#include "table/schema.h"
#include "table/value.h"
#include "util/status.h"

namespace tripriv {

/// In-memory microdata table.
class DataTable {
 public:
  DataTable() = default;
  /// Empty table with the given schema.
  explicit DataTable(Schema schema) : schema_(std::move(schema)) {}

  /// Builds a table from rows, validating every cell against the schema.
  static Result<DataTable> FromRows(Schema schema,
                                    std::vector<std::vector<Value>> rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.size(); }

  /// Cell accessors (bounds are programmer errors). Cells are the unit of
  /// re-identification: record-level sensitivity at the taint layer.
  TRIPRIV_SENSITIVE(record)
  const Value& at(size_t row, size_t col) const {
    TRIPRIV_CHECK_LT(row, rows_.size());
    TRIPRIV_CHECK_LT(col, schema_.size());
    return rows_[row][col];
  }
  /// Sets a cell after validating the value against the column type.
  Status Set(size_t row, size_t col, Value v);

  TRIPRIV_SENSITIVE(record)
  const std::vector<Value>& row(size_t i) const {
    TRIPRIV_CHECK_LT(i, rows_.size());
    return rows_[i];
  }

  /// Appends a row after validating arity and cell types.
  Status AppendRow(std::vector<Value> row);

  /// Validates `v` against the attribute at `col` (null always allowed).
  Status ValidateCell(size_t col, const Value& v) const;

  /// All values of one column, in row order.
  TRIPRIV_SENSITIVE(record)
  std::vector<Value> ColumnValues(size_t col) const;
  /// Numeric column as doubles (ints coerced). Fails on strings; null cells
  /// fail too (callers mask or drop nulls first).
  Result<std::vector<double>> NumericColumn(size_t col) const;
  /// Numeric column looked up by name.
  Result<std::vector<double>> NumericColumn(std::string_view name) const;

  /// Overwrites one column with `values` (size must equal num_rows; each
  /// value is validated).
  Status SetColumn(size_t col, const std::vector<Value>& values);
  /// Overwrites a numeric column from doubles; integer columns are rounded.
  Status SetNumericColumn(size_t col, const std::vector<double>& values);

  /// New table with only the columns at `indices`.
  DataTable Project(const std::vector<size_t>& indices) const;
  /// New table with only the rows at `row_indices` (in the given order).
  DataTable SelectRows(const std::vector<size_t>& row_indices) const;
  /// New table with rows satisfying `keep`.
  DataTable Filter(const std::function<bool(const std::vector<Value>&)>& keep) const;

  /// Numeric matrix view of the columns at `cols` (row-major). Fails if any
  /// referenced cell is non-numeric.
  Result<std::vector<std::vector<double>>> NumericMatrix(
      const std::vector<size_t>& cols) const;

  /// Renders an ASCII table (header + rows), for examples and benches.
  std::string ToPrettyString(size_t max_rows = 20) const;

  bool operator==(const DataTable& other) const {
    return schema_ == other.schema_ && rows_ == other.rows_;
  }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace tripriv

