// Row predicates: the WHERE clauses of statistical queries.
//
// A Predicate is a small expression tree over attribute comparisons,
// combined with AND / OR / NOT. It backs both the interactive statistical
// database (querydb) and the private aggregate queries (pir), including the
// paper's Section 3 example:
//   height < 165 AND weight > 105.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "table/data_table.h"

namespace tripriv {

/// Comparison operator of a leaf predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// Immutable predicate expression tree.
class Predicate {
 public:
  /// Predicate that accepts every row.
  static Predicate True();
  /// Leaf: `attribute <op> literal`.
  static Predicate Compare(std::string attribute, CompareOp op, Value literal);
  static Predicate And(Predicate lhs, Predicate rhs);
  static Predicate Or(Predicate lhs, Predicate rhs);
  static Predicate Not(Predicate inner);

  /// Evaluates against row `row` of `table`. Fails if a referenced
  /// attribute does not exist or a comparison is ill-typed (e.g. `<` between
  /// a number and a string). Null cells compare false under every operator
  /// except kNe, mirroring SQL's null semantics closely enough for the
  /// statistical-query workloads here.
  Result<bool> Matches(const DataTable& table, size_t row) const;

  /// Indices of all rows of `table` satisfying the predicate.
  Result<std::vector<size_t>> MatchingRows(const DataTable& table) const;

  /// Attribute names referenced by the predicate (with duplicates), in
  /// left-to-right order. The query-auditing machinery uses this to know
  /// which attributes a user has probed.
  std::vector<std::string> ReferencedAttributes() const;

  /// SQL-ish rendering, e.g. "(height < 165 AND weight > 105)".
  std::string ToString() const;

 private:
  enum class Kind { kTrue, kCompare, kAnd, kOr, kNot };

  Kind kind_ = Kind::kTrue;
  // Leaf payload.
  std::string attribute_;
  CompareOp op_ = CompareOp::kEq;
  Value literal_;
  // Children (shared so Predicate stays copyable).
  std::shared_ptr<const Predicate> lhs_;
  std::shared_ptr<const Predicate> rhs_;

  void CollectAttributes(std::vector<std::string>* out) const;
};

}  // namespace tripriv

