#include "table/versioned_table.h"

#include <algorithm>
#include <utility>

namespace tripriv {

PinnedEpoch::PinnedEpoch(PinnedEpoch&& other) noexcept
    : manager_(other.manager_), data_(std::move(other.data_)) {
  other.manager_ = nullptr;
  other.data_.reset();
}

PinnedEpoch& PinnedEpoch::operator=(PinnedEpoch&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    data_ = std::move(other.data_);
    other.manager_ = nullptr;
    other.data_.reset();
  }
  return *this;
}

void PinnedEpoch::Release() {
  if (manager_ != nullptr && data_ != nullptr) {
    manager_->Unpin(data_->epoch);
  }
  manager_ = nullptr;
  data_.reset();
}

EpochManager::EpochManager(size_t max_live_epochs)
    : max_live_(std::max<size_t>(2, max_live_epochs)) {}

void EpochManager::Bootstrap(std::shared_ptr<const EpochData> first) {
  TRIPRIV_CHECK(first != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  TRIPRIV_CHECK(current_ == nullptr) << "Bootstrap on a running manager";
  current_ = std::move(first);
  peak_live_ = std::max(peak_live_, LiveLocked());
}

void EpochManager::Publish(std::shared_ptr<const EpochData> next) {
  TRIPRIV_CHECK(next != nullptr);
  std::unique_lock<std::mutex> lock(mu_);
  TRIPRIV_CHECK(current_ != nullptr) << "Publish before Bootstrap";
  TRIPRIV_CHECK(next->epoch > current_->epoch);
  retired_.push_back(std::move(current_));
  current_ = std::move(next);
  ++published_;
  SweepLocked();
  // The hard memory bound: wait for pinned retirees to drain rather than
  // letting garbage accumulate. Readers unpin promptly by contract.
  drained_.wait(lock, [this] { return LiveLocked() <= max_live_; });
  // Peak is sampled once the publish settles: it counts snapshots that
  // stay resident past the bound check, not the transient hand-off.
  peak_live_ = std::max(peak_live_, LiveLocked());
}

PinnedEpoch EpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  TRIPRIV_CHECK(current_ != nullptr) << "Pin before Bootstrap";
  ++pins_[current_->epoch];
  return PinnedEpoch(this, current_);
}

void EpochManager::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(epoch);
  TRIPRIV_CHECK(it != pins_.end()) << "Unpin of an unpinned epoch";
  if (--it->second == 0) {
    pins_.erase(it);
    SweepLocked();
    drained_.notify_all();
  }
}

void EpochManager::SweepLocked() {
  while (!retired_.empty()) {
    // Free in retirement order; stop at the first still-pinned epoch so the
    // list stays a contiguous suffix of history.
    const uint64_t oldest = retired_.front()->epoch;
    auto it = pins_.find(oldest);
    if (it != pins_.end() && it->second > 0) break;
    retired_.pop_front();
    ++freed_;
  }
}

uint64_t EpochManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ == nullptr ? 0 : current_->epoch;
}

size_t EpochManager::live_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return LiveLocked();
}

size_t EpochManager::peak_live_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_live_;
}

uint64_t EpochManager::epochs_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

uint64_t EpochManager::epochs_freed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return freed_;
}

void EpochStore::Put(std::shared_ptr<const EpochData> image) {
  TRIPRIV_CHECK(image != nullptr);
  const uint64_t epoch = image->epoch;
  staged_[epoch] = std::move(image);
}

Status EpochStore::Sync() {
  ++syncs_;
  if (fail_syncs_) {
    return Status::Unavailable("epoch store sync failed");
  }
  for (auto& [epoch, image] : staged_) durable_[epoch] = std::move(image);
  staged_.clear();
  return Status::OK();
}

void EpochStore::SimulateCrash() { staged_.clear(); }

std::shared_ptr<const EpochData> EpochStore::Get(uint64_t epoch) const {
  auto it = staged_.find(epoch);
  if (it != staged_.end()) return it->second;
  it = durable_.find(epoch);
  if (it != durable_.end()) return it->second;
  return nullptr;
}

void EpochStore::Erase(uint64_t epoch) {
  staged_.erase(epoch);
  durable_.erase(epoch);
}

size_t EpochStore::num_images() const {
  size_t n = durable_.size();
  for (const auto& [epoch, image] : staged_) {
    if (durable_.find(epoch) == durable_.end()) ++n;
  }
  return n;
}

std::vector<uint64_t> EpochStore::Epochs() const {
  std::vector<uint64_t> epochs;
  for (const auto& [epoch, image] : durable_) epochs.push_back(epoch);
  for (const auto& [epoch, image] : staged_) {
    if (durable_.find(epoch) == durable_.end()) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

}  // namespace tripriv
