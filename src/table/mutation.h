// Row mutations against the live protected database.
//
// The epoch-versioned store (versioned_table.h) never edits a published
// table in place: writers submit RowMutations, and a flip applies a whole
// batch to a copy-on-write image of the base microdata. Rows are addressed
// by a stable 64-bit uid (never by position — deletes compact row indices,
// uids survive them), assigned at insert time and carried per epoch.
//
// ApplyMutations is transactional per batch: any invalid mutation (unknown
// uid, wrong arity, type mismatch) fails the whole batch and the caller's
// image is discarded, so a half-applied batch can never become an epoch.

#pragma once

#include <cstdint>
#include <vector>

#include "core/annotations.h"
#include "table/data_table.h"
#include "table/value.h"
#include "util/status.h"

namespace tripriv {

/// What one mutation does to the base microdata.
enum class MutationKind : uint8_t { kInsert = 0, kDelete = 1, kUpdate = 2 };

const char* MutationKindName(MutationKind kind);

/// One pending write. Built through the factories below.
struct RowMutation {
  MutationKind kind = MutationKind::kInsert;
  /// Target uid for kDelete / kUpdate; assigned by ApplyMutations for
  /// kInsert (the field is ignored on input there).
  uint64_t uid = 0;
  /// Full row payload for kInsert / kUpdate; empty for kDelete.
  std::vector<Value> row;

  static RowMutation Insert(std::vector<Value> row);
  static RowMutation Delete(uint64_t uid);
  static RowMutation Update(uint64_t uid, std::vector<Value> row);
};

/// Outcome of applying one batch.
struct MutationApplyResult {
  /// Uids whose record changed: inserted and updated uids (still present)
  /// plus deleted uids (no longer present — the incremental maintainer uses
  /// them to find the groups that lost members).
  std::vector<uint64_t> dirty_uids;
  size_t inserts = 0;
  size_t deletes = 0;
  size_t updates = 0;
};

/// Applies `batch` in order to the image (`base`, `uids`), where uids[i] is
/// the stable id of base row i. Inserted rows get fresh uids from
/// `*next_uid` (incremented). Every payload cell is validated against the
/// schema; kDelete / kUpdate of an unknown uid is kNotFound. On any error
/// the image is left in an unspecified partially-applied state — callers
/// apply to scratch copies and discard them on failure (the copy-on-write
/// flip discipline).
Result<MutationApplyResult> ApplyMutations(const std::vector<RowMutation>& batch,
                                           DataTable* base,
                                           std::vector<uint64_t>* uids,
                                           uint64_t* next_uid);

/// Order-sensitive FNV-1a digest of a batch (kinds, uids, and cell bytes).
/// This is what the flip-begin WAL record carries instead of the mutation
/// payloads themselves: the WAL must never hold record-level data.
TRIPRIV_SANITIZES(aggregate, digest)
uint64_t MutationBatchFingerprint(const std::vector<RowMutation>& batch);

/// Deterministic FNV-1a digest of a whole table (schema column names plus
/// every cell, type-tagged). The flip-commit WAL record stores the digest
/// of the *protected* (published) table so recovery can verify the adopted
/// epoch image byte-for-byte.
TRIPRIV_SANITIZES(aggregate, digest)
uint64_t TableChecksum(const DataTable& table);

}  // namespace tripriv
