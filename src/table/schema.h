// Microdata schema: attribute names, types, and privacy roles.
//
// The paper (Section 2, following Dalenius and Samarati) classifies
// attributes by the role they play in disclosure:
//   * identifiers      — directly name the respondent (removed before any
//                        release);
//   * quasi-identifiers (key attributes) — e.g. height and weight in
//                        Table 1: individually harmless, jointly linkable
//                        to external knowledge;
//   * confidential     — the sensitive payload (blood pressure, AIDS);
//   * non-confidential — everything else.
// The SDC, PPDM, and evaluation modules all key off these roles.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tripriv {

/// Storage/semantic type of an attribute.
enum class AttributeType {
  kInteger,      ///< int64 values
  kReal,         ///< double values
  kCategorical,  ///< string labels, unordered
};

/// Disclosure role of an attribute (see file comment).
enum class AttributeRole {
  kIdentifier,
  kQuasiIdentifier,
  kConfidential,
  kNonConfidential,
};

const char* AttributeTypeToString(AttributeType type);
const char* AttributeRoleToString(AttributeRole role);

/// One column's metadata.
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kReal;
  AttributeRole role = AttributeRole::kNonConfidential;

  bool operator==(const Attribute& other) const = default;
};

/// Ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;
  /// Builds a schema; duplicate names are a programmer error (CHECK).
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const {
    TRIPRIV_CHECK_LT(i, attributes_.size());
    return attributes_[i];
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> FindIndex(std::string_view name) const;
  /// Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(std::string_view name) const;

  /// Indices of all attributes with the given role, in schema order.
  std::vector<size_t> IndicesWithRole(AttributeRole role) const;
  /// Convenience: quasi-identifier indices (the paper's "key attributes").
  std::vector<size_t> QuasiIdentifierIndices() const {
    return IndicesWithRole(AttributeRole::kQuasiIdentifier);
  }
  /// Convenience: confidential-attribute indices.
  std::vector<size_t> ConfidentialIndices() const {
    return IndicesWithRole(AttributeRole::kConfidential);
  }

  /// New schema containing only the attributes at `indices`, in order.
  Schema Project(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace tripriv

