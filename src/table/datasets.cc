#include "table/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace tripriv {
namespace {

DataTable MustFromRows(Schema schema, std::vector<std::vector<Value>> rows) {
  auto result = DataTable::FromRows(std::move(schema), std::move(rows));
  TRIPRIV_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

int64_t ClampInt(double v, int64_t lo, int64_t hi) {
  const int64_t r = static_cast<int64_t>(std::llround(v));
  return std::max(lo, std::min(hi, r));
}

}  // namespace

Schema PatientSchema() {
  return Schema({
      {"height", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"weight", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"blood_pressure", AttributeType::kInteger, AttributeRole::kConfidential},
      {"aids", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
}

DataTable PaperDataset1() {
  // Three equivalence classes on (height, weight): sizes 3, 3, 4 -> the
  // dataset is 3-anonymous "spontaneously". The AIDS column follows the
  // paper's visible Y/N sequence (Y N N N Y N N Y N N), which gives every
  // class at least two distinct AIDS values (2-sensitive 3-anonymity).
  return MustFromRows(PatientSchema(), {
      {170, 75, 150, "Y"},
      {170, 75, 145, "N"},
      {170, 75, 160, "N"},
      {180, 90, 155, "N"},
      {180, 90, 148, "Y"},
      {180, 90, 162, "N"},
      {160, 60, 141, "N"},
      {160, 60, 170, "Y"},
      {160, 60, 152, "N"},
      {160, 60, 144, "N"},
  });
}

DataTable PaperDataset2() {
  // Unique key combinations (no 3-anonymity); row 4 is the short (<165 cm)
  // and heavy (>105 kg) respondent isolated by the Section 3 attack, with
  // systolic blood pressure 146. AIDS column: N Y N N N Y N Y N N.
  return MustFromRows(PatientSchema(), {
      {175, 80, 152, "N"},
      {168, 72, 149, "Y"},
      {182, 95, 158, "N"},
      {190, 98, 161, "N"},
      {160, 110, 146, "N"},
      {171, 77, 143, "Y"},
      {165, 64, 166, "N"},
      {186, 91, 154, "Y"},
      {158, 55, 147, "N"},
      {177, 85, 150, "N"},
  });
}

DataTable MakeClinicalTrial(size_t n, uint64_t seed) {
  Rng rng(seed);
  DataTable table(PatientSchema());
  for (size_t i = 0; i < n; ++i) {
    const double height = rng.Normal(170.0, 9.0);
    const double weight = (height - 100.0) + rng.Normal(0.0, 11.0);
    // Trial population: hypertension only (systolic >= 140).
    const double bp = 140.0 + std::fabs(rng.Normal(0.0, 14.0));
    const bool aids = rng.Bernoulli(0.12);
    auto st = table.AppendRow({Value(ClampInt(height, 140, 205)),
                               Value(ClampInt(weight, 40, 160)),
                               Value(ClampInt(bp, 140, 230)),
                               Value(aids ? "Y" : "N")});
    TRIPRIV_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

DataTable MakeExtendedTrial(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema({
      {"age", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"height", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"weight", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"cholesterol", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"blood_pressure", AttributeType::kInteger, AttributeRole::kConfidential},
      {"aids", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  DataTable table(schema);
  for (size_t i = 0; i < n; ++i) {
    const double age = rng.UniformDouble(25.0, 85.0);
    const double height = rng.Normal(170.0, 9.0);
    const double weight = (height - 100.0) + rng.Normal(0.0, 11.0);
    // Cholesterol drifts up with age and weight.
    const double chol =
        150.0 + 0.8 * age + 0.3 * weight + rng.Normal(0.0, 20.0);
    const double bp = 140.0 + 0.15 * age + std::fabs(rng.Normal(0.0, 12.0));
    const bool aids = rng.Bernoulli(0.12);
    auto st = table.AppendRow(
        {Value(ClampInt(age, 25, 85)), Value(ClampInt(height, 140, 205)),
         Value(ClampInt(weight, 40, 160)), Value(ClampInt(chol, 100, 400)),
         Value(ClampInt(bp, 140, 230)), Value(aids ? "Y" : "N")});
    TRIPRIV_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

DataTable MakeCensus(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema({
      {"age", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"sex", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier},
      {"region", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier},
      {"education", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"income", AttributeType::kReal, AttributeRole::kConfidential},
      {"diagnosis", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  static const char* kDiagnoses[] = {"none",         "hypertension", "diabetes",
                                     "asthma",       "depression",   "cancer"};
  static const double kDiagnosisWeights[] = {0.55, 0.16, 0.11, 0.09, 0.06, 0.03};
  DataTable table(schema);
  for (size_t i = 0; i < n; ++i) {
    const int64_t age = rng.UniformInt(18, 90);
    const bool male = rng.Bernoulli(0.49);
    const int64_t region = rng.UniformInt(0, 11);
    // Education correlates weakly with age bracket.
    const int64_t education =
        ClampInt(8.0 + rng.Normal(0.0, 3.0) + (age > 30 ? 2.0 : 0.0), 1, 16);
    // Log-normal income rising with education.
    const double income =
        std::exp(9.2 + 0.12 * static_cast<double>(education) +
                 rng.Normal(0.0, 0.55));
    double u = rng.UniformDouble();
    size_t diag = 0;
    for (; diag + 1 < 6; ++diag) {
      if (u < kDiagnosisWeights[diag]) break;
      u -= kDiagnosisWeights[diag];
    }
    auto st = table.AppendRow({Value(age), Value(male ? "M" : "F"),
                               Value("R" + std::to_string(region)),
                               Value(education), Value(income),
                               Value(kDiagnoses[diag])});
    TRIPRIV_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

DataTable MakeCensusScale(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema({
      {"age", AttributeType::kInteger, AttributeRole::kQuasiIdentifier},
      {"education_years", AttributeType::kInteger,
       AttributeRole::kQuasiIdentifier},
      {"hours_per_week", AttributeType::kInteger,
       AttributeRole::kQuasiIdentifier},
      {"survey_weight", AttributeType::kReal, AttributeRole::kQuasiIdentifier},
      {"sex", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier},
      {"region", AttributeType::kCategorical, AttributeRole::kQuasiIdentifier},
      {"income", AttributeType::kReal, AttributeRole::kConfidential},
      {"diagnosis", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  static const char* kDiagnoses[] = {"none",         "hypertension", "diabetes",
                                     "asthma",       "depression",   "cancer"};
  static const double kDiagnosisWeights[] = {0.55, 0.16, 0.11, 0.09, 0.06, 0.03};
  DataTable table(schema);
  for (size_t i = 0; i < n; ++i) {
    const int64_t age = rng.UniformInt(18, 90);
    const int64_t education =
        ClampInt(9.0 + rng.Normal(0.0, 3.5) + (age > 30 ? 2.0 : 0.0), 1, 20);
    const int64_t hours =
        ClampInt(38.0 + rng.Normal(0.0, 11.0) - (age > 65 ? 14.0 : 0.0), 1, 99);
    // Post-stratification weight: continuous and effectively unique, the
    // attribute that makes an external register a usable linkage key.
    const double weight = 40.0 + 160.0 * rng.UniformDouble() +
                          0.3 * static_cast<double>(age);
    const bool male = rng.Bernoulli(0.49);
    const int64_t region = rng.UniformInt(0, 11);
    const double income =
        std::exp(9.0 + 0.11 * static_cast<double>(education) +
                 0.006 * static_cast<double>(hours) + rng.Normal(0.0, 0.5));
    double u = rng.UniformDouble();
    size_t diag = 0;
    for (; diag + 1 < 6; ++diag) {
      if (u < kDiagnosisWeights[diag]) break;
      u -= kDiagnosisWeights[diag];
    }
    auto st = table.AppendRow({Value(age), Value(education), Value(hours),
                               Value(weight), Value(male ? "M" : "F"),
                               Value("R" + std::to_string(region)),
                               Value(income), Value(kDiagnoses[diag])});
    TRIPRIV_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

DataTable MakeHighDimBinary(size_t n, size_t d, uint64_t seed) {
  TRIPRIV_CHECK_GE(d, 2u);
  Rng rng(seed);
  std::vector<Attribute> attrs;
  attrs.reserve(d);
  for (size_t j = 0; j < d; ++j) {
    attrs.push_back({"a" + std::to_string(j), AttributeType::kInteger,
                     j + 1 == d ? AttributeRole::kConfidential
                                : AttributeRole::kQuasiIdentifier});
  }
  // Per-attribute marginal probabilities away from 1/2 so value combinations
  // become increasingly rare as d grows (the sparsity regime of [11]).
  std::vector<double> p(d);
  for (size_t j = 0; j < d; ++j) p[j] = rng.UniformDouble(0.15, 0.45);
  DataTable table{Schema(std::move(attrs))};
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.reserve(d);
    for (size_t j = 0; j < d; ++j) {
      row.push_back(Value(static_cast<int64_t>(rng.Bernoulli(p[j]) ? 1 : 0)));
    }
    auto st = table.AppendRow(std::move(row));
    TRIPRIV_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

DataTable MakeClassification(size_t n, int function_id, uint64_t seed) {
  TRIPRIV_CHECK(function_id >= 1 && function_id <= 3);
  Rng rng(seed);
  Schema schema({
      {"age", AttributeType::kReal, AttributeRole::kNonConfidential},
      {"salary", AttributeType::kReal, AttributeRole::kNonConfidential},
      {"commission", AttributeType::kReal, AttributeRole::kNonConfidential},
      {"elevel", AttributeType::kInteger, AttributeRole::kNonConfidential},
      {"group", AttributeType::kCategorical, AttributeRole::kConfidential},
  });
  DataTable table(schema);
  for (size_t i = 0; i < n; ++i) {
    const double age = rng.UniformDouble(20.0, 80.0);
    const double salary = rng.UniformDouble(20000.0, 150000.0);
    const double commission =
        salary >= 75000.0 ? 0.0 : rng.UniformDouble(10000.0, 75000.0);
    const int64_t elevel = rng.UniformInt(0, 4);
    bool is_a = false;
    switch (function_id) {
      case 1:
        is_a = age < 40.0 || age >= 60.0;
        break;
      case 2:
        if (age < 40.0) {
          is_a = salary >= 50000.0 && salary <= 100000.0;
        } else if (age < 60.0) {
          is_a = salary >= 75000.0 && salary <= 125000.0;
        } else {
          is_a = salary >= 25000.0 && salary <= 75000.0;
        }
        break;
      case 3:
        if (age < 40.0) {
          is_a = elevel <= 1;
        } else if (age < 60.0) {
          is_a = elevel >= 1 && elevel <= 3;
        } else {
          is_a = elevel >= 2;
        }
        break;
    }
    auto st = table.AppendRow({Value(age), Value(salary), Value(commission),
                               Value(elevel), Value(is_a ? "A" : "B")});
    TRIPRIV_CHECK(st.ok()) << st.ToString();
  }
  return table;
}

}  // namespace tripriv
