// Epoch-versioned copy-on-write snapshots of the protected database.
//
// Every published version of the database is an immutable EpochData: the
// raw base microdata (with stable per-row uids), its MDAV group structure,
// and the centroid-masked protected table derived from it. Readers pin an
// epoch and compute against frozen data — an in-flight PIR batch, query
// batch, or MDAV scan stays bit-identical at any thread count no matter
// how many flips land while it runs — while the writer builds the next
// epoch off to the side and publishes it atomically.
//
// Lifecycle and memory bound: Publish retires the previous epoch onto a
// garbage list; a retired epoch is freed the moment its last pinned reader
// drains. The list is bounded, not best-effort — Publish BLOCKS until at
// most `max_live_epochs` epochs (current + pinned retirees) are live, so
// ten thousand flips under concurrent readers hold peak memory to the
// configured bound instead of accumulating dead snapshots. A reader that
// pins and never unpins therefore stalls the writer by design (the
// alternative is unbounded garbage); pins are meant to be held for one
// read batch, not stored.
//
// EpochStore is the simulated durable home of epoch images — the analog of
// the checkpoint files a real system would write next to its WAL. It is
// object-granular where the WAL device is byte-granular, but shares the
// same crash window: a Put is staged until Sync, and SimulateCrash drops
// everything staged. The flip protocol stores and syncs the new image
// BEFORE appending the WAL commit record, so a recovered commit record
// always finds its image (write-ahead ordering for data, not just intent).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "table/data_table.h"
#include "util/status.h"

namespace tripriv {

/// One immutable published version of the protected database.
struct EpochData {
  /// Epoch number; committed epochs are consecutive starting at 1.
  uint64_t epoch = 0;
  /// Raw base microdata (current membership, post-mutation).
  DataTable base;
  /// uids[i] is the stable id of base row i (see table/mutation.h).
  std::vector<uint64_t> uids;
  /// MDAV group of each base row; groups have size >= k (gate-enforced).
  std::vector<size_t> group_of_row;
  size_t num_groups = 0;
  /// The published artifact: base with QI columns centroid-masked.
  DataTable protected_table;
  /// Uid allocation resumes here after recovery.
  uint64_t next_uid = 0;
  /// TableChecksum(protected_table); cross-checked against the WAL commit
  /// record when an epoch is adopted at recovery.
  uint64_t protected_checksum = 0;
};

class EpochManager;

/// RAII pin on one epoch. Everything reachable through the pin is frozen;
/// the epoch cannot be freed while any pin on it lives. Movable, not
/// copyable; default-constructed pins are invalid.
class PinnedEpoch {
 public:
  PinnedEpoch() = default;
  PinnedEpoch(PinnedEpoch&& other) noexcept;
  PinnedEpoch& operator=(PinnedEpoch&& other) noexcept;
  PinnedEpoch(const PinnedEpoch&) = delete;
  PinnedEpoch& operator=(const PinnedEpoch&) = delete;
  ~PinnedEpoch() { Release(); }

  bool valid() const { return data_ != nullptr; }
  const EpochData* operator->() const {
    TRIPRIV_CHECK(data_ != nullptr);
    return data_.get();
  }
  const EpochData& operator*() const {
    TRIPRIV_CHECK(data_ != nullptr);
    return *data_;
  }
  /// Unpins early (idempotent; the destructor is then a no-op).
  void Release();

 private:
  friend class EpochManager;
  PinnedEpoch(EpochManager* manager, std::shared_ptr<const EpochData> data)
      : manager_(manager), data_(std::move(data)) {}

  EpochManager* manager_ = nullptr;
  std::shared_ptr<const EpochData> data_;
};

/// Publishes, pins, and retires epochs; see file comment. All methods are
/// thread-safe: readers Pin/unpin from any thread while one writer
/// publishes (the flip path itself is single-writer by construction).
class EpochManager {
 public:
  /// `max_live_epochs` >= 2: the current epoch plus at most
  /// max_live_epochs - 1 retired-but-pinned predecessors.
  explicit EpochManager(size_t max_live_epochs = 2);

  /// Installs the first epoch. Exactly once, before any Pin.
  void Bootstrap(std::shared_ptr<const EpochData> first);

  /// Atomically publishes `next` and retires the current epoch. Blocks
  /// until the live-epoch bound holds again (i.e. until enough retired
  /// epochs drain their pins and are freed).
  void Publish(std::shared_ptr<const EpochData> next);

  /// Pins the current epoch (readers start here).
  PinnedEpoch Pin();

  uint64_t current_epoch() const;
  /// Current + retired-not-yet-freed epochs.
  size_t live_epochs() const;
  /// High-water mark of live_epochs() — what the memory-bound test gates.
  size_t peak_live_epochs() const;
  uint64_t epochs_published() const;
  uint64_t epochs_freed() const;
  size_t max_live_epochs() const { return max_live_; }

 private:
  friend class PinnedEpoch;

  void Unpin(uint64_t epoch);
  /// Frees retired epochs with no pins. Caller holds mu_.
  void SweepLocked();
  size_t LiveLocked() const { return (current_ ? 1 : 0) + retired_.size(); }

  const size_t max_live_;
  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::shared_ptr<const EpochData> current_;
  /// Retired epochs not yet freed, oldest first.
  std::deque<std::shared_ptr<const EpochData>> retired_;
  /// Active pin count per live epoch.
  std::map<uint64_t, size_t> pins_;
  size_t peak_live_ = 0;
  uint64_t published_ = 0;
  uint64_t freed_ = 0;
};

/// Simulated durable store of epoch images (see file comment). Single-
/// writer like the WAL device; the flip path is the only caller.
class EpochStore {
 public:
  /// Stages `image` under its epoch number (durable only after Sync).
  void Put(std::shared_ptr<const EpochData> image);
  /// Makes all staged images durable. Fails typed when fail-sync injection
  /// is armed; staged images then die with the next crash.
  Status Sync();
  /// Drops every staged (unsynced) image — the reboot a torn flip sees.
  void SimulateCrash();
  /// The image for `epoch` (staged or durable), or null.
  std::shared_ptr<const EpochData> Get(uint64_t epoch) const;
  /// Removes `epoch` from both staged and durable sets (GC; idempotent).
  void Erase(uint64_t epoch);
  /// Durable + staged image count (the on-disk footprint the GC bounds).
  size_t num_images() const;
  /// All stored epoch numbers, ascending.
  std::vector<uint64_t> Epochs() const;
  /// Injected adversity: every Sync fails until disarmed.
  void set_fail_syncs(bool fail) { fail_syncs_ = fail; }
  uint64_t syncs() const { return syncs_; }

 private:
  std::map<uint64_t, std::shared_ptr<const EpochData>> durable_;
  std::map<uint64_t, std::shared_ptr<const EpochData>> staged_;
  bool fail_syncs_ = false;
  uint64_t syncs_ = 0;
};

}  // namespace tripriv
