// CSV import/export for DataTable.

#pragma once

#include <string>
#include <string_view>

#include "table/data_table.h"

namespace tripriv {

/// Parses CSV text (header row required, matching the schema's attribute
/// names in order) into a table. Cells are parsed according to the schema
/// column types; empty cells become null.
Result<DataTable> TableFromCsv(const Schema& schema, std::string_view csv_text);

/// Parses CSV text and infers a schema: a column where every non-empty cell
/// parses as int64 is kInteger; else if every cell parses as double, kReal;
/// otherwise kCategorical. All roles default to kNonConfidential.
Result<DataTable> TableFromCsvInferred(std::string_view csv_text);

/// Serializes a table to CSV with a header row. Null cells serialize empty.
std::string TableToCsv(const DataTable& table);

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes a string to a file, replacing any existing content.
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace tripriv

