// Cache-line-aligned word storage for preprocessed database layouts.
//
// The PIR answer sweep and the SDC distance scans are memory-bandwidth
// bound: what they stream from should start on a 64-byte boundary and be
// padded to whole cache lines so the compiler's vectorized loops never
// straddle a line and never need a scalar prologue. std::vector<uint64_t>
// only guarantees 8-byte alignment, so AlignedWordBuffer over-allocates by
// seven words and publishes the first 64-byte-aligned word as data().
//
// Copying re-derives the alignment offset for the new allocation (the
// padding words are dead space, never part of the logical contents), so a
// copied buffer is aligned too, not a byte-shifted image of the original.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace tripriv {

/// `words` uint64 slots, zero-initialized, with data() 64-byte aligned.
class AlignedWordBuffer {
 public:
  AlignedWordBuffer() = default;
  explicit AlignedWordBuffer(size_t words) : storage_(words + 7), words_(words) {
    offset_ = AlignOffset();
  }

  AlignedWordBuffer(const AlignedWordBuffer& other)
      : storage_(other.storage_.size()), words_(other.words_) {
    offset_ = AlignOffset();
    if (words_ > 0) {
      std::memcpy(storage_.data() + offset_, other.data(), size_bytes());
    }
  }
  AlignedWordBuffer& operator=(const AlignedWordBuffer& other) {
    if (this != &other) {
      AlignedWordBuffer copy(other);
      *this = std::move(copy);
    }
    return *this;
  }
  // Moves carry the allocation, so the stored offset stays valid.
  AlignedWordBuffer(AlignedWordBuffer&&) noexcept = default;
  AlignedWordBuffer& operator=(AlignedWordBuffer&&) noexcept = default;

  bool empty() const { return words_ == 0; }
  size_t size_words() const { return words_; }
  size_t size_bytes() const { return words_ * sizeof(uint64_t); }

  uint64_t* data() { return storage_.data() + offset_; }
  const uint64_t* data() const { return storage_.data() + offset_; }

  uint8_t* bytes() { return reinterpret_cast<uint8_t*>(data()); }
  const uint8_t* bytes() const {
    return reinterpret_cast<const uint8_t*>(data());
  }

 private:
  /// Words to skip from storage_.data() to the first 64-byte boundary.
  size_t AlignOffset() const {
    if (storage_.empty()) return 0;
    const auto base = reinterpret_cast<uintptr_t>(storage_.data());
    return (64 - base % 64) % 64 / sizeof(uint64_t);
  }

  std::vector<uint64_t> storage_;  ///< words_ + 7, so alignment always fits
  size_t words_ = 0;
  size_t offset_ = 0;
};

}  // namespace tripriv
