#include "table/io.h"

#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace tripriv {
namespace {

Result<Value> ParseCell(const Attribute& attr, const std::string& text) {
  if (text.empty()) return Value::Null();
  switch (attr.type) {
    case AttributeType::kInteger: {
      int64_t v = 0;
      if (!ParseInt64(text, &v)) {
        return Status::InvalidArgument("cannot parse '" + text +
                                       "' as integer for attribute '" +
                                       attr.name + "'");
      }
      return Value(v);
    }
    case AttributeType::kReal: {
      double v = 0;
      if (!ParseDouble(text, &v)) {
        return Status::InvalidArgument("cannot parse '" + text +
                                       "' as real for attribute '" +
                                       attr.name + "'");
      }
      return Value(v);
    }
    case AttributeType::kCategorical:
      return Value(text);
  }
  return Status::Internal("unknown attribute type");
}

}  // namespace

Result<DataTable> TableFromCsv(const Schema& schema, std::string_view csv_text) {
  TRIPRIV_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv_text));
  if (rows.empty()) return Status::InvalidArgument("CSV has no header row");
  const auto& header = rows[0];
  if (header.size() != schema.size()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema has " + std::to_string(schema.size()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (Trim(header[c]) != schema.attribute(c).name) {
      return Status::InvalidArgument("CSV header column " + std::to_string(c) +
                                     " is '" + header[c] + "', expected '" +
                                     schema.attribute(c).name + "'");
    }
  }
  DataTable table(schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != schema.size()) {
      return Status::InvalidArgument("CSV row " + std::to_string(r) + " has " +
                                     std::to_string(rows[r].size()) +
                                     " cells, expected " +
                                     std::to_string(schema.size()));
    }
    std::vector<Value> cells;
    cells.reserve(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
      TRIPRIV_ASSIGN_OR_RETURN(Value v, ParseCell(schema.attribute(c), rows[r][c]));
      cells.push_back(std::move(v));
    }
    TRIPRIV_RETURN_IF_ERROR(table.AppendRow(std::move(cells)));
  }
  return table;
}

Result<DataTable> TableFromCsvInferred(std::string_view csv_text) {
  TRIPRIV_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv_text));
  if (rows.empty()) return Status::InvalidArgument("CSV has no header row");
  const size_t ncols = rows[0].size();
  // Duplicate header names would violate the Schema invariant (a CHECK);
  // reject them as malformed input instead.
  {
    std::set<std::string> seen;
    for (const auto& name : rows[0]) {
      if (!seen.insert(std::string(Trim(name))).second) {
        return Status::InvalidArgument("duplicate CSV header column '" +
                                       std::string(Trim(name)) + "'");
      }
    }
  }
  std::vector<Attribute> attrs(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    attrs[c].name = std::string(Trim(rows[0][c]));
    bool all_int = true;
    bool all_real = true;
    bool any_value = false;
    for (size_t r = 1; r < rows.size(); ++r) {
      if (c >= rows[r].size() || rows[r][c].empty()) continue;
      any_value = true;
      int64_t iv;
      double dv;
      if (!ParseInt64(rows[r][c], &iv)) all_int = false;
      if (!ParseDouble(rows[r][c], &dv)) all_real = false;
    }
    if (any_value && all_int) {
      attrs[c].type = AttributeType::kInteger;
    } else if (any_value && all_real) {
      attrs[c].type = AttributeType::kReal;
    } else {
      attrs[c].type = AttributeType::kCategorical;
    }
    attrs[c].role = AttributeRole::kNonConfidential;
  }
  return TableFromCsv(Schema(std::move(attrs)), csv_text);
}

std::string TableToCsv(const DataTable& table) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.num_rows() + 1);
  std::vector<std::string> header;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    header.push_back(table.schema().attribute(c).name);
  }
  rows.push_back(std::move(header));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      cells.push_back(table.at(r, c).ToDisplayString());
    }
    rows.push_back(std::move(cells));
  }
  return WriteCsv(rows);
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open file for write: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::Internal("short write to file: " + path);
  return Status::OK();
}

}  // namespace tripriv
