#include "table/schema.h"

#include <unordered_set>

namespace tripriv {

const char* AttributeTypeToString(AttributeType type) {
  switch (type) {
    case AttributeType::kInteger:
      return "integer";
    case AttributeType::kReal:
      return "real";
    case AttributeType::kCategorical:
      return "categorical";
  }
  return "unknown";
}

const char* AttributeRoleToString(AttributeRole role) {
  switch (role) {
    case AttributeRole::kIdentifier:
      return "identifier";
    case AttributeRole::kQuasiIdentifier:
      return "quasi-identifier";
    case AttributeRole::kConfidential:
      return "confidential";
    case AttributeRole::kNonConfidential:
      return "non-confidential";
  }
  return "unknown";
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  std::unordered_set<std::string> names;
  for (const auto& a : attributes_) {
    TRIPRIV_CHECK(names.insert(a.name).second)
        << "duplicate attribute name:" << a.name;
  }
}

std::optional<size_t> Schema::FindIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::IndexOf(std::string_view name) const {
  auto idx = FindIndex(name);
  if (!idx.has_value()) {
    // NOLINTNEXTLINE(taint-flow-to-sink): attribute names are public
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return *idx;
}

std::vector<size_t> Schema::IndicesWithRole(AttributeRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].role == role) out.push_back(i);
  }
  return out;
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indices.size());
  for (size_t i : indices) {
    TRIPRIV_CHECK_LT(i, attributes_.size());
    attrs.push_back(attributes_[i]);
  }
  return Schema(std::move(attrs));
}

}  // namespace tripriv
