#include "table/data_table.h"

#include <cmath>
#include <sstream>

namespace tripriv {

Result<DataTable> DataTable::FromRows(Schema schema,
                                      std::vector<std::vector<Value>> rows) {
  DataTable table(std::move(schema));
  for (auto& row : rows) {
    TRIPRIV_RETURN_IF_ERROR(table.AppendRow(std::move(row)));
  }
  return table;
}

Status DataTable::ValidateCell(size_t col, const Value& v) const {
  TRIPRIV_CHECK_LT(col, schema_.size());
  if (v.is_null()) return Status::OK();
  const Attribute& attr = schema_.attribute(col);
  switch (attr.type) {
    case AttributeType::kInteger:
      if (!v.is_int()) {
        // The offered value is record-level and must not enter the
        // message (taint-flow-to-sink); the type mismatch is the news.
        return Status::InvalidArgument("attribute '" + attr.name +
                                       "' expects integer");
      }
      break;
    case AttributeType::kReal:
      if (!v.is_numeric()) {
        return Status::InvalidArgument("attribute '" + attr.name +
                                       "' expects real");
      }
      break;
    case AttributeType::kCategorical:
      if (!v.is_string()) {
        return Status::InvalidArgument("attribute '" + attr.name +
                                       "' expects categorical");
      }
      break;
  }
  return Status::OK();
}

Status DataTable::Set(size_t row, size_t col, Value v) {
  TRIPRIV_CHECK_LT(row, rows_.size());
  TRIPRIV_RETURN_IF_ERROR(ValidateCell(col, v));
  rows_[row][col] = std::move(v);
  return Status::OK();
}

Status DataTable::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(schema_.size()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    TRIPRIV_RETURN_IF_ERROR(ValidateCell(c, row[c]));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<Value> DataTable::ColumnValues(size_t col) const {
  TRIPRIV_CHECK_LT(col, schema_.size());
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[col]);
  return out;
}

Result<std::vector<double>> DataTable::NumericColumn(size_t col) const {
  TRIPRIV_CHECK_LT(col, schema_.size());
  std::vector<double> out;
  out.reserve(rows_.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Value& v = rows_[r][col];
    if (!v.is_numeric()) {
      return Status::InvalidArgument(
          "non-numeric cell at row " + std::to_string(r) + ", column '" +
          schema_.attribute(col).name + "'");
    }
    out.push_back(v.ToDouble());
  }
  return out;
}

Result<std::vector<double>> DataTable::NumericColumn(std::string_view name) const {
  TRIPRIV_ASSIGN_OR_RETURN(size_t col, schema_.IndexOf(name));
  return NumericColumn(col);
}

Status DataTable::SetColumn(size_t col, const std::vector<Value>& values) {
  TRIPRIV_CHECK_LT(col, schema_.size());
  if (values.size() != rows_.size()) {
    return Status::InvalidArgument("SetColumn: size mismatch");
  }
  for (const Value& v : values) TRIPRIV_RETURN_IF_ERROR(ValidateCell(col, v));
  for (size_t r = 0; r < rows_.size(); ++r) rows_[r][col] = values[r];
  return Status::OK();
}

Status DataTable::SetNumericColumn(size_t col, const std::vector<double>& values) {
  TRIPRIV_CHECK_LT(col, schema_.size());
  if (values.size() != rows_.size()) {
    return Status::InvalidArgument("SetNumericColumn: size mismatch");
  }
  const bool integral = schema_.attribute(col).type == AttributeType::kInteger;
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (integral) {
      rows_[r][col] = Value(static_cast<int64_t>(std::llround(values[r])));
    } else {
      rows_[r][col] = Value(values[r]);
    }
  }
  return Status::OK();
}

DataTable DataTable::Project(const std::vector<size_t>& indices) const {
  DataTable out(schema_.Project(indices));
  for (const auto& row : rows_) {
    std::vector<Value> projected;
    projected.reserve(indices.size());
    for (size_t i : indices) projected.push_back(row[i]);
    out.rows_.push_back(std::move(projected));
  }
  return out;
}

DataTable DataTable::SelectRows(const std::vector<size_t>& row_indices) const {
  DataTable out(schema_);
  out.rows_.reserve(row_indices.size());
  for (size_t i : row_indices) {
    TRIPRIV_CHECK_LT(i, rows_.size());
    out.rows_.push_back(rows_[i]);
  }
  return out;
}

DataTable DataTable::Filter(
    const std::function<bool(const std::vector<Value>&)>& keep) const {
  DataTable out(schema_);
  for (const auto& row : rows_) {
    if (keep(row)) out.rows_.push_back(row);
  }
  return out;
}

Result<std::vector<std::vector<double>>> DataTable::NumericMatrix(
    const std::vector<size_t>& cols) const {
  std::vector<std::vector<double>> out(rows_.size(),
                                       std::vector<double>(cols.size()));
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t j = 0; j < cols.size(); ++j) {
      const size_t c = cols[j];
      TRIPRIV_CHECK_LT(c, schema_.size());
      const Value& v = rows_[r][c];
      if (!v.is_numeric()) {
        return Status::InvalidArgument(
            "non-numeric cell at row " + std::to_string(r) + ", column '" +
            schema_.attribute(c).name + "'");
      }
      out[r][j] = v.ToDouble();
    }
  }
  return out;
}

std::string DataTable::ToPrettyString(size_t max_rows) const {
  // Compute column widths over header + shown rows.
  const size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> width(schema_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.size(); ++c) {
    width[c] = schema_.attribute(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.size());
    for (size_t c = 0; c < schema_.size(); ++c) {
      cells[r][c] = rows_[r][c].is_null() ? "*" : rows_[r][c].ToDisplayString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto pad = [&](const std::string& s, size_t w) {
    os << s;
    for (size_t i = s.size(); i < w; ++i) os << ' ';
  };
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) os << "  ";
    pad(schema_.attribute(c).name, width[c]);
  }
  os << '\n';
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      if (c > 0) os << "  ";
      pad(cells[r][c], width[c]);
    }
    os << '\n';
  }
  if (shown < rows_.size()) {
    os << "... (" << rows_.size() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace tripriv
