#include "core/evaluator.h"

#include <cmath>
#include <set>
#include <sstream>

#include "pir/it_pir.h"
#include "ppdm/randomized_response.h"
#include "querydb/protection.h"
#include "sdc/condensation.h"
#include "sdc/microaggregation.h"
#include "sdc/noise.h"
#include "sdc/risk.h"
#include "smc/reliable_channel.h"
#include "smc/secure_sum.h"
#include "stats/descriptive.h"

namespace tripriv {

double DimensionScores::of(Dimension d) const {
  switch (d) {
    case Dimension::kRespondent:
      return respondent;
    case Dimension::kOwner:
      return owner;
    case Dimension::kUser:
      return user;
  }
  return 0.0;
}

bool TechnologyEvaluation::AgreesWithPaper() const {
  for (Dimension d : kAllDimensions) {
    if (!GradesAgree(ClaimedGrade(d), MeasuredGrade(d))) return false;
  }
  return true;
}

PrivacyEvaluator::PrivacyEvaluator(DataTable original, Options options)
    : original_(std::move(original)), options_(options) {}

namespace {

/// All numeric column indices of a table.
std::vector<size_t> NumericColumns(const DataTable& t) {
  std::vector<size_t> out;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (t.schema().attribute(c).type != AttributeType::kCategorical) {
      out.push_back(c);
    }
  }
  return out;
}

/// Categorical confidential columns.
std::vector<size_t> CategoricalConfidentials(const DataTable& t) {
  std::vector<size_t> out;
  for (size_t c : t.schema().ConfidentialIndices()) {
    if (t.schema().attribute(c).type == AttributeType::kCategorical) {
      out.push_back(c);
    }
  }
  return out;
}

/// Serializes a row into a fixed-size PIR record (decimal rendering,
/// zero-padded).
std::vector<uint8_t> EncodeRowAsRecord(const DataTable& t, size_t row,
                                       size_t record_size) {
  std::string text;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    text += t.at(row, c).ToDisplayString();
    text += '|';
  }
  std::vector<uint8_t> record(record_size, 0);
  for (size_t i = 0; i < text.size() && i < record_size; ++i) {
    record[i] = static_cast<uint8_t>(text[i]);
  }
  return record;
}

}  // namespace

Result<DataTable> PrivacyEvaluator::BuildRelease(TechnologyClass base,
                                                 uint64_t seed) const {
  switch (base) {
    case TechnologyClass::kSdc: {
      // SDC masking: k-anonymize the quasi-identifiers; confidential
      // attributes are released as-is for analytical validity (the reason
      // Table 2 rates SDC owner privacy below PPDM's).
      TRIPRIV_ASSIGN_OR_RETURN(auto masked,
                               MdavMicroaggregate(original_, options_.sdc_k));
      return masked.table;
    }
    case TechnologyClass::kUseSpecificNonCryptoPpdm: {
      // [5]-style: noise on every numeric attribute (the miner reconstructs
      // distributions), randomized response on categorical confidentials.
      TRIPRIV_ASSIGN_OR_RETURN(
          DataTable release,
          AddUncorrelatedNoise(original_, options_.noise_alpha,
                               NumericColumns(original_), seed));
      for (size_t c : CategoricalConfidentials(original_)) {
        TRIPRIV_ASSIGN_OR_RETURN(
            release, RandomizedResponseMask(release, c,
                                            options_.rr_keep_probability,
                                            seed ^ (0x9E37u + c)));
      }
      return release;
    }
    case TechnologyClass::kGenericNonCryptoPpdm: {
      // [1]/[2]-style: condensation over all numeric attributes (supports a
      // broad range of analyses), randomized response on categorical
      // confidentials.
      TRIPRIV_ASSIGN_OR_RETURN(
          auto condensed,
          Condense(original_, options_.condensation_k, NumericColumns(original_),
                   seed));
      DataTable release = condensed.table;
      for (size_t c : CategoricalConfidentials(original_)) {
        TRIPRIV_ASSIGN_OR_RETURN(
            release, RandomizedResponseMask(release, c,
                                            options_.rr_keep_probability,
                                            seed ^ (0xC0FFEEu + c)));
      }
      return release;
    }
    case TechnologyClass::kPir:
      // PIR alone serves the original records.
      return original_;
    default:
      return Status::InvalidArgument("no release for this technology class");
  }
}

Result<double> PrivacyEvaluator::RespondentScoreFromRelease(
    const DataTable& release) const {
  TRIPRIV_ASSIGN_OR_RETURN(auto linkage,
                           DistanceLinkageAttack(original_, release));
  return 1.0 - linkage.correct_fraction;
}

Result<double> PrivacyEvaluator::OwnerScoreFromRelease(
    const DataTable& release) const {
  // Dataset-reconstruction attack: fraction of original cells recovered.
  size_t recovered = 0;
  size_t total = 0;
  for (size_t c = 0; c < original_.num_columns(); ++c) {
    if (original_.schema().attribute(c).type == AttributeType::kCategorical) {
      for (size_t r = 0; r < original_.num_rows(); ++r) {
        ++total;
        if (original_.at(r, c) == release.at(r, c)) ++recovered;
      }
    } else {
      TRIPRIV_ASSIGN_OR_RETURN(auto rate,
                               IntervalDisclosureRate(
                                   original_, release, c,
                                   options_.recovery_window_percent));
      recovered += static_cast<size_t>(
          std::llround(rate * static_cast<double>(original_.num_rows())));
      total += original_.num_rows();
    }
  }
  const double recovery =
      total == 0 ? 0.0
                 : static_cast<double>(recovered) / static_cast<double>(total);
  return 1.0 - recovery;
}

Result<std::pair<double, double>> PrivacyEvaluator::CryptoScores(
    uint64_t seed) const {
  // Crypto PPDM deployment: `crypto_parties` owners hold horizontal shards
  // and jointly compute per-attribute sums and counts via secure sum. The
  // adversary is one of the parties: it sees the transcript.
  const size_t parties = options_.crypto_parties;
  PartyNetwork net(parties, seed);
  if (options_.chaos_drop_rate > 0.0) {
    FaultPlan plan;
    plan.drop_rate = options_.chaos_drop_rate;
    net.InjectFaults(plan);
  }
  const auto numeric = NumericColumns(original_);
  std::vector<std::vector<uint64_t>> local(parties,
                                           std::vector<uint64_t>(numeric.size() + 1, 0));
  for (size_t r = 0; r < original_.num_rows(); ++r) {
    const size_t p = r % parties;
    local[p][0] += 1;  // count
    for (size_t j = 0; j < numeric.size(); ++j) {
      const Value& v = original_.at(r, numeric[j]);
      if (v.is_numeric()) {
        local[p][j + 1] += static_cast<uint64_t>(
            std::llround(std::max(0.0, v.ToDouble())));
      }
    }
  }
  TRIPRIV_RETURN_IF_ERROR(SecureSumCounts(&net, local).status());

  // Respondent/owner attack on the transcript: scan payloads for verbatim
  // original values (a record or cell that crossed the wire in clear).
  // Under fault injection the wire carries extras that are protocol
  // metadata, not data: ack messages, the [session, seq, checksum] header
  // of each reliable message, and byte-identical retransmissions. Acks and
  // headers are skipped; retransmissions are deduplicated so a resent
  // masked value is counted exactly once — retransmitting can never leak
  // more than the original transmission did.
  size_t leaked_cells = 0;
  size_t total_cells = original_.num_rows() * numeric.size();
  const size_t header_elems =
      net.fault_injection_enabled() ? kReliableHeaderElems : 0;
  std::set<std::string> seen_payloads;
  for (const auto& msg : net.transcript()) {
    if (msg.tag == "secure_sum/result") continue;  // public aggregate
    if (IsReliableControlMessage(msg)) continue;   // acks: metadata only
    std::string fingerprint =
        std::to_string(msg.from) + '>' + std::to_string(msg.to) + ':' +
        msg.tag;
    for (const BigInt& v : msg.payload) fingerprint += ',' + v.ToHex();
    if (!seen_payloads.insert(std::move(fingerprint)).second) {
      continue;  // retransmission of an already-counted message
    }
    for (size_t i = header_elems; i < msg.payload.size(); ++i) {
      const BigInt& payload = msg.payload[i];
      auto as_int = payload.ToI64();
      if (!as_int.has_value()) continue;  // masked values are ~2^80
      for (size_t r = 0; r < original_.num_rows(); ++r) {
        for (size_t j : numeric) {
          const Value& v = original_.at(r, j);
          if (v.is_numeric() &&
              std::llround(v.ToDouble()) == *as_int) {
            ++leaked_cells;
          }
        }
      }
    }
  }
  const double leak_rate =
      total_cells == 0
          ? 0.0
          : std::min(1.0, static_cast<double>(leaked_cells) /
                              static_cast<double>(total_cells));
  // Both dimensions hinge on record/cell exposure here: respondents cannot
  // be re-identified from data that never leaves its owner, and the owner's
  // dataset cannot be reconstructed from uniformly masked partial sums.
  return std::make_pair(1.0 - leak_rate, 1.0 - leak_rate);
}

Result<double> PrivacyEvaluator::UserScoreWithPir(const DataTable& release,
                                                  uint64_t seed) const {
  // The user retrieves random records through 2-server XOR PIR; server A
  // (the curious owner) guesses the retrieved index from its view (the
  // selection bitmap). With the subset scheme a single server's view is
  // independent of the target, so any strategy degenerates to guessing.
  const size_t n = release.num_rows();
  if (n == 0) return Status::InvalidArgument("empty release");
  constexpr size_t kRecordBytes = 64;
  std::vector<std::vector<uint8_t>> records;
  records.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    records.push_back(EncodeRowAsRecord(release, r, kRecordBytes));
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto server_a, XorPirServer::Create(records));
  TRIPRIV_ASSIGN_OR_RETURN(auto server_b, XorPirServer::Create(std::move(records)));
  // Attack-analysis mode: the owner's guessing strategy below inspects the
  // last selection bitmap server A saw.
  server_a.EnableObservationLog(1);

  Rng user_rng(seed);
  Rng owner_rng(seed ^ 0xABCDEF);
  size_t owner_correct = 0;
  for (size_t trial = 0; trial < options_.pir_trials; ++trial) {
    const size_t secret = static_cast<size_t>(user_rng.UniformU64(n));
    TRIPRIV_RETURN_IF_ERROR(
        TwoServerPirRead(&server_a, &server_b, secret, &user_rng).status());
    // Owner strategy: pick a uniformly random set bit of the bitmap it saw
    // (the bitmap is uniform, so no strategy does better than chance).
    const auto& view = server_a.last_observed_query();
    std::vector<size_t> set_bits;
    for (size_t i = 0; i < n; ++i) {
      if ((view[i / 8] >> (i % 8)) & 1u) set_bits.push_back(i);
    }
    size_t guess;
    if (set_bits.empty()) {
      guess = static_cast<size_t>(owner_rng.UniformU64(n));
    } else {
      guess = set_bits[owner_rng.UniformU64(set_bits.size())];
    }
    if (guess == secret) ++owner_correct;
  }
  return 1.0 - static_cast<double>(owner_correct) /
                   static_cast<double>(options_.pir_trials);
}

Result<double> PrivacyEvaluator::UserScoreWithoutPir(const DataTable& release,
                                                     uint64_t seed) const {
  // Without PIR the user's statistical queries reach the owner in the
  // clear. Run the paper's Section 3 workload and check whether the owner's
  // log reproduces the user's predicates verbatim.
  ProtectionConfig config;
  config.mode = ProtectionMode::kNone;
  config.seed = seed;
  StatDatabase db(release, config);
  const std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM t WHERE height < 165 AND weight > 105",
      "SELECT AVG(blood_pressure) FROM t WHERE height < 165 AND weight > 105",
  };
  size_t reconstructed = 0;
  size_t issued = 0;
  for (const auto& sql : workload) {
    auto parsed = ParseQuery(sql);
    if (!parsed.ok()) continue;
    ++issued;
    // The answer itself is irrelevant to the measurement (and may fail on a
    // generalized release); the log entry is what leaks, and Query records
    // it before any failure path.
    IgnoreError(db.Query(*parsed).status());
    const StatQuery& logged = db.query_log().back();
    if (logged.where.ToString() == parsed->where.ToString()) ++reconstructed;
  }
  if (issued == 0) return Status::Internal("workload failed to parse");
  return 1.0 - static_cast<double>(reconstructed) / static_cast<double>(issued);
}

Result<TechnologyEvaluation> PrivacyEvaluator::Evaluate(
    TechnologyClass technology) {
  if (original_.num_rows() < 10) {
    return Status::FailedPrecondition("need >= 10 rows to evaluate");
  }
  TechnologyEvaluation eval;
  eval.technology = technology;
  const TechnologyClass base = BaseClass(technology);
  const uint64_t seed = options_.seed;

  if (base == TechnologyClass::kCryptoPpdm) {
    TRIPRIV_ASSIGN_OR_RETURN(auto scores, CryptoScores(seed));
    eval.scores.respondent = scores.first;
    eval.scores.owner = scores.second;
    // The joint analysis is known to every party by construction
    // (Section 4): query visibility is total.
    eval.scores.user = 0.0;
    return eval;
  }

  TRIPRIV_ASSIGN_OR_RETURN(DataTable release, BuildRelease(base, seed));
  TRIPRIV_ASSIGN_OR_RETURN(eval.scores.respondent,
                           RespondentScoreFromRelease(release));
  TRIPRIV_ASSIGN_OR_RETURN(eval.scores.owner, OwnerScoreFromRelease(release));
  if (!IncludesPir(technology)) {
    TRIPRIV_ASSIGN_OR_RETURN(eval.scores.user,
                             UserScoreWithoutPir(release, seed));
  } else if (base == TechnologyClass::kUseSpecificNonCryptoPpdm) {
    // Owner knows the supported analysis family (documented constant).
    eval.scores.user = 1.0 - kUseSpecificQueryVisibility;
  } else {
    TRIPRIV_ASSIGN_OR_RETURN(eval.scores.user, UserScoreWithPir(release, seed));
  }
  return eval;
}

Result<std::vector<TechnologyEvaluation>> PrivacyEvaluator::EvaluateAll() {
  std::vector<TechnologyEvaluation> out;
  out.reserve(kAllTechnologyClasses.size());
  for (TechnologyClass t : kAllTechnologyClasses) {
    TRIPRIV_ASSIGN_OR_RETURN(auto eval, Evaluate(t));
    out.push_back(eval);
  }
  return out;
}

std::string PrivacyEvaluator::FormatScoreboard(
    const std::vector<TechnologyEvaluation>& evals, bool with_claims) {
  std::ostringstream os;
  const size_t name_width = 36;
  const size_t cell_width = with_claims ? 34 : 12;
  os << std::string(name_width, ' ');
  for (Dimension d : kAllDimensions) {
    std::string header(DimensionToString(d));
    header.resize(cell_width, ' ');
    os << "  " << header;
  }
  os << '\n';
  for (const auto& eval : evals) {
    std::string name = TechnologyClassToString(eval.technology);
    name.resize(name_width, ' ');
    os << name;
    for (Dimension d : kAllDimensions) {
      std::string cell = GradeToString(eval.MeasuredGrade(d));
      if (with_claims) {
        cell += " (paper: ";
        cell += GradeToString(eval.ClaimedGrade(d));
        cell += ")";
      }
      cell.resize(cell_width, ' ');
      os << "  " << cell;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tripriv
