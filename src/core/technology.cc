#include "core/technology.h"

namespace tripriv {

const char* TechnologyClassToString(TechnologyClass t) {
  switch (t) {
    case TechnologyClass::kSdc:
      return "SDC";
    case TechnologyClass::kUseSpecificNonCryptoPpdm:
      return "Use-specific non-crypto PPDM";
    case TechnologyClass::kGenericNonCryptoPpdm:
      return "Generic non-crypto PPDM";
    case TechnologyClass::kCryptoPpdm:
      return "Crypto PPDM";
    case TechnologyClass::kPir:
      return "PIR";
    case TechnologyClass::kSdcPlusPir:
      return "SDC + PIR";
    case TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir:
      return "Use-specific non-crypto PPDM + PIR";
    case TechnologyClass::kGenericNonCryptoPpdmPlusPir:
      return "Generic non-crypto PPDM + PIR";
    case TechnologyClass::kFingerprinting:
      return "Database fingerprinting";
  }
  return "?";
}

bool IncludesPir(TechnologyClass t) {
  switch (t) {
    case TechnologyClass::kPir:
    case TechnologyClass::kSdcPlusPir:
    case TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir:
    case TechnologyClass::kGenericNonCryptoPpdmPlusPir:
      return true;
    default:
      return false;
  }
}

TechnologyClass BaseClass(TechnologyClass t) {
  switch (t) {
    case TechnologyClass::kSdcPlusPir:
      return TechnologyClass::kSdc;
    case TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir:
      return TechnologyClass::kUseSpecificNonCryptoPpdm;
    case TechnologyClass::kGenericNonCryptoPpdmPlusPir:
      return TechnologyClass::kGenericNonCryptoPpdm;
    default:
      return t;
  }
}

Result<TechnologyClass> ComposeWithPir(TechnologyClass base) {
  switch (base) {
    case TechnologyClass::kSdc:
      return TechnologyClass::kSdcPlusPir;
    case TechnologyClass::kUseSpecificNonCryptoPpdm:
      return TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir;
    case TechnologyClass::kGenericNonCryptoPpdm:
      return TechnologyClass::kGenericNonCryptoPpdmPlusPir;
    case TechnologyClass::kCryptoPpdm:
      return Status::FailedPrecondition(
          "crypto PPDM is interactive multiparty computation whose joint "
          "analysis is known to all parties; it cannot be composed with PIR "
          "(Section 4)");
    case TechnologyClass::kPir:
    case TechnologyClass::kSdcPlusPir:
    case TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir:
    case TechnologyClass::kGenericNonCryptoPpdmPlusPir:
      return Status::InvalidArgument("class already includes PIR");
    case TechnologyClass::kFingerprinting:
      return Status::FailedPrecondition(
          "fingerprint detection requires the owner to inspect suspect "
          "copies and query logs; the Table 2 compositions do not cover a "
          "fingerprinting + PIR deployment");
  }
  return Status::Internal("unknown technology class");
}

Grade PaperClaimedGrade(TechnologyClass t, Dimension d) {
  // Verbatim transcription of Table 2.
  switch (t) {
    case TechnologyClass::kSdc:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kMediumHigh;
        case Dimension::kOwner:
          return Grade::kMedium;
        case Dimension::kUser:
          return Grade::kNone;
      }
      break;
    case TechnologyClass::kUseSpecificNonCryptoPpdm:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kMedium;
        case Dimension::kOwner:
          return Grade::kMediumHigh;
        case Dimension::kUser:
          return Grade::kNone;
      }
      break;
    case TechnologyClass::kGenericNonCryptoPpdm:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kMedium;
        case Dimension::kOwner:
          return Grade::kMediumHigh;
        case Dimension::kUser:
          return Grade::kNone;
      }
      break;
    case TechnologyClass::kCryptoPpdm:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kHigh;
        case Dimension::kOwner:
          return Grade::kHigh;
        case Dimension::kUser:
          return Grade::kNone;
      }
      break;
    case TechnologyClass::kPir:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kNone;
        case Dimension::kOwner:
          return Grade::kNone;
        case Dimension::kUser:
          return Grade::kHigh;
      }
      break;
    case TechnologyClass::kSdcPlusPir:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kMediumHigh;
        case Dimension::kOwner:
          return Grade::kMedium;
        case Dimension::kUser:
          return Grade::kHigh;
      }
      break;
    case TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kMedium;
        case Dimension::kOwner:
          return Grade::kMediumHigh;
        case Dimension::kUser:
          return Grade::kMedium;
      }
      break;
    case TechnologyClass::kGenericNonCryptoPpdmPlusPir:
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kMedium;
        case Dimension::kOwner:
          return Grade::kMediumHigh;
        case Dimension::kUser:
          return Grade::kHigh;
      }
      break;
    case TechnologyClass::kFingerprinting:
      // Not in the paper: reference expectation from the fingerprinting
      // literature (see header comment). PaperClaimsRow() returns false.
      switch (d) {
        case Dimension::kRespondent:
          return Grade::kLow;
        case Dimension::kOwner:
          return Grade::kHigh;
        case Dimension::kUser:
          return Grade::kNone;
      }
      break;
  }
  return Grade::kNone;
}

bool PaperClaimsRow(TechnologyClass t) {
  return t != TechnologyClass::kFingerprinting;
}

}  // namespace tripriv
