// Sensitivity annotations for the interprocedural taint analyzer.
//
// tripriv_taint (tools/taint/) propagates a three-point sensitivity lattice
//
//     clean  <  aggregate  <  record
//
// through the call graph of src/. The lattice points mean:
//
//   clean      carries no information about any respondent, owner secret,
//              or user query (counts of public things, config, status codes).
//   aggregate  derived from protected data but safe to emit: DP-noised
//              statistics, digests/checksums, count/sum aggregates, shares.
//   record     identifies or reconstructs a cell, a key, an RNG stream, a
//              selection vector, or an epsilon amount — must never reach an
//              emission channel unsanitized.
//
// The macros below declare the endpoints of that lattice on real API seams.
// They expand to nothing — the compiler never sees them — but the analyzer's
// declaration parser attaches them to the function, method, or member they
// precede:
//
//   TRIPRIV_SENSITIVE(level)
//       The annotated function's return value (and out-params), or the
//       annotated member's value, carries sensitivity `level` (`record` or
//       `aggregate`). Example sources: table cell accessors, Rng draws,
//       PIR selection-bit vectors, epsilon amounts.
//
//   TRIPRIV_SANITIZES(level)
//   TRIPRIV_SANITIZES(level, digest)
//       The annotated function lowers the sensitivity of everything flowing
//       through it to at most `level`, no matter how tainted its inputs are.
//       Example sanitizers: DP noise application, count/sum aggregation,
//       secret sharing, checksum/fingerprint digests. The optional `digest`
//       tag marks the sanitizer as order-sensitive: feeding it elements in
//       unordered-container iteration order breaks byte-identical
//       determinism, which the analyzer reports as taint-unordered-digest.
//
//   TRIPRIV_SINK(channel)
//       Every argument of the annotated function reaches an external channel
//       (`status_message`, `label`, `span`, `wire`, `wal`, `export`, ...).
//       The analyzer reports any argument whose sensitivity is `record` as
//       taint-flow-to-sink, and treats callers that forward a parameter into
//       a sink as derived sinks for that parameter (so a two-hop wrapper
//       around a log call is itself a sink).
//
// Genuine exceptions — e.g. the audit WAL is the durable epsilon ledger, so
// epsilon amounts legitimately flow into its append — carry a named
// suppression `// NOLINT(taint-flow-to-sink)` at the call site, which also
// stops derived-sink propagation through that edge. Suppressions are
// enumerated by `tripriv_lint --list-suppressions` so escapes stay counted.

#pragma once

#define TRIPRIV_SENSITIVE(level)
#define TRIPRIV_SANITIZES(...)
#define TRIPRIV_SINK(channel)
