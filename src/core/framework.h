// The paper's contribution: the three-dimensional privacy framework.
//
// Database privacy splits by WHOSE privacy is protected (Section 1):
//   * respondent privacy — the individuals behind the records;
//   * owner privacy     — the entity holding the dataset;
//   * user privacy      — the entity submitting queries.
// Sections 2-4 show pairwise independence; Table 2 scores technology
// classes per dimension. This header defines the dimensions, the
// qualitative grades, and the mapping from empirical scores to grades.

#pragma once

#include <array>
#include <string>

namespace tripriv {

/// Whose privacy a measurement refers to.
enum class Dimension { kRespondent = 0, kOwner = 1, kUser = 2 };

inline constexpr std::array<Dimension, 3> kAllDimensions = {
    Dimension::kRespondent, Dimension::kOwner, Dimension::kUser};

const char* DimensionToString(Dimension d);

/// Qualitative protection grades, matching Table 2's vocabulary.
enum class Grade { kNone = 0, kLow = 1, kMedium = 2, kMediumHigh = 3, kHigh = 4 };

const char* GradeToString(Grade g);

/// Maps an empirical protection score in [0, 1] (1 = the attack suite
/// failed completely) to a grade. Bands: [0, .2) none, [.2, .4) low,
/// [.4, .6) medium, [.6, .8) medium-high, [.8, 1] high.
Grade GradeFromScore(double score);

/// True when `measured` is within one band of `claimed` — the agreement
/// criterion EXPERIMENTS.md uses when comparing against the paper's
/// qualitative Table 2.
bool GradesAgree(Grade claimed, Grade measured);

}  // namespace tripriv

