// The technology classes of Table 2 and their composition rules.

#pragma once

#include <array>

#include "core/framework.h"
#include "util/status.h"

namespace tripriv {

/// The eight technology classes the paper scores (Table 2), plus database
/// fingerprinting (Ji et al., arXiv 2109.02768) — an owner-privacy
/// technology the empirical scoreboard adds as a ninth row.
enum class TechnologyClass {
  kSdc = 0,                            ///< SDC masking ([17, 26])
  kUseSpecificNonCryptoPpdm = 1,       ///< e.g. [5, 25]
  kGenericNonCryptoPpdm = 2,           ///< e.g. [2] (k-anonymization)
  kCryptoPpdm = 3,                     ///< secure multiparty computation [18]
  kPir = 4,                            ///< private information retrieval [8]
  kSdcPlusPir = 5,
  kUseSpecificNonCryptoPpdmPlusPir = 6,
  kGenericNonCryptoPpdmPlusPir = 7,
  kFingerprinting = 8,                 ///< database fingerprinting (2109.02768)
};

inline constexpr std::array<TechnologyClass, 8> kAllTechnologyClasses = {
    TechnologyClass::kSdc,
    TechnologyClass::kUseSpecificNonCryptoPpdm,
    TechnologyClass::kGenericNonCryptoPpdm,
    TechnologyClass::kCryptoPpdm,
    TechnologyClass::kPir,
    TechnologyClass::kSdcPlusPir,
    TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir,
    TechnologyClass::kGenericNonCryptoPpdmPlusPir,
};

/// The empirical scoreboard's rows: the paper's eight plus fingerprinting.
inline constexpr std::array<TechnologyClass, 9> kScoreboardTechnologies = {
    TechnologyClass::kSdc,
    TechnologyClass::kUseSpecificNonCryptoPpdm,
    TechnologyClass::kGenericNonCryptoPpdm,
    TechnologyClass::kCryptoPpdm,
    TechnologyClass::kPir,
    TechnologyClass::kSdcPlusPir,
    TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir,
    TechnologyClass::kGenericNonCryptoPpdmPlusPir,
    TechnologyClass::kFingerprinting,
};

/// The row label used in Table 2.
const char* TechnologyClassToString(TechnologyClass t);

/// Whether the class includes a PIR layer for user queries.
bool IncludesPir(TechnologyClass t);

/// The non-PIR base of a composite class (identity for base classes).
TechnologyClass BaseClass(TechnologyClass t);

/// Composition rules from Sections 3, 4, and 6:
///   * crypto PPDM is interactive multiparty computation where the joint
///     analysis is known to all parties — incompatible with PIR;
///   * query control (auditing) requires the owner to see queries —
///     incompatible with PIR (that is why SDC must rely on data masking
///     when composed with PIR).
/// Returns the composite class, or FailedPrecondition for crypto PPDM.
Result<TechnologyClass> ComposeWithPir(TechnologyClass base);

/// The paper's claimed grade (Table 2) for comparison with measurements.
/// For kFingerprinting — a row the paper does not score — this returns the
/// reference expectation derived from the fingerprinting literature
/// (respondent low: data is released near-verbatim; owner high:
/// traceability is the scheme's purpose; user none: the owner sees
/// queries). PaperClaimsRow distinguishes the two provenances.
Grade PaperClaimedGrade(TechnologyClass t, Dimension d);

/// True when Table 2 of the paper actually contains the row (false only for
/// kFingerprinting, whose claimed grades are literature extrapolations).
bool PaperClaimsRow(TechnologyClass t);

}  // namespace tripriv

