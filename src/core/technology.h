// The technology classes of Table 2 and their composition rules.

#pragma once

#include <array>

#include "core/framework.h"
#include "util/status.h"

namespace tripriv {

/// The eight technology classes the paper scores (Table 2).
enum class TechnologyClass {
  kSdc = 0,                            ///< SDC masking ([17, 26])
  kUseSpecificNonCryptoPpdm = 1,       ///< e.g. [5, 25]
  kGenericNonCryptoPpdm = 2,           ///< e.g. [2] (k-anonymization)
  kCryptoPpdm = 3,                     ///< secure multiparty computation [18]
  kPir = 4,                            ///< private information retrieval [8]
  kSdcPlusPir = 5,
  kUseSpecificNonCryptoPpdmPlusPir = 6,
  kGenericNonCryptoPpdmPlusPir = 7,
};

inline constexpr std::array<TechnologyClass, 8> kAllTechnologyClasses = {
    TechnologyClass::kSdc,
    TechnologyClass::kUseSpecificNonCryptoPpdm,
    TechnologyClass::kGenericNonCryptoPpdm,
    TechnologyClass::kCryptoPpdm,
    TechnologyClass::kPir,
    TechnologyClass::kSdcPlusPir,
    TechnologyClass::kUseSpecificNonCryptoPpdmPlusPir,
    TechnologyClass::kGenericNonCryptoPpdmPlusPir,
};

/// The row label used in Table 2.
const char* TechnologyClassToString(TechnologyClass t);

/// Whether the class includes a PIR layer for user queries.
bool IncludesPir(TechnologyClass t);

/// The non-PIR base of a composite class (identity for base classes).
TechnologyClass BaseClass(TechnologyClass t);

/// Composition rules from Sections 3, 4, and 6:
///   * crypto PPDM is interactive multiparty computation where the joint
///     analysis is known to all parties — incompatible with PIR;
///   * query control (auditing) requires the owner to see queries —
///     incompatible with PIR (that is why SDC must rely on data masking
///     when composed with PIR).
/// Returns the composite class, or FailedPrecondition for crypto PPDM.
Result<TechnologyClass> ComposeWithPir(TechnologyClass base);

/// The paper's claimed grade (Table 2) for comparison with measurements.
Grade PaperClaimedGrade(TechnologyClass t, Dimension d);

}  // namespace tripriv

