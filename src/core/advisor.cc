#include "core/advisor.h"

#include "sdc/anonymity.h"
#include "sdc/microaggregation.h"

namespace tripriv {

Result<Recommendation> RecommendTechnology(const PrivacyRequirements& req) {
  if (!req.respondent && !req.owner && !req.user) {
    return Status::InvalidArgument("no privacy dimension requested");
  }
  Recommendation rec;
  if (req.user && !req.respondent && !req.owner) {
    rec.technology = TechnologyClass::kPir;
    rec.rationale = {
        "only user privacy is required: PIR protects queries and nothing "
        "else needs masking (the public-database case of Section 4)"};
    return rec;
  }
  if (req.owner && !req.respondent && !req.user) {
    rec.technology = TechnologyClass::kCryptoPpdm;
    rec.rationale = {
        "only owner privacy is required: crypto PPDM offers the highest "
        "owner privacy (Table 2) and its incompatibility with PIR does not "
        "matter here"};
    return rec;
  }
  if (req.respondent && !req.owner && !req.user) {
    rec.technology = TechnologyClass::kSdc;
    rec.rationale = {
        "only respondent privacy is required: SDC masking is the dedicated "
        "technology (Section 2)"};
    return rec;
  }
  if (req.respondent && req.owner && !req.user) {
    rec.technology = TechnologyClass::kGenericNonCryptoPpdm;
    rec.rationale = {
        "respondent + owner: non-crypto PPDM whose perturbation "
        "k-anonymizes the data achieves both at once (Section 6, via [2], "
        "[12])"};
    return rec;
  }
  // Every remaining combination includes user privacy plus something else.
  rec.rationale.push_back(
      "user privacy required: query control is ruled out (the owner would "
      "have to see queries, Section 3), so data masking must carry the "
      "other dimensions");
  if (req.owner) {
    rec.rationale.push_back(
        "owner privacy required together with user privacy: crypto PPDM is "
        "ruled out (the joint analysis is known to all parties, Section 4); "
        "use non-crypto PPDM");
  }
  if (req.respondent && req.owner) {
    rec.technology = TechnologyClass::kGenericNonCryptoPpdmPlusPir;
    rec.rationale.push_back(
        "all three dimensions: k-anonymize via microaggregation/recoding "
        "(respondent + owner) and add PIR for user queries — the Section 6 "
        "recipe; generic (not use-specific) PPDM so the owner cannot infer "
        "the query family (Section 5)");
  } else if (req.respondent) {
    rec.technology = TechnologyClass::kSdcPlusPir;
    rec.rationale.push_back(
        "respondent + user: masking-based SDC composed with PIR (Section 3: "
        "k-anonymous records make PIR affordable)");
  } else {
    rec.technology = TechnologyClass::kGenericNonCryptoPpdmPlusPir;
    rec.rationale.push_back(
        "owner + user: generic non-crypto PPDM composed with PIR "
        "(Section 4)");
  }
  return rec;
}

Result<Section6Deployment> ApplySection6Recipe(const DataTable& table,
                                               size_t k) {
  TRIPRIV_ASSIGN_OR_RETURN(auto masked, MdavMicroaggregate(table, k));
  Section6Deployment deployment;
  deployment.anonymity_level = AnonymityLevel(masked.table);
  if (deployment.anonymity_level < k) {
    return Status::Internal(
        "microaggregation failed to deliver k-anonymity (got " +
        std::to_string(deployment.anonymity_level) + ", wanted " +
        std::to_string(k) + ")");
  }
  deployment.release = std::move(masked.table);
  return deployment;
}

}  // namespace tripriv
