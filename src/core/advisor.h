// The Section 6 guidelines as an executable advisor.
//
// Lessons learned in the paper's conclusions:
//   * respondent privacy needs data masking or query control; query control
//     is incompatible with user privacy, so masking must be used when both
//     are required;
//   * owner privacy needs PPDM; crypto PPDM is incompatible with user
//     privacy, so non-crypto PPDM must be used when both are required;
//   * non-crypto PPDM whose perturbation k-anonymizes the data (e.g.
//     microaggregation) achieves owner AND respondent privacy at once;
//   * hence the recipe for all three dimensions: k-anonymize (via
//     microaggregation/recoding/suppression) and serve queries through PIR.

#pragma once

#include <string>
#include <vector>

#include "core/technology.h"
#include "table/data_table.h"

namespace tripriv {

/// Which privacy dimensions a deployment must provide.
struct PrivacyRequirements {
  bool respondent = false;
  bool owner = false;
  bool user = false;
};

/// A recommended technology class plus the chain of Section 6 arguments
/// that selected it.
struct Recommendation {
  TechnologyClass technology;
  std::vector<std::string> rationale;
};

/// Recommends a technology class for the requirements. Fails when no
/// dimension is requested.
Result<Recommendation> RecommendTechnology(const PrivacyRequirements& req);

/// Result of the executable Section 6 recipe.
struct Section6Deployment {
  /// The k-anonymized table, ready to be served through PIR.
  DataTable release;
  /// Verified anonymity level of the release (>= k).
  size_t anonymity_level = 0;
};

/// Applies the paper's closing recipe to a concrete dataset: k-anonymize
/// the quasi-identifiers via microaggregation, verify the k-anonymity
/// post-condition, and hand back a release fit for PIR serving. Fails if
/// the post-condition does not hold (it always should, per [12]).
Result<Section6Deployment> ApplySection6Recipe(const DataTable& table, size_t k);

}  // namespace tripriv

