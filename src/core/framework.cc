#include "core/framework.h"

#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace tripriv {

const char* DimensionToString(Dimension d) {
  switch (d) {
    case Dimension::kRespondent:
      return "respondent";
    case Dimension::kOwner:
      return "owner";
    case Dimension::kUser:
      return "user";
  }
  return "?";
}

const char* GradeToString(Grade g) {
  switch (g) {
    case Grade::kNone:
      return "none";
    case Grade::kLow:
      return "low";
    case Grade::kMedium:
      return "medium";
    case Grade::kMediumHigh:
      return "medium-high";
    case Grade::kHigh:
      return "high";
  }
  return "?";
}

Grade GradeFromScore(double score) {
  TRIPRIV_CHECK(score >= -1e-9 && score <= 1.0 + 1e-9) << "score" << score;
  if (score < 0.2) return Grade::kNone;
  if (score < 0.4) return Grade::kLow;
  if (score < 0.6) return Grade::kMedium;
  if (score < 0.8) return Grade::kMediumHigh;
  return Grade::kHigh;
}

bool GradesAgree(Grade claimed, Grade measured) {
  return std::abs(static_cast<int>(claimed) - static_cast<int>(measured)) <= 1;
}

}  // namespace tripriv
