// Empirical scoring engine: regenerates Table 2 from attacks instead of
// expert judgment.
//
// The paper's Table 2 is "qualitative and tentative". TriPriv
// operationalizes each dimension with the standard attack from the cited
// literature and *measures* the grades on a reference scenario (a clinical
// drug-trial microdata set, the paper's running example):
//
//   respondent — distance-based record linkage between the original
//     quasi-identifiers (the intruder's external data) and whatever the
//     technology exposes; for crypto PPDM, a scan of the protocol
//     transcript for leaked records. Score = 1 - re-identification rate.
//   owner — dataset-reconstruction attack: the fraction of original cells
//     an adversary recovers (numeric cells within a small window of the
//     truth, categorical cells exactly) from the released data or protocol
//     transcript. Score = 1 - recovery rate.
//   user — the owner/server tries to learn the user's query target from
//     its view: the full query log without PIR (trivially successful), the
//     PIR selection bitmaps with PIR (a guessing game measured over
//     repeated retrievals). Score = 1 - success rate.
//
// One modeling constant stands in for a measurement (documented at
// kUseSpecificQueryVisibility): when use-specific non-crypto PPDM is
// combined with PIR, the owner still knows the released data only supports
// one analysis family, so roughly half of the query's information (its
// family, not its parameters) is exposed — the paper's rationale for the
// "medium" user grade of that row.

#pragma once

#include <string>
#include <vector>

#include "core/technology.h"
#include "table/data_table.h"

namespace tripriv {

/// Fraction of query information considered visible when the owner knows
/// the analysis family but not the parameters (Section 5's rationale for
/// use-specific non-crypto PPDM + PIR).
inline constexpr double kUseSpecificQueryVisibility = 0.5;

/// Per-dimension empirical protection scores in [0, 1].
struct DimensionScores {
  double respondent = 0.0;
  double owner = 0.0;
  double user = 0.0;

  double of(Dimension d) const;
};

/// One evaluated technology class.
struct TechnologyEvaluation {
  TechnologyClass technology;
  DimensionScores scores;

  Grade MeasuredGrade(Dimension d) const { return GradeFromScore(scores.of(d)); }
  Grade ClaimedGrade(Dimension d) const {
    return PaperClaimedGrade(technology, d);
  }
  /// True when every measured grade is within one band of the claim.
  bool AgreesWithPaper() const;
};

/// Evaluation harness over a fixed original dataset.
class PrivacyEvaluator {
 public:
  /// Knobs of the reference deployments.
  struct Options {
    /// Microaggregation group size for the SDC deployment.
    size_t sdc_k = 4;
    /// Noise amplitude (x column sd) for the use-specific PPDM deployment.
    /// 0.4 keeps the masked data analytically useful ([5] uses comparable
    /// "50% privacy level" settings) while leaving measurable linkage risk.
    double noise_alpha = 0.4;
    /// Condensation group size for the generic PPDM deployment.
    size_t condensation_k = 3;
    /// Retention probability of randomized response on categorical
    /// confidential attributes in the PPDM deployments.
    double rr_keep_probability = 0.8;
    /// Owner-attack recovery window (percent of attribute range).
    double recovery_window_percent = 2.0;
    /// Number of PIR retrievals in the user-privacy guessing game.
    size_t pir_trials = 32;
    /// Parties in the crypto PPDM deployment.
    size_t crypto_parties = 3;
    /// Message drop rate injected into the crypto PPDM deployment's network
    /// (0 = reliable fabric). When > 0 the protocols run over the reliable
    /// channel and the transcript scan accounts for retransmissions and
    /// wire headers — retransmitted masked values must never change the
    /// measured leakage.
    double chaos_drop_rate = 0.0;
    uint64_t seed = 7;
  };

  /// The dataset plays the paper's clinical-trial role: schema must declare
  /// quasi-identifiers and confidential attributes, all QIs numeric.
  PrivacyEvaluator(DataTable original, Options options);

  /// Evaluates one technology class with the three attack suites.
  Result<TechnologyEvaluation> Evaluate(TechnologyClass technology);

  /// Evaluates all eight Table 2 rows.
  Result<std::vector<TechnologyEvaluation>> EvaluateAll();

  /// ASCII rendering of a scoreboard; with `with_claims`, each cell shows
  /// "measured (paper: claimed)".
  static std::string FormatScoreboard(
      const std::vector<TechnologyEvaluation>& evals, bool with_claims);

 private:
  /// The masked release of a non-crypto deployment (original for kPir).
  Result<DataTable> BuildRelease(TechnologyClass base, uint64_t seed) const;

  Result<double> RespondentScoreFromRelease(const DataTable& release) const;
  Result<double> OwnerScoreFromRelease(const DataTable& release) const;
  /// Runs the crypto PPDM deployment and scores respondent + owner from the
  /// transcript.
  Result<std::pair<double, double>> CryptoScores(uint64_t seed) const;
  /// The PIR guessing game on `release` records.
  Result<double> UserScoreWithPir(const DataTable& release, uint64_t seed) const;
  /// The query-log visibility check without PIR.
  Result<double> UserScoreWithoutPir(const DataTable& release,
                                     uint64_t seed) const;

  DataTable original_;
  Options options_;
};

}  // namespace tripriv

