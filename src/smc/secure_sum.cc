#include "smc/secure_sum.h"

#include "smc/reliable_channel.h"

namespace tripriv {

Result<std::vector<BigInt>> SecureSumVector(
    PartyNetwork* net, const std::vector<std::vector<BigInt>>& inputs,
    const BigInt& modulus) {
  TRIPRIV_CHECK(net != nullptr);
  const size_t parties = net->num_parties();
  if (parties < 2) {
    return Status::FailedPrecondition("secure sum needs >= 2 parties");
  }
  if (inputs.size() != parties) {
    return Status::InvalidArgument("one input vector per party required");
  }
  if (modulus.IsZero() || modulus.IsNegative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  const size_t width = inputs[0].size();
  // Raw fabric by default; ARQ reliability once a FaultPlan is installed.
  std::unique_ptr<Channel> ch = MakeChannel(net);
  for (const auto& in : inputs) {
    if (in.size() != width) {
      return Status::InvalidArgument("input vectors must have equal size");
    }
    for (const BigInt& v : in) {
      if (v.IsNegative() || v >= modulus) {
        return Status::InvalidArgument("inputs must lie in [0, modulus)");
      }
    }
  }

  // Party 0 blinds with a random mask vector.
  std::vector<BigInt> masks(width);
  std::vector<BigInt> running(width);
  for (size_t j = 0; j < width; ++j) {
    masks[j] = BigInt::RandomBelow(modulus, net->rng(0));
    running[j] = BigInt::ModAdd(inputs[0][j], masks[j], modulus);
  }
  TRIPRIV_RETURN_IF_ERROR(ch->Send(0, 1 % parties, "secure_sum/forward", running));

  // Each subsequent party adds its input and forwards.
  for (size_t p = 1; p < parties; ++p) {
    TRIPRIV_ASSIGN_OR_RETURN(PartyMessage msg, ch->Receive(p));
    std::vector<BigInt> acc = std::move(msg.payload);
    for (size_t j = 0; j < width; ++j) {
      acc[j] = BigInt::ModAdd(acc[j], inputs[p][j], modulus);
    }
    TRIPRIV_RETURN_IF_ERROR(
        ch->Send(p, (p + 1) % parties, "secure_sum/forward", std::move(acc)));
  }

  // Party 0 removes the mask and broadcasts the result.
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage final_msg, ch->Receive(0));
  if (final_msg.payload.size() != width) {
    return Status::Internal("secure sum: ring message width mismatch");
  }
  std::vector<BigInt> result = std::move(final_msg.payload);
  for (size_t j = 0; j < width; ++j) {
    result[j] = BigInt::ModSub(result[j], masks[j], modulus);
  }
  for (size_t p = 1; p < parties; ++p) {
    TRIPRIV_RETURN_IF_ERROR(ch->Send(0, p, "secure_sum/result", result));
    // Each party consumes its copy so mailboxes are drained between
    // protocol rounds (a stale broadcast must never alias the next round's
    // ring message).
    TRIPRIV_ASSIGN_OR_RETURN(PartyMessage copy, ch->Receive(p));
    if (copy.tag != "secure_sum/result") {
      return Status::Internal("secure sum: unexpected message " + copy.tag);
    }
  }
  return result;
}

Result<BigInt> SecureSum(PartyNetwork* net, const std::vector<BigInt>& inputs,
                         const BigInt& modulus) {
  std::vector<std::vector<BigInt>> vec_inputs;
  vec_inputs.reserve(inputs.size());
  for (const BigInt& v : inputs) vec_inputs.push_back({v});
  TRIPRIV_ASSIGN_OR_RETURN(auto result,
                           SecureSumVector(net, vec_inputs, modulus));
  return result[0];
}

Result<std::vector<uint64_t>> SecureSumCounts(
    PartyNetwork* net, const std::vector<std::vector<uint64_t>>& counts) {
  // 2^80: far above any sum of 64-bit counts from a bounded party set.
  const BigInt modulus = BigInt(1) << 80;
  std::vector<std::vector<BigInt>> inputs;
  inputs.reserve(counts.size());
  for (const auto& vec : counts) {
    std::vector<BigInt> row;
    row.reserve(vec.size());
    for (uint64_t v : vec) row.push_back(BigInt::FromU64(v));
    inputs.push_back(std::move(row));
  }
  TRIPRIV_ASSIGN_OR_RETURN(auto sums, SecureSumVector(net, inputs, modulus));
  std::vector<uint64_t> out;
  out.reserve(sums.size());
  for (const BigInt& v : sums) out.push_back(v.ToU64());
  return out;
}

}  // namespace tripriv
