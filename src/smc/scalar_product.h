// Secure two-party scalar product.
//
// Vertically partitioned crypto PPDM reduces many analyses (counts under
// conjunctive predicates, covariances) to dot products between vectors held
// by different owners. Paillier-based protocol:
//   Alice: sends Enc(a_1) ... Enc(a_d)           (her key)
//   Bob:   computes Prod_i Enc(a_i)^{b_i} = Enc(<a, b>), re-randomizes,
//          returns it
//   Alice: decrypts <a, b>
// Bob learns nothing (he only ever sees ciphertexts); Alice learns only the
// dot product. Messages flow through a PartyNetwork (party 0 = Alice,
// party 1 = Bob), so the transcript is available for leakage inspection.

#pragma once

#include "smc/paillier.h"
#include "smc/party.h"

namespace tripriv {

/// Computes <a, b> for non-negative integer vectors. Requires a PartyNetwork
/// with exactly 2 parties, equal-sized non-empty vectors, and entries small
/// enough that the true dot product is below the Paillier modulus (always
/// true for the count/indicator workloads here with >= 256-bit keys).
Result<BigInt> SecureScalarProduct(PartyNetwork* net,
                                   const std::vector<BigInt>& a,
                                   const std::vector<BigInt>& b,
                                   size_t modulus_bits = 256);

}  // namespace tripriv

