#include "smc/psi.h"

#include "smc/reliable_channel.h"

#include <algorithm>
#include <map>

namespace tripriv {
namespace {

/// Random exponent coprime to p-1 (so x -> x^k is a bijection on Z_p^*).
BigInt RandomCommutativeKey(const BigInt& p, Rng* rng) {
  const BigInt order = p - BigInt(1);
  for (;;) {
    BigInt k = BigInt::RandomBelow(order - BigInt(2), rng) + BigInt(2);
    if (BigInt::Gcd(k, order) == BigInt(1)) return k;
  }
}

/// Encodes a 63-bit element id into Z_p^* (shift away from 0 and 1 so the
/// encoding is never a fixed point of exponentiation).
BigInt Encode(int64_t element, const BigInt& p) {
  TRIPRIV_CHECK_GE(element, 0);
  BigInt v = BigInt(element) + BigInt(2);
  TRIPRIV_CHECK(v < p) << "element does not fit the group";
  return v;
}

}  // namespace

Result<PsiResult> PrivateSetIntersection(PartyNetwork* net,
                                         const std::vector<int64_t>& set_a,
                                         const std::vector<int64_t>& set_b,
                                         size_t prime_bits) {
  TRIPRIV_CHECK(net != nullptr);
  if (net->num_parties() != 2) {
    return Status::FailedPrecondition("PSI is a 2-party protocol");
  }
  if (prime_bits < 80) {
    return Status::InvalidArgument("prime must be >= 80 bits");
  }
  for (int64_t e : set_a) {
    if (e < 0) return Status::InvalidArgument("element ids must be >= 0");
  }
  for (int64_t e : set_b) {
    if (e < 0) return Status::InvalidArgument("element ids must be >= 0");
  }
  const size_t start_bytes = net->bytes_transferred();
  std::unique_ptr<Channel> ch = MakeChannel(net);

  // Party 0 (A) picks the public group and her key.
  const BigInt p = BigInt::RandomPrime(prime_bits, net->rng(0));
  const BigInt key_a = RandomCommutativeKey(p, net->rng(0));
  TRIPRIV_RETURN_IF_ERROR(ch->Send(0, 1, "psi/group", {p}));

  // A -> B: E_A(a_i), order preserved (A remembers which index is which).
  std::vector<BigInt> enc_a;
  enc_a.reserve(set_a.size());
  for (int64_t e : set_a) {
    enc_a.push_back(BigInt::ModExp(Encode(e, p), key_a, p));
  }
  TRIPRIV_RETURN_IF_ERROR(ch->Send(0, 1, "psi/enc_a", enc_a));

  // Party 1 (B): key, double-encrypt A's list (order preserved), and send
  // his own singly-encrypted (shuffled) list.
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage group_msg, ch->Receive(1));
  const BigInt& p_b = group_msg.payload[0];
  const BigInt key_b = RandomCommutativeKey(p_b, net->rng(1));
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage enc_a_msg, ch->Receive(1));
  std::vector<BigInt> double_a;
  double_a.reserve(enc_a_msg.payload.size());
  for (const BigInt& c : enc_a_msg.payload) {
    double_a.push_back(BigInt::ModExp(c, key_b, p_b));
  }
  std::vector<BigInt> enc_b;
  enc_b.reserve(set_b.size());
  for (int64_t e : set_b) {
    enc_b.push_back(BigInt::ModExp(Encode(e, p_b), key_b, p_b));
  }
  net->rng(1)->Shuffle(&enc_b);  // hide B's element order
  // A's list, re-encrypted under B's key: protocol transcript by design.
  // NOLINTNEXTLINE(taint-flow-to-sink)
  TRIPRIV_RETURN_IF_ERROR(ch->Send(1, 0, "psi/double_a", double_a));
  // Commutatively encrypted and shuffle-blinded; sending this list is
  // the PSI protocol itself.
  // NOLINTNEXTLINE(taint-flow-to-sink)
  TRIPRIV_RETURN_IF_ERROR(ch->Send(1, 0, "psi/enc_b", enc_b));

  // A: double-encrypt B's list with her key; E_B(E_A(x)) == E_A(E_B(x)), so
  // equal values identify common elements.
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage double_a_msg, ch->Receive(0));
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage enc_b_msg, ch->Receive(0));
  std::map<std::string, size_t> double_a_index;  // hex -> index into set_a
  for (size_t i = 0; i < double_a_msg.payload.size(); ++i) {
    double_a_index[double_a_msg.payload[i].ToHex()] = i;
  }
  PsiResult result;
  for (const BigInt& c : enc_b_msg.payload) {
    const BigInt both = BigInt::ModExp(c, key_a, p);
    auto it = double_a_index.find(both.ToHex());
    if (it != double_a_index.end()) {
      result.intersection.push_back(set_a[it->second]);
    }
  }
  std::sort(result.intersection.begin(), result.intersection.end());
  result.intersection.erase(
      std::unique(result.intersection.begin(), result.intersection.end()),
      result.intersection.end());

  // A shares the outcome with B.
  std::vector<BigInt> outcome;
  outcome.reserve(result.intersection.size());
  for (int64_t e : result.intersection) outcome.push_back(BigInt(e));
  TRIPRIV_RETURN_IF_ERROR(ch->Send(0, 1, "psi/result", outcome));
  result.bytes_transferred = net->bytes_transferred() - start_bytes;
  return result;
}

}  // namespace tripriv
