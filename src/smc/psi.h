// Private set intersection via commutative encryption.
//
// Two owners learn which elements they share and nothing about the rest —
// the set-operation face of crypto PPDM. Pohlig-Hellman style exponentiation
// over a safe prime p: E_k(x) = x^k mod p commutes, so after both parties
// exponentiate both sets with their own keys, equal double-encryptions
// identify common elements. Elements are first mapped into the
// quadratic-residue subgroup (order q = (p-1)/2, prime) so encryption is a
// bijection on the element encoding.

#pragma once

#include <cstdint>
#include <vector>

#include "smc/party.h"

namespace tripriv {

/// Outcome of the PSI protocol.
struct PsiResult {
  /// The intersection, in ascending order.
  std::vector<int64_t> intersection;
  /// Communication volume in bytes (from the network transcript).
  size_t bytes_transferred = 0;
};

/// Computes the intersection of two sets of non-negative 63-bit element
/// ids. Requires a 2-party network. `prime_bits` sizes the group
/// (>= 80 recommended for experiments). Both parties learn the
/// intersection and the other set's cardinality, nothing else.
Result<PsiResult> PrivateSetIntersection(PartyNetwork* net,
                                         const std::vector<int64_t>& set_a,
                                         const std::vector<int64_t>& set_b,
                                         size_t prime_bits = 128);

}  // namespace tripriv

