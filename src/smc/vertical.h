// Vertically partitioned secure statistics.
//
// The paper's Section 1 motivating case — "co-operative market analysis
// ... keeping private the databases owned by the various collaborating
// corporations" — often has VERTICAL partitioning: the same customers, but
// each owner holds different attributes. The classic scalar-product
// reduction (Vaidya-Clifton style) computes joint second moments without
// either party revealing its column:
//
//   cov(x, y) = (<x, y> - sum(x) sum(y) / n) / (n - 1)
//
// where <x, y> crosses the boundary only through the Paillier secure
// scalar product, and sum(x)/sum(y) are aggregates the parties agree to
// publish (documented leakage — the same aggregates any joint analysis
// output reveals). Real values ride as fixed-point integers; covariance is
// shift-invariant, so each party locally shifts its column non-negative.

#pragma once

#include <vector>

#include "smc/party.h"

namespace tripriv {

/// Result of a secure joint-moment computation.
struct SecureMomentsResult {
  double covariance = 0.0;
  double correlation = 0.0;
  /// Communication volume of the underlying protocol, in bytes.
  size_t bytes_transferred = 0;
};

/// Computes cov(x, y) and corr(x, y) where party 0 of `net` holds column
/// `x` and party 1 holds column `y` for the same n respondents. `scale`
/// sets the fixed-point precision (values are quantized to 1/scale).
/// Requires a 2-party network, equal sizes >= 2, and scale >= 1.
Result<SecureMomentsResult> SecureJointMoments(PartyNetwork* net,
                                               const std::vector<double>& x,
                                               const std::vector<double>& y,
                                               int64_t scale = 1000,
                                               size_t modulus_bits = 256);

}  // namespace tripriv

