// Shamir (t, n) secret sharing over a prime field.
//
// The threshold primitive underlying generic secure multiparty computation:
// a secret s is embedded as the constant term of a random degree-(t-1)
// polynomial; any t shares reconstruct s by Lagrange interpolation, fewer
// reveal nothing. Shares are additively homomorphic, which the tests and
// benches exercise (share-wise addition reconstructs the sum of secrets).

#pragma once

#include <vector>

#include "core/annotations.h"
#include "smc/party.h"
#include "util/bigint.h"

namespace tripriv {

/// One share: the polynomial evaluated at x (x >= 1).
struct ShamirShare {
  uint64_t x = 0;
  BigInt y;
};

/// Splits `secret` into n shares with threshold t over GF(prime).
/// Requires 1 <= t <= n < prime, prime prime, and secret in [0, prime).
TRIPRIV_SANITIZES(clean)
Result<std::vector<ShamirShare>> ShamirShareSecret(const BigInt& secret,
                                                   size_t n, size_t t,
                                                   const BigInt& prime,
                                                   Rng* rng);

/// Reconstructs the secret from >= t shares (extra shares are fine; shares
/// must have distinct x). Fails on duplicate x values.
Result<BigInt> ShamirReconstruct(const std::vector<ShamirShare>& shares,
                                 const BigInt& prime);

/// Share-wise sum of two share vectors (same x layout required):
/// reconstructing the result yields (secret_a + secret_b) mod prime.
Result<std::vector<ShamirShare>> ShamirAddShares(
    const std::vector<ShamirShare>& a, const std::vector<ShamirShare>& b,
    const BigInt& prime);

/// Threshold reconstruction over a (possibly faulty) party network: party i
/// holds `shares[i]`; parties 1..n-1 send their shares to the collector
/// (party 0), which reconstructs from whatever arrives. This is the whole
/// point of (t, n) sharing: the secret survives `n - t` missing parties, so
/// reconstruction succeeds with ANY t surviving shares and fails with a
/// typed kUnavailable only when fewer than t shares make it through the
/// installed FaultPlan (crashes, drops past retry exhaustion).
/// Requires shares.size() == net->num_parties() >= t >= 1.
Result<BigInt> ShamirReconstructOverNetwork(
    PartyNetwork* net, const std::vector<ShamirShare>& shares, size_t t,
    const BigInt& prime);

}  // namespace tripriv

