// Privacy-preserving distributed ID3 over horizontally partitioned data.
//
// The Lindell-Pinkas [18, 19] setting: several owners hold disjoint record
// subsets of the same schema and want a joint decision-tree classifier
// without revealing any record. This implementation follows the standard
// count-aggregation construction: ID3 only ever needs class counts under
// node constraints, and every count is aggregated with the secure-sum ring
// protocol — so the PartyNetwork transcript contains masked partial sums
// and final aggregates only, never a record.
//
// Public metadata (exchanged in the clear, documented leakage): attribute
// names/types, categorical domains, numeric bin edges, and the aggregated
// counts themselves.

#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "smc/party.h"
#include "table/data_table.h"

namespace tripriv {

/// Training hyper-parameters.
struct DistributedId3Config {
  size_t max_depth = 6;
  /// A node with fewer aggregated records becomes a leaf.
  size_t min_records = 8;
  /// Public equal-width discretization of numeric attributes.
  size_t numeric_bins = 6;
};

/// Multiway ID3 tree trained by secure count aggregation.
class DistributedId3Tree {
 public:
  /// Trains a joint tree from `partitions` (>= 2 non-empty shards with
  /// identical schemas) using the secure-sum protocol on `net`, which must
  /// have one party per partition. `label_attr` must be categorical.
  static Result<DistributedId3Tree> Train(
      const std::vector<DataTable>& partitions, std::string_view label_attr,
      const DistributedId3Config& config, PartyNetwork* net);

  /// Predicted label for row `row` of `table`.
  Result<std::string> Predict(const DataTable& table, size_t row) const;

  /// Fraction of correctly classified rows.
  Result<double> Accuracy(const DataTable& table) const;

  size_t num_nodes() const { return nodes_.size(); }
  const std::string& label_attribute() const { return label_attr_; }

 private:
  friend struct Id3Builder;

  struct Node {
    bool is_leaf = true;
    std::string label;
    std::string attr;                    // split attribute (internal nodes)
    size_t attr_index = 0;               // index into attribute metadata
    std::map<size_t, size_t> children;   // value id -> node index
    std::string fallback_label;          // for unseen values at prediction
  };

  /// Public per-attribute discretization metadata.
  struct AttrMeta {
    std::string name;
    bool numeric = false;
    std::vector<double> bin_edges;        // numeric: ascending inner edges
    std::vector<std::string> categories;  // categorical domain
    size_t arity() const {
      return numeric ? bin_edges.size() + 1 : categories.size();
    }
  };

  Result<size_t> ValueId(const AttrMeta& meta, const Value& v) const;

  std::vector<Node> nodes_;
  size_t root_ = 0;
  std::vector<AttrMeta> attrs_;
  std::vector<std::string> label_domain_;
  std::string label_attr_;
};

}  // namespace tripriv

