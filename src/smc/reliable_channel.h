// Reliable messaging over the (possibly faulty) PartyNetwork fabric.
//
// The SMC protocols are written against the small Channel interface. On a
// reliable fabric they use the zero-overhead RawChannel (byte-identical to
// calling the network directly). Once a FaultPlan is installed,
// MakeChannel returns a ReliableChannel instead, which layers a classic
// ARQ discipline over the lossy wire:
//
//   * every data message carries a header [session, seq, checksum] in front
//     of its payload; the checksum (FNV-1a over route, tag, header, and
//     payload) detects in-flight corruption;
//   * the receiver acks each delivery ("rc/ack"); unacked messages are
//     retransmitted with exponential backoff, bounded by
//     RetryPolicy::max_attempts;
//   * per-(from, to) sequence numbers restore FIFO order under reordering
//     and suppress duplicates (including retransmissions whose ack was
//     lost);
//   * the session id (unique per channel, from the network) isolates a
//     protocol run from stale messages a previous faulty run left behind;
//   * a blocking Receive gives up after RetryPolicy::deadline_ticks of
//     simulated time and returns kDeadlineExceeded — or kUnavailable when a
//     party is known to have crashed — so protocols degrade into typed
//     transient errors instead of hanging.
//
// Retransmissions resend byte-identical wire payloads, so the reliability
// layer can never leak more than the original transcript — a property the
// chaos tests assert on the recorded transcript.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "smc/party.h"
#include "util/retry.h"

namespace tripriv {

/// Tag of reliable-channel acknowledgements.
inline constexpr const char* kAckTag = "rc/ack";
/// Header elements ([session, seq, checksum]) prepended to reliable
/// data payloads on the wire.
inline constexpr size_t kReliableHeaderElems = 3;

/// True for reliability-control messages (acks) that carry protocol
/// metadata, not data — transcript scans skip them.
inline bool IsReliableControlMessage(const PartyMessage& msg) {
  return msg.tag == kAckTag;
}

/// Messaging interface the SMC protocols are written against.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends a logical message; reliability semantics depend on the subclass.
  virtual Status Send(size_t from, size_t to, std::string tag,
                      std::vector<BigInt> payload) = 0;

  /// Blocking receive of the next logical message for `to`. RawChannel
  /// fails fast with kUnavailable on an empty mailbox; ReliableChannel
  /// retries until its deadline budget is exhausted.
  virtual Result<PartyMessage> Receive(size_t to) = 0;

  PartyNetwork* net() const { return net_; }

 protected:
  explicit Channel(PartyNetwork* net) : net_(net) {}
  PartyNetwork* net_;
};

/// Pass-through channel: exactly the historical reliable-fabric behavior.
class RawChannel final : public Channel {
 public:
  explicit RawChannel(PartyNetwork* net) : Channel(net) {}

  Status Send(size_t from, size_t to, std::string tag,
              std::vector<BigInt> payload) override {
    return net_->Send(from, to, std::move(tag), std::move(payload));
  }
  Result<PartyMessage> Receive(size_t to) override {
    return net_->Receive(to);
  }
};

/// ARQ reliability layer (see file comment for the wire discipline).
class ReliableChannel final : public Channel {
 public:
  ReliableChannel(PartyNetwork* net, RetryPolicy policy);

  Status Send(size_t from, size_t to, std::string tag,
              std::vector<BigInt> payload) override;
  Result<PartyMessage> Receive(size_t to) override;

  // Reliability statistics (for tests and the overhead benchmarks).
  size_t retransmissions() const { return retransmissions_; }
  size_t duplicates_suppressed() const { return duplicates_suppressed_; }
  size_t checksum_failures() const { return checksum_failures_; }
  size_t acks_sent() const { return acks_sent_; }
  size_t stale_dropped() const { return stale_dropped_; }
  /// Receives that exhausted their deadline budget (kDeadlineExceeded).
  size_t receive_timeouts() const { return receive_timeouts_; }

 private:
  using Route = std::pair<size_t, size_t>;  // (from, to)

  /// Sender-side copy of an unacknowledged message.
  struct PendingSend {
    size_t from = 0;
    size_t to = 0;
    std::string tag;
    std::vector<BigInt> wire_payload;  // header included
    uint64_t last_send_tick = 0;
    size_t attempts = 1;  // transmissions so far
  };

  /// Per-route sequencing state.
  struct RouteState {
    uint64_t next_send_seq = 0;
    uint64_t next_recv_seq = 0;
    /// Out-of-order arrivals parked until their predecessors land.
    std::map<uint64_t, PartyMessage> reorder_buffer;
  };

  /// Delivers the next in-order parked message for `to`, if any.
  bool TakeBuffered(size_t to, PartyMessage* out);
  /// Handles one raw fabric message; sets *out/\*delivered when it was an
  /// in-order data message for the caller.
  Status HandleRaw(PartyMessage raw, size_t to, PartyMessage* out,
                   bool* delivered);
  void ProcessAck(const PartyMessage& raw);
  Status SendAck(size_t receiver, size_t sender, uint64_t seq);
  /// Fires expired retransmission timers for messages addressed to `to`.
  Status RetransmitPendingTo(size_t to);

  RetryPolicy policy_;
  uint64_t session_ = 0;
  std::map<Route, RouteState> routes_;
  std::map<std::pair<Route, uint64_t>, PendingSend> unacked_;

  size_t retransmissions_ = 0;
  size_t duplicates_suppressed_ = 0;
  size_t checksum_failures_ = 0;
  size_t acks_sent_ = 0;
  size_t stale_dropped_ = 0;
  size_t receive_timeouts_ = 0;
};

/// Channel appropriate for `net`: RawChannel while the fabric is reliable,
/// ReliableChannel (with the network's retry policy) once a FaultPlan has
/// been installed.
std::unique_ptr<Channel> MakeChannel(PartyNetwork* net);

}  // namespace tripriv

