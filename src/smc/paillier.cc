#include "smc/paillier.h"

namespace tripriv {

Result<PaillierKeyPair> PaillierGenerateKeys(size_t modulus_bits, Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  if (modulus_bits < 64) {
    return Status::InvalidArgument("modulus must be >= 64 bits");
  }
  const size_t half = modulus_bits / 2;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const BigInt p = BigInt::RandomPrime(half, rng);
    const BigInt q = BigInt::RandomPrime(modulus_bits - half, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    // g = n + 1 requires gcd(n, lambda) handling via mu existence below.
    const BigInt lambda = BigInt::Lcm(p - BigInt(1), q - BigInt(1));
    // mu = (L(g^lambda mod n^2))^{-1} mod n; with g = n + 1 this reduces to
    // lambda^{-1} mod n.
    auto mu = BigInt::ModInverse(lambda, n);
    if (!mu.ok()) continue;  // gcd(lambda, n) != 1 (rare); retry
    PaillierKeyPair keys;
    keys.pub.n = n;
    keys.pub.n_squared = n * n;
    keys.priv.lambda = lambda;
    keys.priv.mu = std::move(mu).value();
    return keys;
  }
  return Status::Internal("Paillier keygen failed to find a valid modulus");
}

Result<BigInt> PaillierEncrypt(const PaillierPublicKey& pub, const BigInt& m,
                               Rng* rng) {
  TRIPRIV_CHECK(rng != nullptr);
  if (m.IsNegative() || m >= pub.n) {
    return Status::InvalidArgument("plaintext must lie in [0, n)");
  }
  // r uniform in [1, n) with gcd(r, n) = 1 (holds w.o.p. for random r).
  BigInt r;
  do {
    r = BigInt::RandomBelow(pub.n, rng);
  } while (r.IsZero() || BigInt::Gcd(r, pub.n) != BigInt(1));
  // c = (1 + m n) * r^n mod n^2.
  const BigInt gm = (BigInt(1) + m * pub.n).Mod(pub.n_squared);
  const BigInt rn = BigInt::ModExp(r, pub.n, pub.n_squared);
  return BigInt::ModMul(gm, rn, pub.n_squared);
}

Result<BigInt> PaillierDecrypt(const PaillierPublicKey& pub,
                               const PaillierPrivateKey& priv,
                               const BigInt& c) {
  if (c.IsNegative() || c >= pub.n_squared) {
    return Status::InvalidArgument("ciphertext must lie in [0, n^2)");
  }
  const BigInt u = BigInt::ModExp(c, priv.lambda, pub.n_squared);
  // L(u) = (u - 1) / n — exact division for valid ciphertexts.
  const BigInt l = (u - BigInt(1)) / pub.n;
  return BigInt::ModMul(l, priv.mu, pub.n);
}

BigInt PaillierAdd(const PaillierPublicKey& pub, const BigInt& c1,
                   const BigInt& c2) {
  return BigInt::ModMul(c1, c2, pub.n_squared);
}

BigInt PaillierAddPlain(const PaillierPublicKey& pub, const BigInt& c,
                        const BigInt& k) {
  const BigInt gk = (BigInt(1) + k.Mod(pub.n) * pub.n).Mod(pub.n_squared);
  return BigInt::ModMul(c, gk, pub.n_squared);
}

BigInt PaillierMulPlain(const PaillierPublicKey& pub, const BigInt& c,
                        const BigInt& k) {
  TRIPRIV_CHECK(!k.IsNegative());
  return BigInt::ModExp(c, k, pub.n_squared);
}

Result<BigInt> PaillierEncryptZero(const PaillierPublicKey& pub, Rng* rng) {
  return PaillierEncrypt(pub, BigInt(), rng);
}

}  // namespace tripriv
