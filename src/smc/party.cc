#include "smc/party.h"

#include <algorithm>

namespace tripriv {

const char* FaultTypeToString(FaultType type) {
  switch (type) {
    case FaultType::kDrop:
      return "Drop";
    case FaultType::kDuplicate:
      return "Duplicate";
    case FaultType::kReorder:
      return "Reorder";
    case FaultType::kCorrupt:
      return "Corrupt";
    case FaultType::kDelay:
      return "Delay";
    case FaultType::kCrash:
      return "Crash";
    case FaultType::kCrashDrop:
      return "CrashDrop";
  }
  return "Unknown";
}

PartyNetwork::PartyNetwork(size_t num_parties, uint64_t seed) {
  TRIPRIV_CHECK_GE(num_parties, 1u);
  Rng root(seed);
  rngs_.reserve(num_parties);
  for (size_t i = 0; i < num_parties; ++i) rngs_.push_back(root.Fork());
  mailboxes_.resize(num_parties);
}

void PartyNetwork::InjectFaults(const FaultPlan& plan) {
  plan_ = plan;
  faults_enabled_ = true;
  fault_rng_ = Rng(plan.seed);
}

bool PartyNetwork::crashed(size_t party) const {
  return crash_fired_ && party == plan_.crash_party;
}

void PartyNetwork::StepAndMaybeCrash() {
  ++steps_;
  if (faults_enabled_ && !crash_fired_ && plan_.crash_party != FaultPlan::kNoCrash &&
      plan_.crash_party < num_parties() && steps_ >= plan_.crash_at_step) {
    crash_fired_ = true;
    RecordFault(FaultType::kCrash, plan_.crash_party, plan_.crash_party, "");
  }
}

void PartyNetwork::RecordFault(FaultType type, size_t from, size_t to,
                               const std::string& tag) {
  fault_log_.push_back({tick_, type, from, to, tag});
}

void PartyNetwork::Deliver(const PartyMessage& msg) {
  uint64_t latency = 0;
  if (plan_.max_latency_ticks > 0) {
    latency = fault_rng_.UniformU64(
        static_cast<uint64_t>(plan_.max_latency_ticks) + 1);
    if (latency > 0) RecordFault(FaultType::kDelay, msg.from, msg.to, msg.tag);
  }

  Delivery delivery{msg, tick_ + latency};
  if (plan_.corrupt_rate > 0.0 && fault_rng_.Bernoulli(plan_.corrupt_rate) &&
      !delivery.msg.payload.empty()) {
    // Perturb one value in flight; the transcript keeps the original (that
    // is what left the sender), the receiver sees the damaged copy.
    const size_t i = static_cast<size_t>(
        fault_rng_.UniformU64(delivery.msg.payload.size()));
    delivery.msg.payload[i] +=
        BigInt(static_cast<int64_t>(1 + fault_rng_.UniformU64(255)));
    RecordFault(FaultType::kCorrupt, msg.from, msg.to, msg.tag);
  }

  auto& box = mailboxes_[msg.to];
  if (plan_.reorder_rate > 0.0 && !box.empty() &&
      fault_rng_.Bernoulli(plan_.reorder_rate)) {
    // The new message overtakes a random suffix of the pending queue.
    const size_t pos = static_cast<size_t>(fault_rng_.UniformU64(box.size()));
    box.insert(box.begin() + static_cast<std::ptrdiff_t>(pos),
               std::move(delivery));
    RecordFault(FaultType::kReorder, msg.from, msg.to, msg.tag);
  } else {
    box.push_back(std::move(delivery));
  }

  if (plan_.duplicate_rate > 0.0 && fault_rng_.Bernoulli(plan_.duplicate_rate)) {
    uint64_t dup_latency = 0;
    if (plan_.max_latency_ticks > 0) {
      dup_latency = fault_rng_.UniformU64(
          static_cast<uint64_t>(plan_.max_latency_ticks) + 1);
    }
    mailboxes_[msg.to].push_back(Delivery{msg, tick_ + dup_latency});
    RecordFault(FaultType::kDuplicate, msg.from, msg.to, msg.tag);
  }
}

Status PartyNetwork::Send(size_t from, size_t to, std::string tag,
                          std::vector<BigInt> payload) {
  if (from >= num_parties() || to >= num_parties()) {
    return Status::OutOfRange("invalid party index");
  }
  StepAndMaybeCrash();
  for (const BigInt& v : payload) {
    bytes_ += std::max<size_t>(1, (v.BitLength() + 7) / 8);
  }
  PartyMessage msg{from, to, std::move(tag), std::move(payload)};
  transcript_.push_back(msg);

  if (!faults_enabled_) {
    mailboxes_[to].push_back(Delivery{std::move(msg), tick_});
    return Status::OK();
  }
  if (crashed(from) || crashed(to)) {
    // A dead sender transmits nothing; a dead receiver hears nothing.
    RecordFault(FaultType::kCrashDrop, msg.from, msg.to, msg.tag);
    return Status::OK();
  }
  if (plan_.drop_rate > 0.0 && fault_rng_.Bernoulli(plan_.drop_rate)) {
    RecordFault(FaultType::kDrop, msg.from, msg.to, msg.tag);
    return Status::OK();
  }
  Deliver(msg);
  return Status::OK();
}

Result<PartyMessage> PartyNetwork::Receive(size_t to) {
  if (to >= num_parties()) return Status::OutOfRange("invalid party index");
  StepAndMaybeCrash();
  ++tick_;  // one poll interval
  if (crashed(to)) {
    return Status::Unavailable("party " + std::to_string(to) + " crashed");
  }
  auto& box = mailboxes_[to];
  for (auto it = box.begin(); it != box.end(); ++it) {
    if (it->deliver_at > tick_) continue;  // still in flight
    PartyMessage msg = std::move(it->msg);
    box.erase(it);
    return msg;
  }
  return Status::Unavailable("mailbox of party " + std::to_string(to) +
                             (box.empty() ? " is empty"
                                          : " has only in-flight messages"));
}

Rng* PartyNetwork::rng(size_t party) {
  TRIPRIV_CHECK_LT(party, rngs_.size());
  return &rngs_[party];
}

}  // namespace tripriv
