#include "smc/party.h"

namespace tripriv {

PartyNetwork::PartyNetwork(size_t num_parties, uint64_t seed) {
  TRIPRIV_CHECK_GE(num_parties, 1u);
  Rng root(seed);
  rngs_.reserve(num_parties);
  for (size_t i = 0; i < num_parties; ++i) rngs_.push_back(root.Fork());
  mailboxes_.resize(num_parties);
}

Status PartyNetwork::Send(size_t from, size_t to, std::string tag,
                          std::vector<BigInt> payload) {
  if (from >= num_parties() || to >= num_parties()) {
    return Status::OutOfRange("invalid party index");
  }
  for (const BigInt& v : payload) {
    bytes_ += std::max<size_t>(1, (v.BitLength() + 7) / 8);
  }
  PartyMessage msg{from, to, std::move(tag), std::move(payload)};
  transcript_.push_back(msg);
  mailboxes_[to].push_back(std::move(msg));
  return Status::OK();
}

Result<PartyMessage> PartyNetwork::Receive(size_t to) {
  if (to >= num_parties()) return Status::OutOfRange("invalid party index");
  if (mailboxes_[to].empty()) {
    return Status::FailedPrecondition("mailbox of party " + std::to_string(to) +
                                      " is empty");
  }
  PartyMessage msg = std::move(mailboxes_[to].front());
  mailboxes_[to].pop_front();
  return msg;
}

Rng* PartyNetwork::rng(size_t party) {
  TRIPRIV_CHECK_LT(party, rngs_.size());
  return &rngs_[party];
}

}  // namespace tripriv
