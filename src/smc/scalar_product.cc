#include "smc/scalar_product.h"

#include "smc/reliable_channel.h"

namespace tripriv {

Result<BigInt> SecureScalarProduct(PartyNetwork* net,
                                   const std::vector<BigInt>& a,
                                   const std::vector<BigInt>& b,
                                   size_t modulus_bits) {
  TRIPRIV_CHECK(net != nullptr);
  if (net->num_parties() != 2) {
    return Status::FailedPrecondition("scalar product is a 2-party protocol");
  }
  if (a.empty() || a.size() != b.size()) {
    return Status::InvalidArgument("vectors must be non-empty and equal-sized");
  }
  for (const BigInt& v : a) {
    if (v.IsNegative()) return Status::InvalidArgument("entries must be >= 0");
  }
  for (const BigInt& v : b) {
    if (v.IsNegative()) return Status::InvalidArgument("entries must be >= 0");
  }

  std::unique_ptr<Channel> ch = MakeChannel(net);

  // Alice (party 0): keygen + encrypt her vector.
  TRIPRIV_ASSIGN_OR_RETURN(PaillierKeyPair keys,
                           PaillierGenerateKeys(modulus_bits, net->rng(0)));
  std::vector<BigInt> encrypted;
  encrypted.reserve(a.size());
  for (const BigInt& ai : a) {
    TRIPRIV_ASSIGN_OR_RETURN(BigInt c,
                             PaillierEncrypt(keys.pub, ai.Mod(keys.pub.n),
                                             net->rng(0)));
    encrypted.push_back(std::move(c));
  }
  // Public key rides along (n is public).
  TRIPRIV_RETURN_IF_ERROR(ch->Send(0, 1, "scalar_product/pubkey", {keys.pub.n}));
  TRIPRIV_RETURN_IF_ERROR(
      ch->Send(0, 1, "scalar_product/ciphertexts", std::move(encrypted)));

  // Bob (party 1): homomorphic fold.
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage key_msg, ch->Receive(1));
  PaillierPublicKey pub;
  pub.n = key_msg.payload[0];
  pub.n_squared = pub.n * pub.n;
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage data_msg, ch->Receive(1));
  TRIPRIV_ASSIGN_OR_RETURN(BigInt acc, PaillierEncryptZero(pub, net->rng(1)));
  for (size_t i = 0; i < b.size(); ++i) {
    if (b[i].IsZero()) continue;
    acc = PaillierAdd(pub, acc,
                      PaillierMulPlain(pub, data_msg.payload[i], b[i]));
  }
  TRIPRIV_RETURN_IF_ERROR(ch->Send(1, 0, "scalar_product/result", {acc}));

  // Alice decrypts.
  TRIPRIV_ASSIGN_OR_RETURN(PartyMessage result_msg, ch->Receive(0));
  return PaillierDecrypt(keys.pub, keys.priv, result_msg.payload[0]);
}

}  // namespace tripriv
