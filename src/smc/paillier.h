// Paillier additively homomorphic cryptosystem.
//
// The public-key workhorse behind the crypto protocols in this library:
// secure scalar products and single-server computational PIR both exploit
// Enc(a) * Enc(b) = Enc(a + b) and Enc(a)^k = Enc(k a). Standard scheme
// with g = n + 1:
//   keygen:  n = p q,  lambda = lcm(p-1, q-1),  mu = lambda^{-1} mod n
//   encrypt: c = (1 + m n) r^n mod n^2,  r uniform in Z*_n
//   decrypt: m = L(c^lambda mod n^2) mu mod n,  L(u) = (u - 1) / n
//
// Key sizes here are experiment-scale (>= 256-bit modulus); the point is
// protocol behaviour, not production-grade cryptographic strength.

#pragma once

#include "core/annotations.h"
#include "util/bigint.h"

namespace tripriv {

/// Public key (n, n^2); g is fixed to n + 1.
struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;

  /// Plaintext space size.
  const BigInt& plaintext_modulus() const { return n; }
};

/// Private key (lambda, mu).
struct PaillierPrivateKey {
  BigInt lambda;
  BigInt mu;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Generates a key pair with an (approximately) `modulus_bits`-bit n.
/// Requires modulus_bits >= 64.
Result<PaillierKeyPair> PaillierGenerateKeys(size_t modulus_bits, Rng* rng);

/// Encrypts m in [0, n). Randomized: two encryptions of the same plaintext
/// differ.
TRIPRIV_SANITIZES(clean)
Result<BigInt> PaillierEncrypt(const PaillierPublicKey& pub, const BigInt& m,
                               Rng* rng);

/// Decrypts a ciphertext to its plaintext in [0, n).
Result<BigInt> PaillierDecrypt(const PaillierPublicKey& pub,
                               const PaillierPrivateKey& priv, const BigInt& c);

/// Homomorphic addition: Dec(PaillierAdd(c1, c2)) = m1 + m2 mod n.
BigInt PaillierAdd(const PaillierPublicKey& pub, const BigInt& c1,
                   const BigInt& c2);

/// Homomorphic plaintext addition: Dec(...) = m + k mod n.
BigInt PaillierAddPlain(const PaillierPublicKey& pub, const BigInt& c,
                        const BigInt& k);

/// Homomorphic scalar multiplication: Dec(...) = k m mod n. Requires k >= 0.
BigInt PaillierMulPlain(const PaillierPublicKey& pub, const BigInt& c,
                        const BigInt& k);

/// A fresh encryption of zero, used for re-randomization.
TRIPRIV_SANITIZES(clean)
Result<BigInt> PaillierEncryptZero(const PaillierPublicKey& pub, Rng* rng);

}  // namespace tripriv

