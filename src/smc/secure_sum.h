// Secure sum: the aggregation primitive of horizontal crypto PPDM.
//
// Classic ring protocol: party 0 blinds its input with a random mask
// R mod M and passes the running total around the ring; each party adds its
// input mod M; party 0 removes the mask and announces the sum. No party
// learns more than its neighbours' running totals, which are uniformly
// random mod M. Everything goes through the PartyNetwork, so the transcript
// demonstrably contains only masked values plus the final aggregate.

#pragma once

#include "smc/party.h"

namespace tripriv {

/// Computes sum(inputs) mod `modulus` over the ring protocol.
/// `inputs[i]` is party i's private value (must be in [0, modulus)).
/// Requires inputs.size() == net->num_parties() >= 2 and modulus > 0.
Result<BigInt> SecureSum(PartyNetwork* net, const std::vector<BigInt>& inputs,
                         const BigInt& modulus);

/// Element-wise secure sum of equally-sized private vectors (one ring pass
/// carrying the whole vector). inputs[i][j] is party i's j-th value.
Result<std::vector<BigInt>> SecureSumVector(
    PartyNetwork* net, const std::vector<std::vector<BigInt>>& inputs,
    const BigInt& modulus);

/// Convenience for count aggregation: sums per-party uint64 count vectors
/// with a modulus large enough to never wrap.
Result<std::vector<uint64_t>> SecureSumCounts(
    PartyNetwork* net, const std::vector<std::vector<uint64_t>>& counts);

}  // namespace tripriv

