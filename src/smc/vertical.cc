#include "smc/vertical.h"

#include <algorithm>
#include <cmath>

#include "smc/reliable_channel.h"
#include "smc/scalar_product.h"
#include "stats/descriptive.h"

namespace tripriv {

Result<SecureMomentsResult> SecureJointMoments(PartyNetwork* net,
                                               const std::vector<double>& x,
                                               const std::vector<double>& y,
                                               int64_t scale,
                                               size_t modulus_bits) {
  TRIPRIV_CHECK(net != nullptr);
  if (net->num_parties() != 2) {
    return Status::FailedPrecondition("joint moments is a 2-party protocol");
  }
  if (x.size() != y.size() || x.size() < 2) {
    return Status::InvalidArgument("need equal-sized columns with >= 2 rows");
  }
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  const size_t start_bytes = net->bytes_transferred();
  std::unique_ptr<Channel> ch = MakeChannel(net);
  const double n = static_cast<double>(x.size());

  // Each party locally shifts its column non-negative and quantizes.
  // Covariance and correlation are invariant to the shifts.
  auto quantize = [scale](const std::vector<double>& v) {
    const double lo = *std::min_element(v.begin(), v.end());
    std::vector<BigInt> out;
    out.reserve(v.size());
    for (double value : v) {
      out.push_back(BigInt(static_cast<int64_t>(
          std::llround((value - lo) * static_cast<double>(scale)))));
    }
    return out;
  };
  const std::vector<BigInt> qx = quantize(x);
  const std::vector<BigInt> qy = quantize(y);

  // The only cross-boundary value computation: <qx, qy> via Paillier.
  TRIPRIV_ASSIGN_OR_RETURN(BigInt dot,
                           SecureScalarProduct(net, qx, qy, modulus_bits));
  auto dot_i64 = dot.ToI64();
  if (!dot_i64.has_value()) {
    return Status::OutOfRange("dot product exceeds 63 bits; lower the scale");
  }

  // Published aggregates (documented leakage): each party's quantized sum
  // and sum of squares — exactly what a joint covariance/correlation output
  // reveals anyway.
  auto moments = [](const std::vector<BigInt>& q) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const BigInt& v : q) {
      const double d = static_cast<double>(*v.ToI64());
      sum += d;
      sum_sq += d * d;
    }
    return std::make_pair(sum, sum_sq);
  };
  const auto [sum_x, sum_sq_x] = moments(qx);
  const auto [sum_y, sum_sq_y] = moments(qy);
  TRIPRIV_RETURN_IF_ERROR(ch->Send(0, 1, "joint_moments/aggregates",
                                    {BigInt(static_cast<int64_t>(sum_x))}));
  TRIPRIV_RETURN_IF_ERROR(ch->Send(1, 0, "joint_moments/aggregates",
                                    {BigInt(static_cast<int64_t>(sum_y))}));
  TRIPRIV_RETURN_IF_ERROR(ch->Receive(1).status());
  TRIPRIV_RETURN_IF_ERROR(ch->Receive(0).status());

  const double s2 = static_cast<double>(scale) * static_cast<double>(scale);
  SecureMomentsResult result;
  result.covariance =
      (static_cast<double>(*dot_i64) - sum_x * sum_y / n) / (n - 1.0) / s2;
  const double var_x = (sum_sq_x - sum_x * sum_x / n) / (n - 1.0) / s2;
  const double var_y = (sum_sq_y - sum_y * sum_y / n) / (n - 1.0) / s2;
  result.correlation = var_x > 0.0 && var_y > 0.0
                           ? result.covariance / std::sqrt(var_x * var_y)
                           : 0.0;
  result.bytes_transferred = net->bytes_transferred() - start_bytes;
  return result;
}

}  // namespace tripriv
