// Simulated multi-party network with transcript recording.
//
// Crypto PPDM (Lindell-Pinkas [18, 19]) runs between autonomous data
// owners. TriPriv simulates the parties in-process: protocols exchange
// messages through a PartyNetwork that records every message. The
// transcript is the basis of the owner-privacy measurement — a protocol
// leaks exactly what its transcript reveals to the other parties, so the
// evaluator can check that only masked values and final aggregates ever
// cross party boundaries.

#ifndef TRIPRIV_SMC_PARTY_H_
#define TRIPRIV_SMC_PARTY_H_

#include <deque>
#include <string>
#include <vector>

#include "util/bigint.h"
#include "util/random.h"
#include "util/status.h"

namespace tripriv {

/// One protocol message.
struct PartyMessage {
  size_t from = 0;
  size_t to = 0;
  std::string tag;              ///< protocol step label
  std::vector<BigInt> payload;  ///< transmitted values
};

/// In-process message fabric between `num_parties` simulated parties.
class PartyNetwork {
 public:
  /// Creates the fabric; each party gets an independent RNG forked from
  /// `seed`.
  PartyNetwork(size_t num_parties, uint64_t seed);

  size_t num_parties() const { return rngs_.size(); }

  /// Enqueues a message. `from`/`to` must be valid party indices.
  Status Send(size_t from, size_t to, std::string tag,
              std::vector<BigInt> payload);

  /// Dequeues the oldest pending message addressed to `to`; FailedPrecondition
  /// when the mailbox is empty.
  Result<PartyMessage> Receive(size_t to);

  /// Party-private randomness.
  Rng* rng(size_t party);

  /// Every message ever sent, in order.
  const std::vector<PartyMessage>& transcript() const { return transcript_; }

  /// Total payload volume sent so far, counted in BigInt bytes (magnitude
  /// bytes, minimum 1 per value) — the communication-cost metric of the
  /// SMC benchmarks.
  size_t bytes_transferred() const { return bytes_; }

  size_t messages_sent() const { return transcript_.size(); }

 private:
  std::vector<Rng> rngs_;
  std::vector<std::deque<PartyMessage>> mailboxes_;
  std::vector<PartyMessage> transcript_;
  size_t bytes_ = 0;
};

}  // namespace tripriv

#endif  // TRIPRIV_SMC_PARTY_H_
