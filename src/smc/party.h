// Simulated multi-party network with transcript recording and fault injection.
//
// Crypto PPDM (Lindell-Pinkas [18, 19]) runs between autonomous data
// owners. TriPriv simulates the parties in-process: protocols exchange
// messages through a PartyNetwork that records every message. The
// transcript is the basis of the owner-privacy measurement — a protocol
// leaks exactly what its transcript reveals to the other parties, so the
// evaluator can check that only masked values and final aggregates ever
// cross party boundaries.
//
// Production owners fail: messages drop, duplicate, reorder, corrupt, and
// whole parties crash. A deterministic, seed-driven FaultPlan injects those
// adversities into the fabric so the protocols can be exercised (and
// measured) under partial failure. The zero-fault default is byte-identical
// to the original reliable FIFO fabric. Fault decisions draw from a
// dedicated fault RNG, so enabling faults never perturbs the parties'
// protocol randomness — a faulty run that completes computes exactly the
// same values as the fault-free run with the same seed.
//
// Time is a simulated tick counter: each Receive poll advances one tick,
// and reliability layers (smc/reliable_channel.h) advance it further when
// backing off. Deadlines are measured against this clock, never wall time.

#pragma once

#include <deque>
#include <string>
#include <vector>

#include "core/annotations.h"
#include "util/bigint.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/status.h"

namespace tripriv {

/// One protocol message.
struct PartyMessage {
  size_t from = 0;
  size_t to = 0;
  std::string tag;              ///< protocol step label
  std::vector<BigInt> payload;  ///< transmitted values
};

/// Kind of an injected fault (for the fault log / transcript accounting).
enum class FaultType {
  kDrop,       ///< message lost on the wire
  kDuplicate,  ///< message delivered twice
  kReorder,    ///< message overtook older pending messages
  kCorrupt,    ///< a payload value was perturbed in flight
  kDelay,      ///< delivery postponed by latency ticks
  kCrash,      ///< a party died (one event, at the crash step)
  kCrashDrop,  ///< message involving a crashed party, discarded
};

/// Human-readable name of a FaultType ("Drop", "Duplicate", ...).
const char* FaultTypeToString(FaultType type);

/// One injected fault, recorded alongside the transcript so experiments can
/// account for exactly which adversities a run survived.
struct FaultEvent {
  uint64_t tick = 0;
  FaultType type = FaultType::kDrop;
  size_t from = 0;
  size_t to = 0;
  std::string tag;  ///< tag of the affected message (empty for kCrash)
};

/// Deterministic, seed-driven adversity schedule for a PartyNetwork.
///
/// All rates are independent per-message probabilities in [0, 1]; the
/// decisions are drawn from a dedicated RNG seeded with `seed`. A
/// default-constructed plan injects nothing, but *installing* any plan (even
/// a trivial one) switches the SMC protocols onto the reliable-channel code
/// path (see smc/reliable_channel.h).
struct FaultPlan {
  double drop_rate = 0.0;       ///< P(message silently lost)
  double duplicate_rate = 0.0;  ///< P(message delivered twice)
  double reorder_rate = 0.0;    ///< P(message jumps the mailbox queue)
  double corrupt_rate = 0.0;    ///< P(one payload value perturbed)
  /// Uniform delivery latency in [0, max_latency_ticks] simulated ticks.
  uint32_t max_latency_ticks = 0;

  /// Sentinel: no party crashes.
  static constexpr size_t kNoCrash = static_cast<size_t>(-1);
  /// Party that crashes (kNoCrash to disable).
  size_t crash_party = kNoCrash;
  /// Network step (Send/Receive op count) at which the crash fires.
  uint64_t crash_at_step = 0;

  /// Seed of the fault RNG (independent of the parties' protocol RNGs).
  uint64_t seed = 0x5EEDFA17;
};

/// In-process message fabric between `num_parties` simulated parties.
class PartyNetwork {
 public:
  /// Creates the fabric; each party gets an independent RNG forked from
  /// `seed`. The fabric is perfectly reliable until InjectFaults is called.
  PartyNetwork(size_t num_parties, uint64_t seed);

  size_t num_parties() const { return rngs_.size(); }

  /// Installs `plan` and switches the fabric (and the SMC protocols built
  /// on it) into fault-injection mode. Call before running a protocol.
  void InjectFaults(const FaultPlan& plan);

  /// True once InjectFaults has been called.
  bool fault_injection_enabled() const { return faults_enabled_; }

  const FaultPlan& fault_plan() const { return plan_; }

  /// Retry/deadline policy the reliable channel uses on this fabric.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Enqueues a message. `from`/`to` must be valid party indices. Always
  /// records the attempt in the transcript; under fault injection the
  /// delivery may be dropped, duplicated, reordered, corrupted, or delayed.
  /// Sending to/from a crashed party succeeds locally but delivers nothing.
  TRIPRIV_SINK(wire)
  Status Send(size_t from, size_t to, std::string tag,
              std::vector<BigInt> payload);

  /// Dequeues the oldest *deliverable* message addressed to `to` (delayed
  /// messages stay invisible until their latency elapses). Unavailable when
  /// nothing is deliverable — a transient condition worth retrying — and
  /// advances the simulated clock by one tick per poll.
  Result<PartyMessage> Receive(size_t to);

  /// Party-private randomness.
  Rng* rng(size_t party);

  /// Simulated clock, in ticks.
  uint64_t now() const { return tick_; }
  /// Advances the simulated clock (used by backoff in reliability layers).
  void AdvanceTicks(uint64_t ticks) { tick_ += ticks; }

  /// True when `party` has crashed under the installed fault plan.
  bool crashed(size_t party) const;
  /// True when any party has crashed.
  bool any_crashed() const { return crash_fired_; }

  /// Monotonic id for reliable-channel sessions (stale-message isolation).
  uint64_t NextChannelSession() { return ++channel_sessions_; }

  /// Every message ever sent, in order (including attempts the fault plan
  /// later dropped: an eavesdropper on the wire saw them).
  const std::vector<PartyMessage>& transcript() const { return transcript_; }

  /// Every injected fault, in order.
  const std::vector<FaultEvent>& fault_log() const { return fault_log_; }

  /// Total payload volume sent so far, counted in BigInt bytes (magnitude
  /// bytes, minimum 1 per value) — the communication-cost metric of the
  /// SMC benchmarks. Retransmissions and acks count: reliability is paid
  /// for in bytes.
  size_t bytes_transferred() const { return bytes_; }

  size_t messages_sent() const { return transcript_.size(); }

 private:
  /// A mailbox entry: the message plus the tick it becomes deliverable.
  struct Delivery {
    PartyMessage msg;
    uint64_t deliver_at = 0;
  };

  /// Counts one network op and fires the scheduled crash when due.
  void StepAndMaybeCrash();
  void RecordFault(FaultType type, size_t from, size_t to,
                   const std::string& tag);
  /// Applies latency/corruption/duplication/reordering to one delivery.
  void Deliver(const PartyMessage& msg);

  std::vector<Rng> rngs_;
  std::vector<std::deque<Delivery>> mailboxes_;
  std::vector<PartyMessage> transcript_;
  std::vector<FaultEvent> fault_log_;
  size_t bytes_ = 0;

  bool faults_enabled_ = false;
  FaultPlan plan_;
  Rng fault_rng_;
  RetryPolicy retry_policy_;
  uint64_t tick_ = 0;
  uint64_t steps_ = 0;
  bool crash_fired_ = false;
  uint64_t channel_sessions_ = 0;
};

}  // namespace tripriv

